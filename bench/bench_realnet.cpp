// E-realnet — the real-socket backend on loopback.
//
// Two PosixNetwork backends in ONE process, pumped alternately through
// poll_once: real UDP datagrams, a real TCP connection with length-prefix
// framing, kernel socket buffers and epoll in the path — but no scheduler
// noise from extra processes, so the numbers are a stable upper bound for
// what the three-process harness (tools/realnet_node.cpp) can see.
//
//  * connect latency: dial → accepted, hello/ack handshake included.
//  * stream throughput: framed 1 KiB writes client → server, drained as
//    fast as both event cores can pump (checksummed on arrival; the
//    integrity counters are carried in the BENCH_JSON row so a zero-copy
//    regression that skips verification would show up).
//  * datagram rate: sealed-frame UDP round, the discovery plane's transport.
//
// Pass --smoke for a tiny workload (CI keeps BENCH_JSON emission alive).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "net/posix_network.hpp"

namespace {

using namespace peerhood;
using namespace peerhood::bench;
using net::ConnectionPtr;
using net::NetAddress;
using net::PosixConfig;
using net::PosixNetwork;
using Clock = std::chrono::steady_clock;

bool g_smoke = false;

constexpr auto kTech = Technology::kBluetooth;

struct LoopbackPair {
  std::unique_ptr<PosixNetwork> a;
  std::unique_ptr<PosixNetwork> b;

  LoopbackPair() {
    PosixConfig ca;
    ca.mac = MacAddress::from_index(1);
    ca.seed = 1;
    PosixConfig cb = ca;
    cb.mac = MacAddress::from_index(2);
    cb.seed = 2;
    a = std::make_unique<PosixNetwork>(ca);
    b = std::make_unique<PosixNetwork>(cb);
    a->add_peer({b->mac(), "127.0.0.1", b->udp_port(), b->tcp_port()});
    b->add_peer({a->mac(), "127.0.0.1", a->udp_port(), a->tcp_port()});
    a->attach_interface(a->mac(), kTech, nullptr);
    b->attach_interface(b->mac(), kTech, nullptr);
  }

  // Pumps both event cores until `done` (no deadline: benches are timed,
  // not raced; the CI smoke row finishes in milliseconds).
  void pump_until(const std::function<bool()>& done) {
    while (!done()) {
      a->poll_once(milliseconds(1));
      b->poll_once(milliseconds(1));
    }
  }
};

// Dial → accept wall time, hello/ack handshake included.
double measure_connect_ms(LoopbackPair& pair, ConnectionPtr& client,
                          ConnectionPtr& server) {
  const NetAddress addr{pair.b->mac(), kTech, 7};
  (void)pair.b->listen(addr,
                       [&](ConnectionPtr c) { server = std::move(c); });
  const auto begin = Clock::now();
  pair.a->connect(pair.a->mac(), addr, [&](Result<ConnectionPtr> r) {
    if (r.ok()) client = std::move(r).value();
  });
  pair.pump_until([&] { return client != nullptr && server != nullptr; });
  return std::chrono::duration<double, std::milli>(Clock::now() - begin)
      .count();
}

// Framed stream writes until `frames` arrive verified at the peer.
double stream_frames_per_sec(LoopbackPair& pair, const ConnectionPtr& client,
                             const ConnectionPtr& server, int frames,
                             std::size_t frame_size) {
  const Bytes payload(frame_size, 0x42);
  int delivered = 0;
  server->set_data_handler([&](const Bytes&) { ++delivered; });
  const auto begin = Clock::now();
  int sent = 0;
  while (delivered < frames) {
    // Keep a bounded burst in flight: far below max_send_queue, far above
    // one-at-a-time lockstep.
    while (sent < frames && sent - delivered < 64) {
      (void)client->write(payload);
      ++sent;
    }
    pair.a->poll_once(milliseconds(1));
    pair.b->poll_once(milliseconds(1));
  }
  const double s =
      std::chrono::duration<double>(Clock::now() - begin).count();
  return static_cast<double>(frames) / s;
}

// Sealed-frame UDP, one datagram in flight at a time (latency-bound).
double datagrams_per_sec(LoopbackPair& pair, int count) {
  int delivered = 0;
  pair.b->set_datagram_handler(
      pair.b->mac(), kTech,
      [&](MacAddress, std::span<const std::uint8_t>) { ++delivered; });
  const Bytes payload(64, 0x17);
  const auto begin = Clock::now();
  for (int i = 0; i < count; ++i) {
    pair.a->send_datagram(pair.a->mac(), pair.b->mac(), kTech, payload);
    const int want = i + 1;
    pair.pump_until([&] { return delivered >= want; });
  }
  const double s =
      std::chrono::duration<double>(Clock::now() - begin).count();
  return static_cast<double>(count) / s;
}

void report_realnet() {
  heading("E-realnet: PosixNetwork on loopback (one process, two backends)");

  LoopbackPair pair;
  ConnectionPtr client;
  ConnectionPtr server;
  const double connect_ms = measure_connect_ms(pair, client, server);
  note("TCP dial + hello/ack: " + std::to_string(connect_ms) + " ms");

  const int frames = g_smoke ? 200 : 20'000;
  constexpr std::size_t kFrameSize = 1024;
  const double fps = stream_frames_per_sec(pair, client, server, frames,
                                           kFrameSize);
  note("stream: " + std::to_string(static_cast<std::uint64_t>(fps)) +
       " frames/s @ 1 KiB (" +
       std::to_string(fps * static_cast<double>(kFrameSize) / 1e6) +
       " MB/s)");

  const int datagrams = g_smoke ? 100 : 5'000;
  const double dps = datagrams_per_sec(pair, datagrams);
  note("datagram ping: " + std::to_string(static_cast<std::uint64_t>(dps)) +
       " round/s @ 64 B");

  const net::NetStats stats_b = pair.b->net_stats();
  JsonRecord{"realnet_loopback"}
      .field("smoke", g_smoke)
      .field("connect_ms", connect_ms)
      .field("stream_frames_per_sec", fps)
      .field("stream_bytes_per_sec", fps * static_cast<double>(kFrameSize))
      .field("datagram_rounds_per_sec", dps)
      .field("frames_checked", stats_b.frames_checked)
      .field("corrupt_drops", stats_b.corrupt_drops)
      .field("send_queue_drops", stats_b.send_queue_drops)
      .field("reconnect_attempts", pair.a->net_stats().reconnect_attempts)
      .emit();
}

void BM_LoopbackStream1KiB(benchmark::State& state) {
  LoopbackPair pair;
  ConnectionPtr client;
  ConnectionPtr server;
  (void)measure_connect_ms(pair, client, server);
  const int frames = g_smoke ? 64 : 2'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stream_frames_per_sec(pair, client, server, frames, 1024));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          frames * 1024);
}
BENCHMARK(BM_LoopbackStream1KiB)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip --smoke before google-benchmark sees the argv.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  report_realnet();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
