// E1 + E2 — Coverage exclusion vs. total environment awareness (Figs. 3.1,
// 3.3, 3.6) and the maximum notification delay (Fig. 3.10).
//
// Paper claims reproduced here:
//  * Legacy PeerHood [2] sees at most two jumps; dynamic device discovery
//    reaches the whole connected network (jump-labelled routing table).
//  * The delay for a change k hops away is ≈ k × searching cycle.
#include <benchmark/benchmark.h>

#include "baseline/visibility.hpp"
#include "bench_util.hpp"

namespace {

using namespace peerhood;
using namespace peerhood::bench;

void build_line(node::Testbed& testbed, int n, bool legacy) {
  for (int i = 0; i < n; ++i) {
    node::NodeOptions options = scenario_node(MobilityClass::kStatic);
    options.daemon.propagate_routes = !legacy;
    testbed.add_node("n" + std::to_string(i), {8.0 * i, 0.0}, options);
  }
}

void report_awareness() {
  heading("E1  Coverage exclusion: visible devices per node (line, 8 m spacing)");
  std::printf("%6s %10s | %-22s | %-22s\n", "nodes", "mode", "routable (min/mean/max)",
              "visible (min/mean/max)");
  for (const int n : {3, 5, 8}) {
    for (const bool legacy : {true, false}) {
      std::vector<double> routable;
      std::vector<double> visible;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        node::Testbed testbed{seed};
        testbed.medium().configure(ideal_bluetooth());
        build_line(testbed, n, legacy);
        testbed.run_discovery_rounds(n + 4);
        for (node::Node* node : testbed.nodes()) {
          routable.push_back(static_cast<double>(
              baseline::routable_device_count(node->daemon().storage())));
          visible.push_back(static_cast<double>(baseline::visible_device_count(
              node->daemon().storage(), node->mac())));
        }
      }
      const Summary r = summarize(routable);
      const Summary v = summarize(visible);
      std::printf("%6d %10s | %5.1f / %5.2f / %5.1f  | %5.1f / %5.2f / %5.1f\n",
                  n, legacy ? "legacy[2]" : "dynamic", r.min, r.mean, r.max,
                  v.min, v.mean, v.max);
    }
  }
  note("paper: legacy vision stops after two jumps (Fig. 3.3); dynamic");
  note("discovery gives every node the whole network (Fig. 3.6).");
}

void report_notification_delay() {
  heading("E2  Max notification delay vs. hop count (Fig. 3.10)");
  std::printf("%6s %16s %18s\n", "hops", "mean delay (s)", "delay / cycle (x)");
  const double cycle_s = 10.0;  // nominal Bluetooth searching cycle
  for (const int hops : {1, 2, 3, 4, 5}) {
    std::vector<double> delays;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      node::Testbed testbed{seed};
      testbed.medium().configure(ideal_bluetooth());
      build_line(testbed, hops + 1, /*legacy=*/false);
      testbed.run_discovery_rounds(hops + 4);
      // A new device appears next to the far end; measure when the near end
      // learns about it.
      testbed.add_node("fresh", {8.0 * hops, 8.0},
                       scenario_node(MobilityClass::kStatic));
      const double appeared = testbed.sim().now().seconds();
      const MacAddress fresh = testbed.node("fresh").mac();
      auto& observer = testbed.node("n0");
      const SimTime deadline = testbed.sim().now() + seconds(400.0);
      while (!observer.daemon().storage().contains(fresh) &&
             testbed.sim().now() < deadline) {
        testbed.run_for(0.5);
      }
      if (observer.daemon().storage().contains(fresh)) {
        delays.push_back(testbed.sim().now().seconds() - appeared);
      }
    }
    const Summary s = summarize(delays);
    std::printf("%6d %16.1f %18.2f\n", hops, s.mean, s.mean / cycle_s);
  }
  note("paper: Max Delay = Num Jump x searching cycle time; the ratio");
  note("column should grow roughly linearly with the hop count.");
}

void BM_DiscoveryConvergenceLine5(benchmark::State& state) {
  for (auto _ : state) {
    node::Testbed testbed{42};
    testbed.medium().configure(ideal_bluetooth());
    build_line(testbed, 5, /*legacy=*/false);
    testbed.run_discovery_rounds(9);
    benchmark::DoNotOptimize(
        testbed.node("n0").daemon().storage().size());
  }
}
BENCHMARK(BM_DiscoveryConvergenceLine5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report_awareness();
  report_notification_delay();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
