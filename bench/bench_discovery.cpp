// E1 + E2 — Coverage exclusion vs. total environment awareness (Figs. 3.1,
// 3.3, 3.6) and the maximum notification delay (Fig. 3.10) — plus the
// PR 4 discovery-plane scale sweep: steady-state fetch bytes and round
// latency, full fetch vs cached encode vs conditional delta fetch.
//
// Paper claims reproduced here:
//  * Legacy PeerHood [2] sees at most two jumps; dynamic device discovery
//    reaches the whole connected network (jump-labelled routing table).
//  * The delay for a change k hops away is ≈ k × searching cycle.
//
// Pass --smoke for a tiny workload (CI keeps BENCH_JSON emission alive).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

#include "baseline/visibility.hpp"
#include "bench_util.hpp"

namespace {

using namespace peerhood;
using namespace peerhood::bench;

bool g_smoke = false;

void build_line(node::Testbed& testbed, int n, bool legacy) {
  for (int i = 0; i < n; ++i) {
    node::NodeOptions options = scenario_node(MobilityClass::kStatic);
    options.daemon.propagate_routes = !legacy;
    testbed.add_node("n" + std::to_string(i), {8.0 * i, 0.0}, options);
  }
}

void report_awareness() {
  heading("E1  Coverage exclusion: visible devices per node (line, 8 m spacing)");
  std::printf("%6s %10s | %-22s | %-22s\n", "nodes", "mode", "routable (min/mean/max)",
              "visible (min/mean/max)");
  for (const int n : {3, 5, 8}) {
    for (const bool legacy : {true, false}) {
      std::vector<double> routable;
      std::vector<double> visible;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        node::Testbed testbed{seed};
        testbed.medium().configure(ideal_bluetooth());
        build_line(testbed, n, legacy);
        testbed.run_discovery_rounds(n + 4);
        for (node::Node* node : testbed.nodes()) {
          routable.push_back(static_cast<double>(
              baseline::routable_device_count(node->daemon().storage())));
          visible.push_back(static_cast<double>(baseline::visible_device_count(
              node->daemon().storage(), node->mac())));
        }
      }
      const Summary r = summarize(routable);
      const Summary v = summarize(visible);
      std::printf("%6d %10s | %5.1f / %5.2f / %5.1f  | %5.1f / %5.2f / %5.1f\n",
                  n, legacy ? "legacy[2]" : "dynamic", r.min, r.mean, r.max,
                  v.min, v.mean, v.max);
    }
  }
  note("paper: legacy vision stops after two jumps (Fig. 3.3); dynamic");
  note("discovery gives every node the whole network (Fig. 3.6).");
}

void report_notification_delay() {
  heading("E2  Max notification delay vs. hop count (Fig. 3.10)");
  std::printf("%6s %16s %18s\n", "hops", "mean delay (s)", "delay / cycle (x)");
  const double cycle_s = 10.0;  // nominal Bluetooth searching cycle
  for (const int hops : {1, 2, 3, 4, 5}) {
    std::vector<double> delays;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      node::Testbed testbed{seed};
      testbed.medium().configure(ideal_bluetooth());
      build_line(testbed, hops + 1, /*legacy=*/false);
      testbed.run_discovery_rounds(hops + 4);
      // A new device appears next to the far end; measure when the near end
      // learns about it.
      testbed.add_node("fresh", {8.0 * hops, 8.0},
                       scenario_node(MobilityClass::kStatic));
      const double appeared = testbed.sim().now().seconds();
      const MacAddress fresh = testbed.node("fresh").mac();
      auto& observer = testbed.node("n0");
      const SimTime deadline = testbed.sim().now() + seconds(400.0);
      while (!observer.daemon().storage().contains(fresh) &&
             testbed.sim().now() < deadline) {
        testbed.run_for(0.5);
      }
      if (observer.daemon().storage().contains(fresh)) {
        delays.push_back(testbed.sim().now().seconds() - appeared);
      }
    }
    const Summary s = summarize(delays);
    std::printf("%6d %16.1f %18.2f\n", hops, s.mean, s.mean / cycle_s);
  }
  note("paper: Max Delay = Num Jump x searching cycle time; the ratio");
  note("column should grow roughly linearly with the hop count.");
}

// --- PR 4: discovery-plane cost at scale ------------------------------------
//
// A √N x √N grid, 5 m spacing, 10 m radio range: every node keeps a constant
// ~12-neighbour density, so per-round cost scales with N. Static nodes and a
// noise-free link model reach a fixed point (low churn), which is exactly the
// regime the paper's always-refetch inquiry loop wastes: after convergence
// nothing changes, yet every round re-ships every snapshot. The versioned
// protocol collapses those rounds to kNotModified.

struct ScaleMode {
  const char* name;
  bool snapshot_cache;
  bool conditional_fetch;
};

constexpr ScaleMode kScaleModes[] = {
    {"full", false, false},    // paper behaviour: encode + ship per request
    {"cached", true, false},   // responder-side cache, full responses
    {"delta", true, true},     // versioned conditional fetch
};

struct ScaleResult {
  double bytes_per_round{0.0};
  double ms_per_round{0.0};
  double frames_per_round{0.0};
  std::uint64_t not_modified{0};
  std::uint64_t cache_hits{0};
  std::uint64_t cache_encodes{0};
};

ScaleResult run_scale(int n, const ScaleMode& mode, bool asymmetric,
                      int warm_rounds, int measure_rounds) {
  sim::LinkQualityModel quality;
  quality.noise = 0.0;
  node::Testbed testbed{77, quality};
  // `asymmetric` keeps the Bluetooth inquiry asymmetry (§3.4.2): occasional
  // inquiry-window overlaps then age records out and every removal re-ships
  // neighbour sections — the churn regime. Disabling it yields the true
  // low-churn steady state (nothing changes after convergence).
  sim::TechnologyParams bt = ideal_bluetooth();
  bt.asymmetric_discovery = asymmetric;
  testbed.medium().configure(bt);
  const int side = static_cast<int>(std::ceil(std::sqrt(n)));
  for (int i = 0; i < n; ++i) {
    node::NodeOptions options;
    options.mobility = MobilityClass::kStatic;
    options.daemon.snapshot_cache = mode.snapshot_cache;
    options.daemon.conditional_fetch = mode.conditional_fetch;
    testbed.add_node("n" + std::to_string(i),
                     {5.0 * (i % side), 5.0 * (i / side)}, options);
  }
  testbed.run_discovery_rounds(warm_rounds);

  // Snapshot every counter at the measure-window edges so each reported
  // figure covers the same (post-warm-up) rounds.
  const auto counters = [&] {
    ScaleResult totals;
    for (node::Node* node : testbed.nodes()) {
      if (const Plugin* p = node->daemon().plugin(Technology::kBluetooth)) {
        totals.not_modified += p->stats().not_modified;
      }
      const auto& cache = node->daemon().snapshot_cache().stats();
      totals.cache_hits += cache.full_hits + cache.not_modified;
      totals.cache_encodes += cache.full_encodes + cache.deltas;
    }
    return totals;
  };
  const sim::TrafficStats before = testbed.medium().stats();
  const ScaleResult counters_before = counters();
  const auto t0 = std::chrono::steady_clock::now();
  testbed.run_discovery_rounds(measure_rounds);
  const auto t1 = std::chrono::steady_clock::now();
  const sim::TrafficStats& after = testbed.medium().stats();

  ScaleResult result = counters();
  result.not_modified -= counters_before.not_modified;
  result.cache_hits -= counters_before.cache_hits;
  result.cache_encodes -= counters_before.cache_encodes;
  const double rounds = measure_rounds;
  result.bytes_per_round =
      static_cast<double>(after.frame_bytes - before.frame_bytes) / rounds;
  result.frames_per_round =
      static_cast<double>(after.frames - before.frames) / rounds;
  result.ms_per_round =
      std::chrono::duration<double, std::milli>(t1 - t0).count() / rounds;
  return result;
}

void run_scale_regime(const char* regime, bool asymmetric,
                      const std::vector<int>& sizes, int warm, int measure) {
  std::printf("%6s %8s %7s | %14s %12s | %12s %12s\n", "nodes", "mode",
              "regime", "bytes/round", "ms/round", "notmod/rnd",
              "cache hit%");
  for (const int n : sizes) {
    double full_bytes = 0.0, full_ms = 0.0;
    for (const ScaleMode& mode : kScaleModes) {
      const ScaleResult r = run_scale(n, mode, asymmetric, warm, measure);
      const double hit_rate =
          r.cache_hits + r.cache_encodes == 0
              ? 0.0
              : 100.0 * static_cast<double>(r.cache_hits) /
                    static_cast<double>(r.cache_hits + r.cache_encodes);
      std::printf("%6d %8s %7s | %14.0f %12.2f | %12.0f %11.1f%%\n", n,
                  mode.name, regime, r.bytes_per_round, r.ms_per_round,
                  static_cast<double>(r.not_modified) / measure, hit_rate);
      JsonRecord record{"discovery_scale"};
      record.field("n", n)
          .field("mode", mode.name)
          .field("regime", regime)
          .field("bytes_per_round", r.bytes_per_round)
          .field("ms_per_round", r.ms_per_round)
          .field("frames_per_round", r.frames_per_round)
          .field("cache_hit_rate", hit_rate);
      record.emit();
      if (std::strcmp(mode.name, "full") == 0) {
        full_bytes = r.bytes_per_round;
        full_ms = r.ms_per_round;
      } else if (std::strcmp(mode.name, "delta") == 0 &&
                 r.bytes_per_round > 0.0 && r.ms_per_round > 0.0) {
        JsonRecord ratio{"discovery_scale_ratio"};
        ratio.field("n", n)
            .field("regime", regime)
            .field("bytes_ratio", full_bytes / r.bytes_per_round)
            .field("latency_ratio", full_ms / r.ms_per_round);
        ratio.emit();
      }
    }
  }
}

void report_scale_sweep() {
  heading("E13  Discovery-plane cost at scale (~12-neighbour static grid)");
  // Convergence takes ~max_jumps rounds plus settling. The "steady" regime
  // (no inquiry asymmetry, so no false aging) is the low-churn steady state
  // of the acceptance target; the "churn" regime keeps the paper's §3.4.2
  // asymmetry, whose occasional miss streaks age records out and trigger
  // network-wide re-learning waves — the realistic mixed behaviour.
  const std::vector<int> sizes =
      g_smoke ? std::vector<int>{64} : std::vector<int>{100, 500, 1000, 2000};
  const int warm = g_smoke ? 6 : 14;
  const int measure = g_smoke ? 2 : 6;
  run_scale_regime("steady", /*asymmetric=*/false, sizes, warm, measure);
  if (!g_smoke) {
    run_scale_regime("churn", /*asymmetric=*/true, {500, 1000}, warm,
                     measure);
  }
  note("acceptance (PR 4): at 1000 nodes steady-state, delta >= 5x fewer");
  note("bytes/round and >= 3x lower round latency than full fetch.");
}

void BM_DiscoveryConvergenceLine5(benchmark::State& state) {
  for (auto _ : state) {
    node::Testbed testbed{42};
    testbed.medium().configure(ideal_bluetooth());
    build_line(testbed, 5, /*legacy=*/false);
    testbed.run_discovery_rounds(9);
    benchmark::DoNotOptimize(
        testbed.node("n0").daemon().storage().size());
  }
}
BENCHMARK(BM_DiscoveryConvergenceLine5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip --smoke before google-benchmark sees the argv.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (!g_smoke) {
    report_awareness();
    report_notification_delay();
  }
  report_scale_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
