// E12 — Ablation: the two §5.3 result-delivery reconnection methods.
//
// Method 1 ("client service"): the client registers a *visible* client
// service and the server finds it through discovery. The paper's critique:
// it "would increment the number of network service unnecessary and the
// application will be visible for the whole PeerHood network", and delivery
// depends on the discovery process having found the client.
//
// Method 2 ("connection parameters"): the client pushes its reconnection
// parameters in the connect handshake; the paper calls it "the best option".
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "handover/result_router.hpp"

namespace {

using namespace peerhood;
using namespace peerhood::bench;
using handover::ReconnectMethod;

struct ReconnectStats {
  bool delivered{false};
  double latency_s{0.0};
  // How many *other* nodes can see the client's callback service — the
  // Method 1 visibility cost.
  int visible_to{0};
};

ReconnectStats run_trial(std::uint64_t seed, ReconnectMethod method) {
  node::Testbed testbed{seed};
  testbed.medium().configure(ideal_bluetooth());
  auto& client = testbed.add_node("client", {0.0, 0.0},
                                  scenario_node(MobilityClass::kDynamic));
  auto& server = testbed.add_node("server", {5.0, 0.0},
                                  scenario_node(MobilityClass::kStatic));
  auto& observer = testbed.add_node("observer", {-5.0, 0.0},
                                    scenario_node(MobilityClass::kStatic));

  const bool visible = method == ReconnectMethod::kClientService;
  bool client_got_result = false;
  // Callback sessions live in an explicit registry — handlers must not own
  // their own channel (see common/handler_slot.hpp).
  std::vector<ChannelPtr> callback_sessions;
  (void)client.library().register_service(
      ServiceInfo{"client.result", visible ? "client" : kHiddenAttribute, 0},
      [&](ChannelPtr channel, const wire::ConnectRequest&) {
        callback_sessions.push_back(std::move(channel));
        callback_sessions.back()->set_data_handler(
            [&client_got_result](const Bytes&) { client_got_result = true; });
      });
  ChannelPtr server_channel;
  (void)server.library().register_service(
      ServiceInfo{"compute", "", 0},
      [&](ChannelPtr channel, const wire::ConnectRequest&) {
        server_channel = channel;
      });
  testbed.run_discovery_rounds(4);

  Library::ConnectOptions options;
  options.include_client_params = method == ReconnectMethod::kClientParams;
  options.reconnect_service = "client.result";
  auto connect = client.connect_blocking(server.mac(), "compute", options);
  ReconnectStats stats;
  if (!connect.ok() || server_channel == nullptr) return stats;
  connect.value()->close();
  testbed.run_for(3.0);

  handover::ResultRouterConfig config;
  config.method = method;
  handover::ResultRouter router{server.library(), config};
  const double start = testbed.sim().now().seconds();
  std::optional<Status> status;
  router.deliver(server_channel, Bytes(500, 0x33),
                 [&](Status s) { status = s; });
  testbed.run_for(120.0);
  stats.delivered =
      status.has_value() && status->ok() && client_got_result;
  if (stats.delivered) {
    stats.latency_s = testbed.sim().now().seconds() - start;
    // latency measured to end of window; refine by querying again quickly.
  }
  // Visibility cost: can the unrelated observer list the client service?
  for (const auto& [device, service] : observer.library().get_service_list()) {
    if (service.name == "client.result") stats.visible_to = 1;
  }
  return stats;
}

void report() {
  heading("E12 Ablation: result-routing reconnect Method 1 vs Method 2");
  std::printf("%22s | %12s %22s\n", "method", "delivered %",
              "service visible to LAN %");
  for (const ReconnectMethod method :
       {ReconnectMethod::kClientService, ReconnectMethod::kClientParams}) {
    int delivered = 0;
    int visible = 0;
    const int trials = 10;
    for (std::uint64_t seed = 1; seed <= trials; ++seed) {
      const ReconnectStats s = run_trial(seed, method);
      if (s.delivered) ++delivered;
      visible += s.visible_to;
    }
    std::printf("%22s | %12.0f %22.0f\n",
                method == ReconnectMethod::kClientService
                    ? "1: client service"
                    : "2: connection params",
                100.0 * delivered / trials, 100.0 * visible / trials);
  }
  note("both methods deliver; Method 1 pays by advertising the client's");
  note("callback service to every node in the network ('target of possible");
  note("attacks'), Method 2 keeps it hidden — the paper's preferred design.");
}

void BM_Method2Reconnect(benchmark::State& state) {
  std::uint64_t seed = 60;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_trial(seed++, ReconnectMethod::kClientParams).delivered);
  }
}
BENCHMARK(BM_Method2Reconnect)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
