// E9 — Robustness under injected faults: the chaos matrix.
//
// Every cell runs a canned scenario under one fault tier — pristine medium,
// bursty (Gilbert–Elliott) loss, the full chaos profile (loss + corruption +
// duplication + reorder), and chaos plus a mid-run partition — and reports
// what the stack salvaged: delivery ratio, outage, session restarts, and the
// per-kind fault counters proving what the medium actually did. The `none`
// tier doubles as the fault-free regression row: its numbers must match the
// plain scenario benches, since an empty schedule never constructs the fault
// model.
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace peerhood;
using namespace peerhood::bench;

// --- Fault tiers -------------------------------------------------------------

sim::FaultProfile bursty_loss() {
  sim::FaultProfile profile;
  profile.loss_good = 0.03;
  profile.loss_bad = 0.6;
  profile.p_good_to_bad = 0.05;
  profile.p_bad_to_good = 0.25;  // ~12% average loss before coupling
  profile.quality_coupling = 0.5;
  return profile;
}

sim::FaultProfile full_chaos() {
  sim::FaultProfile profile = bursty_loss();
  profile.corrupt_prob = 0.02;
  profile.duplicate_prob = 0.05;
  profile.reorder_prob = 0.1;
  return profile;
}

enum class Tier { kNone, kLoss, kChaos, kChaosCut, kCrash, kChaosCrash };

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kNone: return "none";
    case Tier::kLoss: return "loss";
    case Tier::kChaos: return "chaos";
    case Tier::kChaosCut: return "chaos+cut";
    case Tier::kCrash: return "crash";
    case Tier::kChaosCrash: return "chaos+crash";
  }
  return "?";
}

bool is_crash_tier(Tier tier) {
  return tier == Tier::kCrash || tier == Tier::kChaosCrash;
}

// The partition isolates the session servers from everything else for 10 s
// mid-body — the hardest cut the scenario offers.
scenario::FaultScheduleSpec tier_schedule(Tier tier,
                                          std::vector<std::string> servers,
                                          std::vector<std::string> rest) {
  scenario::FaultScheduleSpec faults;
  if (tier == Tier::kNone || tier == Tier::kCrash) return faults;
  faults.profiles.push_back(
      {Technology::kBluetooth, tier == Tier::kLoss ? bursty_loss()
                                                   : full_chaos()});
  if (tier == Tier::kChaosCut) {
    scenario::FaultScheduleSpec::Partition cut;
    cut.side_a = std::move(servers);
    cut.side_b = std::move(rest);
    cut.start_s = 20.0;
    cut.duration_s = 10.0;
    faults.partitions.push_back(cut);
  }
  return faults;
}

// The crash tiers hard-kill the session servers 30 s into the body and
// restart them 10 s later; the sessions run crash-tolerant (reliable layer,
// journalled resume, no provider reconnection) — the recovery path is what
// the cell measures.
scenario::CrashScheduleSpec tier_crashes(Tier tier,
                                         std::vector<std::string> servers) {
  scenario::CrashScheduleSpec crashes;
  if (!is_crash_tier(tier)) return crashes;
  scenario::CrashScheduleSpec::Crash crash;
  crash.targets = std::move(servers);
  crash.at_s = 30.0;
  crash.downtime_s = 10.0;
  crashes.crashes.push_back(crash);
  return crashes;
}

void make_crash_tolerant(scenario::ScenarioSpec& spec) {
  for (scenario::SessionSpec& session : spec.sessions) {
    session.reliable = true;
    session.handover_config.reconnection_enabled = false;
    session.handover_config.direct_resume_enabled = true;
    session.handover_config.max_dead_link_passes = 1000;
  }
}

// --- Matrix ------------------------------------------------------------------

struct ChaosCell {
  std::string scenario;
  Tier tier{Tier::kNone};
  int trials{0};
  std::uint64_t sent{0};
  std::uint64_t received{0};
  double outage_s{0.0};
  std::uint64_t handovers{0};
  std::uint64_t reconnections{0};
  std::uint64_t restarts{0};
  std::uint64_t medium_frames{0};
  sim::FaultStats faults;
  std::uint64_t corrupt_dropped{0};
  std::uint64_t restart_resumes{0};
  std::uint64_t dup_or_reorder{0};
  std::uint64_t gaps{0};
};

struct ScenarioRow {
  const char* name;
  scenario::ScenarioSpec (*factory)(std::uint64_t seed);
  // Partition sides (name prefixes) for the chaos+cut tier.
  std::vector<std::string> servers;
  std::vector<std::string> rest;
};

scenario::ScenarioSpec make_corridor(std::uint64_t seed) {
  return scenario::corridor_walk(seed, /*predictive=*/true);
}
scenario::ScenarioSpec make_office(std::uint64_t seed) {
  return scenario::office(seed, /*predictive=*/true, 10);
}
scenario::ScenarioSpec make_churn(std::uint64_t seed) {
  return scenario::churn(seed, /*predictive=*/true, 10);
}

ChaosCell run_cell(const ScenarioRow& row, Tier tier, int trials) {
  ChaosCell cell;
  cell.scenario = row.name;
  cell.tier = tier;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(trials);
       ++seed) {
    scenario::ScenarioSpec spec = row.factory(seed);
    spec.faults = tier_schedule(tier, row.servers, row.rest);
    spec.crashes = tier_crashes(tier, row.servers);
    if (is_crash_tier(tier)) make_crash_tolerant(spec);
    scenario::ScenarioRunner runner{std::move(spec)};
    const Status status = runner.setup();
    if (!status.ok()) {
      std::printf("    !! %s/%s seed %llu setup failed: %s\n", row.name,
                  tier_name(tier), static_cast<unsigned long long>(seed),
                  status.error().to_string().c_str());
      continue;
    }
    runner.run();
    ++cell.trials;
    const scenario::ScenarioMetrics& m = runner.metrics();
    cell.sent += m.total_sent();
    cell.received += m.total_received();
    cell.outage_s += m.total_outage_s();
    cell.handovers += m.total_handovers();
    cell.medium_frames += m.medium_frames;
    for (const scenario::SessionMetrics& s : m.sessions) {
      cell.reconnections += s.reconnections;
      cell.restarts += s.restarts;
      cell.dup_or_reorder += s.dup_or_reorder;
      cell.gaps += s.gaps;
    }
    cell.faults.frames_seen += m.fault_stats.frames_seen;
    cell.faults.loss_drops += m.fault_stats.loss_drops;
    cell.faults.blackout_drops += m.fault_stats.blackout_drops;
    cell.faults.corrupted += m.fault_stats.corrupted;
    cell.faults.duplicated += m.fault_stats.duplicated;
    cell.faults.reordered += m.fault_stats.reordered;
    cell.faults.burst_entries += m.fault_stats.burst_entries;
    cell.faults.node_crashes += m.fault_stats.node_crashes;
    cell.faults.node_restarts += m.fault_stats.node_restarts;
    cell.corrupt_dropped += m.corrupt_frames_dropped;
    cell.restart_resumes += m.restart_resumes;
  }
  return cell;
}

void emit_cell(const ChaosCell& cell) {
  const double delivery =
      cell.sent > 0
          ? static_cast<double>(cell.received) / static_cast<double>(cell.sent)
          : 0.0;
  std::printf("%10s %10s %6llu %6llu %9.2f %10.0f %4llu %4llu %8llu %8llu\n",
              cell.scenario.c_str(), tier_name(cell.tier),
              static_cast<unsigned long long>(cell.sent),
              static_cast<unsigned long long>(cell.received), delivery,
              cell.outage_s * 1e3,
              static_cast<unsigned long long>(cell.handovers),
              static_cast<unsigned long long>(cell.restarts),
              static_cast<unsigned long long>(cell.faults.loss_drops),
              static_cast<unsigned long long>(cell.corrupt_dropped));
  JsonRecord record{"chaos_matrix"};
  record.field("scenario", cell.scenario)
      .field("faults", tier_name(cell.tier))
      .field("trials", cell.trials)
      .field("sent", cell.sent)
      .field("received", cell.received)
      .field("delivery_ratio", delivery)
      .field("outage_ms", cell.outage_s * 1e3)
      .field("handovers", cell.handovers)
      .field("reconnections", cell.reconnections)
      .field("restarts", cell.restarts)
      .field("medium_frames", cell.medium_frames)
      .field("loss_drops", cell.faults.loss_drops)
      .field("blackout_drops", cell.faults.blackout_drops)
      .field("corrupted", cell.faults.corrupted)
      .field("duplicated", cell.faults.duplicated)
      .field("reordered", cell.faults.reordered)
      .field("burst_entries", cell.faults.burst_entries)
      .field("corrupt_dropped", cell.corrupt_dropped)
      .field("node_crashes", cell.faults.node_crashes)
      .field("node_restarts", cell.faults.node_restarts)
      .field("restart_resumes", cell.restart_resumes)
      .field("dup_or_reorder", cell.dup_or_reorder)
      .field("gaps", cell.gaps);
  record.emit();
}

void report_matrix(bool smoke) {
  heading(smoke ? "E9 chaos matrix (smoke: 1 seed per cell)"
                : "E9 chaos matrix: scenarios x fault tiers");
  std::printf("%10s %10s %6s %6s %9s %10s %4s %4s %8s %8s\n", "scenario",
              "faults", "sent", "recv", "delivery", "outage ms", "ho", "rst",
              "lost", "corrupt");
  const std::vector<ScenarioRow> rows = {
      {"corridor", make_corridor, {"server"}, {"walker", "bridge"}},
      {"office10", make_office, {"srv"}, {"mob", "anchor"}},
      {"churn10", make_churn, {"srv"}, {"mob", "anchor"}},
  };
  const int trials = smoke ? 1 : 5;
  for (const ScenarioRow& row : rows) {
    for (const Tier tier :
         {Tier::kNone, Tier::kLoss, Tier::kChaos, Tier::kChaosCut,
          Tier::kCrash, Tier::kChaosCrash}) {
      emit_cell(run_cell(row, tier, trials));
    }
  }
  note("delivery = received / sent over the scenario body; outage = summed");
  note("time with no usable connection; rst = watchdog session restarts;");
  note("lost/corrupt = frames the fault plane dropped / the frame check");
  note("rejected. The `none` tier is the fault-free regression row: an empty");
  note("schedule never constructs the fault model, so it must match the");
  note("plain scenario benches exactly. The crash tiers hard-kill the session");
  note("servers mid-body and measure the journalled resume (restart_resumes,");
  note("node_crashes/node_restarts in the JSON); dup_or_reorder/gaps are the");
  note("exactly-once counters and must stay 0 on the reliable sessions.");
}

void BM_CorridorChaos(benchmark::State& state) {
  std::uint64_t seed = 700;
  for (auto _ : state) {
    scenario::ScenarioSpec spec = scenario::corridor_walk(seed++, true);
    spec.faults =
        tier_schedule(Tier::kChaosCut, {"server"}, {"walker", "bridge"});
    scenario::ScenarioRunner runner{std::move(spec)};
    if (runner.setup().ok()) runner.run();
    benchmark::DoNotOptimize(runner.metrics().total_received());
  }
}
BENCHMARK(BM_CorridorChaos)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  report_matrix(smoke);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
