// E-scale — neighbour-query scaling of the radio medium (ISSUE 1 tentpole).
//
// A "discovery sweep" asks the medium for every node's in-range neighbour
// set — exactly what the PeerHood inquiry loops do once per searching cycle.
// The sweep is timed two ways over the same randomly moving population:
//
//  * brute: in_range_of_brute — the pre-grid linear scan, one virtual
//    position_at call per registered endpoint per query (O(N^2) per sweep);
//  * grid:  in_range_of — spatial grid + per-SimTime position cache
//    (O(N) rebuild per tick, then O(local density) per query).
//
// Node density is held constant (~8 expected Bluetooth neighbours) so the
// sweep cost isolates the index, not a denser radio environment. Each
// repetition advances simulated time to force grid rebuilds and position
// re-sampling, matching how discovery cycles hit the medium in real runs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "sim/medium.hpp"

namespace {

using namespace peerhood;
using namespace peerhood::bench;

constexpr double kTargetNeighbours = 8.0;

struct Scene {
  explicit Scene(int n, std::uint64_t seed) : sim{seed}, medium{sim} {
    const double range = medium.params(Technology::kBluetooth).range_m;
    const double area =
        static_cast<double>(n) * M_PI * range * range / kTargetNeighbours;
    const double side = std::sqrt(area);
    Rng rng = sim.fork_rng();
    macs.reserve(static_cast<std::size_t>(n));
    for (int i = 1; i <= n; ++i) {
      sim::RandomWaypoint::Config config;
      config.area_min = {0.0, 0.0};
      config.area_max = {side, side};
      config.speed_min_mps = 0.5;
      config.speed_max_mps = 2.0;
      const sim::Vec2 start{rng.uniform(0.0, side), rng.uniform(0.0, side)};
      const MacAddress mac = MacAddress::from_index(
          static_cast<std::uint64_t>(i));
      medium.register_endpoint(
          mac, Technology::kBluetooth,
          std::make_shared<sim::RandomWaypoint>(config, start, sim.fork_rng()),
          nullptr);
      macs.push_back(mac);
    }
  }

  sim::Simulator sim;
  sim::RadioMedium medium;
  std::vector<MacAddress> macs;
};

// One full discovery sweep; returns total neighbour count (checksum).
template <bool kBrute>
std::size_t sweep(Scene& scene) {
  std::size_t total = 0;
  for (const MacAddress mac : scene.macs) {
    const auto neighbours =
        kBrute ? scene.medium.in_range_of_brute(mac, Technology::kBluetooth)
               : scene.medium.in_range_of(mac, Technology::kBluetooth);
    total += neighbours.size();
  }
  return total;
}

template <bool kBrute>
double timed_sweeps_ms(Scene& scene, int reps, std::size_t* checksum) {
  using Clock = std::chrono::steady_clock;
  double total_ms = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    // Advance virtual time so every rep re-samples positions and (for the
    // grid path) rebuilds the index — no free riding on a warm cache.
    scene.sim.run_until(scene.sim.now() + seconds(1.0));
    const auto begin = Clock::now();
    *checksum += sweep<kBrute>(scene);
    const auto end = Clock::now();
    total_ms += std::chrono::duration<double, std::milli>(end - begin).count();
  }
  return total_ms / reps;
}

void report_sweep_scaling() {
  heading("E-scale  Discovery sweep: brute-force scan vs spatial grid");
  std::printf("%7s %14s %14s %10s %12s\n", "nodes", "brute (ms)", "grid (ms)",
              "speedup", "checksum ok");
  for (const int n : {100, 500, 1000, 2000, 5000}) {
    // Fewer reps at the largest sizes keeps the brute baseline affordable.
    const int reps = n >= 2000 ? 3 : 5;
    std::size_t check_brute = 0;
    std::size_t check_grid = 0;
    Scene brute_scene{n, /*seed=*/7};
    Scene grid_scene{n, /*seed=*/7};
    const double brute_ms =
        timed_sweeps_ms<true>(brute_scene, reps, &check_brute);
    const double grid_ms =
        timed_sweeps_ms<false>(grid_scene, reps, &check_grid);
    // Identical seeds + identical rep schedule => the sweeps must count the
    // exact same neighbour sets; a mismatch means the grid is wrong.
    const bool checksum_ok = check_brute == check_grid;
    const double speedup = grid_ms > 0.0 ? brute_ms / grid_ms : 0.0;
    std::printf("%7d %14.3f %14.3f %9.1fx %12s\n", n, brute_ms, grid_ms,
                speedup, checksum_ok ? "yes" : "NO");
    JsonRecord{"medium_scale_sweep"}
        .field("nodes", n)
        .field("brute_ms_per_sweep", brute_ms)
        .field("grid_ms_per_sweep", grid_ms)
        .field("speedup", speedup)
        .field("checksum_ok", checksum_ok)
        .emit();
  }
  note("acceptance: >= 5x at 2000 nodes; checksum compares total neighbour");
  note("counts between the two implementations over identical scenarios.");
}

void BM_MediumSweepGrid2000(benchmark::State& state) {
  Scene scene{2000, 7};
  for (auto _ : state) {
    scene.sim.run_until(scene.sim.now() + seconds(1.0));
    benchmark::DoNotOptimize(sweep<false>(scene));
  }
}
BENCHMARK(BM_MediumSweepGrid2000)->Unit(benchmark::kMillisecond);

void BM_MediumSweepBrute2000(benchmark::State& state) {
  Scene scene{2000, 7};
  for (auto _ : state) {
    scene.sim.run_until(scene.sim.now() + seconds(1.0));
    benchmark::DoNotOptimize(sweep<true>(scene));
  }
}
BENCHMARK(BM_MediumSweepBrute2000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report_sweep_scaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
