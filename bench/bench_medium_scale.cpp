// E-scale — neighbour-query scaling of the radio medium (ISSUE 1 tentpole).
//
// A "discovery sweep" asks the medium for every node's in-range neighbour
// set — exactly what the PeerHood inquiry loops do once per searching cycle.
// The sweep is timed two ways over the same randomly moving population:
//
//  * brute: in_range_of_brute — the pre-grid linear scan, one virtual
//    position_at call per registered endpoint per query (O(N^2) per sweep);
//  * grid:  in_range_of — spatial grid + per-SimTime position cache
//    (O(N) rebuild per tick, then O(local density) per query).
//
// Node density is held constant (~8 expected Bluetooth neighbours) so the
// sweep cost isolates the index, not a denser radio environment. Each
// repetition advances simulated time to force grid rebuilds and position
// re-sampling, matching how discovery cycles hit the medium in real runs.
//
// E-shard — wall-clock scaling of the sharded simulation core: the same
// frame-level workload (per-endpoint tick chains + neighbour traffic on a
// ShardedMedium corridor) run at shards=1 and shards=K, with merged frame
// counts cross-checked so the speedup never comes from dropped work.
//
// Pass --smoke for a tiny workload (CI keeps BENCH_JSON emission alive).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "sim/medium.hpp"
#include "sim/shard.hpp"
#include "sim/sharded_medium.hpp"

namespace {

using namespace peerhood;
using namespace peerhood::bench;

bool g_smoke = false;

constexpr double kTargetNeighbours = 8.0;

struct Scene {
  explicit Scene(int n, std::uint64_t seed) : sim{seed}, medium{sim} {
    const double range = medium.params(Technology::kBluetooth).range_m;
    const double area =
        static_cast<double>(n) * M_PI * range * range / kTargetNeighbours;
    const double side = std::sqrt(area);
    Rng rng = sim.fork_rng();
    macs.reserve(static_cast<std::size_t>(n));
    for (int i = 1; i <= n; ++i) {
      sim::RandomWaypoint::Config config;
      config.area_min = {0.0, 0.0};
      config.area_max = {side, side};
      config.speed_min_mps = 0.5;
      config.speed_max_mps = 2.0;
      const sim::Vec2 start{rng.uniform(0.0, side), rng.uniform(0.0, side)};
      const MacAddress mac = MacAddress::from_index(
          static_cast<std::uint64_t>(i));
      medium.register_endpoint(
          mac, Technology::kBluetooth,
          std::make_shared<sim::RandomWaypoint>(config, start, sim.fork_rng()),
          nullptr);
      macs.push_back(mac);
    }
  }

  sim::Simulator sim;
  sim::RadioMedium medium;
  std::vector<MacAddress> macs;
};

// One full discovery sweep; returns total neighbour count (checksum).
template <bool kBrute>
std::size_t sweep(Scene& scene) {
  std::size_t total = 0;
  for (const MacAddress mac : scene.macs) {
    const auto neighbours =
        kBrute ? scene.medium.in_range_of_brute(mac, Technology::kBluetooth)
               : scene.medium.in_range_of(mac, Technology::kBluetooth);
    total += neighbours.size();
  }
  return total;
}

template <bool kBrute>
double timed_sweeps_ms(Scene& scene, int reps, std::size_t* checksum) {
  using Clock = std::chrono::steady_clock;
  double total_ms = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    // Advance virtual time so every rep re-samples positions and (for the
    // grid path) rebuilds the index — no free riding on a warm cache.
    scene.sim.run_until(scene.sim.now() + seconds(1.0));
    const auto begin = Clock::now();
    *checksum += sweep<kBrute>(scene);
    const auto end = Clock::now();
    total_ms += std::chrono::duration<double, std::milli>(end - begin).count();
  }
  return total_ms / reps;
}

// Beyond this population the full-sweep brute oracle dominates the bench's
// runtime, so it is sampled instead: kOracleSample randomly spread nodes are
// queried both ways (exact per-node set equality, a stronger check than the
// checksum) and the brute sweep cost is extrapolated from the per-query mean.
constexpr int kOracleFullSweepMax = 5000;
constexpr int kOracleSample = 200;

// Sampled-oracle measurement for one rep. Returns the grid sweep time and
// extrapolated brute sweep time; `parity_ok` accumulates per-node equality.
void sampled_rep(Scene& scene, double* grid_ms, double* brute_ms,
                 bool* parity_ok) {
  using Clock = std::chrono::steady_clock;
  scene.sim.run_until(scene.sim.now() + seconds(1.0));
  const auto grid_begin = Clock::now();
  std::size_t checksum = sweep<false>(scene);
  const auto grid_end = Clock::now();
  benchmark::DoNotOptimize(checksum);
  *grid_ms +=
      std::chrono::duration<double, std::milli>(grid_end - grid_begin).count();

  const std::size_t n = scene.macs.size();
  const std::size_t stride = n / kOracleSample;
  double queries = 0.0;
  const auto brute_begin = Clock::now();
  for (std::size_t i = 0; i < n; i += stride) {
    benchmark::DoNotOptimize(
        scene.medium
            .in_range_of_brute(scene.macs[i], Technology::kBluetooth)
            .data());
    queries += 1.0;
  }
  const auto brute_end = Clock::now();
  const double sampled_ms =
      std::chrono::duration<double, std::milli>(brute_end - brute_begin)
          .count();
  *brute_ms += sampled_ms / queries * static_cast<double>(n);

  // Parity outside the timed region: at the same SimTime the grid answer
  // must match the oracle exactly, node by node.
  for (std::size_t i = 0; i < n; i += stride) {
    if (scene.medium.in_range_of_brute(scene.macs[i],
                                       Technology::kBluetooth) !=
        scene.medium.in_range_of(scene.macs[i], Technology::kBluetooth)) {
      *parity_ok = false;
    }
  }
}

void report_sweep_scaling() {
  heading("E-scale  Discovery sweep: brute-force scan vs spatial grid");
  std::printf("%7s %14s %14s %10s %12s %8s\n", "nodes", "brute (ms)",
              "grid (ms)", "speedup", "parity ok", "oracle");
  const std::vector<int> sizes =
      g_smoke ? std::vector<int>{100, 500, 1000, 2000}
              : std::vector<int>{100, 500, 1000, 2000, 5000, 10'000, 20'000,
                                 50'000};
  for (const int n : sizes) {
    const bool sampled = n > kOracleFullSweepMax;
    // Fewer reps at the largest sizes keeps the brute baseline affordable.
    const int reps = n >= 2000 ? (sampled ? 2 : 3) : 5;
    double brute_ms = 0.0;
    double grid_ms = 0.0;
    bool parity_ok = true;
    if (sampled) {
      Scene scene{n, /*seed=*/7};
      for (int rep = 0; rep < reps; ++rep) {
        sampled_rep(scene, &grid_ms, &brute_ms, &parity_ok);
      }
      brute_ms /= reps;
      grid_ms /= reps;
    } else {
      std::size_t check_brute = 0;
      std::size_t check_grid = 0;
      Scene brute_scene{n, /*seed=*/7};
      Scene grid_scene{n, /*seed=*/7};
      brute_ms = timed_sweeps_ms<true>(brute_scene, reps, &check_brute);
      grid_ms = timed_sweeps_ms<false>(grid_scene, reps, &check_grid);
      // Identical seeds + identical rep schedule => the sweeps must count the
      // exact same neighbour sets; a mismatch means the grid is wrong.
      parity_ok = check_brute == check_grid;
    }
    const double speedup = grid_ms > 0.0 ? brute_ms / grid_ms : 0.0;
    std::printf("%7d %14.3f %14.3f %9.1fx %12s %8s\n", n, brute_ms, grid_ms,
                speedup, parity_ok ? "yes" : "NO",
                sampled ? "sampled" : "full");
    JsonRecord{"medium_scale_sweep"}
        .field("nodes", n)
        .field("brute_ms_per_sweep", brute_ms)
        .field("grid_ms_per_sweep", grid_ms)
        .field("speedup", speedup)
        .field("checksum_ok", parity_ok)
        .field("oracle", sampled ? "sampled" : "full")
        .emit();
  }
  note("acceptance: >= 5x at 2000 nodes; full oracle compares total");
  note("neighbour counts over identical scenarios; above 5000 nodes the");
  note("oracle samples 200 nodes (exact per-node set equality) and the");
  note("brute sweep time is extrapolated from the per-query mean.");
}

// --- E-shard: sharded-core scaling ------------------------------------------

// One run of the sharded corridor workload: `n` static endpoints 5 m apart
// (Bluetooth range 10 m, so ~4 neighbours each), each ticking every 250 ms
// on its owner shard — RNG draw per tick, a 32-byte frame to the right-hand
// neighbour every 4th tick. Cross-shard traffic is exactly the stripe
// boundaries, matching a region-partitioned deployment. Returns the wall
// time of the run and the merged delivered-frame count (the parity check).
struct ShardRunResult {
  double wall_ms{0.0};
  std::uint64_t frames{0};
  std::uint64_t migrations{0};
};

ShardRunResult run_sharded_corridor(int n, std::uint32_t shards,
                                    double sim_seconds) {
  constexpr double kSpacing = 5.0;
  sim::ShardedSimulator core{/*seed=*/7, shards};
  sim::ShardedMediumConfig config;
  config.world_min_x = 0.0;
  config.world_max_x = kSpacing * n;
  sim::ShardedMedium medium{core, config};

  for (int i = 0; i < n; ++i) {
    const MacAddress mac =
        MacAddress::from_index(static_cast<std::uint64_t>(i) + 1);
    const sim::Vec2 pos{(i + 0.5) * kSpacing, 0.0};
    medium.register_endpoint(mac, Technology::kBluetooth,
                             std::make_shared<sim::StaticPosition>(pos),
                             [](MacAddress, const Bytes&) {});
  }

  // Per-endpoint self-rearming tick chains on the owner shards, starts
  // staggered across one tick interval so no instant is a thundering herd.
  for (int i = 0; i < n; ++i) {
    const MacAddress mac =
        MacAddress::from_index(static_cast<std::uint64_t>(i) + 1);
    const MacAddress next =
        MacAddress::from_index(static_cast<std::uint64_t>(i) + 2);
    sim::Simulator* sim = &medium.owner_sim(mac);
    const bool has_next = i + 1 < n;
    auto tick = std::make_shared<std::function<void()>>();
    auto ticks = std::make_shared<std::uint64_t>(0);
    *tick = [&medium, sim, mac, next, has_next, tick, ticks] {
      benchmark::DoNotOptimize(sim->rng().next_u64());
      if (has_next && (*ticks)++ % 4 == 0) {
        medium.send_frame(mac, next, Technology::kBluetooth, Bytes(32, 0xab));
      }
      sim->schedule_after(milliseconds(250), [tick] { (*tick)(); });
    };
    sim->schedule_at(SimTime{} + milliseconds(i % 250), [tick] { (*tick)(); });
  }

  using Clock = std::chrono::steady_clock;
  const auto begin = Clock::now();
  core.run_for(seconds(sim_seconds));
  const auto end = Clock::now();

  ShardRunResult result;
  result.wall_ms =
      std::chrono::duration<double, std::milli>(end - begin).count();
  result.frames = medium.merged_stats().frames;
  result.migrations = medium.stats().migrations;
  return result;
}

void report_shard_scaling() {
  heading("E-shard  Sharded core: wall-clock scaling vs shard count");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("    hardware threads: %u%s\n", hw,
              hw < 8 ? "  (scaling numbers below are core-starved)" : "");
  std::printf("%9s %7s %8s %12s %12s %9s %7s\n", "nodes", "shards", "threads",
              "wall (ms)", "frames", "scaling", "parity");
  const std::vector<int> sizes =
      g_smoke ? std::vector<int>{2'000} : std::vector<int>{100'000, 1'000'000};
  const std::vector<std::uint32_t> shard_counts =
      g_smoke ? std::vector<std::uint32_t>{1, 2, 4}
              : std::vector<std::uint32_t>{1, 2, 4, 8};
  const double sim_seconds = g_smoke ? 2.0 : 4.0;
  for (const int n : sizes) {
    double base_ms = 0.0;
    std::uint64_t base_frames = 0;
    for (const std::uint32_t shards : shard_counts) {
      const ShardRunResult r = run_sharded_corridor(n, shards, sim_seconds);
      if (shards == 1) {
        base_ms = r.wall_ms;
        base_frames = r.frames;
      }
      // Same workload, same seed: the merged sharded frame count must equal
      // the single-shard count, or the "speedup" is dropped work.
      const bool parity = r.frames == base_frames && r.frames > 0;
      const double scaling = r.wall_ms > 0.0 ? base_ms / r.wall_ms : 0.0;
      const unsigned threads = shards > 1 ? shards : 1;
      std::printf("%9d %7u %8u %12.1f %12llu %8.2fx %7s\n", n, shards,
                  threads, r.wall_ms,
                  static_cast<unsigned long long>(r.frames), scaling,
                  parity ? "yes" : "NO");
      JsonRecord{"medium_scale_sharded"}
          .field("nodes", n)
          .field("shards", shards)
          .field("threads", threads)
          .field("hw_threads", hw)
          .field("sim_seconds", sim_seconds)
          .field("wall_ms", r.wall_ms)
          .field("frames", static_cast<std::uint64_t>(r.frames))
          .field("scaling", scaling)
          .field("parity_ok", parity)
          .emit();
    }
  }
  note("scaling = wall(shards=1) / wall(shards=K) for the identical");
  note("workload; parity = merged sharded frame count equals the");
  note("single-shard count. Acceptance (>= 4x at 8 shards, 100k+ nodes)");
  note("only applies on >= 8 hardware threads; tests/test_shard_speedup");
  note("asserts >= 2x and skips itself on smaller machines.");
}

void BM_MediumSweepGrid2000(benchmark::State& state) {
  Scene scene{2000, 7};
  for (auto _ : state) {
    scene.sim.run_until(scene.sim.now() + seconds(1.0));
    benchmark::DoNotOptimize(sweep<false>(scene));
  }
}
BENCHMARK(BM_MediumSweepGrid2000)->Unit(benchmark::kMillisecond);

void BM_MediumSweepBrute2000(benchmark::State& state) {
  Scene scene{2000, 7};
  for (auto _ : state) {
    scene.sim.run_until(scene.sim.now() + seconds(1.0));
    benchmark::DoNotOptimize(sweep<true>(scene));
  }
}
BENCHMARK(BM_MediumSweepBrute2000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip --smoke before google-benchmark sees the argv.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  report_sweep_scaling();
  report_shard_scaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
