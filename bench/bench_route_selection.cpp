// E4 — Route selection on the Fig. 3.8 / Fig. 3.9 diamond: quality-sum
// addition picks A-B-D; with equal sums the per-link 230 threshold rejects
// the route whose individual link is too weak.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "discovery/analyzer.hpp"

namespace {

using namespace peerhood;
using namespace peerhood::bench;

MacAddress mac(std::uint64_t i) { return MacAddress::from_index(i); }

// Runs the analyzer on a diamond A-{B,C}-D with the given link qualities
// and returns the bridge selected for D.
MacAddress select_bridge(int q_ab, int q_bd, int q_ac, int q_cd) {
  DeviceStorage storage;
  NeighbourhoodAnalyzer analyzer{mac(1)};  // A

  auto direct = [&](std::uint64_t idx, int quality) {
    DeviceRecord r;
    r.device.mac = mac(idx);
    r.device.name = idx == 2 ? "B" : "C";
    r.device.mobility = MobilityClass::kStatic;
    r.jump = 0;
    r.quality_sum = quality;
    r.min_link_quality = quality;
    return r;
  };
  auto entry = [&](int quality) {
    NeighbourSnapshotEntry e;
    e.device.mac = mac(4);
    e.device.name = "D";
    e.jump = 0;
    e.quality_sum = quality;
    e.min_link_quality = quality;
    return e;
  };
  analyzer.integrate(storage, direct(2, q_ab), {entry(q_bd)},
                     Technology::kBluetooth, SimTime{});
  analyzer.integrate(storage, direct(3, q_ac), {entry(q_cd)},
                     Technology::kBluetooth, SimTime{});
  return storage.find(mac(4))->bridge;
}

void report_figures() {
  heading("E4  Route selection (Fig. 3.8 / Fig. 3.9 diamond)");
  struct Case {
    const char* name;
    int ab, bd, ac, cd;
    const char* expect;
  };
  const Case cases[] = {
      {"Fig 3.8: AB+BD=495 > AC+CD=475", 250, 245, 240, 235, "B"},
      {"Fig 3.8 mirrored", 240, 235, 250, 245, "C"},
      {"Fig 3.9: equal sums, AC=210<230", 230, 230, 210, 250, "B"},
      {"Fig 3.9 mirrored", 210, 250, 230, 230, "C"},
      {"both inadmissible: larger sum", 220, 220, 210, 215, "B"},
  };
  std::printf("%-36s %6s %6s %6s %6s | %8s %8s\n", "case", "AB", "BD", "AC",
              "CD", "chosen", "expected");
  for (const Case& c : cases) {
    const MacAddress chosen = select_bridge(c.ab, c.bd, c.ac, c.cd);
    const char* name = chosen == mac(2) ? "B" : chosen == mac(3) ? "C" : "?";
    std::printf("%-36s %6d %6d %6d %6d | %8s %8s %s\n", c.name, c.ab, c.bd,
                c.ac, c.cd, name, c.expect,
                std::string{name} == c.expect ? "ok" : "MISMATCH");
  }

  heading("E4b Threshold sweep: route C has the better sum (CD = 250) but");
  note("its first link q(AC) degrades; B path fixed at 235/235 (sum 470)");
  std::printf("%8s %10s %12s\n", "q(AC)", "sum(C)", "picks C (%)");
  Rng rng{2024};
  for (const int q_ac : {250, 240, 232, 229, 222, 200}) {
    int picks_c = 0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
      // Tiny jitter that never crosses the 230 boundary for a given row.
      const int jitter = static_cast<int>(rng.uniform_int(0, 1));
      const MacAddress chosen = select_bridge(235, 235, q_ac + jitter, 250);
      if (chosen == mac(3)) ++picks_c;
    }
    std::printf("%8d %10d %12.1f\n", q_ac, q_ac + 250,
                100.0 * picks_c / static_cast<double>(trials));
  }
  note("paper: once a link falls below the minimum demanded 230 the route");
  note("is not accepted (Fig. 3.9) — the pick-C fraction collapses to 0");
  note("below the threshold even though C's quality sum stays superior.");
}

void BM_AnalyzerIntegrate(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  std::vector<NeighbourSnapshotEntry> snapshot;
  for (int i = 0; i < entries; ++i) {
    NeighbourSnapshotEntry e;
    e.device.mac = mac(static_cast<std::uint64_t>(100 + i));
    e.jump = i % 3;
    e.bridge = i % 3 == 0 ? MacAddress{} : mac(50);
    e.quality_sum = 200 + i % 55;
    e.min_link_quality = 200 + i % 55;
    snapshot.push_back(e);
  }
  NeighbourhoodAnalyzer analyzer{mac(1)};
  for (auto _ : state) {
    DeviceStorage storage;
    DeviceRecord responder;
    responder.device.mac = mac(2);
    responder.jump = 0;
    responder.quality_sum = 240;
    responder.min_link_quality = 240;
    benchmark::DoNotOptimize(analyzer.integrate(
        storage, responder, snapshot, Technology::kBluetooth, SimTime{}));
  }
  state.SetItemsProcessed(state.iterations() * entries);
}
BENCHMARK(BM_AnalyzerIntegrate)->Arg(8)->Arg(64)->Arg(512);

void BM_RoutePreference(benchmark::State& state) {
  RoutePolicy policy;
  DeviceRecord a;
  a.jump = 1;
  a.route_mobility = 0;
  a.quality_sum = 470;
  a.min_link_quality = 235;
  DeviceRecord b = a;
  b.quality_sum = 460;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.prefer(a, b));
  }
}
BENCHMARK(BM_RoutePreference);

}  // namespace

int main(int argc, char** argv) {
  report_figures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
