// E3 — Gnutella flooding traffic vs. PeerHood neighbour-only inquiry (§3.2).
//
// Paper claim: Gnutella-style flooding generates "huge network traffic" that
// a battery-powered network cannot afford, while PeerHood's discovery sends
// inquiries only to direct neighbours and still converges to total
// awareness ("the inquiry petition is not repeated like Gnutella network").
#include <benchmark/benchmark.h>

#include "baseline/gnutella.hpp"
#include "bench_util.hpp"

namespace {

using namespace peerhood;
using namespace peerhood::bench;

std::vector<MacAddress> build_random_field(node::Testbed& testbed, int n,
                                           double side) {
  Rng layout{testbed.sim().rng().next_u64()};
  for (int i = 0; i < n; ++i) {
    testbed.add_node(
        "n" + std::to_string(i),
        {layout.uniform(0.0, side), layout.uniform(0.0, side)},
        scenario_node(MobilityClass::kStatic));
  }
  return testbed.macs();
}

void report_traffic() {
  heading("E3  Full-awareness traffic: Gnutella flooding vs PeerHood");
  std::printf("%6s %8s %8s | %16s %18s %8s\n", "nodes", "edges", "deg",
              "gnutella total", "peerhood total", "ratio");
  for (const int n : {10, 20, 40, 80}) {
    // Field side scales with sqrt(n): constant density, mean degree ~8.
    const double side = 6.0 * std::sqrt(static_cast<double>(n));
    node::Testbed testbed{static_cast<std::uint64_t>(n)};
    testbed.medium().configure(ideal_bluetooth());
    const auto macs = build_random_field(testbed, n, side);

    const auto overlay = baseline::GnutellaOverlay::from_medium(
        testbed.medium(), macs, Technology::kBluetooth);
    // Gnutella full awareness: every node floods one query (TTL 7).
    double gnutella_total = 0.0;
    for (const MacAddress origin : macs) {
      gnutella_total +=
          static_cast<double>(overlay.flood_messages(origin, 7));
    }

    // PeerHood full awareness: diameter-many discovery cycles, counting
    // every protocol frame on the air (inquiry responses + fetches).
    const int cycles = 5;  // >= graph diameter at this density
    const auto before = testbed.medium().stats();
    testbed.run_discovery_rounds(cycles);
    const auto after = testbed.medium().stats();
    const double peerhood_total =
        static_cast<double>(after.frames - before.frames);

    std::printf("%6d %8zu %8.1f | %16.0f %18.0f %8.2f\n", n,
                overlay.edge_count(),
                2.0 * overlay.edge_count() / n, gnutella_total,
                peerhood_total, gnutella_total / peerhood_total);
  }
  note("gnutella total = one TTL-7 flood per node (each node must search");
  note("to learn the network); peerhood total = 5 discovery cycles of");
  note("neighbour-only inquiry+fetch frames. Flooding duplicates queries");
  note("on every edge, so its cost grows super-linearly with density while");
  note("PeerHood's stays proportional to the edge count (ratio rises).");
}

void BM_GnutellaFlood80(benchmark::State& state) {
  node::Testbed testbed{7};
  testbed.medium().configure(ideal_bluetooth());
  const auto macs = build_random_field(testbed, 80, 12.0 * std::sqrt(80.0));
  const auto overlay = baseline::GnutellaOverlay::from_medium(
      testbed.medium(), macs, Technology::kBluetooth);
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlay.flood_messages(macs[0], 7));
  }
}
BENCHMARK(BM_GnutellaFlood80);

}  // namespace

int main(int argc, char** argv) {
  report_traffic();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
