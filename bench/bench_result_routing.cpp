// E8 — Task migration outcomes vs. upload size (§5.3, Figs. 5.9/5.10).
//
// The paper's three regimes for the picture-analyse migration while the
// client walks away:
//  1. small upload  -> task completes before the device leaves coverage;
//  2. medium upload -> connection breaks during processing; the server
//     routes the result back through the neighbourhood;
//  3. huge upload   -> connection breaks mid-transmission; the handover
//     thread must re-establish through a neighbour node.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "migration/task_client.hpp"
#include "migration/task_server.hpp"

namespace {

using namespace peerhood;
using namespace peerhood::bench;
using migration::MigrationOutcome;

struct TrialOutcome {
  MigrationOutcome::Kind kind{MigrationOutcome::Kind::kFailed};
  std::uint64_t handovers{0};
  double total_s{0.0};
};

TrialOutcome run_trial(std::uint64_t seed, std::uint32_t packages,
                       double processing_per_package_s) {
  node::Testbed testbed{seed};
  testbed.medium().configure(ideal_bluetooth());
  auto& server = testbed.add_node("server", {0.0, 0.0},
                                  scenario_node(MobilityClass::kStatic));
  testbed.add_node("bridge", {8.0, 0.0},
                   scenario_node(MobilityClass::kStatic));
  auto& client = testbed.add_mobile_node(
      "client",
      std::make_shared<sim::WaypointPath>(
          std::vector<sim::WaypointPath::Waypoint>{
              {SimTime{} + seconds(0.0), {2.0, 0.0}},
              {SimTime{} + seconds(90.0), {2.0, 0.0}},
              {SimTime{} + seconds(146.0), {16.0, 0.0}},
          }),
      scenario_node(MobilityClass::kDynamic));

  migration::TaskServerConfig server_config;
  server_config.result_routing.max_attempts = 8;
  migration::TaskServer task_server{server.library(), server_config};
  task_server.start();
  testbed.run_discovery_rounds(4);

  migration::TaskClientConfig config;
  config.spec.package_count = packages;
  config.spec.package_size = 1000;
  config.spec.per_package_processing = seconds(processing_per_package_s);
  config.spec.send_interval = seconds(1.0);
  config.result_timeout = seconds(900.0);
  migration::TaskClient task_client{client.library(), server.mac(),
                                    "picture.analyse", config};
  std::optional<MigrationOutcome> outcome;
  task_client.run([&](const MigrationOutcome& o) { outcome = o; });
  testbed.run_for(950.0);

  TrialOutcome result;
  if (outcome.has_value()) {
    result.kind = outcome->kind;
    result.handovers = outcome->handovers;
    result.total_s = (outcome->finished - outcome->started).count() * 1e-6;
  }
  return result;
}

void report() {
  heading("E8  Migration outcome vs upload size (client leaves at t=90 s)");
  std::printf("%10s %10s | %10s %10s %8s | %12s %10s\n", "packages",
              "upload s", "live %", "routed %", "fail %", "handovers",
              "total s");
  struct Row {
    std::uint32_t packages;
    double processing_s;  // per package
    const char* regime;
  };
  // small: everything finishes inside coverage. medium: upload finishes in
  // coverage but processing outlasts it (paper case 2 — result routed).
  // huge: the walk interrupts the upload itself (paper case 3 — handover).
  for (const Row row : {Row{20, 0.5, "small"}, Row{30, 4.0, "medium"},
                        Row{130, 0.5, "huge"}}) {
    int live = 0;
    int routed = 0;
    int failed = 0;
    std::vector<double> handovers;
    std::vector<double> totals;
    const int trials = 8;
    for (std::uint64_t seed = 1; seed <= trials; ++seed) {
      const TrialOutcome o = run_trial(seed, row.packages, row.processing_s);
      switch (o.kind) {
        case MigrationOutcome::Kind::kCompletedLive: ++live; break;
        case MigrationOutcome::Kind::kCompletedRouted: ++routed; break;
        case MigrationOutcome::Kind::kFailed: ++failed; break;
      }
      handovers.push_back(static_cast<double>(o.handovers));
      totals.push_back(o.total_s);
    }
    std::printf("%6u (%s) %8.0f | %9.0f %10.0f %8.0f | %12.1f %10.1f\n",
                row.packages, row.regime,
                static_cast<double>(row.packages) /* 1 pkg/s upload */,
                100.0 * live / trials, 100.0 * routed / trials,
                100.0 * failed / trials, summarize(handovers).mean,
                summarize(totals).mean);
  }
  note("paper §5.3: small tasks finish inside coverage (live result);");
  note("medium tasks break during processing and the server routes the");
  note("result back via its routing table; huge tasks break mid-upload and");
  note("need the handover thread to re-establish through the neighbour.");
}

void BM_SmallMigration(benchmark::State& state) {
  std::uint64_t seed = 300;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_trial(seed++, 20, 0.5).kind);
  }
}
BENCHMARK(BM_SmallMigration)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
