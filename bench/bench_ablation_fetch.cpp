// E10 — Ablation: four short information-fetch connections (Fig. 3.7) vs.
// one unified fetch (§3.4.1: "we could unify these 4 short connections to
// an only one longer connection to get a more reliable value").
//
// With a per-connection fault probability p, the split fetch succeeds with
// (1-p)^4 while the unified fetch succeeds with (1-p) — fewer failure
// points and less air time, at the cost of a longer critical section.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace peerhood;
using namespace peerhood::bench;

struct FetchStats {
  double convergence_s{-1.0};
  double fetch_failure_rate{0.0};
  std::uint64_t fetch_attempts{0};
};

FetchStats run_trial(std::uint64_t seed, bool unified, double fault_prob) {
  node::Testbed testbed{seed};
  sim::TechnologyParams bt = ideal_bluetooth();
  bt.fetch_failure_prob = fault_prob;
  testbed.medium().configure(bt);
  for (int i = 0; i < 4; ++i) {
    node::NodeOptions options = scenario_node(MobilityClass::kStatic);
    options.daemon.unified_fetch = unified;
    testbed.add_node("n" + std::to_string(i), {8.0 * i, 0.0}, options);
  }
  // Run until n0 knows the whole line (or deadline).
  auto& n0 = testbed.node("n0");
  const SimTime deadline = SimTime{} + seconds(600.0);
  while (n0.daemon().storage().size() < 3 && testbed.sim().now() < deadline) {
    testbed.run_for(1.0);
  }
  FetchStats stats;
  if (n0.daemon().storage().size() >= 3) {
    stats.convergence_s = testbed.sim().now().seconds();
  }
  std::uint64_t attempts = 0;
  std::uint64_t failures = 0;
  for (node::Node* node : testbed.nodes()) {
    const Plugin::Stats& s =
        node->daemon().plugin(Technology::kBluetooth)->stats();
    attempts += s.fetch_attempts;
    failures += s.fetch_failures + s.fetch_timeouts;
  }
  stats.fetch_attempts = attempts;
  stats.fetch_failure_rate =
      attempts == 0 ? 0.0
                    : static_cast<double>(failures) /
                          static_cast<double>(attempts);
  return stats;
}

void report() {
  heading("E10 Ablation: split (4 short) vs unified information fetch");
  std::printf("%8s %10s | %16s %16s %16s\n", "fault p", "mode",
              "convergence (s)", "fetch msgs", "failure rate");
  for (const double fault : {0.02, 0.10, 0.25}) {
    for (const bool unified : {false, true}) {
      std::vector<double> convergence;
      std::vector<double> attempts;
      std::vector<double> failure_rates;
      const int trials = 6;
      for (std::uint64_t seed = 1; seed <= trials; ++seed) {
        const FetchStats s = run_trial(seed, unified, fault);
        if (s.convergence_s >= 0) convergence.push_back(s.convergence_s);
        attempts.push_back(static_cast<double>(s.fetch_attempts));
        failure_rates.push_back(s.fetch_failure_rate);
      }
      std::printf("%8.2f %10s | %16.1f %16.1f %16.3f\n", fault,
                  unified ? "unified" : "split", summarize(convergence).mean,
                  summarize(attempts).mean, summarize(failure_rates).mean);
    }
  }
  note("the split fetch multiplies exposure to per-connection faults (a");
  note("device's whole update aborts when any of the four fails), so its");
  note("effective failure rate and convergence time degrade faster as the");
  note("fault probability rises — the §3.4.1 argument for unification.");
}

void BM_UnifiedFetchConvergence(benchmark::State& state) {
  std::uint64_t seed = 700;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_trial(seed++, true, 0.1).convergence_s);
  }
}
BENCHMARK(BM_UnifiedFetchConvergence)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
