// E5 — Static vs. dynamic bridge reliability (Fig. 3.11): relayed
// connections through a fixed bridge survive; through a wandering mobile
// bridge they die when the bridge drifts out of either side's coverage.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace peerhood;
using namespace peerhood::bench;

struct TrialResult {
  bool connected{false};
  double survival_s{0.0};
  int frames_delivered{0};
};

TrialResult run_trial(std::uint64_t seed, bool static_bridge) {
  node::Testbed testbed{seed};
  testbed.medium().configure(ideal_bluetooth());
  auto& client = testbed.add_node("client", {0.0, 0.0},
                                  scenario_node(MobilityClass::kDynamic));
  auto& server = testbed.add_node("server", {16.0, 0.0},
                                  scenario_node(MobilityClass::kStatic));
  if (static_bridge) {
    testbed.add_node("bridge", {8.0, 0.0},
                     scenario_node(MobilityClass::kStatic));
  } else {
    // Mobile bridge: wanders around the midpoint at walking speed.
    sim::RandomWaypoint::Config wander;
    wander.area_min = {2.0, -14.0};
    wander.area_max = {14.0, 14.0};
    wander.speed_min_mps = 0.4;
    wander.speed_max_mps = 1.2;
    testbed.add_mobile_node(
        "bridge",
        std::make_shared<sim::RandomWaypoint>(wander, sim::Vec2{8.0, 0.0},
                                              Rng{seed * 31 + 7}),
        scenario_node(MobilityClass::kDynamic));
  }

  int received = 0;
  // Sessions live in an explicit registry — handlers must not own their
  // own channel (see common/handler_slot.hpp).
  std::vector<ChannelPtr> sessions;
  (void)server.library().register_service(
      ServiceInfo{"echo", "", 0},
      [&received, &sessions](ChannelPtr channel, const wire::ConnectRequest&) {
        sessions.push_back(std::move(channel));
        sessions.back()->set_data_handler(
            [&received](const Bytes&) { ++received; });
      });
  testbed.run_discovery_rounds(4);

  TrialResult result;
  auto connect = client.connect_blocking(server.mac(), "echo", {}, 120.0);
  if (!connect.ok()) return result;
  result.connected = true;
  const ChannelPtr channel = connect.value();
  const double established = testbed.sim().now().seconds();
  double closed_at = -1.0;
  channel->set_close_handler([&] {
    closed_at = testbed.sim().now().seconds();
  });
  // One message per second for 5 minutes.
  for (int i = 0; i < 300; ++i) {
    testbed.sim().schedule_after(seconds(static_cast<double>(i)), [channel] {
      if (channel->open()) (void)channel->write(Bytes{1});
    });
  }
  testbed.run_for(305.0);
  result.survival_s =
      (closed_at < 0 ? testbed.sim().now().seconds() : closed_at) -
      established;
  result.frames_delivered = received;
  return result;
}

void report() {
  heading("E5  Bridge mobility classes (Fig. 3.11): relay survival");
  std::printf("%10s %10s %16s %18s\n", "bridge", "connect %",
              "survival (s)", "frames delivered");
  for (const bool static_bridge : {true, false}) {
    std::vector<double> survival;
    std::vector<double> frames;
    int connected = 0;
    const int trials = 10;
    for (std::uint64_t seed = 1; seed <= trials; ++seed) {
      const TrialResult r = run_trial(seed, static_bridge);
      if (!r.connected) continue;
      ++connected;
      survival.push_back(r.survival_s);
      frames.push_back(static_cast<double>(r.frames_delivered));
    }
    const Summary s = summarize(survival);
    const Summary f = summarize(frames);
    std::printf("%10s %10.0f %16.1f %18.1f\n",
                static_bridge ? "static" : "dynamic",
                100.0 * connected / trials, s.mean, f.mean);
  }
  note("paper (Fig. 3.11 / §3.4.3): static terminals 'are more suitable for");
  note("functioning as a bridge' — the static-bridge relay should survive");
  note("the full 300 s while the wandering bridge drops the chain early.");
}

void BM_StaticBridgeTrial(benchmark::State& state) {
  std::uint64_t seed = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_trial(seed++, true).frames_delivered);
  }
}
BENCHMARK(BM_StaticBridgeTrial)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
