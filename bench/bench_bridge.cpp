// E6 — The §4.3 bridge performance test (Fig. 4.5): two clients, one bridge,
// one server, real Bluetooth parameters. The paper reports: 10 connection
// attempts, 3 failed on "normal Bluetooth connection fault"; the successful
// ones took 3-18 s; and the 20-message / 1-second loop then ran with "an
// almost negligible time delay".
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace peerhood;
using namespace peerhood::bench;

struct AttemptResult {
  bool ok{false};
  double connect_s{0.0};
  double relay_delay_ms{0.0};
  int echoes{0};
};

AttemptResult run_attempt(std::uint64_t seed, bool retry_enabled) {
  node::Testbed testbed{seed};
  testbed.medium().configure(paper_bluetooth());

  node::NodeOptions bridge_options = scenario_node(MobilityClass::kStatic);
  bridge_options.bridge.connect_retries = retry_enabled ? 1 : 0;
  auto& client = testbed.add_node("client", {0.0, 0.0},
                                  scenario_node(MobilityClass::kDynamic));
  testbed.add_node("bridge", {8.0, 0.0}, bridge_options);
  auto& server = testbed.add_node("server", {16.0, 0.0},
                                  scenario_node(MobilityClass::kStatic));

  // Echo server measuring nothing; the client measures round trips.
  // Sessions live in an explicit registry — handlers must not own their
  // own channel (see common/handler_slot.hpp).
  std::vector<ChannelPtr> sessions;
  (void)server.library().register_service(
      ServiceInfo{"echo", "", 0},
      [&sessions](ChannelPtr channel, const wire::ConnectRequest&) {
        sessions.push_back(channel);
        channel->set_data_handler([raw = channel.get()](const Bytes& frame) {
          (void)raw->write(frame);
        });
      });
  testbed.run_discovery_rounds(5);

  AttemptResult result;
  const double start = testbed.sim().now().seconds();
  auto connect = client.connect_blocking(server.mac(), "echo", {}, 90.0);
  if (!connect.ok()) return result;
  result.ok = true;
  result.connect_s = testbed.sim().now().seconds() - start;

  // The paper's loop: a message per second, 20 times; measure RTT/2.
  const ChannelPtr channel = connect.value();
  std::vector<double> delays;
  auto sent_at = std::make_shared<double>(0.0);
  channel->set_data_handler([&](const Bytes&) {
    delays.push_back((testbed.sim().now().seconds() - *sent_at) / 2.0);
  });
  for (int i = 0; i < 20; ++i) {
    testbed.sim().schedule_after(seconds(static_cast<double>(i)),
                                 [channel, sent_at, &testbed] {
                                   if (!channel->open()) return;
                                   *sent_at = testbed.sim().now().seconds();
                                   (void)channel->write(Bytes{0x42});
                                 });
  }
  testbed.run_for(25.0);
  result.echoes = static_cast<int>(delays.size());
  result.relay_delay_ms = summarize(delays).mean * 1000.0;
  return result;
}

void report() {
  heading("E6  Bridge connection test (§4.3, Fig. 4.5) — paper Bluetooth");
  std::printf("%8s %12s %24s %20s %10s\n", "retry", "success",
              "connect time min/mean/max", "one-way delay (ms)", "echoes");
  for (const bool retry : {false, true}) {
    const int attempts = 30;
    int ok = 0;
    std::vector<double> connect_times;
    std::vector<double> delays;
    std::vector<double> echoes;
    for (std::uint64_t seed = 1; seed <= attempts; ++seed) {
      const AttemptResult r = run_attempt(seed, retry);
      if (!r.ok) continue;
      ++ok;
      connect_times.push_back(r.connect_s);
      delays.push_back(r.relay_delay_ms);
      echoes.push_back(static_cast<double>(r.echoes));
    }
    const Summary ct = summarize(connect_times);
    const Summary d = summarize(delays);
    const Summary e = summarize(echoes);
    std::printf("%8s %9d/%-2d %8.1f/%5.1f/%5.1f s %20.1f %10.1f\n",
                retry ? "on" : "off", ok, attempts, ct.min, ct.mean, ct.max,
                d.mean, e.mean);
  }
  note("paper: 7/10 attempts succeeded (per-hop fault 0.16 x 2 hops), the");
  note("connection took 3-18 s, and data relaying added a negligible delay");
  note("(tens of ms vs seconds of setup). Retry ('the connection attempt");
  note("repetition ... would be necessary') lifts the success rate.");
}

void BM_BridgeAttempt(benchmark::State& state) {
  std::uint64_t seed = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_attempt(seed++, true).ok);
  }
}
BENCHMARK(BM_BridgeAttempt)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
