// E-event — the zero-allocation event core (ISSUE 2 tentpole).
//
// Measurements over the simulator kernel, each timed for the pooled
// arena/wheel EventQueue and for ReferenceEventQueue — the retained pre-PR
// implementation (priority_queue + unordered_map + std::function), the same
// before/after pattern as in_range_of_brute for the spatial grid. All
// closures carry frame-delivery-sized (40 B) captures.
//
//  * schedule→fire hot loop (the acceptance headline, >= 2x): batches of
//    events at randomized near-horizon times (the window frame traffic
//    lives in) are scheduled and drained.
//  * zero-delay cascade: fire → schedule-at-now → fire, the deferred-action
//    pattern (teardown, handler release) — the worst case for a comparison
//    heap, O(1) in the wheel.
//  * mixed-horizon steady state: a standing population with a realistic
//    delay mix (30% zero-delay, 35% ~30 ms frame latencies, 20% 500 ms
//    keepalives, 15% long timers) — includes far-heap events on purpose.
//  * schedule→cancel: every event cancelled instead of fired (a generation
//    check in the pooled queue vs a map erase in the reference).
//  * frames/sec end to end: two in-range endpoints on a RadioMedium, each
//    frame flowing sender → shared-payload delivery event → handler, i.e.
//    the copy-free FramePtr path riding the pooled queue.
//
// Pass --smoke for a tiny workload (CI keeps BENCH_JSON emission alive).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "sim/event_queue.hpp"
#include "sim/medium.hpp"
#include "sim/reference_event_queue.hpp"

namespace {

using namespace peerhood;
using namespace peerhood::bench;
using Clock = std::chrono::steady_clock;

bool g_smoke = false;

// The size class of the medium's frame-delivery closure: {this, from, to,
// tech, shared_ptr} ≈ 40 bytes. Fits InlineCallable's 48-byte buffer; far
// beyond std::function's inline storage, so the reference queue pays a heap
// allocation per event on top of its map node.
struct FrameSizedCapture {
  std::uint64_t a, b, c, d;
  std::uint64_t* sink;
};

template <typename Queue>
double schedule_fire_ns_per_op(int batch, int batches) {
  Queue q;
  std::uint64_t sink = 0;
  const FrameSizedCapture cap{1, 2, 3, 4, &sink};
  Rng rng{42};
  SimTime now{};
  // Warm-up batch: grow arenas/heaps/hash tables to their high-water mark.
  for (int i = 0; i < batch; ++i) {
    q.schedule(now + microseconds(i), [cap] { *cap.sink += cap.a; });
  }
  while (!q.empty()) now = q.run_next();

  const auto begin = Clock::now();
  for (int b = 0; b < batches; ++b) {
    for (int i = 0; i < batch; ++i) {
      q.schedule(now + microseconds(rng.uniform_int(0, 1000)),
                 [cap] { *cap.sink += cap.a; });
    }
    while (!q.empty()) now = q.run_next();
  }
  const auto end = Clock::now();
  benchmark::DoNotOptimize(sink);
  const double ns =
      std::chrono::duration<double, std::nano>(end - begin).count();
  return ns / (static_cast<double>(batch) * batches);
}

template <typename Queue>
double cascade_ns_per_op(int standing, int total) {
  Queue q;
  std::uint64_t sink = 0;
  const FrameSizedCapture cap{1, 2, 3, 4, &sink};
  SimTime now{};
  // A standing population of far timers keeps the pending set non-trivial.
  for (int i = 0; i < standing; ++i) {
    q.schedule(now + seconds(1000.0) + microseconds(i),
               [cap] { *cap.sink += cap.a; });
  }
  q.schedule(now + microseconds(1), [cap] { *cap.sink += cap.a; });
  now = q.run_next();
  const auto begin = Clock::now();
  for (int i = 0; i < total; ++i) {
    q.schedule(now, [cap] { *cap.sink += cap.a; });  // zero delay
    now = q.run_next();
  }
  const auto end = Clock::now();
  benchmark::DoNotOptimize(sink);
  const double ns =
      std::chrono::duration<double, std::nano>(end - begin).count();
  return ns / total;
}

// Delay distribution mimicking a real scenario run: zero-delay deferrals,
// per-hop frame latencies, keepalive periods, inquiry cycles and a tail of
// arbitrary timers.
SimDuration realistic_delay(Rng& rng) {
  const double roll = rng.next_double();
  if (roll < 0.30) return SimDuration{0};
  if (roll < 0.65) {
    return milliseconds(30) + microseconds(rng.uniform_int(0, 2000));
  }
  if (roll < 0.85) return milliseconds(500);
  if (roll < 0.95) return seconds(rng.uniform(1.0, 5.0));
  return microseconds(rng.uniform_int(0, 1'000'000));
}

template <typename Queue>
double mixed_ns_per_op(int standing, int total) {
  Queue q;
  std::uint64_t sink = 0;
  const FrameSizedCapture cap{1, 2, 3, 4, &sink};
  Rng rng{44};
  SimTime now{};
  for (int i = 0; i < standing; ++i) {
    q.schedule(now + realistic_delay(rng), [cap] { *cap.sink += cap.a; });
  }
  const auto begin = Clock::now();
  for (int i = 0; i < total; ++i) {
    now = q.run_next();
    q.schedule(now + realistic_delay(rng), [cap] { *cap.sink += cap.a; });
  }
  const auto end = Clock::now();
  benchmark::DoNotOptimize(sink);
  const double ns =
      std::chrono::duration<double, std::nano>(end - begin).count();
  return ns / total;
}

template <typename Queue>
double schedule_cancel_ns_per_op(int batch, int batches) {
  Queue q;
  std::uint64_t sink = 0;
  const FrameSizedCapture cap{1, 2, 3, 4, &sink};
  Rng rng{43};
  SimTime now{};
  // Both implementations use u64 ids (the pooled queue packs slot+generation).
  std::vector<std::uint64_t> ids(static_cast<std::size_t>(batch));
  const auto begin = Clock::now();
  for (int b = 0; b < batches; ++b) {
    for (int i = 0; i < batch; ++i) {
      ids[static_cast<std::size_t>(i)] =
          q.schedule(now + microseconds(rng.uniform_int(0, 1000)),
                     [cap] { *cap.sink += cap.a; });
    }
    // Cancel newest-first so lazily dropped heap entries pile up, then let
    // an (empty) drain sweep them — the worst case for lazy removal.
    for (int i = batch - 1; i >= 0; --i) {
      q.cancel(ids[static_cast<std::size_t>(i)]);
    }
    while (!q.empty()) now = q.run_next();
  }
  const auto end = Clock::now();
  benchmark::DoNotOptimize(sink);
  const double ns =
      std::chrono::duration<double, std::nano>(end - begin).count();
  return ns / (static_cast<double>(batch) * batches);
}

double frames_per_second(int frames_per_batch, int batches,
                         std::uint64_t* delivered_out) {
  sim::Simulator sim{9};
  sim::RadioMedium medium{sim};
  const MacAddress a = MacAddress::from_index(1);
  const MacAddress b = MacAddress::from_index(2);
  std::uint64_t delivered = 0;
  medium.register_endpoint(a, Technology::kBluetooth,
                           std::make_shared<sim::StaticPosition>(
                               sim::Vec2{0.0, 0.0}),
                           nullptr);
  medium.register_endpoint(
      b, Technology::kBluetooth,
      std::make_shared<sim::StaticPosition>(sim::Vec2{5.0, 0.0}),
      [&delivered](MacAddress, const Bytes& frame) {
        delivered += frame.size();
      });
  const Bytes payload(64, 0xAB);

  // Warm-up batch.
  for (int i = 0; i < frames_per_batch; ++i) {
    medium.send_frame(a, b, Technology::kBluetooth, payload);
  }
  sim.run_all();
  const std::uint64_t warm = delivered;

  const auto begin = Clock::now();
  for (int batch = 0; batch < batches; ++batch) {
    for (int i = 0; i < frames_per_batch; ++i) {
      medium.send_frame(a, b, Technology::kBluetooth, payload);
    }
    sim.run_all();
  }
  const auto end = Clock::now();
  *delivered_out = (delivered - warm) / payload.size();
  const double s = std::chrono::duration<double>(end - begin).count();
  return static_cast<double>(*delivered_out) / s;
}

void print_pair(const char* bench_name, double ref_ns, double pooled_ns,
                int scale) {
  const double speedup = pooled_ns > 0.0 ? ref_ns / pooled_ns : 0.0;
  std::printf("%-22s %12.1f ns/op\n", "reference (map+func)", ref_ns);
  std::printf("%-22s %12.1f ns/op\n", "pooled arena+wheel", pooled_ns);
  std::printf("%-22s %11.2fx\n", "speedup", speedup);
  JsonRecord{bench_name}
      .field("scale", scale)
      .field("reference_ns_per_op", ref_ns)
      .field("pooled_ns_per_op", pooled_ns)
      .field("speedup", speedup)
      .emit();
}

void report_event_core() {
  const int batch = g_smoke ? 64 : 1024;
  const int batches = g_smoke ? 4 : 2000;

  heading("E-event  Schedule->fire hot loop: pooled arena vs reference queue");
  const double pooled_fire =
      schedule_fire_ns_per_op<sim::EventQueue>(batch, batches);
  const double ref_fire =
      schedule_fire_ns_per_op<sim::ReferenceEventQueue>(batch, batches);
  print_pair("event_core_schedule_fire", ref_fire, pooled_fire, batch);

  heading("E-event  Zero-delay cascade (deferred actions)");
  const int cascade_total = g_smoke ? 2'000 : 4'000'000;
  const double pooled_cascade =
      cascade_ns_per_op<sim::EventQueue>(1024, cascade_total);
  const double ref_cascade =
      cascade_ns_per_op<sim::ReferenceEventQueue>(1024, cascade_total);
  print_pair("event_core_cascade", ref_cascade, pooled_cascade, 1024);

  heading("E-event  Mixed-horizon steady state (incl. far timers)");
  const int mixed_total = g_smoke ? 2'000 : 4'000'000;
  const double pooled_mixed =
      mixed_ns_per_op<sim::EventQueue>(1024, mixed_total);
  const double ref_mixed =
      mixed_ns_per_op<sim::ReferenceEventQueue>(1024, mixed_total);
  print_pair("event_core_mixed", ref_mixed, pooled_mixed, 1024);

  heading("E-event  Schedule->cancel: generation check vs map erase");
  const double pooled_cancel =
      schedule_cancel_ns_per_op<sim::EventQueue>(batch, batches);
  const double ref_cancel =
      schedule_cancel_ns_per_op<sim::ReferenceEventQueue>(batch, batches);
  print_pair("event_core_schedule_cancel", ref_cancel, pooled_cancel, batch);

  heading("E-event  End-to-end frame delivery (copy-free FramePtr path)");
  std::uint64_t delivered = 0;
  const double fps = frames_per_second(g_smoke ? 256 : 20'000,
                                       g_smoke ? 2 : 10, &delivered);
  std::printf("%-22s %12.0f frames/s  (%llu frames)\n", "send->deliver", fps,
              static_cast<unsigned long long>(delivered));
  JsonRecord{"event_core_frames_per_sec"}
      .field("frames", static_cast<std::uint64_t>(delivered))
      .field("frames_per_sec", fps)
      .emit();

  note("acceptance: schedule->fire speedup >= 2x vs the retained reference");
  note("queue. The mixed-horizon record deliberately includes far timers");
  note("(beyond the ~33 ms wheel window) that fall back to the 4-ary heap,");
  note("so its speedup is lower. Zero steady-state allocations are asserted");
  note("by tests/test_event_alloc.cpp rather than measured here.");
}

void BM_ScheduleFirePooled(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schedule_fire_ns_per_op<sim::EventQueue>(1024, 20));
  }
}
BENCHMARK(BM_ScheduleFirePooled)->Unit(benchmark::kMillisecond);

void BM_ScheduleFireReference(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schedule_fire_ns_per_op<sim::ReferenceEventQueue>(1024, 20));
  }
}
BENCHMARK(BM_ScheduleFireReference)->Unit(benchmark::kMillisecond);

void BM_FrameDelivery(benchmark::State& state) {
  for (auto _ : state) {
    std::uint64_t delivered = 0;
    benchmark::DoNotOptimize(frames_per_second(4096, 2, &delivered));
  }
}
BENCHMARK(BM_FrameDelivery)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip --smoke before google-benchmark sees the argv.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  report_event_core();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
