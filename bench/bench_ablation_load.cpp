// E11 — Ablation: load-based de-rating of the advertised link quality (§4:
// "an extra connection number/maximum connection number percentage could be
// transmitted during the device discovery process and proportionally the
// link quality parameter is decreased" to avoid the "bottle neck").
//
// Topology: two parallel bridges between a client cluster and a server; one
// bridge is pre-loaded with relayed connections. Without de-rating the
// quality-sum tie-break keeps routing through the closer (busier) bridge;
// with de-rating new routes shift to the idle one.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace peerhood;
using namespace peerhood::bench;

struct LoadResult {
  int via_busy{0};
  int via_idle{0};
};

LoadResult run_trial(std::uint64_t seed, bool derating) {
  node::Testbed testbed{seed};
  testbed.medium().configure(ideal_bluetooth());

  node::NodeOptions bridge_options = scenario_node(MobilityClass::kStatic);
  bridge_options.daemon.load_derating = derating;
  bridge_options.daemon.max_bridge_connections = 4;

  node::NodeOptions client_options = scenario_node(MobilityClass::kDynamic);
  client_options.daemon.load_derating = derating;

  // The busy bridge is slightly closer to the clients (higher raw quality);
  // the idle bridge slightly farther.
  auto& clients_hub = testbed.add_node("c0", {0.0, 0.0}, client_options);
  // The busy bridge sits on the straight line (best possible sum); the
  // idle one is clearly off-axis and therefore nominally worse.
  auto& busy = testbed.add_node("busy", {6.5, 0.5}, bridge_options);
  auto& idle = testbed.add_node("idle", {6.5, -3.5}, bridge_options);
  auto& server = testbed.add_node("server", {13.0, 0.0},
                                  scenario_node(MobilityClass::kStatic));
  (void)idle.name();

  // Sessions live in an explicit registry — handlers must not own their
  // own channel (see common/handler_slot.hpp).
  std::vector<ChannelPtr> sessions;
  (void)server.library().register_service(
      ServiceInfo{"echo", "", 0},
      [&sessions](ChannelPtr channel, const wire::ConnectRequest&) {
        sessions.push_back(channel);
        channel->set_data_handler([raw = channel.get()](const Bytes& frame) {
          (void)raw->write(frame);
        });
      });

  // Pre-load the busy bridge with relayed pairs so its occupancy is high.
  busy.daemon().set_load_fraction(0.75);
  testbed.run_discovery_rounds(5);

  LoadResult result;
  // Several sequential connections; count which bridge carries each.
  for (int i = 0; i < 6; ++i) {
    const auto record =
        clients_hub.daemon().storage().find(server.mac());
    if (!record.has_value() || record->is_direct()) continue;
    if (record->bridge == busy.mac()) {
      ++result.via_busy;
    } else {
      ++result.via_idle;
    }
    testbed.run_discovery_rounds(1);
  }
  return result;
}

void report() {
  heading("E11 Ablation: bridge-load de-rating of advertised quality");
  std::printf("%10s | %14s %14s\n", "derating", "via busy (%)",
              "via idle (%)");
  for (const bool derating : {false, true}) {
    int busy_total = 0;
    int idle_total = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const LoadResult r = run_trial(seed, derating);
      busy_total += r.via_busy;
      idle_total += r.via_idle;
    }
    const double total = std::max(busy_total + idle_total, 1);
    std::printf("%10s | %14.0f %14.0f\n", derating ? "on" : "off",
                100.0 * busy_total / total, 100.0 * idle_total / total);
  }
  note("without de-rating the closer-but-busy bridge keeps winning the");
  note("quality tie-break; with de-rating its advertised quality drops by");
  note("its 75% occupancy and routes shift to the idle bridge (§4).");
}

void BM_LoadTrial(benchmark::State& state) {
  std::uint64_t seed = 40;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_trial(seed++, true).via_idle);
  }
}
BENCHMARK(BM_LoadTrial)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
