// E7 — Routing handover (§5.2.1, Fig. 5.8).
//
// Part 1 reproduces the paper's simulation exactly: the monitored link
// quality is decreased artificially by 1 every second from 250; when it has
// been below 230 for more than 3 samples the HandoverThread re-routes the
// connection through the second route.
//
// Part 2 reproduces the paper's field observation: at walking speed with
// real Bluetooth establishment times (4-15 s through a bridge) "more than
// probably the connection will be lost before we achieve the second route
// connection establishment" — routing handover only works when connection
// establishment is short.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "handover/handover.hpp"

namespace {

using namespace peerhood;
using namespace peerhood::bench;

struct DecayResult {
  bool handover_done{false};
  double detect_s{0.0};   // decay start -> degradation detected
  double execute_s{0.0};  // degradation -> substituted connection
  bool lost_first{false};
};

DecayResult run_decay_trial(std::uint64_t seed, bool paper_radio) {
  node::Testbed testbed{seed};
  testbed.medium().configure(paper_radio ? paper_bluetooth()
                                         : ideal_bluetooth());
  auto& a = testbed.add_node("a", {0.0, 0.0},
                             scenario_node(MobilityClass::kDynamic));
  auto& s = testbed.add_node("s", {4.0, 0.0},
                             scenario_node(MobilityClass::kStatic));
  testbed.add_node("c", {2.0, 3.0}, scenario_node(MobilityClass::kStatic));
  // Sessions live in an explicit registry — handlers must not own their
  // own channel (see common/handler_slot.hpp).
  std::vector<ChannelPtr> sessions;
  (void)s.library().register_service(
      ServiceInfo{"print", "", 0},
      [&sessions](ChannelPtr channel, const wire::ConnectRequest&) {
        sessions.push_back(std::move(channel));
        sessions.back()->set_data_handler([](const Bytes&) {});
      });
  testbed.run_discovery_rounds(4);

  auto connect = a.connect_blocking(s.mac(), "print", {}, 120.0);
  DecayResult result;
  if (!connect.ok()) return result;
  const ChannelPtr channel = connect.value();

  // Fig. 5.8 decay: -1 per second from 250.
  const double t0 = testbed.sim().now().seconds();
  channel->connection()->set_quality_override([t0](SimTime now) {
    return static_cast<int>(250.0 - (now.seconds() - t0));
  });

  handover::HandoverController controller{a.library(), channel, {}};
  double detected_at = -1.0;
  double done_at = -1.0;
  controller.set_event_handler([&](const handover::HandoverEvent& event) {
    using Kind = handover::HandoverEvent::Kind;
    if (event.kind == Kind::kDegradationDetected && detected_at < 0) {
      detected_at = testbed.sim().now().seconds();
    }
    if (event.kind == Kind::kHandoverComplete && done_at < 0) {
      done_at = testbed.sim().now().seconds();
    }
  });
  bool lost = false;
  channel->set_close_handler([&] { lost = done_at < 0; });
  controller.start();
  testbed.run_for(120.0);

  result.handover_done = done_at >= 0;
  result.lost_first = lost && done_at < 0;
  if (detected_at >= 0) result.detect_s = detected_at - t0;
  if (done_at >= 0 && detected_at >= 0) result.execute_s = done_at - detected_at;
  return result;
}

void report_decay() {
  heading("E7a Fig. 5.8 decay simulation (threshold 230, low-count > 3)");
  std::printf("%12s %10s %14s %14s %12s\n", "radio", "handover %",
              "detect (s)", "execute (s)", "lost first %");
  for (const bool paper_radio : {false, true}) {
    int done = 0;
    int lost = 0;
    std::vector<double> detect;
    std::vector<double> execute;
    const int trials = 20;
    for (std::uint64_t seed = 1; seed <= trials; ++seed) {
      const DecayResult r = run_decay_trial(seed, paper_radio);
      if (r.handover_done) {
        ++done;
        detect.push_back(r.detect_s);
        execute.push_back(r.execute_s);
      }
      if (r.lost_first) ++lost;
    }
    std::printf("%12s %10.0f %14.1f %14.1f %12.0f\n",
                paper_radio ? "paper BT" : "fast BT", 100.0 * done / trials,
                summarize(detect).mean, summarize(execute).mean,
                100.0 * lost / trials);
  }
  note("decay starts at 250, crosses 230 after ~21 s; >3 low samples adds");
  note("~4 s, so detection lands near 25 s — matching the paper's design.");
  note("Execution is the bridge connection time: ~1-2 s with fast radio,");
  note("4-15+ s (or a lost connection) with the paper's Bluetooth.");
}

struct WalkResult {
  bool survived{false};
  int handovers{0};
};

WalkResult run_walk_trial(std::uint64_t seed, double speed_mps,
                          bool paper_radio) {
  node::Testbed testbed{seed};
  testbed.medium().configure(paper_radio ? paper_bluetooth()
                                         : ideal_bluetooth());
  auto& server = testbed.add_node("server", {0.0, 0.0},
                                  scenario_node(MobilityClass::kStatic));
  testbed.add_node("bridge", {8.0, 0.0},
                   scenario_node(MobilityClass::kStatic));
  const double walk_len = 14.0;
  auto& client = testbed.add_mobile_node(
      "client",
      std::make_shared<sim::WaypointPath>(
          std::vector<sim::WaypointPath::Waypoint>{
              {SimTime{} + seconds(0.0), {2.0, 0.0}},
              {SimTime{} + seconds(100.0), {2.0, 0.0}},
              {SimTime{} + seconds(100.0 + walk_len / speed_mps),
               {16.0, 0.0}},
          }),
      scenario_node(MobilityClass::kDynamic));
  std::vector<ChannelPtr> sessions;
  (void)server.library().register_service(
      ServiceInfo{"print", "", 0},
      [&sessions](ChannelPtr channel, const wire::ConnectRequest&) {
        sessions.push_back(std::move(channel));
        sessions.back()->set_data_handler([](const Bytes&) {});
      });
  testbed.run_discovery_rounds(4);

  WalkResult result;
  auto connect = client.connect_blocking(server.mac(), "print", {}, 95.0);
  if (!connect.ok()) return result;
  const ChannelPtr channel = connect.value();
  handover::HandoverConfig config;
  config.reconnection_enabled = false;  // isolate routing handover
  handover::HandoverController controller{client.library(), channel, config};
  controller.start();
  testbed.run_for(120.0 + walk_len / speed_mps + 30.0);
  result.survived = channel->open();
  result.handovers = static_cast<int>(controller.stats().handovers);
  return result;
}

void report_walk() {
  heading("E7b Walking away at speed v: does the session survive?");
  std::printf("%12s %12s %12s %16s\n", "radio", "speed m/s", "survive %",
              "mean handovers");
  for (const bool paper_radio : {false, true}) {
    for (const double speed : {0.25, 0.5, 1.0, 2.0}) {
      int survived = 0;
      std::vector<double> handovers;
      const int trials = 10;
      for (std::uint64_t seed = 1; seed <= trials; ++seed) {
        const WalkResult r = run_walk_trial(seed, speed, paper_radio);
        if (r.survived) ++survived;
        handovers.push_back(static_cast<double>(r.handovers));
      }
      std::printf("%12s %12.2f %12.0f %16.1f\n",
                  paper_radio ? "paper BT" : "fast BT", speed,
                  100.0 * survived / trials, summarize(handovers).mean);
    }
  }
  note("paper: 'the decrease of Bluetooth link quality parameter is really");
  note("fast and we can lose the connection in few seconds with a normal");
  note("walking speed ... this huge connection establishment in Bluetooth");
  note("is a serious obstacle' — survival collapses with the paper radio");
  note("at walking speeds, while a fast-establishment radio keeps it alive.");
}

void BM_DecayTrial(benchmark::State& state) {
  std::uint64_t seed = 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_decay_trial(seed++, false).handover_done);
  }
}
BENCHMARK(BM_DecayTrial)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report_decay();
  report_walk();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
