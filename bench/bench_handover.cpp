// E7 — The handover plane (§5.2, Fig. 5.8) and the PR 5 scenario matrix.
//
// E7a reproduces the paper's simulation exactly: the monitored link quality
// is decreased artificially by 1 every second from 250; when it has been
// below 230 for more than 3 samples the HandoverThread re-routes the
// connection through the second route.
//
// E7c is the scenario-matrix sweep of the predictive make-before-break
// engine: reactive (paper baseline) vs predictive policies across the
// corridor walk (Fig. 5.4), reference-point group mobility, a random-
// waypoint office floor and the same floor under relay churn. Reported per
// cell: total outage ms (no usable connection), frames lost, handovers,
// mean handover latency, and control overhead (non-payload frames) — all
// also emitted as BENCH_JSON for the CI perf trajectory.
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.hpp"
#include "handover/handover.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace peerhood;
using namespace peerhood::bench;

// --- E7a: Fig. 5.8 artificial decay ------------------------------------------

struct DecayResult {
  bool handover_done{false};
  double detect_s{0.0};   // decay start -> degradation detected
  double execute_s{0.0};  // degradation -> substituted connection
  bool lost_first{false};
};

DecayResult run_decay_trial(std::uint64_t seed, bool paper_radio) {
  node::Testbed testbed{seed};
  testbed.medium().configure(paper_radio ? paper_bluetooth()
                                         : ideal_bluetooth());
  auto& a = testbed.add_node("a", {0.0, 0.0},
                             scenario_node(MobilityClass::kDynamic));
  auto& s = testbed.add_node("s", {4.0, 0.0},
                             scenario_node(MobilityClass::kStatic));
  testbed.add_node("c", {2.0, 3.0}, scenario_node(MobilityClass::kStatic));
  // Sessions live in an explicit registry — handlers must not own their
  // own channel (see common/handler_slot.hpp).
  std::vector<ChannelPtr> sessions;
  (void)s.library().register_service(
      ServiceInfo{"print", "", 0},
      [&sessions](ChannelPtr channel, const wire::ConnectRequest&) {
        sessions.push_back(std::move(channel));
        sessions.back()->set_data_handler([](const Bytes&) {});
      });
  testbed.run_discovery_rounds(4);

  auto connect = a.connect_blocking(s.mac(), "print", {}, 120.0);
  DecayResult result;
  if (!connect.ok()) return result;
  const ChannelPtr channel = connect.value();

  // Fig. 5.8 decay: -1 per second from 250.
  const double t0 = testbed.sim().now().seconds();
  channel->connection()->set_quality_override([t0](SimTime now) {
    return static_cast<int>(250.0 - (now.seconds() - t0));
  });

  handover::HandoverController controller{a.library(), channel, {}};
  double detected_at = -1.0;
  double done_at = -1.0;
  controller.set_event_handler([&](const handover::HandoverEvent& event) {
    using Kind = handover::HandoverEvent::Kind;
    if (event.kind == Kind::kDegradationDetected && detected_at < 0) {
      detected_at = testbed.sim().now().seconds();
    }
    if (event.kind == Kind::kHandoverComplete && done_at < 0) {
      done_at = testbed.sim().now().seconds();
    }
  });
  bool lost = false;
  channel->set_close_handler([&] { lost = done_at < 0; });
  controller.start();
  testbed.run_for(120.0);

  result.handover_done = done_at >= 0;
  result.lost_first = lost && done_at < 0;
  if (detected_at >= 0) result.detect_s = detected_at - t0;
  if (done_at >= 0 && detected_at >= 0) result.execute_s = done_at - detected_at;
  return result;
}

void report_decay(int trials) {
  heading("E7a Fig. 5.8 decay simulation (threshold 230, low-count > 3)");
  std::printf("%12s %10s %14s %14s %12s\n", "radio", "handover %",
              "detect (s)", "execute (s)", "lost first %");
  for (const bool paper_radio : {false, true}) {
    int done = 0;
    int lost = 0;
    std::vector<double> detect;
    std::vector<double> execute;
    for (std::uint64_t seed = 1;
         seed <= static_cast<std::uint64_t>(trials); ++seed) {
      const DecayResult r = run_decay_trial(seed, paper_radio);
      if (r.handover_done) {
        ++done;
        detect.push_back(r.detect_s);
        execute.push_back(r.execute_s);
      }
      if (r.lost_first) ++lost;
    }
    std::printf("%12s %10.0f %14.1f %14.1f %12.0f\n",
                paper_radio ? "paper BT" : "fast BT", 100.0 * done / trials,
                summarize(detect).mean, summarize(execute).mean,
                100.0 * lost / trials);
  }
  note("decay starts at 250, crosses 230 after ~21 s; >3 low samples adds");
  note("~4 s, so detection lands near 25 s — matching the paper's design.");
  note("(The decay is an override on the channel, invisible to the radio");
  note("model, so the predictive observers stay silent: this is exactly the");
  note("reactive-fallback path of the rewritten engine.)");
}

// --- E7c: scenario matrix ----------------------------------------------------

struct MatrixCell {
  std::string scenario;
  std::string policy;
  int trials{0};
  double outage_s{0.0};
  std::uint64_t sent{0};
  std::uint64_t received{0};
  std::uint64_t lost{0};
  std::uint64_t handovers{0};
  std::uint64_t predictions{0};
  std::uint64_t predictive_handovers{0};
  std::uint64_t reconnections{0};
  std::uint64_t restarts{0};
  std::vector<double> latencies_s;
  std::uint64_t control_frames{0};
  std::uint64_t medium_frames{0};
  std::uint64_t medium_bytes{0};
};

using SpecFactory = scenario::ScenarioSpec (*)(std::uint64_t seed,
                                               bool predictive);

scenario::ScenarioSpec make_corridor(std::uint64_t seed, bool predictive) {
  return scenario::corridor_walk(seed, predictive);
}
scenario::ScenarioSpec make_group_small(std::uint64_t seed, bool predictive) {
  return scenario::group_walk(seed, predictive, 3);
}
scenario::ScenarioSpec make_group(std::uint64_t seed, bool predictive) {
  return scenario::group_walk(seed, predictive, 5);
}
scenario::ScenarioSpec make_office_small(std::uint64_t seed, bool predictive) {
  return scenario::office(seed, predictive, 8);
}
scenario::ScenarioSpec make_office(std::uint64_t seed, bool predictive) {
  return scenario::office(seed, predictive, 14);
}
scenario::ScenarioSpec make_churn_small(std::uint64_t seed, bool predictive) {
  return scenario::churn(seed, predictive, 8);
}
scenario::ScenarioSpec make_churn(std::uint64_t seed, bool predictive) {
  return scenario::churn(seed, predictive, 12);
}

MatrixCell run_cell(const std::string& name, SpecFactory factory,
                    bool predictive, int trials) {
  MatrixCell cell;
  cell.scenario = name;
  cell.policy = predictive ? "predictive" : "reactive";
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(trials);
       ++seed) {
    scenario::ScenarioRunner runner{factory(seed, predictive)};
    const Status status = runner.setup();
    if (!status.ok()) {
      std::printf("    !! %s/%s seed %llu setup failed: %s\n", name.c_str(),
                  cell.policy.c_str(), static_cast<unsigned long long>(seed),
                  status.error().to_string().c_str());
      continue;
    }
    runner.run();
    ++cell.trials;  // only successfully-run seeds enter the sums
    const scenario::ScenarioMetrics& m = runner.metrics();
    cell.outage_s += m.total_outage_s();
    cell.sent += m.total_sent();
    cell.received += m.total_received();
    cell.lost += m.frames_lost();
    cell.handovers += m.total_handovers();
    cell.control_frames += m.control_frames();
    cell.medium_frames += m.medium_frames;
    cell.medium_bytes += m.medium_frame_bytes;
    for (const scenario::SessionMetrics& s : m.sessions) {
      cell.predictions += s.predictions;
      cell.predictive_handovers += s.predictive_handovers;
      cell.reconnections += s.reconnections;
      cell.restarts += s.restarts;
      if (s.handover_latency_count > 0) {
        cell.latencies_s.push_back(s.handover_latency_sum_s /
                                   static_cast<double>(
                                       s.handover_latency_count));
      }
    }
  }
  return cell;
}

void emit_cell(const MatrixCell& cell) {
  const Summary latency = summarize(cell.latencies_s);
  std::printf("%10s %11s %10.0f %6llu %5llu %6llu %6llu %9.1f %9llu\n",
              cell.scenario.c_str(), cell.policy.c_str(),
              cell.outage_s * 1e3, static_cast<unsigned long long>(cell.sent),
              static_cast<unsigned long long>(cell.lost),
              static_cast<unsigned long long>(cell.handovers),
              static_cast<unsigned long long>(cell.predictive_handovers),
              latency.mean * 1e3,
              static_cast<unsigned long long>(cell.control_frames));
  JsonRecord record{"handover_matrix"};
  record.field("scenario", cell.scenario)
      .field("policy", cell.policy)
      .field("trials", cell.trials)
      .field("outage_ms", cell.outage_s * 1e3)
      .field("sent", cell.sent)
      .field("received", cell.received)
      .field("frames_lost", cell.lost)
      .field("handovers", cell.handovers)
      .field("predictions", cell.predictions)
      .field("predictive_handovers", cell.predictive_handovers)
      .field("reconnections", cell.reconnections)
      .field("restarts", cell.restarts)
      .field("handover_latency_ms", latency.mean * 1e3)
      .field("control_frames", cell.control_frames)
      .field("medium_frames", cell.medium_frames)
      .field("medium_bytes", cell.medium_bytes);
  record.emit();
}

void report_matrix(bool smoke) {
  heading(smoke ? "E7c scenario matrix (smoke: 2 sizes per family, 1 seed)"
                : "E7c scenario matrix: reactive vs predictive");
  std::printf("%10s %11s %10s %6s %5s %6s %6s %9s %9s\n", "scenario",
              "policy", "outage ms", "sent", "lost", "ho", "mbb",
              "lat ms", "ctl frames");

  struct Row {
    const char* name;
    SpecFactory factory;
  };
  // Both sizes of every family always run (so the larger construction
  // paths are exercised per commit); smoke mode cuts the seeds, not the
  // matrix.
  const std::vector<Row> rows = {{"corridor", make_corridor},
                                 {"group3", make_group_small},
                                 {"group5", make_group},
                                 {"office8", make_office_small},
                                 {"office14", make_office},
                                 {"churn8", make_churn_small},
                                 {"churn12", make_churn}};
  const int trials = smoke ? 1 : 5;

  for (const Row& row : rows) {
    MatrixCell reactive = run_cell(row.name, row.factory, false, trials);
    MatrixCell predictive = run_cell(row.name, row.factory, true, trials);
    emit_cell(reactive);
    emit_cell(predictive);
    if (reactive.outage_s > 0.0) {
      const double ratio = reactive.outage_s /
                           std::max(predictive.outage_s, 1e-3);
      const double overhead =
          reactive.control_frames > 0
              ? static_cast<double>(predictive.control_frames) /
                    static_cast<double>(reactive.control_frames)
              : 0.0;
      std::printf("%10s %11s outage ratio %.1fx, control overhead %.2fx\n",
                  row.name, "->", ratio, overhead);
      JsonRecord summary{"handover_matrix_ratio"};
      summary.field("scenario", row.name)
          .field("outage_ratio", ratio)
          .field("control_overhead", overhead);
      summary.emit();
    }
  }
  note("outage = total time with no usable connection, summed over sessions");
  note("and trials; mbb = handovers completed while the old link was still");
  note("alive (make-before-break); ctl frames = medium frames beyond the");
  note("application's delivered messages. corridor/group have structured");
  note("mobility the predictor can extrapolate; office/churn are dominated");
  note("by coverage holes, where prediction neither helps nor hurts.");
}

void BM_DecayTrial(benchmark::State& state) {
  std::uint64_t seed = 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_decay_trial(seed++, false).handover_done);
  }
}
BENCHMARK(BM_DecayTrial)->Unit(benchmark::kMillisecond);

void BM_CorridorPredictive(benchmark::State& state) {
  std::uint64_t seed = 900;
  for (auto _ : state) {
    scenario::ScenarioRunner runner{scenario::corridor_walk(seed++, true)};
    if (runner.setup().ok()) runner.run();
    benchmark::DoNotOptimize(runner.metrics().total_outage_s());
  }
}
BENCHMARK(BM_CorridorPredictive)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  report_decay(smoke ? 5 : 20);
  report_matrix(smoke);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
