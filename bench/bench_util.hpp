// Shared helpers for the experiment benches: scenario builders, summary
// statistics and table printing. Every bench binary prints its paper-style
// report first, then runs its registered google-benchmark measurements.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "node/testbed.hpp"

namespace peerhood::bench {

struct Summary {
  double mean{0.0};
  double min{0.0};
  double max{0.0};
  double p50{0.0};
  std::size_t count{0};
};

inline Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.p50 = values[values.size() / 2];
  s.mean = std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
  return s;
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void note(const std::string& text) {
  std::printf("    %s\n", text.c_str());
}

// Node options matching the thesis deployment: Bluetooth only, per-loop
// neighbourhood refresh.
inline node::NodeOptions scenario_node(MobilityClass mobility) {
  node::NodeOptions options;
  options.mobility = mobility;
  options.daemon.service_check_interval = seconds(5.0);
  return options;
}

// The paper's measured Bluetooth: per-hop connect 1.5-9 s, per-hop fault
// probability 0.16 (§4.3), inquiry asymmetry on.
inline sim::TechnologyParams paper_bluetooth() {
  return sim::bluetooth_params();
}

// Bluetooth with stochastic faults disabled (for benches isolating protocol
// behaviour from the §4.3 fault statistics).
inline sim::TechnologyParams ideal_bluetooth() {
  sim::TechnologyParams bt = sim::bluetooth_params();
  bt.connect_failure_prob = 0.0;
  bt.fetch_failure_prob = 0.0;
  bt.connect_delay_min_s = 0.5;
  bt.connect_delay_max_s = 1.0;
  return bt;
}

}  // namespace peerhood::bench
