// Shared helpers for the experiment benches: scenario builders, summary
// statistics and table printing. Every bench binary prints its paper-style
// report first, then runs its registered google-benchmark measurements.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <string>
#include <type_traits>
#include <vector>

#include "node/testbed.hpp"

namespace peerhood::bench {

struct Summary {
  double mean{0.0};
  double min{0.0};
  double max{0.0};
  double p50{0.0};
  std::size_t count{0};
};

inline Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.p50 = values[values.size() / 2];
  s.mean = std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
  return s;
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void note(const std::string& text) {
  std::printf("    %s\n", text.c_str());
}

// Machine-readable perf record: accumulates fields, then prints one
//   BENCH_JSON {"bench":"...","n":2000,...}
// line. CI greps these lines so the perf trajectory can be tracked across
// PRs without parsing the human-readable tables.
class JsonRecord {
 public:
  explicit JsonRecord(const std::string& bench) { field("bench", bench); }

  JsonRecord& field(const std::string& key, const std::string& value) {
    add_key(key);
    body_ += '"';
    append_escaped(value);
    body_ += '"';
    return *this;
  }

  JsonRecord& field(const std::string& key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    add_key(key);
    body_ += buf;
    return *this;
  }

  JsonRecord& field(const std::string& key, bool value) {
    add_key(key);
    body_ += value ? "true" : "false";
    return *this;
  }

  // Without this, a string literal would bind to the bool overload (standard
  // conversion beats user-defined conversion to std::string).
  JsonRecord& field(const std::string& key, const char* value) {
    return field(key, std::string{value});
  }

  template <typename Int,
            typename = std::enable_if_t<std::is_integral_v<Int>>>
  JsonRecord& field(const std::string& key, Int value) {
    add_key(key);
    body_ += std::to_string(value);
    return *this;
  }

  void emit() const { std::printf("BENCH_JSON {%s}\n", body_.c_str()); }

 private:
  void add_key(const std::string& key) {
    if (!body_.empty()) body_ += ',';
    body_ += '"';
    append_escaped(key);
    body_ += "\":";
  }

  void append_escaped(const std::string& text) {
    for (const char c : text) {
      if (c == '"' || c == '\\') body_ += '\\';
      body_ += c;
    }
  }

  std::string body_;
};

// Node options matching the thesis deployment: Bluetooth only, per-loop
// neighbourhood refresh.
inline node::NodeOptions scenario_node(MobilityClass mobility) {
  node::NodeOptions options;
  options.mobility = mobility;
  options.daemon.service_check_interval = seconds(5.0);
  return options;
}

// The paper's measured Bluetooth: per-hop connect 1.5-9 s, per-hop fault
// probability 0.16 (§4.3), inquiry asymmetry on.
inline sim::TechnologyParams paper_bluetooth() {
  return sim::bluetooth_params();
}

// Bluetooth with stochastic faults disabled (for benches isolating protocol
// behaviour from the §4.3 fault statistics).
inline sim::TechnologyParams ideal_bluetooth() {
  sim::TechnologyParams bt = sim::bluetooth_params();
  bt.connect_failure_prob = 0.0;
  bt.fetch_failure_prob = 0.0;
  bt.connect_delay_min_s = 0.5;
  bt.connect_delay_max_s = 1.0;
  return bt;
}

}  // namespace peerhood::bench
