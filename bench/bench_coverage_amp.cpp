// E9 — Coverage amplification (Fig. 6.1): a tunnel without GPRS signal is
// covered by a chain of Bluetooth bridge nodes leading to a server outside
// that owns the GPRS uplink. A phone deep in the tunnel reaches the GPRS
// network by bridging hop-by-hop to the server.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace peerhood;
using namespace peerhood::bench;

struct TunnelResult {
  bool reachable{false};   // route known to the phone
  bool connected{false};   // end-to-end chain established
  double connect_s{0.0};
  double rtt_ms{0.0};
};

// depth = number of bridge nodes between the phone and the tunnel mouth.
TunnelResult run_tunnel(std::uint64_t seed, int depth, bool paper_radio) {
  node::Testbed testbed{seed};
  testbed.medium().configure(paper_radio ? paper_bluetooth()
                                         : ideal_bluetooth());
  // Gateway server at the tunnel mouth (x = 0), bridges every 8 m inward,
  // phone 6 m past the last bridge.
  auto& gateway = testbed.add_node("gateway", {0.0, 0.0},
                                   scenario_node(MobilityClass::kStatic));
  for (int i = 1; i <= depth; ++i) {
    testbed.add_node("bt" + std::to_string(i), {8.0 * i, 0.0},
                     scenario_node(MobilityClass::kStatic));
  }
  auto& phone = testbed.add_node("phone", {8.0 * depth + 6.0, 0.0},
                                 scenario_node(MobilityClass::kDynamic));

  // The gateway's GPRS uplink service: echoes to model the round trip to
  // the outside network.
  // Sessions live in an explicit registry — handlers must not own their
  // own channel (see common/handler_slot.hpp).
  std::vector<ChannelPtr> sessions;
  (void)gateway.library().register_service(
      ServiceInfo{"gprs.uplink", "gateway", 0},
      [&sessions](ChannelPtr channel, const wire::ConnectRequest&) {
        sessions.push_back(channel);
        channel->set_data_handler([raw = channel.get()](const Bytes& frame) {
          (void)raw->write(frame);
        });
      });
  testbed.run_discovery_rounds(depth + 5);

  TunnelResult result;
  const auto record = phone.daemon().storage().find(gateway.mac());
  result.reachable = record.has_value() && record->provides("gprs.uplink");
  if (!result.reachable) return result;

  const double start = testbed.sim().now().seconds();
  auto connect =
      phone.connect_blocking(gateway.mac(), "gprs.uplink", {}, 300.0);
  if (!connect.ok()) return result;
  result.connected = true;
  result.connect_s = testbed.sim().now().seconds() - start;

  const ChannelPtr channel = connect.value();
  std::vector<double> rtts;
  auto sent_at = std::make_shared<double>(0.0);
  channel->set_data_handler([&](const Bytes&) {
    rtts.push_back((testbed.sim().now().seconds() - *sent_at) * 1000.0);
  });
  for (int i = 0; i < 10; ++i) {
    testbed.sim().schedule_after(seconds(static_cast<double>(i)),
                                 [channel, sent_at, &testbed] {
                                   if (!channel->open()) return;
                                   *sent_at = testbed.sim().now().seconds();
                                   (void)channel->write(Bytes(100, 0x11));
                                 });
  }
  testbed.run_for(15.0);
  result.rtt_ms = summarize(rtts).mean;
  return result;
}

void report() {
  heading("E9  Coverage amplification (Fig. 6.1): tunnel bridge chain");
  std::printf("%8s %8s | %10s %10s %14s %10s\n", "radio", "bridges",
              "route %", "connect %", "connect (s)", "RTT (ms)");
  for (const bool paper_radio : {false, true}) {
    for (const int depth : {1, 2, 3, 4}) {
      int reachable = 0;
      int connected = 0;
      std::vector<double> connect_times;
      std::vector<double> rtts;
      const int trials = 8;
      for (std::uint64_t seed = 1; seed <= trials; ++seed) {
        const TunnelResult r = run_tunnel(seed, depth, paper_radio);
        if (r.reachable) ++reachable;
        if (r.connected) {
          ++connected;
          connect_times.push_back(r.connect_s);
          rtts.push_back(r.rtt_ms);
        }
      }
      std::printf("%8s %8d | %10.0f %10.0f %14.1f %10.1f\n",
                  paper_radio ? "paper" : "fast", depth,
                  100.0 * reachable / trials, 100.0 * connected / trials,
                  summarize(connect_times).mean, summarize(rtts).mean);
    }
  }
  note("discovery reaches the phone at any depth (route %); chain setup");
  note("cost grows linearly with the hop count, and with the paper's");
  note("fault-prone Bluetooth the deep chains fail establishment more often");
  note("— matching the thesis's note that long jump chains multiply the");
  note("connection time (§5.3).");
}

void BM_TunnelDepth3(benchmark::State& state) {
  std::uint64_t seed = 900;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_tunnel(seed++, 3, false).connected);
  }
}
BENCHMARK(BM_TunnelDepth3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
