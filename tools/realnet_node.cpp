// realnet_node — one PeerHood daemon process on real sockets.
//
// The same protocol stack every sim scenario runs (Daemon, Engine, Plugin
// discovery, Library, BridgeService, ReliableChannel) composed over
// net::PosixNetwork instead of net::SimNetwork: UDP datagrams for the
// discovery plane, framed TCP for sessions, epoll for both. Three roles:
//
//   server  registers the "echo" sink service, journals every session's
//           resume frontier to --journal, and verifies exactly-once
//           delivery of the client's counter stream — across kill -9.
//   client  discovers the server, dials "echo", streams counters 1..N over
//           ReliableChannel, rides out the server's death via
//           resume_direct (kResume -> kUnknownSession -> kResumeRestart),
//           then migrates the session through the bridge relay
//           (resume_via_bridge) and streams the remainder.
//   bridge  a plain daemon whose BridgeService relays PH_BRIDGE traffic.
//
// The process speaks a line protocol on stdout (READY / PROGRESS / SRV_DONE
// / CLIENT_OK / CLIENT_DONE ...) that the integration driver
// (tests/test_realnet_integration.cpp) sequences and asserts on. Every line
// is flushed: the driver may kill -9 us at any moment, and an unflushed
// oracle line is the two-generals race the harness must not depend on.
//
// Usage:
//   realnet_node --role=server --index=2 --udp=40002 --tcp=40102 \
//                --journal=/tmp/ph.journal --total=450 \
//                --peer=1:40001:40101 --peer=3:40003:40103
#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bridge/bridge_service.hpp"
#include "net/posix_network.hpp"
#include "peerhood/daemon.hpp"
#include "peerhood/library.hpp"
#include "peerhood/reliable_channel.hpp"

using namespace peerhood;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct Options {
  std::string role;
  std::uint64_t index{1};
  std::uint16_t udp{0};
  std::uint16_t tcp{0};
  std::string journal;
  std::uint64_t target_index{0};  // client: the server's --index
  std::uint64_t bridge_index{0};  // client: the relay's --index
  std::uint64_t phase1{0};        // client: counters sent before migration
  std::uint64_t total{0};         // grand-total counters in the stream
  std::uint64_t pace_ms{2};       // client: send cadence (kill-window width)
  std::vector<net::PosixPeer> peers;
};

bool parse_args(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) return false;
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "role") {
      options.role = value;
    } else if (key == "index") {
      options.index = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "udp") {
      options.udp = static_cast<std::uint16_t>(std::atoi(value.c_str()));
    } else if (key == "tcp") {
      options.tcp = static_cast<std::uint16_t>(std::atoi(value.c_str()));
    } else if (key == "journal") {
      options.journal = value;
    } else if (key == "target") {
      options.target_index = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "bridge") {
      options.bridge_index = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "phase1") {
      options.phase1 = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "total") {
      options.total = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "pace") {
      options.pace_ms = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "peer") {
      // index:udp:tcp
      net::PosixPeer peer;
      unsigned long long idx = 0, udp = 0, tcp = 0;
      if (std::sscanf(value.c_str(), "%llu:%llu:%llu", &idx, &udp, &tcp) !=
          3) {
        return false;
      }
      peer.mac = MacAddress::from_index(idx);
      peer.udp_port = static_cast<std::uint16_t>(udp);
      peer.tcp_port = static_cast<std::uint16_t>(tcp);
      options.peers.push_back(peer);
    } else {
      return false;
    }
  }
  return !options.role.empty();
}

void say(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::fflush(stdout);  // the driver's oracle; never leave a line buffered
}

// Counter payload: [u64 counter][u64 grand_total], and counter == the
// ReliableChannel sequence by construction (counters are the only frames on
// the session), so the server-side journal frontier `expected` IS the next
// counter — the identity the kill -9 oracle rests on.
Bytes encode_counter(std::uint64_t counter, std::uint64_t total) {
  ByteWriter writer;
  writer.u64(counter);
  writer.u64(total);
  return std::move(writer).take();
}

ReliableConfig snappy_reliable() {
  ReliableConfig config;
  config.ack_delay = milliseconds(30);
  config.retransmit_interval = milliseconds(250);
  config.retransmit_cap = seconds(2.0);
  return config;
}

// Everything one daemon process is made of.
struct Stack {
  std::unique_ptr<net::PosixNetwork> network;
  std::unique_ptr<Daemon> daemon;
  std::unique_ptr<Library> library;
  std::unique_ptr<bridge::BridgeService> bridge;

  explicit Stack(const Options& options) {
    net::PosixConfig net_config;
    net_config.mac = MacAddress::from_index(options.index);
    net_config.udp_port = options.udp;
    net_config.tcp_port = options.tcp;
    net_config.seed = options.index;
    network = std::make_unique<net::PosixNetwork>(net_config);
    for (const net::PosixPeer& peer : options.peers) {
      network->add_peer(peer);
    }

    DaemonConfig daemon_config;
    daemon_config.device_name = options.role + std::to_string(options.index);
    daemon_config.technologies = {Technology::kBluetooth};
    daemon_config.session_journal_path = options.journal;
    daemon = std::make_unique<Daemon>(*network,
                                      MacAddress::from_index(options.index),
                                      nullptr, std::move(daemon_config));
    library = std::make_unique<Library>(*daemon);
    daemon->start();
    bridge = std::make_unique<bridge::BridgeService>(*daemon, *library,
                                                     bridge::BridgeConfig{});
  }
};

// --- server ------------------------------------------------------------------

// One adopted session: the channel the engine handed us plus its
// reliability layer restored at the journalled frontier.
struct ServerSession {
  ChannelPtr channel;
  std::shared_ptr<ReliableChannel> reliable;
};

int run_server(const Options& options) {
  Stack stack{options};
  Daemon& daemon = *stack.daemon;

  std::map<std::uint64_t, ServerSession> sessions;
  std::uint64_t expected_counter = 1;  // next counter the app should see
  std::uint64_t dup = 0;
  std::uint64_t gaps = 0;
  bool done = false;

  // On restart the journal tells us where the stream stood: frontier
  // `expected` is the next reliable seq == next counter (see
  // encode_counter). Deliveries must continue contiguously from there.
  const auto handler = [&](ChannelPtr channel,
                           const wire::ConnectRequest& request) {
    const std::uint64_t session_id = request.session_id;
    const SessionRecord* record = daemon.session_store().find(session_id);
    auto layer = std::make_shared<ReliableChannel>(
        stack.network->simulator(), channel, snappy_reliable());
    if (record != nullptr) {
      layer->restore(record->next_seq, record->expected);
      expected_counter = record->expected;
      say("RESUMED session=%llu expected=%llu\n",
          static_cast<unsigned long long>(session_id),
          static_cast<unsigned long long>(record->expected));
    }
    Daemon* raw_daemon = &daemon;
    layer->set_journal_hook(
        [raw_daemon, session_id, peer = channel->peer(),
         service = channel->service()](std::uint64_t next_seq,
                                       std::uint64_t expected) {
          if (!raw_daemon->session_store().update_frontier(
                  session_id, next_seq, expected)) {
            raw_daemon->session_store().put(
                SessionRecord{session_id, peer, service, next_seq, expected});
          }
        });
    layer->set_data_handler([&](const Bytes& payload) {
      ByteReader reader{payload};
      const std::uint64_t counter = reader.u64();
      const std::uint64_t total = reader.u64();
      if (!reader.ok()) return;
      if (counter < expected_counter) {
        ++dup;
      } else {
        gaps += counter - expected_counter;
        expected_counter = counter + 1;
      }
      if (counter % 50 == 0) {
        say("PROGRESS %llu\n", static_cast<unsigned long long>(counter));
      }
      if (counter == total) {
        done = true;
        say("SRV_DONE total=%llu dup=%llu gaps=%llu restart_resumes=%llu\n",
            static_cast<unsigned long long>(total),
            static_cast<unsigned long long>(dup),
            static_cast<unsigned long long>(gaps),
            static_cast<unsigned long long>(
                daemon.engine().stats().restart_resumes));
      }
    });
    // Replacing a prior adoption of the same session severs the orphaned
    // layer's handlers (a restart-resume of a session this incarnation also
    // held just substitutes the transport).
    sessions[session_id] = ServerSession{channel, std::move(layer)};
  };

  const Status bound =
      stack.library->register_service(ServiceInfo{"echo", "sink", 9}, handler);
  if (!bound.ok()) {
    say("FATAL register_service: %s\n", bound.error().to_string().c_str());
    return 1;
  }
  say("READY udp=%u tcp=%u\n", stack.network->udp_port(),
      stack.network->tcp_port());

  while (g_stop == 0) {
    stack.network->poll_once(milliseconds(20));
    // After the stream completes, keep serving (the client's final ack
    // exchange and the driver's shutdown signal are still in flight).
    (void)done;
  }
  const net::NetStats stats = stack.network->net_stats();
  say("SRV_EXIT frames_checked=%llu corrupt=%llu queue_drops=%llu "
      "reconnects=%llu\n",
      static_cast<unsigned long long>(stats.frames_checked),
      static_cast<unsigned long long>(stats.corrupt_drops),
      static_cast<unsigned long long>(stats.send_queue_drops),
      static_cast<unsigned long long>(stats.reconnect_attempts));
  return 0;
}

// --- client ------------------------------------------------------------------

int run_client(const Options& options) {
  Stack stack{options};
  const MacAddress target = MacAddress::from_index(options.target_index);
  const MacAddress relay = MacAddress::from_index(options.bridge_index);
  say("READY udp=%u tcp=%u\n", stack.network->udp_port(),
      stack.network->tcp_port());

  // Phase 0: discovery. The plugins' inquiry/fetch cycles must surface the
  // server's "echo" service before Library::connect will dial it.
  const auto discovered = [&] {
    for (const auto& [device, service] : stack.library->get_service_list()) {
      if (device.mac == target && service.name == "echo") return true;
    }
    return false;
  };
  while (!discovered()) {
    if (g_stop != 0) return 1;
    stack.network->poll_once(milliseconds(20));
  }
  say("DISCOVERED\n");

  // Phase 1: dial.
  ChannelPtr channel;
  bool connect_failed = false;
  Library::ConnectOptions connect_options;
  connect_options.timeout = seconds(20.0);
  stack.library->connect(target, "echo", connect_options,
                         [&](Result<ChannelPtr> result) {
                           if (result.ok()) {
                             channel = std::move(result).value();
                           } else {
                             say("FATAL connect: %s\n",
                                 result.error().to_string().c_str());
                             connect_failed = true;
                           }
                         });
  while (channel == nullptr && !connect_failed && g_stop == 0) {
    stack.network->poll_once(milliseconds(20));
  }
  if (channel == nullptr) return 1;
  say("CONNECTED session=%llu\n",
      static_cast<unsigned long long>(channel->session_id()));

  // The reliability layer occupies the channel's data/handover slots; the
  // close slot is ours and signals server death.
  auto reliable = std::make_shared<ReliableChannel>(
      stack.network->simulator(), channel, snappy_reliable());
  bool link_down = false;
  bool resume_in_flight = false;
  std::uint64_t resumes = 0;
  channel->set_close_handler([&] { link_down = true; });

  // Retry resume_direct until the restarted server answers. The library
  // handles the kResume -> kUnknownSession -> kResumeRestart ladder; we just
  // keep knocking while the process is down (connection refused).
  const auto try_resume = [&] {
    if (resume_in_flight) return;
    resume_in_flight = true;
    stack.library->resume_direct(
        channel,
        [&](Status status) {
          resume_in_flight = false;
          if (status.ok()) {
            link_down = false;
            ++resumes;
            say("RESUME_OK n=%llu\n", static_cast<unsigned long long>(resumes));
          }
        },
        seconds(5.0));
  };

  // Counter pump: paced by wall clock so the transfer spans a predictable
  // window (the driver must be able to land a kill -9 mid-stream),
  // backpressure-aware (a refused send is retried on the next tick), and
  // paused while the link is down.
  std::uint64_t next_counter = 1;
  const std::uint64_t phase1_end = options.phase1;
  const SimDuration pace = milliseconds(static_cast<std::int64_t>(
      options.pace_ms));
  SimTime next_send = stack.network->wall_now();
  const auto pump = [&](std::uint64_t limit) {
    if (link_down || next_counter > limit) return;
    if (stack.network->wall_now() < next_send) return;
    if (reliable->send(encode_counter(next_counter, options.total)).ok()) {
      ++next_counter;
      next_send = stack.network->wall_now() + pace;
    }
  };

  // Phase 2: stream counters 1..phase1; survive the kill -9 in the middle.
  while ((next_counter <= phase1_end || reliable->unacked() > 0) &&
         g_stop == 0) {
    pump(phase1_end);
    if (link_down) try_resume();
    stack.network->poll_once(milliseconds(5));
  }
  if (g_stop != 0) return 1;
  say("CLIENT_OK acked=%llu resumes=%llu\n",
      static_cast<unsigned long long>(phase1_end),
      static_cast<unsigned long long>(resumes));

  // Phase 3: migrate the session through the bridge relay (§4 PH_BRIDGE +
  // §5.2.1 routing handover, on real sockets), then stream the remainder.
  bool migrated = false;
  bool migrate_failed = false;
  stack.library->resume_via_bridge(
      relay, channel,
      [&](Status status) {
        if (status.ok()) {
          migrated = true;
        } else {
          say("FATAL migrate: %s\n", status.error().to_string().c_str());
          migrate_failed = true;
        }
      },
      seconds(20.0));
  while (!migrated && !migrate_failed && g_stop == 0) {
    stack.network->poll_once(milliseconds(5));
  }
  if (!migrated) return 1;
  say("MIGRATED\n");

  while ((next_counter <= options.total || reliable->unacked() > 0) &&
         g_stop == 0) {
    pump(options.total);
    if (link_down) try_resume();
    stack.network->poll_once(milliseconds(5));
  }
  if (g_stop != 0) return 1;
  say("CLIENT_DONE sent=%llu resumes=%llu retransmissions=%llu\n",
      static_cast<unsigned long long>(options.total),
      static_cast<unsigned long long>(resumes),
      static_cast<unsigned long long>(reliable->retransmissions()));
  return 0;
}

// --- bridge ------------------------------------------------------------------

int run_bridge(const Options& options) {
  Stack stack{options};
  stack.bridge->start();
  say("READY udp=%u tcp=%u\n", stack.network->udp_port(),
      stack.network->tcp_port());
  while (g_stop == 0) {
    stack.network->poll_once(milliseconds(20));
  }
  const bridge::BridgeService::Stats& stats = stack.bridge->stats();
  say("BRIDGE_EXIT established=%llu relayed_frames=%llu\n",
      static_cast<unsigned long long>(stats.established),
      static_cast<unsigned long long>(stats.relayed_frames));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) {
    std::fprintf(stderr,
                 "usage: %s --role=server|client|bridge --index=N --udp=P "
                 "--tcp=P [--journal=FILE] [--target=N] [--bridge=N] "
                 "[--phase1=N] [--total=N] --peer=IDX:UDP:TCP ...\n",
                 argv[0]);
    return 2;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  if (options.role == "server") return run_server(options);
  if (options.role == "client") return run_client(options);
  if (options.role == "bridge") return run_bridge(options);
  std::fprintf(stderr, "unknown role '%s'\n", options.role.c_str());
  return 2;
}
