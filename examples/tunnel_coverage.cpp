// Coverage amplification (Fig. 6.1): a tunnel with no GPRS signal gets
// covered by Bluetooth bridge boxes; a phone deep inside reaches the GPRS
// gateway at the tunnel mouth through the bridge chain.
//
//   $ ./examples/tunnel_coverage
#include <cstdio>

#include "node/testbed.hpp"

using namespace peerhood;

int main() {
  node::Testbed testbed{/*seed=*/5};

  node::NodeOptions fixed;
  fixed.mobility = MobilityClass::kStatic;
  fixed.daemon.service_check_interval = seconds(5.0);

  // Gateway at the tunnel mouth: Bluetooth towards the tunnel, GPRS uplink
  // to the outside world.
  node::NodeOptions gateway_options = fixed;
  gateway_options.technologies = {Technology::kBluetooth, Technology::kGprs};
  auto& gateway = testbed.add_node("gateway", {0.0, 0.0}, gateway_options);

  // Bluetooth bridge boxes every 8 m into the tunnel.
  for (int i = 1; i <= 3; ++i) {
    testbed.add_node("tunnel-bt-" + std::to_string(i), {8.0 * i, 0.0}, fixed);
  }

  // The phone, 30 m inside — no direct line to the gateway.
  node::NodeOptions mobile;
  mobile.mobility = MobilityClass::kDynamic;
  mobile.daemon.service_check_interval = seconds(5.0);
  auto& phone = testbed.add_node("phone", {30.0, 0.0}, mobile);

  // The gateway's uplink service answers "web requests". Accepted sessions
  // go into an explicit registry: a handler owning its own channel would be
  // an unbreakable reference cycle (see common/handler_slot.hpp).
  std::vector<ChannelPtr> gateway_sessions;
  (void)gateway.library().register_service(
      ServiceInfo{"gprs.uplink", "gateway", 0},
      [&gateway_sessions](ChannelPtr channel, const wire::ConnectRequest&) {
        gateway_sessions.push_back(channel);
        channel->set_data_handler([raw = channel.get()](const Bytes& request) {
          Bytes response = request;
          response.push_back(0x4B);  // 'K' — request acknowledged
          (void)raw->write(response);
        });
      });

  testbed.run_discovery_rounds(8);

  const auto record = phone.daemon().storage().find(gateway.mac());
  if (!record.has_value()) {
    std::printf("phone never learned a route to the gateway\n");
    return 1;
  }
  std::printf("[phone] gateway known at jump=%d via %s\n", record->jump,
              record->bridge.to_string().c_str());

  // Bluetooth establishment faults are routine (§4.3) — retry the chain.
  ChannelPtr channel;
  for (int attempt = 1; attempt <= 4 && channel == nullptr; ++attempt) {
    auto result =
        phone.connect_blocking(gateway.mac(), "gprs.uplink", {}, 240.0);
    if (result.ok()) {
      channel = result.value();
    } else {
      std::printf("[phone] attempt %d failed: %s\n", attempt,
                  result.error().to_string().c_str());
    }
  }
  if (channel == nullptr) {
    std::printf("chain connect failed after retries\n");
    return 1;
  }
  std::printf("[phone] connected through the bridge chain at t=%.1fs\n",
              testbed.sim().now().seconds());

  int replies = 0;
  channel->set_data_handler([&](const Bytes& frame) {
    ++replies;
    std::printf("[phone] uplink reply %d (%zu bytes) at t=%.2fs\n", replies,
                frame.size(), testbed.sim().now().seconds());
  });
  for (int i = 0; i < 5; ++i) {
    testbed.sim().schedule_after(seconds(2.0 * i), [channel] {
      if (channel->open()) (void)channel->write(Bytes(64, 0x77));
    });
  }
  testbed.run_for(15.0);

  std::printf("coverage amplified: %d/5 requests served through %d bridges\n",
              replies, record->jump);
  return replies == 5 ? 0 : 1;
}
