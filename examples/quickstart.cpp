// Quickstart: two devices discover each other over simulated Bluetooth,
// one registers an echo service, the other connects and exchanges a
// message — the Fig. 2.1 / Fig. 2.5 basics in ~60 lines.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "node/testbed.hpp"

using namespace peerhood;

int main() {
  // The testbed owns the simulator, radio medium and network.
  node::Testbed testbed{/*seed=*/1};

  // Two devices 5 m apart: a fixed PC and a phone.
  node::NodeOptions fixed;
  fixed.mobility = MobilityClass::kStatic;
  node::NodeOptions mobile;
  mobile.mobility = MobilityClass::kDynamic;
  auto& pc = testbed.add_node("pc", {5.0, 0.0}, fixed);
  auto& phone = testbed.add_node("phone", {0.0, 0.0}, mobile);

  // The PC registers an echo service through the PeerHood library. Accepted
  // sessions go into an explicit registry: a handler owning its own channel
  // would be an unbreakable reference cycle (see common/handler_slot.hpp).
  std::vector<ChannelPtr> pc_sessions;
  (void)pc.library().register_service(
      ServiceInfo{"echo", "demo", 0},
      [&pc_sessions](ChannelPtr channel, const wire::ConnectRequest& request) {
        std::printf("[pc]    accepted session %llu for '%s'\n",
                    static_cast<unsigned long long>(request.session_id),
                    request.service.c_str());
        pc_sessions.push_back(channel);
        channel->set_data_handler([raw = channel.get()](const Bytes& frame) {
          (void)raw->write(frame);  // echo back
        });
      });

  // Let the daemons run their device-discovery inquiry loops.
  testbed.run_discovery_rounds(3);
  std::printf("[phone] device list after discovery:\n");
  for (const DeviceRecord& record : phone.library().get_device_list()) {
    std::printf("          %s (%s) jump=%d quality=%d\n",
                record.device.name.c_str(),
                record.device.mac.to_string().c_str(), record.jump,
                record.quality_sum);
  }

  // Connect and say hello.
  auto result = phone.connect_blocking(pc.mac(), "echo");
  if (!result.ok()) {
    std::printf("connect failed: %s\n", result.error().to_string().c_str());
    return 1;
  }
  const ChannelPtr channel = result.value();
  channel->set_data_handler([&](const Bytes& frame) {
    std::printf("[phone] echo received (%zu bytes) at t=%.2fs\n",
                frame.size(), testbed.sim().now().seconds());
  });
  (void)channel->write(Bytes{'h', 'e', 'l', 'l', 'o'});
  testbed.run_for(5.0);

  channel->close();
  std::printf("done.\n");
  return 0;
}
