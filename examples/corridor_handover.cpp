// Corridor routing handover (Fig. 5.4/5.6): a phone streams messages to a
// print server while walking down a corridor; as the direct link degrades
// the HandoverThread re-routes the same session through corridor PCs —
// watch the session survive multiple substitutions.
//
//   $ ./examples/corridor_handover
#include <cstdio>

#include "handover/handover.hpp"
#include "node/testbed.hpp"

using namespace peerhood;

int main() {
  node::Testbed testbed{/*seed=*/3};

  node::NodeOptions fixed;
  fixed.mobility = MobilityClass::kStatic;
  fixed.daemon.service_check_interval = seconds(5.0);
  auto& server = testbed.add_node("print-server", {0.0, 0.0}, fixed);
  // Corridor PCs every 8 m — each a potential bridge.
  testbed.add_node("corridor-pc-1", {8.0, 0.0}, fixed);
  testbed.add_node("corridor-pc-2", {16.0, 0.0}, fixed);

  node::NodeOptions mobile;
  mobile.mobility = MobilityClass::kDynamic;
  mobile.daemon.service_check_interval = seconds(5.0);
  auto& phone = testbed.add_mobile_node(
      "phone",
      std::make_shared<sim::WaypointPath>(
          std::vector<sim::WaypointPath::Waypoint>{
              {SimTime{} + seconds(0.0), {2.0, 0.0}},
              {SimTime{} + seconds(90.0), {2.0, 0.0}},
              {SimTime{} + seconds(250.0), {22.0, 0.0}},  // 0.125 m/s stroll
          }),
      mobile);

  int printed = 0;
  // Accepted print sessions live in an explicit registry: a handler owning
  // its own channel would be an unbreakable cycle (common/handler_slot.hpp).
  std::vector<ChannelPtr> print_sessions;
  (void)server.library().register_service(
      ServiceInfo{"print", "demo", 0},
      [&printed, &print_sessions](ChannelPtr channel,
                                  const wire::ConnectRequest&) {
        print_sessions.push_back(std::move(channel));
        print_sessions.back()->set_data_handler(
            [&printed](const Bytes&) { ++printed; });
      });
  testbed.run_discovery_rounds(3);

  auto result = phone.connect_blocking(server.mac(), "print");
  if (!result.ok()) {
    std::printf("connect failed: %s\n", result.error().to_string().c_str());
    return 1;
  }
  const ChannelPtr channel = result.value();

  handover::HandoverController controller{phone.library(), channel, {}};
  controller.set_event_handler([&](const handover::HandoverEvent& event) {
    using Kind = handover::HandoverEvent::Kind;
    const double now = testbed.sim().now().seconds();
    switch (event.kind) {
      case Kind::kDegradationDetected:
        std::printf("[t=%6.1fs] link degraded (quality < 230 for >3 samples)\n",
                    now);
        break;
      case Kind::kHandoverComplete:
        std::printf("[t=%6.1fs] handover complete — session re-routed via %s\n",
                    now, event.bridge.to_string().c_str());
        break;
      case Kind::kHandoverFailed:
        std::printf("[t=%6.1fs] handover attempt via %s failed (%s)\n", now,
                    event.bridge.to_string().c_str(), event.detail.c_str());
        break;
      default:
        break;
    }
  });
  controller.start();

  // One "print job" per second for the whole walk.
  for (int i = 0; i < 240; ++i) {
    testbed.sim().schedule_after(seconds(static_cast<double>(i)), [channel] {
      if (channel->open()) (void)channel->write(Bytes{'j', 'o', 'b'});
    });
  }
  testbed.run_for(260.0);

  std::printf("\nwalk finished: %d jobs printed, %llu handovers, "
              "session %s\n",
              printed,
              static_cast<unsigned long long>(controller.stats().handovers),
              channel->open() ? "still open" : "closed");
  return controller.stats().handovers >= 1 && printed > 150 ? 0 : 1;
}
