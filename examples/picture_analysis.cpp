// Picture-analysis task migration (Ch. 5 / Fig. 5.10): a phone offloads an
// image-processing task to a fixed server, walks away while the server
// computes, and receives the annotated result through a bridge node — the
// paper's headline result-routing scenario.
//
//   $ ./examples/picture_analysis
#include <cstdio>

#include "migration/task_client.hpp"
#include "migration/task_server.hpp"
#include "node/testbed.hpp"

using namespace peerhood;

int main() {
  node::Testbed testbed{/*seed=*/7};

  node::NodeOptions fixed;
  fixed.mobility = MobilityClass::kStatic;
  fixed.daemon.service_check_interval = seconds(5.0);
  auto& server = testbed.add_node("analysis-server", {0.0, 0.0}, fixed);
  testbed.add_node("hallway-pc", {8.0, 0.0}, fixed);  // becomes the bridge

  // The phone uploads next to the server, then walks down the hallway.
  node::NodeOptions mobile;
  mobile.mobility = MobilityClass::kDynamic;
  mobile.daemon.service_check_interval = seconds(5.0);
  auto& phone = testbed.add_mobile_node(
      "phone",
      std::make_shared<sim::WaypointPath>(
          std::vector<sim::WaypointPath::Waypoint>{
              {SimTime{} + seconds(0.0), {2.0, 0.0}},
              {SimTime{} + seconds(80.0), {2.0, 0.0}},
              {SimTime{} + seconds(130.0), {14.0, 0.0}},
          }),
      mobile);

  // Server side: the picture.analyse service with result routing enabled
  // (Method 2: the client pushes reconnection parameters at connect time).
  migration::TaskServerConfig server_config;
  server_config.service_name = "picture.analyse";
  server_config.result_size = 8000;  // annotated picture
  server_config.result_routing.max_attempts = 8;
  migration::TaskServer task_server{server.library(), server_config};
  task_server.start();

  testbed.run_discovery_rounds(3);

  // Client side: 20 image packages, then long processing on the server.
  migration::TaskClientConfig config;
  config.spec.package_count = 20;
  config.spec.package_size = 2000;
  config.spec.per_package_processing = seconds(5.0);  // 100 s of analysis
  config.spec.send_interval = milliseconds(500);
  config.result_timeout = seconds(600.0);
  migration::TaskClient client{phone.library(), server.mac(),
                               "picture.analyse", config};

  std::printf("[phone] submitting %u packages to %s...\n",
              config.spec.package_count, server.name().c_str());
  std::optional<migration::MigrationOutcome> outcome;
  client.run([&](const migration::MigrationOutcome& o) { outcome = o; });
  testbed.run_for(600.0);

  if (!outcome.has_value()) {
    std::printf("no outcome — simulation ended early\n");
    return 1;
  }
  const char* kind = "failed";
  switch (outcome->kind) {
    case migration::MigrationOutcome::Kind::kCompletedLive:
      kind = "result received on the live channel";
      break;
    case migration::MigrationOutcome::Kind::kCompletedRouted:
      kind = "result routed back by the server (reconnection)";
      break;
    case migration::MigrationOutcome::Kind::kFailed:
      kind = "failed";
      break;
  }
  std::printf("[phone] outcome: %s\n", kind);
  std::printf("        upload done at t=%.1fs, finished at t=%.1fs\n",
              outcome->upload_done.seconds(), outcome->finished.seconds());
  std::printf("        handovers=%llu upload_interrupted=%s\n",
              static_cast<unsigned long long>(outcome->handovers),
              outcome->upload_interrupted ? "yes" : "no");
  std::printf("[server] sessions=%llu results_live=%llu results_routed=%llu\n",
              static_cast<unsigned long long>(task_server.stats().sessions),
              static_cast<unsigned long long>(task_server.stats().results_live),
              static_cast<unsigned long long>(
                  task_server.stats().results_routed));
  return outcome->kind == migration::MigrationOutcome::Kind::kFailed ? 1 : 0;
}
