// Library — the PeerHood application interface (§2.2.2): GetDeviceList,
// GetServiceList, RegisterService and Connect. Connect performs the Fig. 2.5
// sequence for direct neighbours and the Fig. 4.3 PH_BRIDGE sequence for
// remote devices reached through bridge nodes; resume_* perform the
// connection re-establishment used by handover (§5.2.1).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "peerhood/channel.hpp"
#include "peerhood/daemon.hpp"

namespace peerhood {

class Library {
 public:
  struct ConnectOptions {
    // Push reconnection parameters so the server can call back after
    // processing (§5.3 Method 2). `reconnect_service` names the client-side
    // service the server should contact (empty = none / Method 1).
    bool include_client_params{false};
    std::string reconnect_service;
    // 0 = mint a fresh session id.
    std::uint64_t session_id{0};
    // Allow routing through bridge nodes when the target is remote.
    bool allow_bridge{true};
    // Skip the local is-service-advertised check (used by result routing
    // Method 2, where the target service is known out of band and possibly
    // hidden from discovery).
    bool skip_service_check{false};
    // Overall deadline for establishment + handshake acknowledgement; the
    // bridged chain can take many seconds per hop on Bluetooth (§4.3).
    SimDuration timeout{std::chrono::seconds{60}};
  };

  using ConnectCallback = std::function<void(Result<ChannelPtr>)>;
  using StatusCallback = std::function<void(Status)>;

  explicit Library(Daemon& daemon) : daemon_{daemon} {}

  Library(const Library&) = delete;
  Library& operator=(const Library&) = delete;

  // --- Neighbourhood information (served from the daemon's storage) ---------
  [[nodiscard]] std::vector<DeviceRecord> get_device_list() const;
  // (device, service) pairs for every non-hidden remote service.
  [[nodiscard]] std::vector<std::pair<DeviceInfo, ServiceInfo>>
  get_service_list() const;

  // --- Service registration ---------------------------------------------------
  Status register_service(ServiceInfo service, Engine::ServiceHandler handler);
  void unregister_service(const std::string& name);

  // --- Connection establishment ----------------------------------------------
  void connect(MacAddress destination, std::string service,
               ConnectOptions options, ConnectCallback callback);

  // Re-establishes `channel` through `bridge` (routing handover, §5.2.1
  // state 2) — the server substitutes the connection of the same session.
  void resume_via_bridge(MacAddress bridge, const ChannelPtr& channel,
                         StatusCallback callback,
                         SimDuration timeout = std::chrono::seconds{60});
  // Re-establishes `channel` directly (peer back in coverage).
  void resume_direct(const ChannelPtr& channel, StatusCallback callback,
                     SimDuration timeout = std::chrono::seconds{60});

  [[nodiscard]] Daemon& daemon() { return daemon_; }

 private:
  // Sends `first_frame` on a fresh connection to `hop` and waits for the
  // chain acknowledgement (PH_OK / PH_FAIL, §4.1).
  void dial(const net::NetAddress& hop, Bytes first_frame, SimDuration timeout,
            std::function<void(Result<net::ConnectionPtr>)> done);

  Daemon& daemon_;
};

}  // namespace peerhood
