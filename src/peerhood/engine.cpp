#include "peerhood/engine.hpp"

#include "common/log.hpp"
#include "net/address.hpp"

namespace peerhood {

Engine::Engine(net::Network& network, MacAddress mac)
    : network_{network}, mac_{mac} {}

Engine::~Engine() { stop(); }

void Engine::start(const std::vector<Technology>& technologies) {
  stop();
  listening_ = technologies;
  for (const Technology tech : listening_) {
    const Status bound =
        network_.listen(net::NetAddress{mac_, tech, net::kPeerHoodEnginePort},
                        [this](net::ConnectionPtr conn) {
                          on_accept(std::move(conn));
                        });
    if (!bound.ok()) {
      // Two engines on one (mac, tech) is a wiring bug — the first keeps the
      // address (EADDRINUSE semantics); starting deaf would be silent.
      log(LogLevel::kWarn, network_.simulator().now(), "engine",
          mac_.to_string(), " listen failed: ", bound.error().to_string());
    }
  }
}

void Engine::stop() {
  for (const Technology tech : listening_) {
    network_.stop_listening(
        net::NetAddress{mac_, tech, net::kPeerHoodEnginePort});
  }
  listening_.clear();
  // Sever the handshake handlers (they capture `this`) and close the
  // half-open connections before dropping them, so a stopped engine leaves
  // neither dangling callbacks nor silently hanging peers behind.
  for (auto& [key, conn] : pending_) {
    conn->set_data_handler(nullptr);
    conn->set_close_handler(nullptr);
    conn->close();
  }
  pending_.clear();
}

void Engine::set_service_handler(std::string service_name,
                                 ServiceHandler handler) {
  service_handlers_[std::move(service_name)] = std::move(handler);
}

void Engine::remove_service_handler(const std::string& service_name) {
  service_handlers_.erase(service_name);
}

bool Engine::has_service_handler(const std::string& name) const {
  return service_handlers_.contains(name);
}

void Engine::set_bridge_handler(BridgeHandler handler) {
  bridge_slot_.set(std::move(handler));
}

void Engine::register_session(const ChannelPtr& channel) {
  sessions_[channel->session_id()] = channel;
}

void Engine::unregister_session(std::uint64_t session_id) {
  sessions_.erase(session_id);
}

ChannelPtr Engine::find_session(std::uint64_t session_id) const {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return nullptr;
  return it->second.lock();
}

bool Engine::prune_session(std::uint64_t session_id) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.lock() != nullptr) return false;
  sessions_.erase(it);
  return true;
}

void Engine::on_accept(net::ConnectionPtr connection) {
  ++stats_.accepted;
  const std::uint64_t key = connection->id();
  connection->set_close_handler([this, key] { pending_.erase(key); });
  connection->set_data_handler([this, key](const Bytes& frame) {
    const auto it = pending_.find(key);
    if (it == pending_.end()) return;
    net::ConnectionPtr conn = std::move(it->second);
    pending_.erase(it);
    conn->set_close_handler(nullptr);
    conn->set_data_handler(nullptr);
    handle_handshake(std::move(conn), frame);
  });
  pending_.emplace(key, std::move(connection));
}

void Engine::handle_handshake(net::ConnectionPtr connection,
                              const Bytes& frame) {
  const auto handshake = wire::decode_handshake(frame);
  if (!handshake.has_value()) {
    ++stats_.rejected;
    (void)connection->write(
        wire::encode_fail(ErrorCode::kProtocolError, "bad handshake"));
    connection->close();
    return;
  }
  switch (handshake->command) {
    case wire::Command::kConnect: {
      ++stats_.connects;
      const wire::ConnectRequest& request = handshake->connect;
      const auto it = service_handlers_.find(request.service);
      if (it == service_handlers_.end()) {
        ++stats_.rejected;
        (void)connection->write(wire::encode_fail(
            ErrorCode::kNoSuchService, "service not registered: " +
                                           request.service));
        connection->close();
        return;
      }
      // The application peer: with a bridged chain the transport remote is
      // the last bridge, so prefer the pushed client parameters.
      const MacAddress peer = request.client_params.has_value()
                                  ? request.client_params->device.mac
                                  : connection->remote_address().mac;
      // A fresh connect begins a fresh session: any journalled frontier
      // under this id is a leftover from an earlier client incarnation that
      // happened to mint the same id (deterministic minting makes that
      // routine after a client restart). Restoring it would dedupe the new
      // stream's opening frames as "already delivered" — drop it.
      if (session_store_ != nullptr) {
        session_store_->erase(request.session_id);
      }
      (void)connection->write(wire::encode_ok());
      auto channel = std::make_shared<Channel>(
          request.session_id, request.service, peer, std::move(connection));
      channel->client_params = request.client_params;
      register_session(channel);
      // Copy the handler out of the map: the callback may unregister the
      // service (or replace its handler) from inside.
      const ServiceHandler handler = it->second;
      handler(channel, request);
      return;
    }
    case wire::Command::kResume: {
      ++stats_.resumes;
      const wire::ConnectRequest& request = handshake->connect;
      ChannelPtr session = find_session(request.session_id);
      // Expiry is explicit: drop the registry entry of a dead session here
      // rather than behind a const lookup. A closed channel is equally
      // unresumable — its handlers are severed and its state retired.
      if (session == nullptr) (void)prune_session(request.session_id);
      if (session == nullptr || session->closed() ||
          session->service() != request.service) {
        ++stats_.rejected;
        // kUnknownSession tells the client this is (potentially) a restart,
        // not a missing service — its cue to re-dial with kResumeRestart.
        (void)connection->write(wire::encode_fail(
            ErrorCode::kUnknownSession, "unknown session for resume"));
        connection->close();
        return;
      }
      (void)connection->write(wire::encode_ok());
      session->replace_connection(std::move(connection));
      return;
    }
    case wire::Command::kResumeRestart: {
      ++stats_.resumes;
      const wire::ConnectRequest& request = handshake->connect;
      // If the session is in fact still live (the client misread a transient
      // outage as a crash), treat this as a plain resume.
      ChannelPtr session = find_session(request.session_id);
      if (session == nullptr) (void)prune_session(request.session_id);
      if (session != nullptr && !session->closed() &&
          session->service() == request.service) {
        (void)connection->write(wire::encode_ok());
        session->replace_connection(std::move(connection));
        return;
      }
      // Otherwise the journal must vouch for the session and the service
      // must be registered again; then the handshake behaves like a connect
      // that keeps the old session id, and the application handler restores
      // the reliable layer from the journalled frontier.
      const SessionRecord* record =
          session_store_ != nullptr ? session_store_->find(request.session_id)
                                    : nullptr;
      const auto it = service_handlers_.find(request.service);
      if (record == nullptr || record->service != request.service ||
          it == service_handlers_.end()) {
        ++stats_.rejected;
        (void)connection->write(wire::encode_fail(
            ErrorCode::kUnknownSession, "session not journalled"));
        connection->close();
        return;
      }
      ++stats_.restart_resumes;
      const MacAddress peer = request.client_params.has_value()
                                  ? request.client_params->device.mac
                                  : record->peer;
      (void)connection->write(wire::encode_ok());
      auto channel = std::make_shared<Channel>(
          request.session_id, request.service, peer, std::move(connection));
      channel->client_params = request.client_params;
      register_session(channel);
      const ServiceHandler handler = it->second;
      handler(channel, request);
      return;
    }
    case wire::Command::kBridge: {
      ++stats_.bridges;
      if (!bridge_slot_.armed()) {
        ++stats_.rejected;
        (void)connection->write(wire::encode_fail(
            ErrorCode::kNoSuchService, "bridge service disabled"));
        connection->close();
        return;
      }
      // Slot dispatch: the bridge service may disable itself from inside.
      bridge_slot_.invoke(std::move(connection), handshake->bridge);
      return;
    }
    default:
      ++stats_.rejected;
      connection->close();
      return;
  }
}

}  // namespace peerhood
