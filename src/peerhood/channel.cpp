#include "peerhood/channel.hpp"

#include <utility>

namespace peerhood {

Channel::Channel(std::uint64_t session_id, std::string service,
                 MacAddress peer, net::ConnectionPtr connection)
    : session_id_{session_id},
      service_{std::move(service)},
      peer_{peer},
      connection_{std::move(connection)} {
  attach();
}

Channel::~Channel() {
  if (connection_ != nullptr) {
    connection_->set_data_handler(nullptr);
    connection_->set_close_handler(nullptr);
  }
}

void Channel::attach() {
  // A closed channel must never re-arm transport handlers: set_*_handler
  // after close() is a documented no-op (TaskClient's destructor and
  // ReliableChannel::shutdown pass nullptr through here in good faith).
  if (closed_ || connection_ == nullptr) return;
  // The transport-level handlers capture a raw `this`: the channel owns the
  // connection and detaches these in close()/~Channel, so they can never
  // outlive the channel.
  connection_->set_data_handler([this](const Bytes& frame) {
    if (absorb_stray_handshake(frame)) return;
    data_slot_.invoke(frame);
  });
  connection_->set_close_handler([this] {
    // Transport lost. The session itself stays resumable (§5.2.1); the loss
    // is reported at most once per transport — the latch dedupes reentrant
    // reports (peer close frame + keepalive, or a close() from inside the
    // callback) and replace_connection() re-arms it, so a substituted
    // connection's later death is reported again. The handler may close()
    // or drop the last ChannelPtr to *this — invoke is the last statement.
    if (loss_reported_) return;
    loss_reported_ = true;
    close_slot_.invoke();
  });
}

bool Channel::absorb_stray_handshake(const Bytes& frame) {
  // Dials retransmit their handshake until acknowledged, and the medium may
  // duplicate frames on its own — so an already-established channel can
  // receive a late copy of its own handshake (the original was accepted but
  // the ack was lost) or a duplicated ack. Neither is application data.
  if (frame.empty()) return false;
  const auto command = static_cast<wire::Command>(frame[0]);
  const bool is_request = command == wire::Command::kConnect ||
                          command == wire::Command::kResume ||
                          command == wire::Command::kBridge;
  // Only PH_OK among the acks: a failed dial closes its connection, so a
  // stray PH_FAIL cannot reach an established channel through the protocol
  // — but an application payload that merely *looks* like one can, and it
  // must be delivered opaquely (BridgeTest.BridgeDoesNotInterpretTraffic).
  if (!is_request && command != wire::Command::kOk) return false;
  const auto handshake = wire::decode_handshake(frame);
  if (!handshake.has_value()) return false;
  if (command == wire::Command::kOk) {
    // A duplicated PH_OK that arrived after the dial resolved.
    ++stray_handshakes_absorbed_;
    return true;
  }
  const std::uint64_t id = handshake->command == wire::Command::kBridge
                               ? handshake->bridge.inner.session_id
                               : handshake->connect.session_id;
  if (id != session_id_) return false;
  // Re-ack so the (possibly bridged) dialer stops retransmitting; the relay
  // path carries this back exactly like the original acknowledgement.
  ++stray_handshakes_absorbed_;
  (void)connection_->write(wire::encode_ok());
  return true;
}

Status Channel::write(Bytes frame) {
  if (connection_ == nullptr || closed_) {
    return Status{ErrorCode::kConnectionClosed, "channel has no connection"};
  }
  return connection_->write(std::move(frame));
}

void Channel::set_data_handler(DataHandler handler) {
  data_slot_.set(std::move(handler));
  // Re-attach so that buffered frames drain into the new handler.
  attach();
}

void Channel::set_close_handler(CloseHandler handler) {
  close_slot_.set(std::move(handler));
}

void Channel::set_handover_handler(HandoverHandler handler) {
  handover_slot_.set(std::move(handler));
}

bool Channel::open() const {
  return !closed_ && connection_ != nullptr && connection_->open();
}

void Channel::close() {
  if (closed_) return;
  closed_ = true;
  if (connection_ != nullptr) {
    // Detach before closing: the old link's demise is not a session loss.
    connection_->set_data_handler(nullptr);
    connection_->set_close_handler(nullptr);
    connection_->close();
  }
  // Sever last and destroy outside the member accesses: releasing a handler
  // capture may drop the last ChannelPtr to *this.
  auto data = data_slot_.sever_take();
  auto close_h = close_slot_.sever_take();
  auto handover = handover_slot_.sever_take();
}

int Channel::link_quality() {
  return connection_ != nullptr ? connection_->link_quality() : 0;
}

void Channel::replace_connection(net::ConnectionPtr connection) {
  if (closed_) {
    // A dead session cannot be resumed; refuse the substitute politely.
    if (connection != nullptr) connection->close();
    return;
  }
  if (connection_ != nullptr) {
    // Detach before closing: the old link's demise is not a session loss.
    connection_->set_data_handler(nullptr);
    connection_->set_close_handler(nullptr);
    connection_->close();
  }
  connection_ = std::move(connection);
  loss_reported_ = false;  // the new transport's death is a new loss
  attach();
  handover_slot_.invoke(connection_);
}

}  // namespace peerhood
