#include "peerhood/channel.hpp"

#include <utility>

namespace peerhood {

Channel::Channel(std::uint64_t session_id, std::string service,
                 MacAddress peer, net::ConnectionPtr connection)
    : session_id_{session_id},
      service_{std::move(service)},
      peer_{peer},
      connection_{std::move(connection)} {
  attach();
}

Channel::~Channel() {
  if (connection_ != nullptr) {
    connection_->set_data_handler(nullptr);
    connection_->set_close_handler(nullptr);
  }
}

void Channel::attach() {
  if (connection_ == nullptr) return;
  connection_->set_data_handler([this](const Bytes& frame) {
    if (data_handler_) data_handler_(frame);
  });
  connection_->set_close_handler([this] {
    if (close_handler_) close_handler_();
  });
}

Status Channel::write(Bytes frame) {
  if (connection_ == nullptr) {
    return Status{ErrorCode::kConnectionClosed, "channel has no connection"};
  }
  return connection_->write(std::move(frame));
}

void Channel::set_data_handler(DataHandler handler) {
  data_handler_ = std::move(handler);
  // Re-attach so that buffered frames drain into the new handler.
  attach();
}

void Channel::set_close_handler(CloseHandler handler) {
  close_handler_ = std::move(handler);
}

void Channel::set_handover_handler(HandoverHandler handler) {
  handover_handler_ = std::move(handler);
}

bool Channel::open() const {
  return connection_ != nullptr && connection_->open();
}

void Channel::close() {
  if (connection_ != nullptr) {
    connection_->set_close_handler(nullptr);
    connection_->close();
  }
}

int Channel::link_quality() {
  return connection_ != nullptr ? connection_->link_quality() : 0;
}

void Channel::replace_connection(net::ConnectionPtr connection) {
  if (connection_ != nullptr) {
    // Detach before closing: the old link's demise is not a session loss.
    connection_->set_data_handler(nullptr);
    connection_->set_close_handler(nullptr);
    connection_->close();
  }
  connection_ = std::move(connection);
  attach();
  if (handover_handler_) handover_handler_(connection_);
}

}  // namespace peerhood
