// Engine — the PeerHood class "continuously listening for possible
// connections in different network technologies" (§4.1). On accept it reads
// the first frame to identify the connection intention — new connection,
// bridge connection or connection re-establish — and dispatches accordingly.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/handler_slot.hpp"
#include "net/network.hpp"
#include "peerhood/channel.hpp"
#include "peerhood/protocol.hpp"
#include "peerhood/session_store.hpp"

namespace peerhood {

class Engine {
 public:
  // Application callback for a newly accepted service connection.
  using ServiceHandler =
      std::function<void(ChannelPtr, const wire::ConnectRequest&)>;
  // Bridge-service callback for PH_BRIDGE requests (wired by BridgeService).
  using BridgeHandler =
      std::function<void(net::ConnectionPtr, wire::BridgeRequest)>;

  struct Stats {
    std::uint64_t accepted{0};
    std::uint64_t connects{0};
    std::uint64_t resumes{0};
    // kResumeRestart resumes honoured from the SessionStore journal after a
    // crash wiped the live session map.
    std::uint64_t restart_resumes{0};
    std::uint64_t bridges{0};
    std::uint64_t rejected{0};
  };

  Engine(net::Network& network, MacAddress mac);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  void start(const std::vector<Technology>& technologies);
  void stop();

  void set_service_handler(std::string service_name, ServiceHandler handler);
  void remove_service_handler(const std::string& service_name);
  [[nodiscard]] bool has_service_handler(const std::string& name) const;

  void set_bridge_handler(BridgeHandler handler);

  // Session registry used by PH_RESUME to substitute connections of live
  // sessions. Sessions are held weakly: a dropped server channel expires.
  void register_session(const ChannelPtr& channel);
  void unregister_session(std::uint64_t session_id);
  // Pure lookup — never mutates the registry. Returns nullptr for unknown or
  // expired sessions; callers that observe expiry erase it explicitly via
  // prune_session.
  [[nodiscard]] ChannelPtr find_session(std::uint64_t session_id) const;
  // Erases the entry for `session_id` if its channel has expired; returns
  // true when an expired entry was removed. Live sessions are left intact.
  bool prune_session(std::uint64_t session_id);
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  // Crash support: the live session map is volatile state and dies with the
  // process (stop() deliberately keeps it — a plain stop/start cycle is not
  // a crash).
  void clear_sessions() { sessions_.clear(); }

  // The daemon's crash-survivable resume journal; consulted by the
  // kResumeRestart handshake. May stay null (engines used standalone in
  // tests), in which case kResumeRestart degrades to kUnknownSession.
  void set_session_store(SessionStore* store) { session_store_ = store; }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] MacAddress mac() const { return mac_; }

 private:
  void on_accept(net::ConnectionPtr connection);
  void handle_handshake(net::ConnectionPtr connection, const Bytes& frame);

  net::Network& network_;
  MacAddress mac_;
  std::vector<Technology> listening_;
  std::map<std::string, ServiceHandler> service_handlers_;
  HandlerSlot<void(net::ConnectionPtr, wire::BridgeRequest)> bridge_slot_;
  // Accepted connections awaiting their first (handshake) frame.
  std::map<std::uint64_t, net::ConnectionPtr> pending_;
  std::map<std::uint64_t, std::weak_ptr<Channel>> sessions_;
  SessionStore* session_store_{nullptr};
  Stats stats_;
};

}  // namespace peerhood
