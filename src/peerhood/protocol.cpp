#include "peerhood/protocol.hpp"

namespace peerhood::wire {

std::uint32_t& SectionGens::of(std::uint8_t section_bit) {
  switch (section_bit) {
    case kSectionDevice:
      return device;
    case kSectionPrototypes:
      return prototypes;
    case kSectionServices:
      return services;
    default:
      return neighbours;
  }
}

std::uint32_t SectionGens::of(std::uint8_t section_bit) const {
  return const_cast<SectionGens*>(this)->of(section_bit);
}

namespace {

constexpr std::uint8_t kTrue = 1;
constexpr std::uint8_t kFalse = 0;

// FetchRequest flag bits; unknown bits reject the frame.
constexpr std::uint8_t kRequestFlagBaseline = 1;

// Enum fields are untrusted input like everything else: a byte outside the
// enum's domain fails the reader, so the surrounding decoder returns nullopt
// instead of materialising an enumerator no switch can handle.
Technology decode_technology(ByteReader& reader) {
  const std::uint8_t raw = reader.u8();
  if (raw >= kTechnologyCount) reader.fail();
  return static_cast<Technology>(raw);
}

MobilityClass decode_mobility(ByteReader& reader) {
  switch (reader.u8()) {
    case static_cast<std::uint8_t>(MobilityClass::kStatic):
      return MobilityClass::kStatic;
    case static_cast<std::uint8_t>(MobilityClass::kHybrid):
      return MobilityClass::kHybrid;
    case static_cast<std::uint8_t>(MobilityClass::kDynamic):
      return MobilityClass::kDynamic;
    default:
      reader.fail();
      return MobilityClass::kStatic;
  }
}

void encode_connect_body(ByteWriter& writer, const ConnectRequest& request) {
  writer.reserve(16 + request.service.size());
  writer.u64(request.session_id);
  writer.string(request.service);
  if (request.client_params.has_value()) {
    writer.u8(kTrue);
    const ClientParams& params = *request.client_params;
    encode_device(writer, params.device);
    writer.u8(static_cast<std::uint8_t>(params.tech));
    writer.string(params.reconnect_service);
    writer.u16(params.port);
  } else {
    writer.u8(kFalse);
  }
}

ConnectRequest decode_connect_body(ByteReader& reader) {
  ConnectRequest request;
  request.session_id = reader.u64();
  request.service = reader.str_view();
  if (reader.u8() == kTrue) {
    ClientParams params;
    params.device = decode_device(reader);
    params.tech = decode_technology(reader);
    params.reconnect_service = reader.str_view();
    params.port = reader.u16();
    request.client_params = std::move(params);
  }
  return request;
}

void encode_snapshot_entry(ByteWriter& writer,
                           const NeighbourSnapshotEntry& entry) {
  writer.reserve(31 + entry.prototypes.size());
  encode_device(writer, entry.device);
  writer.u8(static_cast<std::uint8_t>(entry.prototypes.size()));
  for (const Technology tech : entry.prototypes) {
    writer.u8(static_cast<std::uint8_t>(tech));
  }
  writer.u16(static_cast<std::uint16_t>(entry.services.size()));
  for (const ServiceInfo& service : entry.services) {
    encode_service(writer, service);
  }
  writer.u8(static_cast<std::uint8_t>(entry.jump));
  writer.u64(entry.bridge.as_u64());
  writer.u16(static_cast<std::uint16_t>(entry.quality_sum));
  writer.u8(static_cast<std::uint8_t>(entry.min_link_quality));
}

NeighbourSnapshotEntry decode_snapshot_entry(ByteReader& reader) {
  NeighbourSnapshotEntry entry;
  entry.device = decode_device(reader);
  const std::size_t proto_count = reader.u8();
  for (std::size_t i = 0; i < proto_count; ++i) {
    entry.prototypes.push_back(decode_technology(reader));
  }
  const std::size_t service_count = reader.u16();
  for (std::size_t i = 0; i < service_count && reader.ok(); ++i) {
    entry.services.push_back(decode_service(reader));
  }
  entry.jump = reader.u8();
  entry.bridge = MacAddress::from_u64(reader.u64());
  entry.quality_sum = reader.u16();
  entry.min_link_quality = reader.u8();
  return entry;
}

}  // namespace

void encode_device(ByteWriter& writer, const DeviceInfo& device) {
  writer.reserve(15 + device.name.size());
  writer.u64(device.mac.as_u64());
  writer.string(device.name);
  writer.u32(device.checksum);
  writer.u8(static_cast<std::uint8_t>(device.mobility));
}

DeviceInfo decode_device(ByteReader& reader) {
  DeviceInfo device;
  device.mac = MacAddress::from_u64(reader.u64());
  device.name = reader.str_view();
  device.checksum = reader.u32();
  device.mobility = decode_mobility(reader);
  return device;
}

void encode_service(ByteWriter& writer, const ServiceInfo& service) {
  writer.reserve(6 + service.name.size() + service.attribute.size());
  writer.string(service.name);
  writer.string(service.attribute);
  writer.u16(service.port);
}

ServiceInfo decode_service(ByteReader& reader) {
  ServiceInfo service;
  service.name = reader.str_view();
  service.attribute = reader.str_view();
  service.port = reader.u16();
  return service;
}

void encode_into(ByteWriter& writer, const FetchRequest& request) {
  writer.reserve(7 + (request.baseline.has_value() ? 24 : 0));
  writer.u8(static_cast<std::uint8_t>(Command::kFetchRequest));
  writer.u32(request.request_id);
  writer.u8(request.sections);
  if (request.baseline.has_value()) {
    writer.u8(kRequestFlagBaseline);
    writer.u64(request.baseline->epoch);
    for (const std::uint8_t section : kSectionOrder) {
      writer.u32(request.baseline->gens.of(section));
    }
  } else {
    writer.u8(0);
  }
}

Bytes encode(const FetchRequest& request) {
  ByteWriter writer;
  encode_into(writer, request);
  return std::move(writer).take();
}

void encode_into(ByteWriter& writer, const FetchResponse& response) {
  if (response.not_modified) {
    writer.reserve(6);
    writer.u8(static_cast<std::uint8_t>(Command::kNotModified));
    writer.u32(response.request_id);
    writer.u8(response.load_percent);
    return;
  }
  writer.reserve(15 + 32 * response.services.size() +
                 64 * response.neighbours.size());
  writer.u8(static_cast<std::uint8_t>(Command::kFetchResponse));
  writer.u32(response.request_id);
  writer.u8(response.sections);
  writer.u8(response.load_percent);
  writer.u64(response.epoch);
  if ((response.sections & kSectionDevice) != 0) {
    writer.u32(response.gens.device);
    encode_device(writer, response.device);
  }
  if ((response.sections & kSectionPrototypes) != 0) {
    writer.u32(response.gens.prototypes);
    writer.u8(static_cast<std::uint8_t>(response.prototypes.size()));
    for (const Technology tech : response.prototypes) {
      writer.u8(static_cast<std::uint8_t>(tech));
    }
  }
  if ((response.sections & kSectionServices) != 0) {
    writer.u32(response.gens.services);
    writer.u16(static_cast<std::uint16_t>(response.services.size()));
    for (const ServiceInfo& service : response.services) {
      encode_service(writer, service);
    }
  }
  if ((response.sections & kSectionNeighbours) != 0) {
    writer.u32(response.gens.neighbours);
    writer.u16(static_cast<std::uint16_t>(response.neighbours.size()));
    for (const NeighbourSnapshotEntry& entry : response.neighbours) {
      encode_snapshot_entry(writer, entry);
    }
  }
}

Bytes encode(const FetchResponse& response) {
  ByteWriter writer;
  encode_into(writer, response);
  return std::move(writer).take();
}

std::optional<Command> peek_command(std::span<const std::uint8_t> payload) {
  if (payload.empty()) return std::nullopt;
  return static_cast<Command>(payload[0]);
}

std::optional<FetchRequest> decode_fetch_request(
    std::span<const std::uint8_t> payload) {
  ByteReader reader{payload};
  if (static_cast<Command>(reader.u8()) != Command::kFetchRequest) {
    return std::nullopt;
  }
  FetchRequest request;
  request.request_id = reader.u32();
  request.sections = reader.u8();
  if ((request.sections & ~kSectionAll) != 0) return std::nullopt;
  const std::uint8_t flags = reader.u8();
  if ((flags & ~kRequestFlagBaseline) != 0) return std::nullopt;
  if ((flags & kRequestFlagBaseline) != 0) {
    FetchBaseline baseline;
    baseline.epoch = reader.u64();
    for (const std::uint8_t section : kSectionOrder) {
      baseline.gens.of(section) = reader.u32();
    }
    request.baseline = baseline;
  }
  if (!reader.ok()) return std::nullopt;
  return request;
}

std::optional<FetchResponse> decode_fetch_response(
    std::span<const std::uint8_t> payload) {
  ByteReader reader{payload};
  const auto command = static_cast<Command>(reader.u8());
  FetchResponse response;
  if (command == Command::kNotModified) {
    response.request_id = reader.u32();
    response.load_percent = reader.u8();
    response.not_modified = true;
    if (!reader.ok()) return std::nullopt;
    return response;
  }
  if (command != Command::kFetchResponse) return std::nullopt;
  response.request_id = reader.u32();
  response.sections = reader.u8();
  if ((response.sections & ~kSectionAll) != 0) return std::nullopt;
  response.load_percent = reader.u8();
  response.epoch = reader.u64();
  if ((response.sections & kSectionDevice) != 0) {
    response.gens.device = reader.u32();
    response.device = decode_device(reader);
  }
  if ((response.sections & kSectionPrototypes) != 0) {
    response.gens.prototypes = reader.u32();
    const std::size_t count = reader.u8();
    for (std::size_t i = 0; i < count; ++i) {
      response.prototypes.push_back(decode_technology(reader));
    }
  }
  if ((response.sections & kSectionServices) != 0) {
    response.gens.services = reader.u32();
    const std::size_t count = reader.u16();
    for (std::size_t i = 0; i < count && reader.ok(); ++i) {
      response.services.push_back(decode_service(reader));
    }
  }
  if ((response.sections & kSectionNeighbours) != 0) {
    response.gens.neighbours = reader.u32();
    const std::size_t count = reader.u16();
    for (std::size_t i = 0; i < count && reader.ok(); ++i) {
      response.neighbours.push_back(decode_snapshot_entry(reader));
    }
  }
  if (!reader.ok()) return std::nullopt;
  return response;
}

Bytes encode_connect(const ConnectRequest& request) {
  ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(Command::kConnect));
  encode_connect_body(writer, request);
  return std::move(writer).take();
}

Bytes encode_resume(const ConnectRequest& request) {
  ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(Command::kResume));
  encode_connect_body(writer, request);
  return std::move(writer).take();
}

Bytes encode_resume_restart(const ConnectRequest& request) {
  ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(Command::kResumeRestart));
  encode_connect_body(writer, request);
  return std::move(writer).take();
}

Bytes encode_bridge(const BridgeRequest& request) {
  ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(Command::kBridge));
  writer.u64(request.destination.as_u64());
  writer.u8(static_cast<std::uint8_t>(request.final_command));
  encode_connect_body(writer, request.inner);
  return std::move(writer).take();
}

Bytes encode_ok() {
  ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(Command::kOk));
  return std::move(writer).take();
}

Bytes encode_fail(ErrorCode code, std::string_view message) {
  ByteWriter writer;
  writer.reserve(4 + message.size());
  writer.u8(static_cast<std::uint8_t>(Command::kFail));
  writer.u8(static_cast<std::uint8_t>(code));
  writer.string(message);
  return std::move(writer).take();
}

std::optional<Handshake> decode_handshake(std::span<const std::uint8_t> frame) {
  ByteReader reader{frame};
  Handshake handshake;
  handshake.command = static_cast<Command>(reader.u8());
  switch (handshake.command) {
    case Command::kConnect:
    case Command::kResume:
    case Command::kResumeRestart:
      handshake.connect = decode_connect_body(reader);
      break;
    case Command::kBridge:
      handshake.bridge.destination = MacAddress::from_u64(reader.u64());
      handshake.bridge.final_command = static_cast<Command>(reader.u8());
      handshake.bridge.inner = decode_connect_body(reader);
      if (handshake.bridge.final_command != Command::kConnect &&
          handshake.bridge.final_command != Command::kResume &&
          handshake.bridge.final_command != Command::kResumeRestart) {
        return std::nullopt;
      }
      break;
    case Command::kOk:
      break;
    case Command::kFail:
      handshake.fail.code = static_cast<ErrorCode>(reader.u8());
      handshake.fail.message = reader.string();
      break;
    default:
      return std::nullopt;
  }
  if (!reader.ok()) return std::nullopt;
  return handshake;
}

}  // namespace peerhood::wire
