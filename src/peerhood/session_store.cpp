#include "peerhood/session_store.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

namespace peerhood {

void SessionStore::bind_file(const std::string& path) {
  path_ = path;
  if (path_.empty()) return;
  std::ifstream in{path_};
  if (!in) return;  // first incarnation: nothing journalled yet
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields{line};
    std::string tag;
    SessionRecord record;
    std::uint64_t peer64 = 0;
    fields >> tag >> record.session_id >> peer64 >> record.next_seq >>
        record.expected;
    if (!fields || tag != "v1") continue;  // torn/foreign line: skip it
    record.peer = MacAddress::from_u64(peer64);
    fields.ignore(1);
    std::getline(fields, record.service);
    const std::uint64_t id = record.session_id;
    records_[id] = std::move(record);
    touch(id);
  }
}

void SessionStore::persist() const {
  if (path_.empty()) return;
  // Whole-file rewrite through a temp + rename: the journal on disk is
  // always a complete snapshot, never a torn one (the store is bounded, so
  // the rewrite is a few KB at most).
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out{tmp, std::ios::trunc};
    if (!out) return;
    for (const auto& [id, record] : records_) {
      out << "v1 " << id << ' ' << record.peer.as_u64() << ' '
          << record.next_seq << ' ' << record.expected << ' '
          << record.service << '\n';
    }
  }
  std::rename(tmp.c_str(), path_.c_str());
}

void SessionStore::touch(std::uint64_t session_id) {
  const auto it = std::find(order_.begin(), order_.end(), session_id);
  if (it != order_.end()) order_.erase(it);
  order_.push_back(session_id);
}

void SessionStore::put(SessionRecord record) {
  const std::uint64_t id = record.session_id;
  if (records_.find(id) == records_.end() && records_.size() >= capacity_ &&
      capacity_ > 0 && !order_.empty()) {
    const std::uint64_t victim = order_.front();
    order_.pop_front();
    records_.erase(victim);
    ++evictions_;
  }
  records_[id] = std::move(record);
  touch(id);
  persist();
}

bool SessionStore::update_frontier(std::uint64_t session_id,
                                   std::uint64_t next_seq,
                                   std::uint64_t expected) {
  const auto it = records_.find(session_id);
  if (it == records_.end()) return false;
  it->second.next_seq = next_seq;
  it->second.expected = expected;
  touch(session_id);
  persist();
  return true;
}

const SessionRecord* SessionStore::find(std::uint64_t session_id) const {
  const auto it = records_.find(session_id);
  return it == records_.end() ? nullptr : &it->second;
}

void SessionStore::erase(std::uint64_t session_id) {
  records_.erase(session_id);
  const auto it = std::find(order_.begin(), order_.end(), session_id);
  if (it != order_.end()) order_.erase(it);
  persist();
}

}  // namespace peerhood
