#include "peerhood/session_store.hpp"

#include <algorithm>
#include <utility>

namespace peerhood {

void SessionStore::touch(std::uint64_t session_id) {
  const auto it = std::find(order_.begin(), order_.end(), session_id);
  if (it != order_.end()) order_.erase(it);
  order_.push_back(session_id);
}

void SessionStore::put(SessionRecord record) {
  const std::uint64_t id = record.session_id;
  if (records_.find(id) == records_.end() && records_.size() >= capacity_ &&
      capacity_ > 0 && !order_.empty()) {
    const std::uint64_t victim = order_.front();
    order_.pop_front();
    records_.erase(victim);
    ++evictions_;
  }
  records_[id] = std::move(record);
  touch(id);
}

bool SessionStore::update_frontier(std::uint64_t session_id,
                                   std::uint64_t next_seq,
                                   std::uint64_t expected) {
  const auto it = records_.find(session_id);
  if (it == records_.end()) return false;
  it->second.next_seq = next_seq;
  it->second.expected = expected;
  touch(session_id);
  return true;
}

const SessionRecord* SessionStore::find(std::uint64_t session_id) const {
  const auto it = records_.find(session_id);
  return it == records_.end() ? nullptr : &it->second;
}

void SessionStore::erase(std::uint64_t session_id) {
  records_.erase(session_id);
  const auto it = std::find(order_.begin(), order_.end(), session_id);
  if (it != order_.end()) order_.erase(it);
}

}  // namespace peerhood
