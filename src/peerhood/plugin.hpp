// Network plugin — one per technology (BTPlugin / WLANPlugin / GPRSPlugin in
// the paper). Runs the inquiry loop of Fig. 3.12: inquire, collect
// responses, check the PeerHood tag (SDP), fetch information for new or
// recheck-due devices, analyse their neighbourhood snapshots (Fig. 3.13) and
// age the storage with time stamps. Implements the Bluetooth inquiry
// asymmetry: while inquiring the device is itself undiscoverable (§3.4.2).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/handler_slot.hpp"
#include "common/mac_address.hpp"
#include "peerhood/protocol.hpp"
#include "sim/simulator.hpp"

namespace peerhood {

class Daemon;

class Plugin {
 public:
  struct Stats {
    std::uint64_t loops{0};
    std::uint64_t responders{0};
    std::uint64_t non_peerhood{0};
    std::uint64_t fetch_attempts{0};
    std::uint64_t fetch_failures{0};
    std::uint64_t fetch_timeouts{0};
    // Timed-out fetches re-issued with backoff (config.fetch_retries), and
    // responses dropped by duplicate/stale suppression: nothing pending,
    // wrong peer, or a request id we are no longer waiting for (a late
    // answer to a retried or completed fetch, or a fault-plane duplicate).
    std::uint64_t fetch_retries{0};
    std::uint64_t stale_responses{0};
    std::uint64_t integrations{0};
    std::uint64_t removed_devices{0};
    // Conditional-fetch outcome counters: fetches answered kNotModified
    // (timestamp-touch only, no analyzer pass) and responses integrated
    // with a partial section set (deltas / neighbours-only refreshes).
    std::uint64_t not_modified{0};
    std::uint64_t delta_responses{0};
    // Responder restarted between request and response (epoch changed
    // mid-conversation): the delta baseline was invalidated and the fetch
    // fell back to a full one instead of overlaying stale state.
    std::uint64_t epoch_invalidations{0};
  };

  Plugin(Daemon& daemon, Technology technology);
  ~Plugin();

  Plugin(const Plugin&) = delete;
  Plugin& operator=(const Plugin&) = delete;

  void start();
  void stop();

  [[nodiscard]] Technology technology() const { return tech_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool cycle_active() const { return cycle_active_; }

  // Routed here by the daemon's datagram dispatcher.
  void on_fetch_response(MacAddress from, const wire::FetchResponse& response);

  // Triggers one inquiry cycle immediately (tests/benches).
  void trigger_cycle();

  // Crash support: drops every conditional-fetch baseline (they are volatile
  // requester state; a restarted daemon starts from full fetches).
  void forget_peers();

 private:
  using FetchCallback =
      std::function<void(std::optional<wire::FetchResponse>)>;

  void begin_cycle();
  void end_inquiry();
  void process_next_responder();
  // Issues the information fetch for one device: either the unified single
  // exchange or the paper's four short exchanges (§3.4.1).
  void fetch_info(MacAddress target, FetchCallback done);
  void fetch_section(MacAddress target, std::uint8_t sections,
                     SimDuration cost, FetchCallback done, int attempt = 0);
  // Samples the link RSSI to `target` (§3.4.1), de-rated by the responder's
  // advertised bridge load when configured (§4). <= 0 means out of range.
  [[nodiscard]] int sampled_quality(MacAddress target,
                                    std::uint8_t load_percent);
  // Integrates one (possibly delta) response. False means the response was
  // dropped (spoof / link lost / stored record gone) — the caller must then
  // discard the peer's version baseline, since on_fetch_response already
  // adopted generations this integration failed to apply.
  bool integrate_response(MacAddress target,
                          const wire::FetchResponse& response);
  void complete_cycle();
  void schedule_next_cycle(SimDuration delay);

  Daemon& daemon_;
  Technology tech_;
  sim::EventId cycle_event_{sim::kInvalidEvent};
  sim::EventId inquiry_end_event_{sim::kInvalidEvent};
  bool stopped_{true};
  bool cycle_active_{false};
  // Guards the per-fetch completion closures (they capture `this` and are
  // owned by the event queue, which can outlive this plugin's daemon).
  DestructionSentinel sentinel_;

  // Per-cycle state.
  struct FetchJob {
    MacAddress target;
    bool full{true};  // full info fetch vs neighbours-only refresh
  };
  std::vector<FetchJob> fetch_queue_;
  std::vector<MacAddress> cycle_responders_;
  std::size_t fetch_index_{0};

  struct PendingFetch {
    MacAddress target;
    std::uint32_t request_id{0};
    sim::EventId timeout{sim::kInvalidEvent};
    FetchCallback done;
  };
  std::optional<PendingFetch> pending_;
  // Ids are minted from 1: wire::kSharedRequestId marks the responder's
  // shared cached frames, which are matched by peer address instead.
  std::uint32_t next_request_id_{1};

  // Last-seen responder versions, keyed by peer (the requester half of the
  // conditional fetch). `known` holds the section bits whose generations are
  // valid under `epoch`; a baseline is attached to a request only when it
  // covers every requested section.
  struct PeerView {
    std::uint64_t epoch{0};
    wire::SectionGens gens;
    std::uint8_t known{0};
  };
  std::unordered_map<MacAddress, PeerView> peer_views_;
  // storage().weakening_generation() as of the last cycle; a move drops
  // the neighbours baselines above (see end_inquiry).
  std::uint32_t storage_weakening_gen_{0};

  // Split-fetch assembly state.
  struct SplitState {
    wire::FetchResponse assembled;
    int next_section{0};
    // The assembly was already restarted once after a mid-conversation
    // epoch change; a second change aborts the fetch for this cycle.
    bool epoch_retry{false};
  };

  Stats stats_;
};

}  // namespace peerhood
