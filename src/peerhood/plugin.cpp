#include "peerhood/plugin.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "peerhood/daemon.hpp"

namespace peerhood {

Plugin::Plugin(Daemon& daemon, Technology technology)
    : daemon_{daemon}, tech_{technology} {}

Plugin::~Plugin() { stop(); }

void Plugin::start() {
  stopped_ = false;
  const sim::TechnologyParams& params = daemon_.network().params(tech_);
  // Random initial phase so co-located daemons do not inquire in lock-step.
  const SimDuration phase =
      seconds(daemon_.simulator().rng().uniform(
          0.0, std::chrono::duration<double>(params.inquiry_interval).count()));
  schedule_next_cycle(phase);
}

void Plugin::schedule_next_cycle(SimDuration delay) {
  if (stopped_) return;
  cycle_event_ = daemon_.simulator().schedule_after(delay, [this] {
    cycle_event_ = sim::kInvalidEvent;
    begin_cycle();
  });
}

void Plugin::stop() {
  stopped_ = true;
  if (cycle_event_ != sim::kInvalidEvent) {
    daemon_.simulator().cancel(cycle_event_);
    cycle_event_ = sim::kInvalidEvent;
  }
  if (inquiry_end_event_ != sim::kInvalidEvent) {
    daemon_.simulator().cancel(inquiry_end_event_);
    inquiry_end_event_ = sim::kInvalidEvent;
    // Stopped mid-inquiry: close the window without collecting responders.
    daemon_.network().cancel_inquiry(daemon_.mac(), tech_);
  }
  if (pending_.has_value()) {
    daemon_.simulator().cancel(pending_->timeout);
    pending_.reset();
  }
  cycle_active_ = false;
}

void Plugin::trigger_cycle() { begin_cycle(); }

void Plugin::forget_peers() {
  peer_views_.clear();
  storage_weakening_gen_ = 0;
}

void Plugin::begin_cycle() {
  if (cycle_active_) return;  // previous cycle overran its interval
  cycle_active_ = true;
  ++stats_.loops;
  net::Network& network = daemon_.network();
  network.begin_inquiry(daemon_.mac(), tech_);
  inquiry_end_event_ = daemon_.simulator().schedule_after(
      network.params(tech_).inquiry_duration, [this] {
        inquiry_end_event_ = sim::kInvalidEvent;
        end_inquiry();
      });
}

void Plugin::end_inquiry() {
  net::Network& network = daemon_.network();
  const std::vector<MacAddress> raw =
      network.end_inquiry(daemon_.mac(), tech_);

  // Integrating a snapshot is not a pure function of the snapshot: a record
  // removed from — or weakened in — *our* storage since the last cycle can
  // make a candidate route we previously rejected (dominated by the late
  // record) win now. Conditional fetch would suppress exactly that
  // re-offer, so any local weakening drops every neighbours-section
  // baseline once and the next fetches re-ship full snapshots.
  const std::uint32_t weakening_gen = daemon_.storage().weakening_generation();
  if (weakening_gen != storage_weakening_gen_) {
    storage_weakening_gen_ = weakening_gen;
    for (auto& [mac, view] : peer_views_) {
      view.known &= static_cast<std::uint8_t>(~wire::kSectionNeighbours);
    }
  }

  stats_.responders += raw.size();

  cycle_responders_.clear();
  fetch_queue_.clear();
  fetch_index_ = 0;
  cycle_responders_.reserve(raw.size());
  fetch_queue_.reserve(raw.size());

  const SimTime now = daemon_.simulator().now();
  for (const MacAddress responder : raw) {
    // SDP query for the PeerHood tag (§2.3).
    if (!network.peerhood_tag(responder, tech_)) {
      ++stats_.non_peerhood;
      continue;
    }
    cycle_responders_.push_back(responder);
    const auto record = daemon_.storage().find(responder);
    const bool is_new = !record.has_value() || !record->is_direct();
    const bool recheck_due =
        record.has_value() &&
        now - record->last_seen >= daemon_.config().service_check_interval;
    if (is_new || recheck_due) {
      // Full information fetch for new devices and at the service checking
      // interval (energy saving, §3.5).
      fetch_queue_.push_back(FetchJob{responder, /*full=*/true});
    } else {
      // Known device: refresh only the neighbourhood snapshot (and sample
      // the link quality) every loop — this is what makes the maximum
      // notification delay equal jumps x searching cycle (Fig. 3.10).
      fetch_queue_.push_back(FetchJob{responder, /*full=*/false});
    }
  }
  process_next_responder();
}

void Plugin::process_next_responder() {
  if (fetch_index_ >= fetch_queue_.size()) {
    complete_cycle();
    return;
  }
  const FetchJob job = fetch_queue_[fetch_index_++];
  auto done = [this, job](std::optional<wire::FetchResponse> resp) {
    if (resp.has_value() && resp->epoch_changed && !resp->not_modified &&
        resp->sections != wire::kSectionAll) {
      // The responder restarted between our request and this (partial)
      // response: overlaying it onto the stored record would mix post-
      // restart sections with pre-restart state. Drop the baseline (already
      // re-seeded with the new epoch by on_fetch_response — erase it fully)
      // and requeue an unconditional full fetch this cycle instead.
      ++stats_.epoch_invalidations;
      peer_views_.erase(job.target);
      fetch_queue_.push_back(FetchJob{job.target, /*full=*/true});
      process_next_responder();
      return;
    }
    bool view_consistent = false;
    if (resp.has_value()) {
      if (resp->not_modified) {
        // Nothing the responder advertises moved since our baseline: skip
        // the whole analyzer/reconcile pass — re-integrating an identical
        // snapshot would re-reconcile every bridge route for nothing. The
        // exchange still happened, so the RSSI sample and the freshness
        // time stamp (Fig. 3.12) refresh exactly like a full fetch.
        ++stats_.not_modified;
        const int quality = sampled_quality(job.target, resp->load_percent);
        if (quality > 0) {
          daemon_.storage().refresh_direct(job.target, quality,
                                           daemon_.simulator().now());
        } else {
          // The device answered, so it is alive even if our own position
          // sample says the link is gone; keep the time stamp fresh.
          daemon_.storage().touch(job.target, daemon_.simulator().now());
        }
        view_consistent = true;  // nothing shipped, nothing to lose
      } else {
        view_consistent = integrate_response(job.target, *resp);
      }
    }
    if (!view_consistent) {
      // The fetch aborted (timeout / spoof / link lost mid-fetch) after
      // on_fetch_response may already have adopted newer generations from
      // the parts that did arrive. Keeping that baseline would make the
      // responder answer kNotModified for content we never integrated —
      // drop the view so the next fetch is an unconditional full one.
      peer_views_.erase(job.target);
    }
    process_next_responder();
  };
  if (job.full) {
    fetch_info(job.target, std::move(done));
  } else {
    const sim::TechnologyParams& params =
        daemon_.network().params(tech_);
    fetch_section(job.target, wire::kSectionNeighbours, params.fetch_time,
                  std::move(done));
  }
}

void Plugin::fetch_info(MacAddress target, FetchCallback done) {
  const sim::TechnologyParams& params =
      daemon_.network().params(tech_);
  if (daemon_.config().unified_fetch) {
    // One longer connection fetching everything (§3.4.1 suggestion).
    fetch_section(target, wire::kSectionAll, 2 * params.fetch_time,
                  std::move(done));
    return;
  }
  // The paper's four short connections (Fig. 3.7), issued sequentially; any
  // failure aborts the whole fetch for this cycle.
  auto state = std::make_shared<SplitState>();
  auto step = std::make_shared<std::function<void()>>();
  auto shared_done = std::make_shared<FetchCallback>(std::move(done));
  // Ownership of `step` flows through the continuation chain: each section's
  // callback holds the only strong reference while its request is in flight.
  // The step function itself captures a weak_ptr — a strong self-capture
  // would be a shared_ptr cycle that leaks the whole chain (state, callbacks)
  // once per split fetch, completed or abandoned.
  std::weak_ptr<std::function<void()>> weak_step = step;
  *step = [this, target, state, weak_step, shared_done, params] {
    if (state->next_section == 4) {
      // Sections answered kNotModified stay absent from the assembly; the
      // integration overlays them from the stored record. All four
      // unchanged collapses to a kNotModified result.
      if (state->assembled.sections == 0) {
        state->assembled.not_modified = true;
      }
      (*shared_done)(state->assembled);
      return;
    }
    const std::uint8_t section =
        wire::kSectionOrder[static_cast<std::size_t>(state->next_section)];
    ++state->next_section;
    // Always succeeds: whoever invoked *this* function holds a strong ref
    // for the duration of the call.
    auto self = weak_step.lock();
    fetch_section(
        target, section, params.fetch_time,
        [state, self, shared_done](std::optional<wire::FetchResponse> part) {
          if (!part.has_value()) {
            (*shared_done)(std::nullopt);
            return;
          }
          if (part->epoch_changed) {
            // Responder restarted mid-assembly: every part gathered so far
            // (including kNotModified conclusions) describes state that no
            // longer exists. Restart the assembly once — the view was reset
            // to the new epoch, so the re-fetches are unconditional — and
            // abort the cycle's fetch if it happens again.
            if (state->epoch_retry) {
              (*shared_done)(std::nullopt);
              return;
            }
            state->epoch_retry = true;
            state->assembled = wire::FetchResponse{};
            state->next_section = 0;
            (*self)();
            return;
          }
          if ((part->sections & wire::kSectionDevice) != 0) {
            state->assembled.device = part->device;
          }
          if ((part->sections & wire::kSectionPrototypes) != 0) {
            state->assembled.prototypes = part->prototypes;
          }
          if ((part->sections & wire::kSectionServices) != 0) {
            state->assembled.services = part->services;
          }
          if ((part->sections & wire::kSectionNeighbours) != 0) {
            state->assembled.neighbours = part->neighbours;
          }
          state->assembled.sections |= part->sections;
          state->assembled.load_percent = part->load_percent;
          (*self)();
        });
  };
  (*step)();
}

void Plugin::fetch_section(MacAddress target, std::uint8_t sections,
                           SimDuration cost, FetchCallback done, int attempt) {
  ++stats_.fetch_attempts;
  sim::Simulator& sim = daemon_.simulator();
  const sim::TechnologyParams& params =
      daemon_.network().params(tech_);
  // Short-connection establishment fault (the paper found these frequent
  // "even if the devices have strong enough signal", §4.3).
  if (sim.rng().bernoulli(params.fetch_failure_prob)) {
    ++stats_.fetch_failures;
    // `done` continues the fetch chain through raw-`this` captures; the
    // token parks the event harmlessly if the plugin dies before it fires.
    sim.schedule_after(cost, [token = sentinel_.token(),
                              done = std::move(done)] {
      if (token.expired()) return;
      done(std::nullopt);
    });
    return;
  }
  std::uint32_t request_id = next_request_id_++;
  if (request_id == wire::kSharedRequestId) request_id = next_request_id_++;
  wire::FetchRequest request{request_id, sections, std::nullopt};
  if (daemon_.config().conditional_fetch) {
    // Attach our last-seen versions when they cover every requested section
    // *and* we still hold a direct record to overlay absent sections from —
    // a view that outlived its record must not suppress a full re-fetch.
    const auto view = peer_views_.find(target);
    if (view != peer_views_.end() &&
        (view->second.known & sections) == sections &&
        daemon_.storage().contains_direct(target)) {
      request.baseline =
          wire::FetchBaseline{view->second.epoch, view->second.gens};
    }
  }
  daemon_.network().send_datagram(daemon_.mac(), target, tech_,
                                  wire::encode(request));
  PendingFetch pending;
  pending.target = target;
  pending.request_id = request_id;
  pending.done = std::move(done);
  const DaemonConfig& cfg = daemon_.config();
  const SimDuration deadline =
      seconds(std::chrono::duration<double>(cost).count() *
              cfg.fetch_timeout_mult) +
      cfg.fetch_timeout_extra;
  pending.timeout =
      sim.schedule_after(deadline, [this, target, sections, cost, attempt] {
        if (!pending_.has_value()) return;
        ++stats_.fetch_timeouts;
        FetchCallback cb = std::move(pending_->done);
        pending_.reset();
        const DaemonConfig& cfg = daemon_.config();
        if (attempt < cfg.fetch_retries) {
          // Re-ask after a jittered, doubling backoff: a loss burst that ate
          // the response (or the request) may still be in progress, and
          // synchronised retries from several requesters would pile onto the
          // same responder.
          ++stats_.fetch_retries;
          sim::Simulator& sim = daemon_.simulator();
          const double base =
              std::chrono::duration<double>(cfg.fetch_retry_backoff).count() *
              static_cast<double>(std::uint64_t{1} << attempt);
          const double scale = sim.rng().uniform(1.0 - cfg.fetch_retry_jitter,
                                                 1.0 + cfg.fetch_retry_jitter);
          sim.schedule_after(
              seconds(base * scale),
              [this, token = sentinel_.token(), target, sections, cost,
               attempt, cb = std::move(cb)]() mutable {
                if (token.expired() || stopped_) return;
                fetch_section(target, sections, cost, std::move(cb),
                              attempt + 1);
              });
          return;
        }
        cb(std::nullopt);
      });
  pending_ = std::move(pending);
}

void Plugin::on_fetch_response(MacAddress from,
                               const wire::FetchResponse& response) {
  // Shared cached frames cannot echo our id (wire::kSharedRequestId); they
  // are matched by peer address instead — a response always arrives (if at
  // all) well inside the pending window, so the address is unambiguous.
  if (!pending_.has_value() || pending_->target != from) {
    ++stats_.stale_responses;  // unsolicited, late or duplicated on the air
    return;
  }
  if (response.request_id != pending_->request_id &&
      response.request_id != wire::kSharedRequestId) {
    ++stats_.stale_responses;  // answers a fetch we already gave up on
    return;
  }
  bool epoch_changed = false;
  if (!response.not_modified) {
    // Adopt the responder's versions for the sections it shipped. An epoch
    // change (responder restart) invalidates everything we knew. First
    // contact (no baseline yet) is not a change — only a view that held
    // real generations can be invalidated.
    const auto view_it = peer_views_.find(from);
    epoch_changed = view_it != peer_views_.end() &&
                    view_it->second.known != 0 &&
                    view_it->second.epoch != response.epoch;
    PeerView& view = peer_views_[from];
    if (view.epoch != response.epoch) {
      view = PeerView{};
      view.epoch = response.epoch;
    }
    for (const std::uint8_t section : wire::kSectionOrder) {
      if ((response.sections & section) == 0) continue;
      view.gens.of(section) = response.gens.of(section);
      view.known |= section;
    }
  }
  daemon_.simulator().cancel(pending_->timeout);
  FetchCallback cb = std::move(pending_->done);
  pending_.reset();
  // Annotate rather than mutate: `response` aliases the decoder's frame and
  // epoch_changed is requester-side knowledge, not wire state.
  wire::FetchResponse annotated = response;
  annotated.epoch_changed = epoch_changed;
  cb(annotated);
}

int Plugin::sampled_quality(MacAddress target, std::uint8_t load_percent) {
  // RSSI sampled while the fetch connection was up (§3.4.1).
  int quality =
      daemon_.network().sample_quality(daemon_.mac(), target, tech_);
  if (quality <= 0) return quality;
  if (daemon_.config().load_derating) {
    // §4: de-rate the advertised quality by the responder's bridge load to
    // steer routes away from bottleneck bridges.
    quality = static_cast<int>(
        quality * (1.0 - static_cast<double>(load_percent) / 100.0));
    quality = std::max(quality, 1);
  }
  return quality;
}

bool Plugin::integrate_response(MacAddress target,
                                const wire::FetchResponse& response) {
  const std::uint8_t sections = response.sections;
  if ((sections & wire::kSectionDevice) != 0 &&
      response.device.mac != target) {
    return false;  // spoofed
  }
  const int quality = sampled_quality(target, response.load_percent);
  if (quality <= 0) return false;  // responder moved away mid-fetch

  // Overlay: sections the (delta) response carries come from the wire, the
  // rest from the stored direct record — absent sections are unchanged by
  // protocol contract. A delta for a device we no longer hold is dropped;
  // the next cycle sees it as new and fetches full (no baseline).
  std::optional<DeviceRecord> stored;
  if (sections != wire::kSectionAll) {
    stored = daemon_.storage().find(target);
    if (!stored.has_value() || !stored->is_direct()) return false;
  }
  if (sections != wire::kSectionAll) ++stats_.delta_responses;

  DeviceRecord direct;
  direct.device = (sections & wire::kSectionDevice) != 0 ? response.device
                                                         : stored->device;
  direct.prototypes = (sections & wire::kSectionPrototypes) != 0
                          ? response.prototypes
                          : stored->prototypes;
  direct.services = (sections & wire::kSectionServices) != 0
                        ? response.services
                        : stored->services;
  direct.jump = 0;
  direct.route_mobility = 0;
  direct.quality_sum = quality;
  direct.min_link_quality = quality;
  direct.via_tech = tech_;

  if ((sections & wire::kSectionNeighbours) != 0) {
    stats_.integrations += static_cast<std::uint64_t>(
        daemon_.analyzer().integrate(daemon_.storage(), std::move(direct),
                                     response.neighbours, tech_,
                                     daemon_.simulator().now()));
    return true;
  }
  // Neighbourhood unchanged: refresh the direct record in place — identity,
  // services and the measured link quality — without the route-propagation
  // and bridge-reconcile pass (an empty snapshot would wipe every route
  // learned through this responder).
  direct.neighbour_links = stored->neighbour_links;
  direct.last_seen = daemon_.simulator().now();
  direct.missed_loops = 0;
  stats_.integrations += static_cast<std::uint64_t>(
      daemon_.storage().upsert(std::move(direct)) ? 1 : 0);
  return true;
}

void Plugin::complete_cycle() {
  const auto removed = daemon_.storage().age_direct(
      tech_, cycle_responders_, daemon_.config().max_missed_loops,
      daemon_.simulator().now());
  stats_.removed_devices += removed.size();
  // Dropped devices lose their version baselines too: if one comes back it
  // gets a clean full fetch.
  for (const MacAddress mac : removed) peer_views_.erase(mac);
  cycle_active_ = false;
  // Jittered rescheduling: inquiry windows must slide relative to the
  // neighbours' windows, otherwise two devices whose windows permanently
  // overlap would never discover each other under the Bluetooth inquiry
  // asymmetry (§3.4.2 — the paper observes only *occasional* misses).
  const sim::TechnologyParams& params =
      daemon_.network().params(tech_);
  const double jitter = daemon_.simulator().rng().uniform(0.7, 1.1);
  const double base =
      std::chrono::duration<double>(params.inquiry_interval).count();
  schedule_next_cycle(seconds(base * jitter));
}

}  // namespace peerhood
