// dial_with_ack — the one dial state machine of the stack: open a transport
// connection to `hop`, send `first_frame`, and await the PH_OK / PH_FAIL
// chain acknowledgement (§4.1) under a deadline. Used by Library (connect,
// resume) and BridgeService (downstream chaining), which previously each
// hand-rolled this wiring.
//
// Ownership: the half-open connection is parked in a net::HalfOpenDial whose
// handlers capture only the state (see src/net/dial_state.hpp); every
// completion path — ack, peer close, timeout, connect failure — severs the
// handlers, so no dial leaves a handler cycle behind. `done` fires exactly
// once, with an open connection (handlers cleared, ack consumed) or an
// error.
#pragma once

#include <functional>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "net/network.hpp"

namespace peerhood {

void dial_with_ack(net::Network& network, MacAddress from,
                   const net::NetAddress& hop, Bytes first_frame,
                   SimDuration timeout,
                   std::function<void(Result<net::ConnectionPtr>)> done);

}  // namespace peerhood
