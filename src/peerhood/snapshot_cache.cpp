#include "peerhood/snapshot_cache.hpp"

#include "discovery/analyzer.hpp"
#include "net/frame_check.hpp"

namespace peerhood {

void SnapshotCache::set_caching(bool enabled) {
  caching_ = enabled;
  if (!enabled) {
    for (CachedFull& slot : full_) slot.frame.reset();
    not_modified_.reset();
  }
}

bool SnapshotCache::sections_equal(std::uint8_t sections,
                                   const wire::SectionGens& a,
                                   const wire::SectionGens& b) {
  for (const std::uint8_t section : wire::kSectionOrder) {
    if ((sections & section) == 0) continue;
    if (a.of(section) != b.of(section)) return false;
  }
  return true;
}

SnapshotCache::FramePtr SnapshotCache::encode_frame(
    const wire::FetchResponse& response) const {
  ByteWriter writer;
  if (prefix_.has_value()) {
    // Datagram-ready frame: sealed integrity header + tag + body, baked in
    // once so every requester at this generation ships the same allocation.
    net::begin_frame(writer);
    writer.u8(*prefix_);
    wire::encode_into(writer, response);
    Bytes frame = std::move(writer).take();
    net::seal_frame(frame);
    return std::make_shared<const Bytes>(std::move(frame));
  }
  wire::encode_into(writer, response);
  return std::make_shared<const Bytes>(std::move(writer).take());
}

wire::FetchResponse SnapshotCache::build_response(
    std::uint8_t sections, const SnapshotSource& src) const {
  wire::FetchResponse response;
  response.request_id = wire::kSharedRequestId;
  response.sections = sections;
  response.load_percent = src.load_percent;
  response.epoch = src.epoch;
  response.gens = src.gens;
  if ((sections & wire::kSectionDevice) != 0 && src.device != nullptr) {
    response.device = *src.device;
  }
  if ((sections & wire::kSectionPrototypes) != 0 && src.prototypes != nullptr) {
    response.prototypes = *src.prototypes;
  }
  if ((sections & wire::kSectionServices) != 0 && src.services != nullptr) {
    response.services = *src.services;
  }
  if ((sections & wire::kSectionNeighbours) != 0 && src.storage != nullptr) {
    response.neighbours = snapshot_entries(*src.storage);
  }
  return response;
}

SnapshotCache::FramePtr SnapshotCache::respond(
    const wire::FetchRequest& request, const SnapshotSource& src) {
  const std::uint8_t sections =
      static_cast<std::uint8_t>(request.sections & wire::kSectionAll);
  if (request.baseline.has_value() && request.baseline->epoch == src.epoch) {
    // Conditional fetch against a live baseline: ship only what moved.
    std::uint8_t changed = 0;
    for (const std::uint8_t section : wire::kSectionOrder) {
      if ((sections & section) == 0) continue;
      if (request.baseline->gens.of(section) != src.gens.of(section)) {
        changed |= section;
      }
    }
    if (changed == 0) {
      ++stats_.not_modified;
      if (caching_ && not_modified_ != nullptr &&
          not_modified_load_ == src.load_percent) {
        return not_modified_;
      }
      wire::FetchResponse response;
      response.not_modified = true;
      response.request_id = wire::kSharedRequestId;
      response.load_percent = src.load_percent;
      FramePtr frame = encode_frame(response);
      if (caching_) {
        not_modified_ = frame;
        not_modified_load_ = src.load_percent;
      }
      return frame;
    }
    // Deltas are requester-specific (they depend on the baseline), so they
    // are encoded afresh and can echo the real request id.
    ++stats_.deltas;
    wire::FetchResponse response = build_response(changed, src);
    response.request_id = request.request_id;
    return encode_frame(response);
  }

  // Full response: no baseline, or the responder restarted since the
  // requester last looked (epoch mismatch — generations are incomparable).
  CachedFull& slot = full_[sections];
  if (caching_ && slot.frame != nullptr && slot.epoch == src.epoch &&
      slot.load_percent == src.load_percent &&
      sections_equal(sections, slot.gens, src.gens)) {
    ++stats_.full_hits;
    return slot.frame;
  }
  ++stats_.full_encodes;
  FramePtr frame = encode_frame(build_response(sections, src));
  if (caching_) {
    slot.frame = frame;
    slot.gens = src.gens;
    slot.epoch = src.epoch;
    slot.load_percent = src.load_percent;
  }
  return frame;
}

}  // namespace peerhood
