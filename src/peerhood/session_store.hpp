// SessionStore — the daemon's crash-survivable session journal.
//
// Everything else a daemon holds is volatile: a crash wipes DeviceStorage,
// plugin baselines and the engine's live session map. This journal models
// the one sliver of state a real daemon would fsync: per session, the resume
// frontier of its ReliableChannel — the next sequence it would send and the
// next it expects to receive. A restarted daemon honours kResumeRestart by
// looking the session up here and rebuilding the reliable layer at exactly
// that frontier, so the surviving peer replays its unacked outbox and the
// session continues with exactly-once in-order delivery.
//
// The store is bounded (crash storms must not grow it without limit): when
// full, the least-recently-touched record is dropped and counted — a client
// resuming such a session is refused with kUnknownSession and falls back to
// a fresh connect, which is degraded service, not a protocol violation.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "common/mac_address.hpp"

namespace peerhood {

struct SessionRecord {
  std::uint64_t session_id{0};
  MacAddress peer;
  std::string service;
  // ReliableChannel resume frontier: our next outgoing sequence and the next
  // incoming sequence we expect (== cumulative ack + 1).
  std::uint64_t next_seq{1};
  std::uint64_t expected{1};
};

class SessionStore {
 public:
  explicit SessionStore(std::size_t capacity = 64) : capacity_{capacity} {}

  // Optional file persistence — the journal of a *real* daemon process.
  // bind_file() loads every record a previous incarnation journalled at
  // `path` (the kill -9 restart path), then rewrites the file on each
  // mutation via write-temp + rename, so the on-disk journal is always a
  // complete, uncorrupted snapshot: a crash between a delivery and its
  // journal write loses at most the newest frontier — the at-least-once
  // boundary the resume protocol's dedup absorbs. Empty path (the default,
  // and every sim scenario) keeps the store purely in-memory.
  void bind_file(const std::string& path);
  [[nodiscard]] const std::string& journal_path() const { return path_; }

  // Inserts or overwrites the record and marks it most recently touched.
  void put(SessionRecord record);
  // Updates just the frontier of an existing record; false if unknown.
  bool update_frontier(std::uint64_t session_id, std::uint64_t next_seq,
                       std::uint64_t expected);
  [[nodiscard]] const SessionRecord* find(std::uint64_t session_id) const;
  void erase(std::uint64_t session_id);

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  // Records evicted because the journal was full.
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  void touch(std::uint64_t session_id);
  void persist() const;

  std::size_t capacity_;
  std::string path_;
  std::map<std::uint64_t, SessionRecord> records_;
  // LRU order, least recent first; small enough that linear scans are fine.
  std::deque<std::uint64_t> order_;
  std::uint64_t evictions_{0};
};

}  // namespace peerhood
