// Channel: an application-level session that survives handovers. The paper
// substitutes the underlying connection while keeping the application-facing
// object (the ChangeConnection callback, §5.2.1 state 2); Channel is that
// object. It also carries the `sending` flag of §5.3 that tells the handover
// monitor whether connection loss currently matters.
//
// Ownership model (PR 3, see common/handler_slot.hpp): handlers installed on
// a channel must not own the channel — keep the ChannelPtr in a registry
// (session table, fixture member, scenario vector) and capture a raw/weak
// reference. close() is idempotent and severs every handler, so a closed
// channel releases its captures immediately; the close handler fires at most
// once per transport, even when the loss is reported reentrantly from both
// the endpoint and the transport side — after a substitution the re-armed
// latch reports the new connection's death again (the session-survives-
// transport contract).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/handler_slot.hpp"
#include "common/mac_address.hpp"
#include "common/result.hpp"
#include "net/connection.hpp"
#include "peerhood/protocol.hpp"

namespace peerhood {

class Channel {
 public:
  using DataHandler = std::function<void(const Bytes&)>;
  using CloseHandler = std::function<void()>;
  // Invoked after a successful connection substitution (routing handover or
  // direct resume). The argument is the new underlying connection.
  using HandoverHandler = std::function<void(const net::ConnectionPtr&)>;

  Channel(std::uint64_t session_id, std::string service, MacAddress peer,
          net::ConnectionPtr connection);
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  [[nodiscard]] std::uint64_t session_id() const { return session_id_; }
  [[nodiscard]] const std::string& service() const { return service_; }
  // The application-level peer (not the bridge the traffic flows through).
  [[nodiscard]] MacAddress peer() const { return peer_; }

  Status write(Bytes frame);
  void set_data_handler(DataHandler handler);
  void set_close_handler(CloseHandler handler);
  void set_handover_handler(HandoverHandler handler);

  [[nodiscard]] bool open() const;
  // Idempotent: severs all handlers (releasing their captures), detaches and
  // closes the transport. The channel's own close handler does not fire (a
  // local close is not a session loss); afterwards set_*_handler is a no-op
  // and the session cannot be resumed.
  void close();
  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] int link_quality();

  // §5.3 "sending" flag (the paper's Getsending method): true while the
  // application still depends on the connection.
  void set_sending(bool sending) { sending_ = sending; }
  [[nodiscard]] bool sending() const { return sending_; }

  // Substitutes the underlying connection, re-attaching the application
  // handlers; the old connection is closed silently (its close must not be
  // reported as a session loss). No-op on a closed channel — the incoming
  // connection is closed instead.
  void replace_connection(net::ConnectionPtr connection);

  [[nodiscard]] const net::ConnectionPtr& connection() const {
    return connection_;
  }

  // Duplicate handshakes / acknowledgements this channel swallowed instead
  // of delivering to the application (dial retransmission + lossy media).
  [[nodiscard]] std::uint64_t stray_handshakes_absorbed() const {
    return stray_handshakes_absorbed_;
  }

  // Server side: reconnection parameters pushed by the client (§5.3 Method 2).
  std::optional<wire::ClientParams> client_params;

 private:
  void attach();
  bool absorb_stray_handshake(const Bytes& frame);

  std::uint64_t session_id_;
  std::string service_;
  MacAddress peer_;
  net::ConnectionPtr connection_;
  HandlerSlot<void(const Bytes&)> data_slot_;
  HandlerSlot<void()> close_slot_;
  HandlerSlot<void(const net::ConnectionPtr&)> handover_slot_;
  bool sending_{true};
  bool closed_{false};
  // Latches after the current transport's loss was reported; reset by
  // replace_connection so each substituted transport reports once.
  bool loss_reported_{false};
  std::uint64_t stray_handshakes_absorbed_{0};
};

using ChannelPtr = std::shared_ptr<Channel>;

}  // namespace peerhood
