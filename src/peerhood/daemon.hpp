// Daemon — the core PeerHood process (§2.2.1): owns the network plugins,
// the DeviceStorage and the registered services; answers other devices'
// information-fetch inquiries (the "listening to advertise" role) and serves
// the library/application side.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mac_address.hpp"
#include "discovery/analyzer.hpp"
#include "discovery/device_storage.hpp"
#include "net/network.hpp"
#include "peerhood/config.hpp"
#include "peerhood/engine.hpp"
#include "peerhood/plugin.hpp"
#include "peerhood/session_store.hpp"
#include "peerhood/snapshot_cache.hpp"
#include "sim/mobility.hpp"
#include "sim/simulator.hpp"

namespace peerhood {

class Daemon {
 public:
  Daemon(net::Network& network, MacAddress mac,
         std::shared_ptr<const sim::MobilityModel> mobility,
         DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  void start();
  void stop();
  // Hard-kill: stop() plus loss of every piece of volatile state — live
  // sessions, discovery storage, plugin baselines, queued replies. What a
  // real process death leaves behind is exactly the SessionStore journal
  // (the "disk") and the registered services (the model being an
  // application that re-registers on restart). A subsequent start() mints a
  // fresh epoch, so peers detect the restart on their next fetch.
  void crash();
  [[nodiscard]] bool running() const { return running_; }

  // --- Identity / wiring -----------------------------------------------------
  [[nodiscard]] const DeviceInfo& self_info() const { return self_; }
  [[nodiscard]] MacAddress mac() const { return self_.mac; }
  [[nodiscard]] const DaemonConfig& config() const { return config_; }
  [[nodiscard]] DeviceStorage& storage() { return storage_; }
  [[nodiscard]] const DeviceStorage& storage() const { return storage_; }
  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] sim::Simulator& simulator() { return network_.simulator(); }
  [[nodiscard]] const NeighbourhoodAnalyzer& analyzer() const {
    return analyzer_;
  }
  [[nodiscard]] std::shared_ptr<const sim::MobilityModel> mobility() const {
    return mobility_;
  }

  // --- Services ---------------------------------------------------------------
  // Registers a service for advertisement. Port 0 auto-assigns.
  Status register_service(ServiceInfo service);
  void unregister_service(std::string_view name);
  [[nodiscard]] const std::vector<ServiceInfo>& local_services() const {
    return services_;
  }

  // --- Plugins ------------------------------------------------------------------
  [[nodiscard]] Plugin* plugin(Technology tech);

  // --- Bridge load (for advertised-quality de-rating, §4 / E11) ----------------
  void set_load_fraction(double fraction);
  [[nodiscard]] double load_fraction() const { return load_fraction_; }

  // Session-id mint for client-side connections.
  [[nodiscard]] std::uint64_t next_session_id();

  // --- Discovery-plane versioning ---------------------------------------------
  // Per-start epoch: a requester whose baseline carries a different epoch is
  // answered with a full response (its generations are incomparable).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  // Current per-section generations of the advertised snapshot.
  [[nodiscard]] wire::SectionGens section_gens() const;
  [[nodiscard]] const SnapshotCache& snapshot_cache() const { return cache_; }

  // Fetch requests duplicated on the medium and dropped by the responder's
  // suppression memo (answering twice is idempotent but doubles cost).
  [[nodiscard]] std::uint64_t duplicate_requests() const {
    return duplicate_requests_;
  }

  // --- Crash tolerance ---------------------------------------------------------
  // The crash-survivable per-session resume journal (see session_store.hpp).
  [[nodiscard]] SessionStore& session_store() { return session_store_; }
  // Deferred fetch replies dropped because a peer's send queue was full.
  [[nodiscard]] std::uint64_t send_queue_drops() const {
    return send_queue_drops_;
  }

 private:
  struct PendingSend {
    std::uint64_t id{0};
    sim::EventId event{sim::kInvalidEvent};
    sim::RadioMedium::FramePtr frame;
    Technology tech{Technology::kBluetooth};
  };

  void on_datagram(Technology tech, MacAddress from,
                   std::span<const std::uint8_t> payload);
  void answer_fetch(Technology tech, MacAddress from,
                    const wire::FetchRequest& request);
  void flush_pending_send(std::uint64_t peer_key, std::uint64_t send_id);
  [[nodiscard]] SnapshotSource snapshot_source() const;

  net::Network& network_;
  std::shared_ptr<const sim::MobilityModel> mobility_;
  DaemonConfig config_;
  DeviceInfo self_;
  DeviceStorage storage_;
  NeighbourhoodAnalyzer analyzer_;
  Engine engine_;
  std::vector<std::unique_ptr<Plugin>> plugins_;
  std::vector<ServiceInfo> services_;
  SnapshotCache cache_{net::Network::kDatagramFrameTag};
  // Duplicate-suppression memo: last non-shared request id seen per
  // (requester, technology). Requesters mint fresh ids per attempt (retries
  // included), so only a fault-plane duplicate repeats the latest id.
  std::map<std::pair<std::uint64_t, std::uint8_t>, std::uint32_t>
      last_request_;
  SessionStore session_store_;
  // Capped per-peer queues of deferred fetch replies (oldest-drop).
  std::map<std::uint64_t, std::deque<PendingSend>> send_queues_;
  std::uint64_t next_send_id_{1};
  std::uint64_t send_queue_drops_{0};
  std::uint64_t duplicate_requests_{0};
  std::uint64_t epoch_{0};
  std::uint32_t services_gen_{1};
  double load_fraction_{0.0};
  std::uint16_t next_port_{100};
  std::uint16_t session_counter_{0};
  bool running_{false};
};

}  // namespace peerhood
