#include "peerhood/reliable_channel.hpp"

#include "common/bytes.hpp"

namespace peerhood {
namespace {

// Frame tags on the wire (distinct from migration framing; a channel uses
// either plain frames or a ReliableChannel on both ends).
constexpr std::uint8_t kTagData = 0xD1;
constexpr std::uint8_t kTagAck = 0xD2;

}  // namespace

ReliableChannel::ReliableChannel(sim::Simulator& sim, ChannelPtr channel,
                                 ReliableConfig config)
    : sim_{sim}, channel_{std::move(channel)}, config_{config} {
  channel_->set_data_handler([this](const Bytes& frame) { on_frame(frame); });
  channel_->set_handover_handler(
      [this](const net::ConnectionPtr&) { resync(); });
  retransmit_timer_.start(sim_, config_.retransmit_interval,
                          [this] { retransmit_tail(); },
                          config_.retransmit_interval);
}

ReliableChannel::~ReliableChannel() { shutdown(); }

void ReliableChannel::shutdown() {
  retransmit_timer_.stop();
  sim_.cancel(ack_timer_);
  ack_timer_ = sim::kInvalidEvent;
  ack_pending_ = false;
  // The channel outlives this layer whenever the application still holds a
  // ChannelPtr; its handlers capture a raw `this` and must be detached.
  if (channel_ != nullptr) {
    channel_->set_data_handler(nullptr);
    channel_->set_handover_handler(nullptr);
  }
  data_slot_.sever();
}

Status ReliableChannel::send(Bytes frame) {
  if (outbox_.size() >= config_.window) {
    return Status{ErrorCode::kCapacityExceeded, "reliable window full"};
  }
  const std::uint64_t seq = next_seq_++;
  outbox_.emplace(seq, frame);
  transmit(seq, frame);
  return Status::ok_status();
}

void ReliableChannel::transmit(std::uint64_t seq, const Bytes& payload) {
  ByteWriter writer;
  writer.u8(kTagData);
  writer.u64(seq);
  writer.blob(payload);
  // A failed write is fine: the frame stays in the outbox and the
  // retransmit timer (or post-handover resync) tries again.
  (void)channel_->write(std::move(writer).take());
}

void ReliableChannel::set_data_handler(DataHandler handler) {
  data_slot_.set(std::move(handler));
}

void ReliableChannel::on_frame(const Bytes& frame) {
  ByteReader reader{frame};
  const std::uint8_t tag = reader.u8();
  if (tag == kTagData) {
    const std::uint64_t seq = reader.u64();
    Bytes payload = reader.blob();
    if (!reader.ok()) return;
    if (seq >= expected_) {
      reorder_.emplace(seq, std::move(payload));
      // Deliver the contiguous prefix.
      while (!reorder_.empty() && reorder_.begin()->first == expected_) {
        Bytes next = std::move(reorder_.begin()->second);
        reorder_.erase(reorder_.begin());
        ++expected_;
        ++delivered_;
        data_slot_.invoke(next);
      }
    }
    // Duplicate or old frame: just (re)ack.
    if (!ack_pending_) {
      ack_pending_ = true;
      ack_timer_ = sim_.schedule_after(config_.ack_delay,
                                       [this] { flush_ack(); });
    }
    return;
  }
  if (tag == kTagAck) {
    const std::uint64_t cumulative = reader.u64();
    if (!reader.ok()) return;
    // Everything below `cumulative` is delivered at the peer.
    outbox_.erase(outbox_.begin(), outbox_.lower_bound(cumulative));
    return;
  }
}

void ReliableChannel::flush_ack() {
  ack_pending_ = false;
  ByteWriter writer;
  writer.u8(kTagAck);
  writer.u64(expected_);
  (void)channel_->write(std::move(writer).take());
}

void ReliableChannel::retransmit_tail() {
  if (!channel_->open()) return;
  for (const auto& [seq, payload] : outbox_) {
    ++retransmissions_;
    transmit(seq, payload);
  }
}

void ReliableChannel::resync() {
  if (ack_pending_) {
    sim_.cancel(ack_timer_);
    flush_ack();
  }
  for (const auto& [seq, payload] : outbox_) {
    ++retransmissions_;
    transmit(seq, payload);
  }
}

}  // namespace peerhood
