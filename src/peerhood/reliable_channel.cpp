#include "peerhood/reliable_channel.hpp"

#include <algorithm>

#include "common/bytes.hpp"

namespace peerhood {
namespace {

// Frame tags on the wire (distinct from migration framing; a channel uses
// either plain frames or a ReliableChannel on both ends).
constexpr std::uint8_t kTagData = 0xD1;
constexpr std::uint8_t kTagAck = 0xD2;

}  // namespace

ReliableChannel::ReliableChannel(sim::Simulator& sim, ChannelPtr channel,
                                 ReliableConfig config)
    : sim_{sim},
      channel_{std::move(channel)},
      config_{config},
      rto_{config.retransmit_interval} {
  channel_->set_data_handler([this](const Bytes& frame) { on_frame(frame); });
  channel_->set_handover_handler(
      [this](const net::ConnectionPtr&) { resync(); });
}

ReliableChannel::~ReliableChannel() { shutdown(); }

void ReliableChannel::shutdown() {
  sim_.cancel(retransmit_event_);
  retransmit_event_ = sim::kInvalidEvent;
  sim_.cancel(ack_timer_);
  ack_timer_ = sim::kInvalidEvent;
  ack_pending_ = false;
  // The channel outlives this layer whenever the application still holds a
  // ChannelPtr; its handlers capture a raw `this` and must be detached.
  if (channel_ != nullptr) {
    channel_->set_data_handler(nullptr);
    channel_->set_handover_handler(nullptr);
  }
  data_slot_.sever();
}

Status ReliableChannel::send(Bytes frame) {
  if (outbox_.size() >= config_.window) {
    return Status{ErrorCode::kCapacityExceeded, "reliable window full"};
  }
  const std::uint64_t seq = next_seq_++;
  outbox_.emplace(seq, frame);
  transmit(seq, frame);
  if (retransmit_event_ == sim::kInvalidEvent) arm_retransmit();
  return Status::ok_status();
}

void ReliableChannel::transmit(std::uint64_t seq, const Bytes& payload) {
  ByteWriter writer;
  writer.u8(kTagData);
  writer.u64(seq);
  writer.blob(payload);
  // A failed write is fine: the frame stays in the outbox and the
  // retransmit timer (or post-handover resync) tries again.
  (void)channel_->write(std::move(writer).take());
}

void ReliableChannel::set_data_handler(DataHandler handler) {
  data_slot_.set(std::move(handler));
}

void ReliableChannel::on_frame(const Bytes& frame) {
  ByteReader reader{frame};
  const std::uint8_t tag = reader.u8();
  if (tag == kTagData) {
    const std::uint64_t seq = reader.u64();
    Bytes payload = reader.blob();
    if (!reader.ok()) return;
    const bool in_order = seq == expected_;
    if (seq >= expected_) {
      reorder_.emplace(seq, std::move(payload));
      // Deliver the contiguous prefix.
      while (!reorder_.empty() && reorder_.begin()->first == expected_) {
        Bytes next = std::move(reorder_.begin()->second);
        reorder_.erase(reorder_.begin());
        ++expected_;
        ++delivered_;
        data_slot_.invoke(next);
      }
    }
    if (!in_order) {
      // A gap, a duplicate or an old frame: ack immediately so the sender
      // sees duplicate cumulative acks and can fast-retransmit the hole.
      flush_ack();
      return;
    }
    if (!ack_pending_) {
      ack_pending_ = true;
      ack_timer_ = sim_.schedule_after(config_.ack_delay,
                                       [this] { flush_ack(); });
    }
    return;
  }
  if (tag == kTagAck) {
    const std::uint64_t cumulative = reader.u64();
    if (!reader.ok()) return;
    on_ack(cumulative);
    return;
  }
}

void ReliableChannel::on_ack(std::uint64_t cumulative) {
  if (cumulative < highest_ack_) return;  // reordered stale ack: ignore
  if (cumulative > highest_ack_) {
    // Progress: everything below `cumulative` is delivered at the peer.
    highest_ack_ = cumulative;
    dup_acks_ = 0;
    outbox_.erase(outbox_.begin(), outbox_.lower_bound(cumulative));
    rto_ = config_.retransmit_interval;
    arm_retransmit();
    return;
  }
  // Duplicate cumulative ack: the peer is stuck at a hole we can fill.
  if (outbox_.empty() || config_.dup_ack_threshold <= 0) return;
  if (++dup_acks_ < config_.dup_ack_threshold) return;
  dup_acks_ = 0;
  ++fast_retransmits_;
  ++retransmissions_;
  transmit(outbox_.begin()->first, outbox_.begin()->second);
}

void ReliableChannel::flush_ack() {
  sim_.cancel(ack_timer_);
  ack_timer_ = sim::kInvalidEvent;
  ack_pending_ = false;
  ByteWriter writer;
  writer.u8(kTagAck);
  writer.u64(expected_);
  (void)channel_->write(std::move(writer).take());
}

void ReliableChannel::arm_retransmit() {
  sim_.cancel(retransmit_event_);
  retransmit_event_ = sim::kInvalidEvent;
  if (outbox_.empty()) return;
  retransmit_event_ = sim_.schedule_after(rto_, [this] {
    retransmit_event_ = sim::kInvalidEvent;
    retransmit_outstanding();
  });
}

void ReliableChannel::retransmit_outstanding() {
  if (channel_->open()) {
    for (const auto& [seq, payload] : outbox_) {
      ++retransmissions_;
      transmit(seq, payload);
    }
  }
  // No progress since the last arm: back off so a dead or partitioned link
  // is probed gently; the next genuine ack resets to the base interval.
  rto_ = std::min(rto_ + rto_, config_.retransmit_cap);
  arm_retransmit();
}

void ReliableChannel::resync() {
  if (ack_pending_) flush_ack();
  // The substituted connection is fresh; restart probing at the base rate.
  rto_ = config_.retransmit_interval;
  dup_acks_ = 0;
  for (const auto& [seq, payload] : outbox_) {
    ++retransmissions_;
    transmit(seq, payload);
  }
  arm_retransmit();
}

}  // namespace peerhood
