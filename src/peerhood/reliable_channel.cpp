#include "peerhood/reliable_channel.hpp"

#include <algorithm>

#include "common/bytes.hpp"

namespace peerhood {
namespace {

// Frame tags on the wire (distinct from migration framing; a channel uses
// either plain frames or a ReliableChannel on both ends).
constexpr std::uint8_t kTagData = 0xD1;
constexpr std::uint8_t kTagAck = 0xD2;

}  // namespace

Bytes encode_reliable_data(std::uint64_t seq, const Bytes& payload) {
  ByteWriter writer;
  writer.u8(kTagData);
  writer.u64(seq);
  writer.blob(payload);
  return std::move(writer).take();
}

Bytes encode_reliable_ack(std::uint64_t cumulative, std::uint32_t window) {
  ByteWriter writer;
  writer.u8(kTagAck);
  writer.u64(cumulative);
  writer.u32(window);
  return std::move(writer).take();
}

std::optional<ReliableFrame> decode_reliable_frame(
    std::span<const std::uint8_t> frame) {
  ByteReader reader{frame};
  ReliableFrame decoded;
  switch (reader.u8()) {
    case kTagData:
      decoded.kind = ReliableFrame::Kind::kData;
      decoded.seq = reader.u64();
      decoded.payload = reader.blob();
      break;
    case kTagAck:
      decoded.kind = ReliableFrame::Kind::kAck;
      decoded.cumulative = reader.u64();
      decoded.window = reader.u32();
      break;
    default:
      return std::nullopt;
  }
  if (!reader.ok()) return std::nullopt;
  return decoded;
}

ReliableChannel::ReliableChannel(sim::Simulator& sim, ChannelPtr channel,
                                 ReliableConfig config)
    : sim_{sim},
      channel_{std::move(channel)},
      config_{config},
      peer_window_{config.window},
      rto_{config.retransmit_interval} {
  channel_->set_data_handler([this](const Bytes& frame) { on_frame(frame); });
  channel_->set_handover_handler([this](const net::ConnectionPtr&) {
    resync();
    handover_slot_.invoke();
  });
}

ReliableChannel::~ReliableChannel() { shutdown(); }

void ReliableChannel::shutdown() {
  sim_.cancel(retransmit_event_);
  retransmit_event_ = sim::kInvalidEvent;
  sim_.cancel(ack_timer_);
  ack_timer_ = sim::kInvalidEvent;
  ack_pending_ = false;
  // The channel outlives this layer whenever the application still holds a
  // ChannelPtr; its handlers capture a raw `this` and must be detached.
  if (channel_ != nullptr) {
    channel_->set_data_handler(nullptr);
    channel_->set_handover_handler(nullptr);
  }
  data_slot_.sever();
  handover_slot_.sever();
}

Status ReliableChannel::send(Bytes frame) {
  // Backpressure check first — this path must not allocate when refusing,
  // so a never-draining peer bounds sender memory at the window size. The
  // message stays within the small-string buffer for the same reason.
  if (outbox_.size() >= std::min<std::uint64_t>(config_.window,
                                                std::max<std::uint64_t>(
                                                    peer_window_, 1))) {
    return Status{ErrorCode::kCapacityExceeded, "window full"};
  }
  const std::uint64_t seq = next_seq_++;
  outbox_.emplace(seq, frame);
  transmit(seq, frame);
  if (retransmit_event_ == sim::kInvalidEvent) arm_retransmit();
  journal();
  return Status::ok_status();
}

void ReliableChannel::transmit(std::uint64_t seq, const Bytes& payload) {
  // A failed write is fine: the frame stays in the outbox and the
  // retransmit timer (or post-handover resync) tries again.
  (void)channel_->write(encode_reliable_data(seq, payload));
}

void ReliableChannel::set_data_handler(DataHandler handler) {
  data_slot_.set(std::move(handler));
}

void ReliableChannel::set_handover_handler(HandoverHandler handler) {
  handover_slot_.set(std::move(handler));
}

void ReliableChannel::set_journal_hook(JournalHook hook) {
  journal_hook_ = std::move(hook);
  journal();
}

void ReliableChannel::journal() {
  if (journal_hook_) journal_hook_(next_seq_, expected_);
}

void ReliableChannel::restore(std::uint64_t next_seq, std::uint64_t expected) {
  next_seq_ = next_seq;
  highest_ack_ = next_seq;  // a restart holds nothing outstanding
  expected_ = expected;
  journal();
}

std::uint32_t ReliableChannel::advertised_window() const {
  const std::size_t used = reorder_.size();
  const std::size_t free =
      config_.reorder_cap > used ? config_.reorder_cap - used : 0;
  return static_cast<std::uint32_t>(
      std::min<std::size_t>(free, UINT32_MAX));
}

void ReliableChannel::on_frame(const Bytes& frame) {
  std::optional<ReliableFrame> decoded = decode_reliable_frame(frame);
  if (!decoded.has_value()) {
    ++malformed_frames_;
    return;
  }
  if (decoded->kind == ReliableFrame::Kind::kAck) {
    on_ack(decoded->cumulative, decoded->window);
    return;
  }
  const std::uint64_t seq = decoded->seq;
  const bool in_order = seq == expected_;
  if (seq >= expected_) {
    // Bound the reorder buffer: a frame past the cap (only possible from a
    // peer ignoring our advertised window) is dropped, not buffered; the
    // immediate ack below re-advertises the window.
    if (in_order || reorder_.count(seq) != 0 ||
        reorder_.size() < config_.reorder_cap) {
      reorder_.emplace(seq, std::move(decoded->payload));
      // Deliver the contiguous prefix.
      while (!reorder_.empty() && reorder_.begin()->first == expected_) {
        Bytes next = std::move(reorder_.begin()->second);
        reorder_.erase(reorder_.begin());
        ++expected_;
        ++delivered_;
        data_slot_.invoke(next);
      }
      journal();
    } else {
      ++reorder_drops_;
    }
  }
  if (!in_order) {
    // A gap, a duplicate or an old frame: ack immediately so the sender
    // sees duplicate cumulative acks and can fast-retransmit the hole.
    flush_ack();
    return;
  }
  if (!ack_pending_) {
    ack_pending_ = true;
    ack_timer_ = sim_.schedule_after(config_.ack_delay,
                                     [this] { flush_ack(); });
  }
}

void ReliableChannel::on_ack(std::uint64_t cumulative, std::uint32_t window) {
  if (cumulative < highest_ack_) return;  // reordered stale ack: ignore
  peer_window_ = window;
  if (cumulative > highest_ack_) {
    // Progress: everything below `cumulative` is delivered at the peer.
    highest_ack_ = cumulative;
    dup_acks_ = 0;
    outbox_.erase(outbox_.begin(), outbox_.lower_bound(cumulative));
    rto_ = config_.retransmit_interval;
    arm_retransmit();
    return;
  }
  // Duplicate cumulative ack: the peer is stuck at a hole we can fill.
  if (outbox_.empty() || config_.dup_ack_threshold <= 0) return;
  if (++dup_acks_ < config_.dup_ack_threshold) return;
  dup_acks_ = 0;
  ++fast_retransmits_;
  ++retransmissions_;
  transmit(outbox_.begin()->first, outbox_.begin()->second);
}

void ReliableChannel::flush_ack() {
  sim_.cancel(ack_timer_);
  ack_timer_ = sim::kInvalidEvent;
  ack_pending_ = false;
  (void)channel_->write(encode_reliable_ack(expected_, advertised_window()));
}

void ReliableChannel::arm_retransmit() {
  sim_.cancel(retransmit_event_);
  retransmit_event_ = sim::kInvalidEvent;
  if (outbox_.empty()) return;
  retransmit_event_ = sim_.schedule_after(rto_, [this] {
    retransmit_event_ = sim::kInvalidEvent;
    retransmit_outstanding();
  });
}

void ReliableChannel::retransmit_outstanding() {
  if (channel_->open()) {
    for (const auto& [seq, payload] : outbox_) {
      ++retransmissions_;
      transmit(seq, payload);
    }
  }
  // No progress since the last arm: back off so a dead or partitioned link
  // is probed gently; the next genuine ack resets to the base interval.
  rto_ = std::min(rto_ + rto_, config_.retransmit_cap);
  arm_retransmit();
}

void ReliableChannel::resync() {
  if (ack_pending_) flush_ack();
  // The substituted connection is fresh; restart probing at the base rate.
  rto_ = config_.retransmit_interval;
  dup_acks_ = 0;
  for (const auto& [seq, payload] : outbox_) {
    ++retransmissions_;
    transmit(seq, payload);
  }
  arm_retransmit();
}

}  // namespace peerhood
