// PeerHood wire protocol.
//
// Two planes, mirroring the paper:
//  * Discovery datagrams — the short information-fetch exchanges of the
//    inquiry thread (Fig. 3.7: device / prototype / service / neighbourhood
//    information), carrying the responder's DeviceStorage snapshot.
//  * Connection handshakes — the first frame on a new connection identifies
//    the intention ("new connection, bridge connection or connection
//    re-establish", §4.1): PH_CONNECT, PH_BRIDGE (+ destination address and
//    service name, Fig. 4.3) or PH_RESUME, answered by PH_OK / PH_FAIL.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/mac_address.hpp"
#include "common/result.hpp"
#include "discovery/analyzer.hpp"
#include "discovery/device.hpp"

namespace peerhood::wire {

// ---------------------------------------------------------------------------
// Commands (first byte of a message in either plane).
enum class Command : std::uint8_t {
  kFetchRequest = 1,
  kFetchResponse = 2,
  kConnect = 10,  // PH_CONNECT
  kBridge = 11,   // PH_BRIDGE
  kResume = 12,   // connection re-establish
  kOk = 13,       // PH_OK
  kFail = 14,     // PH_FAIL
};

// Sections of a fetch request/response; the paper issues four short
// connections (Fig. 3.7) or one unified connection (§3.4.1 suggestion).
enum Section : std::uint8_t {
  kSectionDevice = 1,
  kSectionPrototypes = 2,
  kSectionServices = 4,
  kSectionNeighbours = 8,
  kSectionAll = 15,
};

// ---------------------------------------------------------------------------
// Discovery plane.
struct FetchRequest {
  std::uint32_t request_id{0};
  std::uint8_t sections{kSectionAll};
};

struct FetchResponse {
  std::uint32_t request_id{0};
  std::uint8_t sections{0};
  // Responder's bridge occupancy percentage (0-100); used by the optional
  // load-derating of advertised link quality (§4: "bottle neck" avoidance).
  std::uint8_t load_percent{0};
  DeviceInfo device;
  std::vector<Technology> prototypes;
  std::vector<ServiceInfo> services;
  std::vector<NeighbourSnapshotEntry> neighbours;
};

[[nodiscard]] Bytes encode(const FetchRequest& request);
[[nodiscard]] Bytes encode(const FetchResponse& response);

// ---------------------------------------------------------------------------
// Connection plane.

// Reconnection parameters a client may push at connection start so that the
// server can call back after processing (§5.3 Method 2: "prototype, Pid
// number, service name, checksum, device name and port number are sent in
// the beginning of the connection").
struct ClientParams {
  DeviceInfo device;
  Technology tech{Technology::kBluetooth};
  std::string reconnect_service;
  std::uint16_t port{0};

  friend bool operator==(const ClientParams&, const ClientParams&) = default;
};

struct ConnectRequest {
  std::uint64_t session_id{0};
  std::string service;
  std::optional<ClientParams> client_params;
};

struct BridgeRequest {
  MacAddress destination;
  // What the last bridge sends to the final device: a fresh PH_CONNECT or a
  // PH_RESUME that substitutes an existing session.
  Command final_command{Command::kConnect};
  ConnectRequest inner;
};

struct FailInfo {
  ErrorCode code{ErrorCode::kConnectionFailed};
  std::string message;
};

// A decoded first-frame handshake or control response.
struct Handshake {
  Command command{Command::kOk};
  ConnectRequest connect;  // valid for kConnect / kResume
  BridgeRequest bridge;    // valid for kBridge
  FailInfo fail;           // valid for kFail
};

[[nodiscard]] Bytes encode_connect(const ConnectRequest& request);
[[nodiscard]] Bytes encode_resume(const ConnectRequest& request);
[[nodiscard]] Bytes encode_bridge(const BridgeRequest& request);
[[nodiscard]] Bytes encode_ok();
[[nodiscard]] Bytes encode_fail(ErrorCode code, std::string_view message);

// Decoders return nullopt on malformed input (remote peers are untrusted).
[[nodiscard]] std::optional<Handshake> decode_handshake(const Bytes& frame);
[[nodiscard]] std::optional<FetchRequest> decode_fetch_request(
    const Bytes& payload);
[[nodiscard]] std::optional<FetchResponse> decode_fetch_response(
    const Bytes& payload);
// Peeks the command byte of a datagram payload.
[[nodiscard]] std::optional<Command> peek_command(const Bytes& payload);

// Shared sub-encoders (exposed for tests).
void encode_device(ByteWriter& writer, const DeviceInfo& device);
[[nodiscard]] DeviceInfo decode_device(ByteReader& reader);
void encode_service(ByteWriter& writer, const ServiceInfo& service);
[[nodiscard]] ServiceInfo decode_service(ByteReader& reader);

}  // namespace peerhood::wire
