// PeerHood wire protocol.
//
// Two planes, mirroring the paper:
//  * Discovery datagrams — the short information-fetch exchanges of the
//    inquiry thread (Fig. 3.7: device / prototype / service / neighbourhood
//    information), carrying the responder's DeviceStorage snapshot.
//  * Connection handshakes — the first frame on a new connection identifies
//    the intention ("new connection, bridge connection or connection
//    re-establish", §4.1): PH_CONNECT, PH_BRIDGE (+ destination address and
//    service name, Fig. 4.3) or PH_RESUME, answered by PH_OK / PH_FAIL.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/mac_address.hpp"
#include "common/result.hpp"
#include "discovery/analyzer.hpp"
#include "discovery/device.hpp"

namespace peerhood::wire {

// ---------------------------------------------------------------------------
// Commands (first byte of a message in either plane).
enum class Command : std::uint8_t {
  kFetchRequest = 1,
  kFetchResponse = 2,
  kNotModified = 3,  // conditional fetch: nothing changed since the baseline
  kConnect = 10,     // PH_CONNECT
  kBridge = 11,      // PH_BRIDGE
  kResume = 12,      // connection re-establish
  kOk = 13,          // PH_OK
  kFail = 14,        // PH_FAIL
  // Connection re-establish against a *restarted* daemon: the responder lost
  // its in-memory sessions, but its SessionStore journal may still hold the
  // resume frontier. Sent by clients after a kResume was refused with
  // kUnknownSession (or after spotting a fresh epoch on re-fetch).
  kResumeRestart = 15,
};

// Sections of a fetch request/response; the paper issues four short
// connections (Fig. 3.7) or one unified connection (§3.4.1 suggestion).
enum Section : std::uint8_t {
  kSectionDevice = 1,
  kSectionPrototypes = 2,
  kSectionServices = 4,
  kSectionNeighbours = 8,
  kSectionAll = 15,
};

// ---------------------------------------------------------------------------
// Discovery plane.
//
// Versioned conditional fetch: the responder stamps every snapshot section
// with a generation counter and its whole state with a per-start epoch. A
// requester that has fetched before sends the versions it holds (the
// baseline); the responder answers kNotModified when nothing moved, or a
// delta response carrying only the sections whose generation differs.
// Generations are compared for *equality only* — wraparound and regression
// are simply "different", so a u32 counter is safe — and an epoch mismatch
// (responder restarted) always forces a full response.

// Per-section generation counters, one per Section bit.
struct SectionGens {
  std::uint32_t device{0};
  std::uint32_t prototypes{0};
  std::uint32_t services{0};
  std::uint32_t neighbours{0};

  [[nodiscard]] std::uint32_t& of(std::uint8_t section_bit);
  [[nodiscard]] std::uint32_t of(std::uint8_t section_bit) const;

  friend bool operator==(const SectionGens&, const SectionGens&) = default;
};

// The four section bits in canonical wire order.
inline constexpr std::uint8_t kSectionOrder[4] = {
    kSectionDevice, kSectionPrototypes, kSectionServices, kSectionNeighbours};

// The requester's last-seen versions of the responder's state.
struct FetchBaseline {
  std::uint64_t epoch{0};
  SectionGens gens;

  friend bool operator==(const FetchBaseline&, const FetchBaseline&) = default;
};

struct FetchRequest {
  std::uint32_t request_id{0};
  std::uint8_t sections{kSectionAll};
  // Present iff the requester holds versions for every requested section.
  std::optional<FetchBaseline> baseline;
};

// Cached response frames are shared verbatim between requesters, so they
// cannot echo a per-request id; they carry kSharedRequestId instead and the
// requester matches them by peer address. Requesters mint ids from 1.
inline constexpr std::uint32_t kSharedRequestId = 0;

struct FetchResponse {
  std::uint32_t request_id{0};
  // Sections present in *this* message. For a delta response this is the
  // subset of requested sections whose generation moved; absent requested
  // sections are unchanged and the requester keeps its view of them.
  std::uint8_t sections{0};
  // Responder's bridge occupancy percentage (0-100); used by the optional
  // load-derating of advertised link quality (§4: "bottle neck" avoidance).
  std::uint8_t load_percent{0};
  std::uint64_t epoch{0};
  // Generations of the present sections (others are meaningless).
  SectionGens gens;
  // Set when the frame was a kNotModified reply (not a wire field of
  // kFetchResponse; decode_fetch_response accepts both commands).
  bool not_modified{false};
  // Client-side annotation (never on the wire): the responder's epoch differs
  // from the epoch of the view this response was requested against — the
  // responder restarted mid-conversation, so any delta assembled so far is
  // relative to state that no longer exists.
  bool epoch_changed{false};
  DeviceInfo device;
  std::vector<Technology> prototypes;
  std::vector<ServiceInfo> services;
  std::vector<NeighbourSnapshotEntry> neighbours;
};

[[nodiscard]] Bytes encode(const FetchRequest& request);
[[nodiscard]] Bytes encode(const FetchResponse& response);
// As encode(), but appends to `writer` (lets callers prepend framing bytes
// without a copy; the snapshot cache bakes the net-layer datagram tag in).
void encode_into(ByteWriter& writer, const FetchRequest& request);
void encode_into(ByteWriter& writer, const FetchResponse& response);

// ---------------------------------------------------------------------------
// Connection plane.

// Reconnection parameters a client may push at connection start so that the
// server can call back after processing (§5.3 Method 2: "prototype, Pid
// number, service name, checksum, device name and port number are sent in
// the beginning of the connection").
struct ClientParams {
  DeviceInfo device;
  Technology tech{Technology::kBluetooth};
  std::string reconnect_service;
  std::uint16_t port{0};

  friend bool operator==(const ClientParams&, const ClientParams&) = default;
};

struct ConnectRequest {
  std::uint64_t session_id{0};
  std::string service;
  std::optional<ClientParams> client_params;
};

struct BridgeRequest {
  MacAddress destination;
  // What the last bridge sends to the final device: a fresh PH_CONNECT or a
  // PH_RESUME that substitutes an existing session.
  Command final_command{Command::kConnect};
  ConnectRequest inner;
};

struct FailInfo {
  ErrorCode code{ErrorCode::kConnectionFailed};
  std::string message;
};

// A decoded first-frame handshake or control response.
struct Handshake {
  Command command{Command::kOk};
  ConnectRequest connect;  // valid for kConnect / kResume / kResumeRestart
  BridgeRequest bridge;    // valid for kBridge
  FailInfo fail;           // valid for kFail
};

[[nodiscard]] Bytes encode_connect(const ConnectRequest& request);
[[nodiscard]] Bytes encode_resume(const ConnectRequest& request);
[[nodiscard]] Bytes encode_resume_restart(const ConnectRequest& request);
[[nodiscard]] Bytes encode_bridge(const BridgeRequest& request);
[[nodiscard]] Bytes encode_ok();
[[nodiscard]] Bytes encode_fail(ErrorCode code, std::string_view message);

// Decoders return nullopt on malformed input (remote peers are untrusted).
// They take spans so datagram dispatch can hand out views into the received
// frame without copying it into a fresh Bytes first.
[[nodiscard]] std::optional<Handshake> decode_handshake(
    std::span<const std::uint8_t> frame);
[[nodiscard]] std::optional<FetchRequest> decode_fetch_request(
    std::span<const std::uint8_t> payload);
// Decodes kFetchResponse and kNotModified frames (the latter yields
// not_modified == true and no sections).
[[nodiscard]] std::optional<FetchResponse> decode_fetch_response(
    std::span<const std::uint8_t> payload);
// Peeks the command byte of a datagram payload.
[[nodiscard]] std::optional<Command> peek_command(
    std::span<const std::uint8_t> payload);

// Shared sub-encoders (exposed for tests).
void encode_device(ByteWriter& writer, const DeviceInfo& device);
[[nodiscard]] DeviceInfo decode_device(ByteReader& reader);
void encode_service(ByteWriter& writer, const ServiceInfo& service);
[[nodiscard]] ServiceInfo decode_service(ByteReader& reader);

}  // namespace peerhood::wire
