// Generation-versioned snapshot cache — the responder half of the
// conditional-fetch discovery protocol. The paper's inquiry loop has every
// node periodically fetch every neighbour's DeviceStorage snapshot; encoding
// that snapshot per request makes the discovery round cost O(density ×
// snapshot size). The cache makes it proportional to *change* instead:
//
//  * Full responses are encoded once per (sections, generations, load)
//    combination and kept as a shared immutable buffer; repeat requests at
//    the same generation are answered with a shared_ptr copy — no encode, no
//    buffer allocation, and the radio medium ships the same allocation to
//    every requester (the FramePtr scheme of PR 2).
//  * A request carrying a baseline (the requester's last-seen epoch +
//    per-section generations) is answered with kNotModified — also a shared
//    cached frame — when nothing the requester asked for moved, or with a
//    freshly-encoded delta holding only the sections whose generation
//    differs.
//  * Epoch mismatch (responder restarted, generations regressed) and
//    generation wraparound both degrade safely to a full response because
//    generations are compared for equality only, never ordered.
//
// Shared frames cannot echo a per-request id (the bytes are immutable), so
// they carry wire::kSharedRequestId; requesters match them by peer address.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "discovery/device_storage.hpp"
#include "peerhood/protocol.hpp"

namespace peerhood {

// A view of the responder's advertised state, assembled by the owner per
// request. Pointers stay owned by the caller; `gens` hold the current
// per-section generations and `epoch` the per-start random token that
// invalidates every requester baseline when the responder restarts.
struct SnapshotSource {
  const DeviceInfo* device{nullptr};
  const std::vector<Technology>* prototypes{nullptr};
  const std::vector<ServiceInfo>* services{nullptr};
  const DeviceStorage* storage{nullptr};  // the neighbours section
  wire::SectionGens gens;
  std::uint64_t epoch{0};
  std::uint8_t load_percent{0};
};

class SnapshotCache {
 public:
  using FramePtr = std::shared_ptr<const Bytes>;

  struct Stats {
    std::uint64_t full_hits{0};     // full response served from cache
    std::uint64_t full_encodes{0};  // full response (re-)encoded
    std::uint64_t deltas{0};        // delta response encoded
    std::uint64_t not_modified{0};  // kNotModified served
  };

  // `frame_prefix`, when set, is baked in front of every produced frame —
  // the daemon passes the net-layer datagram tag so cached buffers can be
  // handed to SimNetwork::send_datagram without a prepend copy.
  explicit SnapshotCache(std::optional<std::uint8_t> frame_prefix =
                             std::nullopt)
      : prefix_{frame_prefix} {}

  // When disabled the cache encodes every reply afresh (the pre-cache
  // behaviour, kept for the ablation bench); conditional requests are still
  // answered with kNotModified / deltas.
  void set_caching(bool enabled);
  [[nodiscard]] bool caching() const { return caching_; }

  // Produces the encoded reply frame for `request` against `src`: a shared
  // cached full response, a shared cached kNotModified, or a fresh delta.
  // Never returns nullptr.
  [[nodiscard]] FramePtr respond(const wire::FetchRequest& request,
                                 const SnapshotSource& src);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct CachedFull {
    FramePtr frame;
    wire::SectionGens gens;
    std::uint64_t epoch{0};
    std::uint8_t load_percent{0};
  };

  // True iff every section in `sections` has equal generations in a and b.
  [[nodiscard]] static bool sections_equal(std::uint8_t sections,
                                           const wire::SectionGens& a,
                                           const wire::SectionGens& b);

  [[nodiscard]] FramePtr encode_frame(const wire::FetchResponse& response)
      const;
  [[nodiscard]] wire::FetchResponse build_response(std::uint8_t sections,
                                                   const SnapshotSource& src)
      const;

  std::optional<std::uint8_t> prefix_;
  bool caching_{true};
  // One cached full response per requested-sections bitmask (0..15).
  std::array<CachedFull, 16> full_{};
  FramePtr not_modified_;
  std::uint8_t not_modified_load_{0};
  Stats stats_;
};

}  // namespace peerhood
