// ReliableChannel — the data buffering the thesis lists as necessary future
// work (Ch. 6): "So far there exists the possibility to lose data due to
// Write function not being aware of the connection loss ... an efficient
// Data Buffering is necessary to guarantee the data integrity."
//
// A thin reliability layer over Channel: every application frame gets a
// sequence number and is buffered until acknowledged; the receiver delivers
// in order exactly once and acks cumulatively. After a handover (connection
// substitution) the unacknowledged tail is retransmitted, so no frame is
// lost to the in-flight window that died with the old link. Acks piggyback
// on a timer to amortise the cost the paper worried about ("the
// implementation of Data Transferring Acknowledge is too costly due to the
// small size of packet").
//
// Loss hardening (fault plane, sim/fault.hpp):
//  * Acks are out-of-order tolerant — a reordered (older) cumulative ack is
//    ignored instead of regressing the sender's view.
//  * A receiver holding a gap flushes its ack immediately instead of
//    batching; the resulting duplicate acks trigger a fast retransmit of
//    the first unacked frame after `dup_ack_threshold` repeats, well before
//    the retransmit timer fires.
//  * The retransmit timer backs off exponentially (doubling up to
//    `retransmit_cap`) while no progress is made and resets to the base
//    interval on every new ack, so a dead link is probed gently and a
//    healed one recovers at full speed.
//
// Bounded-resource paths (crash hardening):
//  * Every ack advertises the receiver's free reorder capacity; the sender
//    sends no new frame beyond min(own window, advertised window) and
//    returns a backpressure error without allocating — a never-draining
//    peer cannot grow sender memory. Retransmissions of already-buffered
//    frames are exempt, so the hole that stalls the receiver can always be
//    filled.
//  * The receiver's reorder buffer is capped; frames beyond the cap are
//    dropped (and counted) rather than buffered — the sender's window
//    bound makes such frames a protocol violation anyway.
//  * A journal hook reports the resume frontier (next outgoing seq, next
//    expected incoming seq) after every change, feeding the daemon's
//    SessionStore so a restarted server can `restore()` the layer at the
//    journalled frontier and the session continues exactly-once.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>

#include "common/handler_slot.hpp"
#include "peerhood/channel.hpp"
#include "sim/simulator.hpp"

namespace peerhood {

struct ReliableConfig {
  // Delay before a cumulative ack is flushed (batching small packets).
  SimDuration ack_delay{std::chrono::milliseconds{200}};
  // Base retransmit timeout; doubles on every timer-driven retransmission
  // round without progress, capped at retransmit_cap.
  SimDuration retransmit_interval{std::chrono::seconds{5}};
  SimDuration retransmit_cap{std::chrono::seconds{40}};
  // Consecutive duplicate cumulative acks that trigger a fast retransmit of
  // the first unacked frame. 0 disables fast retransmit.
  int dup_ack_threshold{3};
  // Maximum buffered-but-unacked frames before write() refuses.
  std::size_t window{256};
  // Maximum out-of-order frames the receiver buffers; also the basis of the
  // window it advertises in every ack.
  std::size_t reorder_cap{256};
};

// The reliability layer's wire frames, exposed for the protocol fuzzer: the
// decoder must reject (not crash on) any mutation of these.
struct ReliableFrame {
  enum class Kind : std::uint8_t { kData, kAck };
  Kind kind{Kind::kData};
  std::uint64_t seq{0};         // kData
  Bytes payload;                // kData
  std::uint64_t cumulative{0};  // kAck
  std::uint32_t window{0};      // kAck: receiver's free reorder slots
};

[[nodiscard]] Bytes encode_reliable_data(std::uint64_t seq,
                                         const Bytes& payload);
[[nodiscard]] Bytes encode_reliable_ack(std::uint64_t cumulative,
                                        std::uint32_t window);
[[nodiscard]] std::optional<ReliableFrame> decode_reliable_frame(
    std::span<const std::uint8_t> frame);

class ReliableChannel {
 public:
  using DataHandler = std::function<void(const Bytes&)>;
  using HandoverHandler = std::function<void()>;
  using JournalHook = std::function<void(std::uint64_t next_seq,
                                         std::uint64_t expected)>;

  ReliableChannel(sim::Simulator& sim, ChannelPtr channel,
                  ReliableConfig config = {});
  ~ReliableChannel();

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  // Buffers and sends; the frame stays queued until the peer acks it. When
  // the send window (own or peer-advertised) is full, refuses with
  // kCapacityExceeded *before allocating anything* — backpressure, not
  // unbounded buffering.
  Status send(Bytes frame);

  // In-order, exactly-once delivery of the peer's frames.
  void set_data_handler(DataHandler handler);

  // This layer occupies the channel's handover slot (it must resync first);
  // owners that also want handover notifications chain through here.
  void set_handover_handler(HandoverHandler handler);

  // Invoked whenever the resume frontier moves; the daemon points this at
  // its SessionStore journal.
  void set_journal_hook(JournalHook hook);

  // Rebuilds the frontier of a restarted endpoint from its journal: the
  // next sequence it will send and the next it expects. Outstanding state
  // (outbox, reorder buffer) is assumed empty — the restart wiped it.
  void restore(std::uint64_t next_seq, std::uint64_t expected);

  [[nodiscard]] const ChannelPtr& channel() const { return channel_; }
  [[nodiscard]] std::size_t unacked() const { return outbox_.size(); }
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_; }
  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_;
  }
  [[nodiscard]] std::uint64_t fast_retransmits() const {
    return fast_retransmits_;
  }
  [[nodiscard]] std::uint64_t peer_window() const { return peer_window_; }
  [[nodiscard]] std::uint64_t reorder_drops() const { return reorder_drops_; }
  [[nodiscard]] std::uint64_t malformed_frames() const {
    return malformed_frames_;
  }

  // Flushes any pending ack and retransmits the unacked tail immediately —
  // called automatically after a handover, exposed for tests.
  void resync();

  // Idempotent: stops the timers and detaches from the channel (which holds
  // raw-`this` handlers), leaving the channel itself usable. Called by the
  // destructor, so destroying the reliability layer mid-transfer is safe.
  void shutdown();

 private:
  void on_frame(const Bytes& frame);
  void on_ack(std::uint64_t cumulative, std::uint32_t window);
  void flush_ack();
  void retransmit_outstanding();
  void transmit(std::uint64_t seq, const Bytes& payload);
  // (Re)arms the one-shot retransmit timer at the current rto_; disarms when
  // the outbox is empty.
  void arm_retransmit();
  // Free reorder slots, advertised in every outgoing ack.
  [[nodiscard]] std::uint32_t advertised_window() const;
  void journal();

  sim::Simulator& sim_;
  ChannelPtr channel_;
  ReliableConfig config_;
  HandlerSlot<void(const Bytes&)> data_slot_;
  HandlerSlot<void()> handover_slot_;
  JournalHook journal_hook_;

  // Sender state.
  std::uint64_t next_seq_{1};
  std::map<std::uint64_t, Bytes> outbox_;  // unacked frames by sequence
  std::uint64_t highest_ack_{1};  // largest cumulative ack seen from the peer
  // Peer's last advertised window; until the first ack arrives, assume a
  // symmetric configuration.
  std::uint64_t peer_window_;
  int dup_acks_{0};
  SimDuration rto_{};  // current (backed-off) retransmit timeout
  sim::EventId retransmit_event_{sim::kInvalidEvent};

  // Receiver state.
  std::uint64_t expected_{1};
  std::map<std::uint64_t, Bytes> reorder_;  // future frames
  std::uint64_t delivered_{0};
  bool ack_pending_{false};
  sim::EventId ack_timer_{sim::kInvalidEvent};

  std::uint64_t retransmissions_{0};
  std::uint64_t fast_retransmits_{0};
  std::uint64_t reorder_drops_{0};
  std::uint64_t malformed_frames_{0};
};

}  // namespace peerhood
