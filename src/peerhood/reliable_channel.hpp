// ReliableChannel — the data buffering the thesis lists as necessary future
// work (Ch. 6): "So far there exists the possibility to lose data due to
// Write function not being aware of the connection loss ... an efficient
// Data Buffering is necessary to guarantee the data integrity."
//
// A thin reliability layer over Channel: every application frame gets a
// sequence number and is buffered until acknowledged; the receiver delivers
// in order exactly once and acks cumulatively. After a handover (connection
// substitution) the unacknowledged tail is retransmitted, so no frame is
// lost to the in-flight window that died with the old link. Acks piggyback
// on a timer to amortise the cost the paper worried about ("the
// implementation of Data Transferring Acknowledge is too costly due to the
// small size of packet").
//
// Loss hardening (fault plane, sim/fault.hpp):
//  * Acks are out-of-order tolerant — a reordered (older) cumulative ack is
//    ignored instead of regressing the sender's view.
//  * A receiver holding a gap flushes its ack immediately instead of
//    batching; the resulting duplicate acks trigger a fast retransmit of
//    the first unacked frame after `dup_ack_threshold` repeats, well before
//    the retransmit timer fires.
//  * The retransmit timer backs off exponentially (doubling up to
//    `retransmit_cap`) while no progress is made and resets to the base
//    interval on every new ack, so a dead link is probed gently and a
//    healed one recovers at full speed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "common/handler_slot.hpp"
#include "peerhood/channel.hpp"
#include "sim/simulator.hpp"

namespace peerhood {

struct ReliableConfig {
  // Delay before a cumulative ack is flushed (batching small packets).
  SimDuration ack_delay{std::chrono::milliseconds{200}};
  // Base retransmit timeout; doubles on every timer-driven retransmission
  // round without progress, capped at retransmit_cap.
  SimDuration retransmit_interval{std::chrono::seconds{5}};
  SimDuration retransmit_cap{std::chrono::seconds{40}};
  // Consecutive duplicate cumulative acks that trigger a fast retransmit of
  // the first unacked frame. 0 disables fast retransmit.
  int dup_ack_threshold{3};
  // Maximum buffered-but-unacked frames before write() refuses.
  std::size_t window{256};
};

class ReliableChannel {
 public:
  using DataHandler = std::function<void(const Bytes&)>;

  ReliableChannel(sim::Simulator& sim, ChannelPtr channel,
                  ReliableConfig config = {});
  ~ReliableChannel();

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  // Buffers and sends; the frame stays queued until the peer acks it.
  Status send(Bytes frame);

  // In-order, exactly-once delivery of the peer's frames.
  void set_data_handler(DataHandler handler);

  [[nodiscard]] const ChannelPtr& channel() const { return channel_; }
  [[nodiscard]] std::size_t unacked() const { return outbox_.size(); }
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_; }
  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_;
  }
  [[nodiscard]] std::uint64_t fast_retransmits() const {
    return fast_retransmits_;
  }

  // Flushes any pending ack and retransmits the unacked tail immediately —
  // called automatically after a handover, exposed for tests.
  void resync();

  // Idempotent: stops the timers and detaches from the channel (which holds
  // raw-`this` handlers), leaving the channel itself usable. Called by the
  // destructor, so destroying the reliability layer mid-transfer is safe.
  void shutdown();

 private:
  void on_frame(const Bytes& frame);
  void on_ack(std::uint64_t cumulative);
  void flush_ack();
  void retransmit_outstanding();
  void transmit(std::uint64_t seq, const Bytes& payload);
  // (Re)arms the one-shot retransmit timer at the current rto_; disarms when
  // the outbox is empty.
  void arm_retransmit();

  sim::Simulator& sim_;
  ChannelPtr channel_;
  ReliableConfig config_;
  HandlerSlot<void(const Bytes&)> data_slot_;

  // Sender state.
  std::uint64_t next_seq_{1};
  std::map<std::uint64_t, Bytes> outbox_;  // unacked frames by sequence
  std::uint64_t highest_ack_{1};  // largest cumulative ack seen from the peer
  int dup_acks_{0};
  SimDuration rto_{};  // current (backed-off) retransmit timeout
  sim::EventId retransmit_event_{sim::kInvalidEvent};

  // Receiver state.
  std::uint64_t expected_{1};
  std::map<std::uint64_t, Bytes> reorder_;  // future frames
  std::uint64_t delivered_{0};
  bool ack_pending_{false};
  sim::EventId ack_timer_{sim::kInvalidEvent};

  std::uint64_t retransmissions_{0};
  std::uint64_t fast_retransmits_{0};
};

}  // namespace peerhood
