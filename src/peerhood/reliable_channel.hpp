// ReliableChannel — the data buffering the thesis lists as necessary future
// work (Ch. 6): "So far there exists the possibility to lose data due to
// Write function not being aware of the connection loss ... an efficient
// Data Buffering is necessary to guarantee the data integrity."
//
// A thin reliability layer over Channel: every application frame gets a
// sequence number and is buffered until acknowledged; the receiver delivers
// in order exactly once and acks cumulatively. After a handover (connection
// substitution) the unacknowledged tail is retransmitted, so no frame is
// lost to the in-flight window that died with the old link. Acks piggyback
// on a timer to amortise the cost the paper worried about ("the
// implementation of Data Transferring Acknowledge is too costly due to the
// small size of packet").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "common/handler_slot.hpp"
#include "peerhood/channel.hpp"
#include "sim/simulator.hpp"

namespace peerhood {

struct ReliableConfig {
  // Delay before a cumulative ack is flushed (batching small packets).
  SimDuration ack_delay{std::chrono::milliseconds{200}};
  // Retransmit unacked frames at this interval while the channel is open.
  SimDuration retransmit_interval{std::chrono::seconds{5}};
  // Maximum buffered-but-unacked frames before write() refuses.
  std::size_t window{256};
};

class ReliableChannel {
 public:
  using DataHandler = std::function<void(const Bytes&)>;

  ReliableChannel(sim::Simulator& sim, ChannelPtr channel,
                  ReliableConfig config = {});
  ~ReliableChannel();

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  // Buffers and sends; the frame stays queued until the peer acks it.
  Status send(Bytes frame);

  // In-order, exactly-once delivery of the peer's frames.
  void set_data_handler(DataHandler handler);

  [[nodiscard]] const ChannelPtr& channel() const { return channel_; }
  [[nodiscard]] std::size_t unacked() const { return outbox_.size(); }
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_; }
  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_;
  }

  // Flushes any pending ack and retransmits the unacked tail immediately —
  // called automatically after a handover, exposed for tests.
  void resync();

  // Idempotent: stops the timers and detaches from the channel (which holds
  // raw-`this` handlers), leaving the channel itself usable. Called by the
  // destructor, so destroying the reliability layer mid-transfer is safe.
  void shutdown();

 private:
  void on_frame(const Bytes& frame);
  void flush_ack();
  void retransmit_tail();
  void transmit(std::uint64_t seq, const Bytes& payload);

  sim::Simulator& sim_;
  ChannelPtr channel_;
  ReliableConfig config_;
  HandlerSlot<void(const Bytes&)> data_slot_;

  // Sender state.
  std::uint64_t next_seq_{1};
  std::map<std::uint64_t, Bytes> outbox_;  // unacked frames by sequence
  sim::PeriodicTask retransmit_timer_;

  // Receiver state.
  std::uint64_t expected_{1};
  std::map<std::uint64_t, Bytes> reorder_;  // future frames
  std::uint64_t delivered_{0};
  bool ack_pending_{false};
  sim::EventId ack_timer_{sim::kInvalidEvent};

  std::uint64_t retransmissions_{0};
};

}  // namespace peerhood
