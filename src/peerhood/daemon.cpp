#include "peerhood/daemon.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace peerhood {

Daemon::Daemon(net::SimNetwork& network, MacAddress mac,
               std::shared_ptr<const sim::MobilityModel> mobility,
               DaemonConfig config)
    : network_{network},
      mobility_{std::move(mobility)},
      config_{std::move(config)},
      self_{mac, config_.device_name,
            static_cast<std::uint32_t>(mac.as_u64() & 0xffffffffu),
            config_.mobility},
      storage_{config_.route_policy},
      analyzer_{mac, AnalyzerConfig{config_.propagate_routes}},
      engine_{network, mac} {
  for (const Technology tech : config_.technologies) {
    plugins_.push_back(std::make_unique<Plugin>(*this, tech));
  }
}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  if (running_) return;
  running_ = true;
  for (const Technology tech : config_.technologies) {
    network_.attach_interface(self_.mac, tech, mobility_);
    network_.set_datagram_handler(
        self_.mac, tech,
        [this, tech](MacAddress from, const Bytes& payload) {
          on_datagram(tech, from, payload);
        });
  }
  engine_.start(config_.technologies);
  for (const auto& plugin : plugins_) plugin->start();
}

void Daemon::stop() {
  if (!running_) return;
  running_ = false;
  for (const auto& plugin : plugins_) plugin->stop();
  engine_.stop();
  for (const Technology tech : config_.technologies) {
    network_.detach_interface(self_.mac, tech);
  }
}

Status Daemon::register_service(ServiceInfo service) {
  const bool exists =
      std::any_of(services_.begin(), services_.end(),
                  [&](const ServiceInfo& s) { return s.name == service.name; });
  if (exists) {
    return Status{ErrorCode::kInvalidArgument,
                  "service already registered: " + service.name};
  }
  if (service.port == 0) service.port = next_port_++;
  services_.push_back(std::move(service));
  return Status::ok_status();
}

void Daemon::unregister_service(std::string_view name) {
  std::erase_if(services_,
                [&](const ServiceInfo& s) { return s.name == name; });
}

Plugin* Daemon::plugin(Technology tech) {
  for (const auto& plugin : plugins_) {
    if (plugin->technology() == tech) return plugin.get();
  }
  return nullptr;
}

void Daemon::set_load_fraction(double fraction) {
  load_fraction_ = std::clamp(fraction, 0.0, 1.0);
}

std::uint64_t Daemon::next_session_id() {
  return (self_.mac.as_u64() << 16) | ++session_counter_;
}

std::vector<NeighbourSnapshotEntry> Daemon::snapshot_for_advert() const {
  std::vector<NeighbourSnapshotEntry> entries;
  for (const DeviceRecord& record : storage_.snapshot()) {
    NeighbourSnapshotEntry entry;
    entry.device = record.device;
    entry.prototypes = record.prototypes;
    entry.services = record.services;
    entry.jump = record.jump;
    entry.bridge = record.bridge;
    entry.quality_sum = record.quality_sum;
    entry.min_link_quality = record.min_link_quality;
    entries.push_back(std::move(entry));
  }
  return entries;
}

void Daemon::on_datagram(Technology tech, MacAddress from,
                         const Bytes& payload) {
  const auto command = wire::peek_command(payload);
  if (!command.has_value()) return;
  switch (*command) {
    case wire::Command::kFetchRequest: {
      const auto request = wire::decode_fetch_request(payload);
      if (request.has_value()) answer_fetch(tech, from, *request);
      return;
    }
    case wire::Command::kFetchResponse: {
      const auto response = wire::decode_fetch_response(payload);
      if (!response.has_value()) return;
      if (Plugin* p = plugin(tech)) p->on_fetch_response(from, *response);
      return;
    }
    default:
      return;
  }
}

void Daemon::answer_fetch(Technology tech, MacAddress from,
                          const wire::FetchRequest& request) {
  // The short fetch connection costs time on the responder too; a unified
  // all-sections exchange is one longer connection (§3.4.1).
  const sim::TechnologyParams& params = network_.medium().params(tech);
  const SimDuration cost = request.sections == wire::kSectionAll
                               ? 2 * params.fetch_time
                               : params.fetch_time;
  const std::uint32_t request_id = request.request_id;
  const std::uint8_t sections = request.sections;
  simulator().schedule_after(cost, [this, token = sentinel_.token(), tech,
                                    from, request_id, sections] {
    if (token.expired() || !running_) return;
    wire::FetchResponse response;
    response.request_id = request_id;
    response.sections = sections;
    response.load_percent = static_cast<std::uint8_t>(
        std::lround(load_fraction_ * 100.0));
    if ((sections & wire::kSectionDevice) != 0) response.device = self_;
    if ((sections & wire::kSectionPrototypes) != 0) {
      response.prototypes = config_.technologies;
    }
    if ((sections & wire::kSectionServices) != 0) {
      response.services = services_;
    }
    if ((sections & wire::kSectionNeighbours) != 0) {
      response.neighbours = snapshot_for_advert();
    }
    network_.send_datagram(self_.mac, from, tech, wire::encode(response));
  });
}

}  // namespace peerhood
