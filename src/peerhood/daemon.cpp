#include "peerhood/daemon.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/log.hpp"
#include "sim/inline_callable.hpp"

namespace peerhood {
namespace {

// Epoch mint: unique across every daemon start in the process (restarting a
// daemon must invalidate requester baselines), deterministic so fixed-seed
// scenarios stay reproducible — deliberately not drawn from the simulation
// RNG, which would shift every stream that follows.
std::uint64_t mint_epoch(MacAddress mac) {
  static std::atomic<std::uint64_t> counter{1};
  return (mac.as_u64() << 20) ^ counter.fetch_add(1);
}

}  // namespace

Daemon::Daemon(net::Network& network, MacAddress mac,
               std::shared_ptr<const sim::MobilityModel> mobility,
               DaemonConfig config)
    : network_{network},
      mobility_{std::move(mobility)},
      config_{std::move(config)},
      self_{mac, config_.device_name,
            static_cast<std::uint32_t>(mac.as_u64() & 0xffffffffu),
            config_.mobility},
      storage_{config_.route_policy},
      analyzer_{mac, AnalyzerConfig{config_.propagate_routes}},
      engine_{network, mac},
      session_store_{config_.session_journal_capacity} {
  cache_.set_caching(config_.snapshot_cache);
  if (!config_.session_journal_path.empty()) {
    session_store_.bind_file(config_.session_journal_path);
  }
  engine_.set_session_store(&session_store_);
  for (const Technology tech : config_.technologies) {
    plugins_.push_back(std::make_unique<Plugin>(*this, tech));
  }
}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  if (running_) return;
  running_ = true;
  epoch_ = mint_epoch(self_.mac);
  for (const Technology tech : config_.technologies) {
    network_.attach_interface(self_.mac, tech, mobility_);
    network_.set_datagram_handler(
        self_.mac, tech,
        [this, tech](MacAddress from, std::span<const std::uint8_t> payload) {
          on_datagram(tech, from, payload);
        });
  }
  engine_.start(config_.technologies);
  for (const auto& plugin : plugins_) plugin->start();
}

void Daemon::stop() {
  if (!running_) return;
  running_ = false;
  for (const auto& plugin : plugins_) plugin->stop();
  engine_.stop();
  for (const Technology tech : config_.technologies) {
    network_.detach_interface(self_.mac, tech);
  }
  // Cancel deferred replies: a stopped daemon sends nothing, and the events
  // must not outlive a daemon that is destroyed before its simulator.
  for (auto& [peer, queue] : send_queues_) {
    for (PendingSend& entry : queue) simulator().cancel(entry.event);
  }
  send_queues_.clear();
}

void Daemon::crash() {
  if (!running_) {
    return;
  }
  stop();
  // Everything volatile dies with the process: live sessions (a later
  // kResume meets kUnknownSession), the discovery storage, the plugins'
  // conditional-fetch baselines and the duplicate-suppression memo. The
  // SessionStore journal and the registered services survive — the journal
  // by design, the services as shorthand for an application that
  // re-registers immediately on restart.
  engine_.clear_sessions();
  for (const auto& plugin : plugins_) plugin->forget_peers();
  storage_.clear();
  last_request_.clear();
}

Status Daemon::register_service(ServiceInfo service) {
  const bool exists =
      std::any_of(services_.begin(), services_.end(),
                  [&](const ServiceInfo& s) { return s.name == service.name; });
  if (exists) {
    return Status{ErrorCode::kInvalidArgument,
                  "service already registered: " + service.name};
  }
  if (service.port == 0) service.port = next_port_++;
  services_.push_back(std::move(service));
  ++services_gen_;
  return Status::ok_status();
}

void Daemon::unregister_service(std::string_view name) {
  if (std::erase_if(services_, [&](const ServiceInfo& s) {
        return s.name == name;
      }) > 0) {
    ++services_gen_;
  }
}

Plugin* Daemon::plugin(Technology tech) {
  for (const auto& plugin : plugins_) {
    if (plugin->technology() == tech) return plugin.get();
  }
  return nullptr;
}

void Daemon::set_load_fraction(double fraction) {
  load_fraction_ = std::clamp(fraction, 0.0, 1.0);
}

std::uint64_t Daemon::next_session_id() {
  return (self_.mac.as_u64() << 16) | ++session_counter_;
}

wire::SectionGens Daemon::section_gens() const {
  wire::SectionGens gens;
  // Device identity and the technology set are fixed for the daemon's
  // lifetime; services and the neighbourhood storage carry live counters.
  gens.device = 1;
  gens.prototypes = 1;
  gens.services = services_gen_;
  gens.neighbours = storage_.generation();
  return gens;
}

SnapshotSource Daemon::snapshot_source() const {
  SnapshotSource src;
  src.device = &self_;
  src.prototypes = &config_.technologies;
  src.services = &services_;
  src.storage = &storage_;
  src.gens = section_gens();
  src.epoch = epoch_;
  src.load_percent =
      static_cast<std::uint8_t>(std::lround(load_fraction_ * 100.0));
  return src;
}

void Daemon::on_datagram(Technology tech, MacAddress from,
                         std::span<const std::uint8_t> payload) {
  const auto command = wire::peek_command(payload);
  if (!command.has_value()) return;
  switch (*command) {
    case wire::Command::kFetchRequest: {
      const auto request = wire::decode_fetch_request(payload);
      if (request.has_value()) answer_fetch(tech, from, *request);
      return;
    }
    case wire::Command::kFetchResponse:
    case wire::Command::kNotModified: {
      const auto response = wire::decode_fetch_response(payload);
      if (!response.has_value()) return;
      if (Plugin* p = plugin(tech)) p->on_fetch_response(from, *response);
      return;
    }
    default:
      return;
  }
}

void Daemon::answer_fetch(Technology tech, MacAddress from,
                          const wire::FetchRequest& request) {
  // Fault-plane duplicate suppression. Shared-id requests are not tracked
  // (that id never identifies one exchange); everything else repeats the
  // requester's latest id only when the medium duplicated the datagram.
  if (request.request_id != wire::kSharedRequestId) {
    const auto key = std::pair{from.as_u64(), static_cast<std::uint8_t>(tech)};
    const auto [memo, inserted] = last_request_.emplace(key,
                                                        request.request_id);
    if (!inserted) {
      if (memo->second == request.request_id) {
        ++duplicate_requests_;
        return;
      }
      memo->second = request.request_id;
    }
  }
  // The short fetch connection costs time on the responder too; a unified
  // all-sections exchange is one longer connection (§3.4.1). The reply frame
  // is resolved *now* (the responder serialises its state when it accepts
  // the fetch) so the deferred send captures only a shared buffer reference
  // — at the same generation every requester ships the same allocation.
  const sim::TechnologyParams& params = network_.params(tech);
  const SimDuration cost = request.sections == wire::kSectionAll
                               ? 2 * params.fetch_time
                               : params.fetch_time;
  sim::RadioMedium::FramePtr frame = cache_.respond(request, snapshot_source());
  // The reply is parked in a capped per-peer queue until its serialisation
  // cost elapses. The queue bounds memory under a requester storm (oldest
  // reply dropped, counted — the requester's retry path covers it) and ties
  // every deferred reply to this daemon's lifetime: stop() and crash()
  // cancel the events, so no pre-stop snapshot escapes a restarted daemon
  // and no event outlives the daemon. The closure stays inline-sized by
  // capturing only the queue key; the frame lives in the queue entry.
  std::deque<PendingSend>& queue = send_queues_[from.as_u64()];
  if (queue.size() >= config_.max_peer_send_queue && !queue.empty()) {
    simulator().cancel(queue.front().event);
    queue.pop_front();
    ++send_queue_drops_;
  }
  PendingSend entry;
  entry.id = next_send_id_++;
  entry.frame = std::move(frame);
  entry.tech = tech;
  queue.push_back(std::move(entry));
  auto send = [this, peer = from.as_u64(), id = queue.back().id] {
    flush_pending_send(peer, id);
  };
  static_assert(sizeof(send) <= sim::InlineCallable::kInlineSize);
  queue.back().event = simulator().schedule_after(cost, std::move(send));
}

void Daemon::flush_pending_send(std::uint64_t peer_key, std::uint64_t send_id) {
  const auto queue_it = send_queues_.find(peer_key);
  if (queue_it == send_queues_.end()) return;
  std::deque<PendingSend>& queue = queue_it->second;
  const auto entry_it =
      std::find_if(queue.begin(), queue.end(),
                   [send_id](const PendingSend& e) { return e.id == send_id; });
  if (entry_it == queue.end()) return;
  network_.send_datagram(self_.mac, MacAddress::from_u64(peer_key),
                         entry_it->tech, entry_it->frame);
  queue.erase(entry_it);
  if (queue.empty()) send_queues_.erase(queue_it);
}

}  // namespace peerhood
