// Daemon configuration. Defaults match the thesis implementation; the
// boolean switches expose the design alternatives the paper discusses so the
// ablation benches (E10-E12) can toggle them.
#pragma once

#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "discovery/route_policy.hpp"
#include "sim/radio.hpp"

namespace peerhood {

struct DaemonConfig {
  std::string device_name{"device"};
  MobilityClass mobility{MobilityClass::kDynamic};
  std::vector<Technology> technologies{Technology::kBluetooth};

  RoutePolicy route_policy{};

  // Direct devices missing this many consecutive inquiry loops are dropped
  // (Fig. 3.12 time-stamp aging).
  int max_missed_loops{3};

  // Known devices are re-fetched only at this interval ("a service checking
  // interval defines a longer interval time for stored devices to achieve
  // the energy saving", §3.5). Inquiry responses still refresh liveness.
  SimDuration service_check_interval{std::chrono::seconds{30}};

  // Discovery-fetch robustness (fault-plane hardening). A fetch waits
  // cost * fetch_timeout_mult + fetch_timeout_extra for its response; a
  // timed-out fetch is re-issued up to fetch_retries more times, spaced by
  // jittered exponential backoff (fetch_retry_backoff doubling per attempt,
  // scaled by uniform(1 ± fetch_retry_jitter)), before the responder is
  // treated as gone for this cycle and its conditional-fetch baseline drops.
  double fetch_timeout_mult{3.0};
  SimDuration fetch_timeout_extra{std::chrono::seconds{2}};
  int fetch_retries{1};
  SimDuration fetch_retry_backoff{std::chrono::seconds{1}};
  double fetch_retry_jitter{0.5};

  // §3.4.1: fetch device/prototype/service/neighbourhood information through
  // one unified connection instead of four short ones (ablation E10).
  bool unified_fetch{false};

  // Responder side of the discovery plane: cache the encoded snapshot
  // response per generation and serve repeat requests from the shared
  // buffer (off = re-encode per request, the pre-cache baseline).
  bool snapshot_cache{true};

  // Requester side: send the last-seen epoch + per-section generations with
  // each fetch so unchanged responders answer kNotModified / section deltas
  // instead of full snapshots (off = always fetch full, the paper's
  // behaviour).
  bool conditional_fetch{true};

  // When false the daemon behaves like pre-thesis PeerHood [2]: neighbour
  // lists are stored for two-jump vision but no routed records are created
  // (baseline for E1/E2).
  bool propagate_routes{true};

  // Crash tolerance (bounded-resource paths).
  // Deferred fetch replies queued per peer; when full the oldest queued
  // reply is dropped (and counted) before the new one is queued, so a
  // requester storm cannot grow daemon memory without bound.
  std::size_t max_peer_send_queue{8};
  // SessionStore journal capacity: resume records surviving a crash. Least
  // recently touched records are evicted first.
  std::size_t session_journal_capacity{64};
  // When non-empty, the SessionStore journal also persists to this file and
  // is reloaded on construction — the real-daemon path, where "crash" means
  // kill -9 and recovery means a fresh process finding the journal on disk.
  // Empty (the default) keeps the journal in-memory, as every sim scenario
  // expects.
  std::string session_journal_path{};

  // Interconnection (Ch. 4).
  bool bridge_enabled{true};
  int max_bridge_connections{8};
  // §4: decrease the advertised link quality proportionally to bridge
  // occupancy to steer routes away from bottleneck bridges (ablation E11).
  bool load_derating{false};
};

}  // namespace peerhood
