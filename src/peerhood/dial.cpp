#include "peerhood/dial.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "net/dial_state.hpp"
#include "peerhood/protocol.hpp"
#include "sim/simulator.hpp"

namespace peerhood {

namespace {

// Handshake frames ride the same lossy medium as application traffic: a
// single lost request (or lost acknowledgement) must not cost the whole
// dial timeout. Resend with doubling backoff until the dial resolves; the
// receiving side re-acks duplicates (Channel::attach), so resends are
// idempotent end to end — even across a bridge relay.
// The cadence is capped rather than purely exponential: a bursty link's
// loss state advances per frame, so sending *more* frames is what walks it
// out of a burst — backing off to silence would freeze the burst instead.
constexpr SimDuration kHandshakeRetryBase = std::chrono::milliseconds{1500};
constexpr SimDuration kHandshakeRetryCap = std::chrono::seconds{6};
// Terminal give-up: a peer that never acknowledges (crashed, partitioned
// beyond the dial's horizon) must not keep a HalfOpenDial — and the handlers
// that anchor it — alive forever. After this many resends the dial fails
// with a surfaced error. At the capped cadence this is ~36 s of retrying,
// long enough to ride out any loss burst the fault plane produces.
constexpr int kHandshakeRetryLimit = 8;

void schedule_handshake_retransmit(
    sim::Simulator& sim, std::shared_ptr<net::HalfOpenDial> state, Bytes frame,
    SimDuration delay, int attempts,
    std::shared_ptr<std::function<void(Result<net::ConnectionPtr>)>> done) {
  sim.schedule_after(delay, [&sim, state = std::move(state),
                             frame = std::move(frame), delay, attempts,
                             done = std::move(done)]() mutable {
    if (state->done || state->conn == nullptr) return;
    if (attempts >= kHandshakeRetryLimit) {
      state->done = true;
      sim.cancel(state->timer);
      if (const auto conn = state->release_conn()) conn->close();
      (*done)(Error{ErrorCode::kTimeout,
                    "handshake unacknowledged after retransmission limit"});
      return;
    }
    (void)state->conn->write(frame);
    schedule_handshake_retransmit(sim, std::move(state), std::move(frame),
                                  std::min(delay * 2, kHandshakeRetryCap),
                                  attempts + 1, std::move(done));
  });
}

}  // namespace

void dial_with_ack(net::Network& network, MacAddress from,
                   const net::NetAddress& hop, Bytes first_frame,
                   SimDuration timeout,
                   std::function<void(Result<net::ConnectionPtr>)> done) {
  sim::Simulator& sim = network.simulator();
  auto state = std::make_shared<net::HalfOpenDial>();
  auto shared_done =
      std::make_shared<std::function<void(Result<net::ConnectionPtr>)>>(
          std::move(done));

  state->timer = sim.schedule_after(timeout, [state, shared_done] {
    if (state->done) return;
    state->done = true;
    // Abandon the half-open connection: sever its handlers (they keep this
    // state alive) and close it so the peer converges to closed too.
    if (const auto conn = state->release_conn()) conn->close();
    (*shared_done)(Error{ErrorCode::kTimeout, "connect timed out"});
  });

  sim::Simulator* simp = &sim;
  network.connect(
      from, hop,
      [state, shared_done, simp, first_frame = std::move(first_frame)](
          Result<net::ConnectionPtr> result) mutable {
        if (state->done) {
          // Timed out while establishing; release the late connection.
          if (result.ok()) result.value()->close();
          return;
        }
        if (!result.ok()) {
          state->done = true;
          simp->cancel(state->timer);
          (*shared_done)(result.error());
          return;
        }
        // The state owns the connection while the ack is pending; the
        // handlers below deliberately capture `state`, not the connection.
        state->conn = std::move(result).value();
        (void)state->conn->write(first_frame);
        schedule_handshake_retransmit(*simp, state, std::move(first_frame),
                                      kHandshakeRetryBase, /*attempts=*/0,
                                      shared_done);
        // Await the PH_OK / PH_FAIL chain acknowledgement.
        state->conn->set_close_handler([state, shared_done, simp] {
          if (state->done) return;
          state->done = true;
          simp->cancel(state->timer);
          (void)state->release_conn();
          (*shared_done)(Error{ErrorCode::kConnectionClosed,
                               "closed before acknowledgement"});
        });
        state->conn->set_data_handler([state, shared_done,
                                       simp](const Bytes& frame) {
          if (state->done) return;
          state->done = true;
          simp->cancel(state->timer);
          const net::ConnectionPtr conn = state->release_conn();
          const auto handshake = wire::decode_handshake(frame);
          if (!handshake.has_value()) {
            conn->close();
            (*shared_done)(
                Error{ErrorCode::kProtocolError, "bad acknowledgement"});
            return;
          }
          if (handshake->command == wire::Command::kOk) {
            (*shared_done)(conn);
            return;
          }
          conn->close();
          if (handshake->command == wire::Command::kFail) {
            (*shared_done)(
                Error{handshake->fail.code, handshake->fail.message});
          } else {
            (*shared_done)(Error{ErrorCode::kProtocolError,
                                 "unexpected acknowledgement command"});
          }
        });
      });
}

}  // namespace peerhood
