#include "peerhood/dial.hpp"

#include <memory>
#include <utility>

#include "net/dial_state.hpp"
#include "peerhood/protocol.hpp"
#include "sim/simulator.hpp"

namespace peerhood {

void dial_with_ack(net::SimNetwork& network, MacAddress from,
                   const net::NetAddress& hop, Bytes first_frame,
                   SimDuration timeout,
                   std::function<void(Result<net::ConnectionPtr>)> done) {
  sim::Simulator& sim = network.simulator();
  auto state = std::make_shared<net::HalfOpenDial>();
  auto shared_done =
      std::make_shared<std::function<void(Result<net::ConnectionPtr>)>>(
          std::move(done));

  state->timer = sim.schedule_after(timeout, [state, shared_done] {
    if (state->done) return;
    state->done = true;
    // Abandon the half-open connection: sever its handlers (they keep this
    // state alive) and close it so the peer converges to closed too.
    if (const auto conn = state->release_conn()) conn->close();
    (*shared_done)(Error{ErrorCode::kTimeout, "connect timed out"});
  });

  sim::Simulator* simp = &sim;
  network.connect(
      from, hop,
      [state, shared_done, simp, first_frame = std::move(first_frame)](
          Result<net::ConnectionPtr> result) mutable {
        if (state->done) {
          // Timed out while establishing; release the late connection.
          if (result.ok()) result.value()->close();
          return;
        }
        if (!result.ok()) {
          state->done = true;
          simp->cancel(state->timer);
          (*shared_done)(result.error());
          return;
        }
        // The state owns the connection while the ack is pending; the
        // handlers below deliberately capture `state`, not the connection.
        state->conn = std::move(result).value();
        (void)state->conn->write(std::move(first_frame));
        // Await the PH_OK / PH_FAIL chain acknowledgement.
        state->conn->set_close_handler([state, shared_done, simp] {
          if (state->done) return;
          state->done = true;
          simp->cancel(state->timer);
          (void)state->release_conn();
          (*shared_done)(Error{ErrorCode::kConnectionClosed,
                               "closed before acknowledgement"});
        });
        state->conn->set_data_handler([state, shared_done,
                                       simp](const Bytes& frame) {
          if (state->done) return;
          state->done = true;
          simp->cancel(state->timer);
          const net::ConnectionPtr conn = state->release_conn();
          const auto handshake = wire::decode_handshake(frame);
          if (!handshake.has_value()) {
            conn->close();
            (*shared_done)(
                Error{ErrorCode::kProtocolError, "bad acknowledgement"});
            return;
          }
          if (handshake->command == wire::Command::kOk) {
            (*shared_done)(conn);
            return;
          }
          conn->close();
          if (handshake->command == wire::Command::kFail) {
            (*shared_done)(
                Error{handshake->fail.code, handshake->fail.message});
          } else {
            (*shared_done)(Error{ErrorCode::kProtocolError,
                                 "unexpected acknowledgement command"});
          }
        });
      });
}

}  // namespace peerhood
