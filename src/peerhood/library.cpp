#include "peerhood/library.hpp"

#include <memory>

#include "common/log.hpp"
#include "peerhood/dial.hpp"

namespace peerhood {

std::vector<DeviceRecord> Library::get_device_list() const {
  return daemon_.storage().snapshot();
}

std::vector<std::pair<DeviceInfo, ServiceInfo>> Library::get_service_list()
    const {
  std::vector<std::pair<DeviceInfo, ServiceInfo>> out;
  for (const DeviceRecord& record : daemon_.storage().snapshot()) {
    for (const ServiceInfo& service : record.services) {
      if (service.attribute == kHiddenAttribute) continue;
      out.emplace_back(record.device, service);
    }
  }
  return out;
}

Status Library::register_service(ServiceInfo service,
                                 Engine::ServiceHandler handler) {
  Status status = daemon_.register_service(service);
  if (!status.ok()) return status;
  daemon_.engine().set_service_handler(service.name, std::move(handler));
  return Status::ok_status();
}

void Library::unregister_service(const std::string& name) {
  daemon_.unregister_service(name);
  daemon_.engine().remove_service_handler(name);
}

void Library::dial(const net::NetAddress& hop, Bytes first_frame,
                   SimDuration timeout,
                   std::function<void(Result<net::ConnectionPtr>)> done) {
  dial_with_ack(daemon_.network(), daemon_.mac(), hop, std::move(first_frame),
                timeout, std::move(done));
}

void Library::connect(MacAddress destination, std::string service,
                      ConnectOptions options, ConnectCallback callback) {
  sim::Simulator& sim = daemon_.simulator();
  const auto record = daemon_.storage().find(destination);
  if (!record.has_value()) {
    sim.schedule_after(microseconds(1), [callback] {
      callback(Error{ErrorCode::kNoSuchDevice, "device not in storage"});
    });
    return;
  }
  if (!options.skip_service_check && !record->provides(service)) {
    sim.schedule_after(microseconds(1), [callback, service] {
      callback(Error{ErrorCode::kNoSuchService,
                     "device does not provide " + service});
    });
    return;
  }
  if (!record->is_direct() && !options.allow_bridge) {
    sim.schedule_after(microseconds(1), [callback] {
      callback(Error{ErrorCode::kNoRoute, "remote device and bridging off"});
    });
    return;
  }

  wire::ConnectRequest request;
  request.session_id = options.session_id != 0 ? options.session_id
                                               : daemon_.next_session_id();
  request.service = service;
  if (options.include_client_params) {
    wire::ClientParams params;
    params.device = daemon_.self_info();
    params.tech = record->via_tech;
    params.reconnect_service = options.reconnect_service;
    request.client_params = std::move(params);
  }

  Bytes first_frame;
  net::NetAddress hop;
  if (record->is_direct()) {
    hop = net::NetAddress{destination, record->via_tech,
                          net::kPeerHoodEnginePort};
    first_frame = wire::encode_connect(request);
  } else {
    hop = net::NetAddress{record->bridge, record->via_tech,
                          net::kPeerHoodEnginePort};
    wire::BridgeRequest bridge_request;
    bridge_request.destination = destination;
    bridge_request.final_command = wire::Command::kConnect;
    bridge_request.inner = request;
    first_frame = wire::encode_bridge(bridge_request);
  }

  const std::uint64_t session_id = request.session_id;
  dial(hop, std::move(first_frame), options.timeout,
       [callback, session_id, service, destination](
           Result<net::ConnectionPtr> result) {
         if (!result.ok()) {
           callback(result.error());
           return;
         }
         callback(std::make_shared<Channel>(session_id, service, destination,
                                            std::move(result).value()));
       });
}

void Library::resume_via_bridge(MacAddress bridge, const ChannelPtr& channel,
                                StatusCallback callback, SimDuration timeout) {
  const auto record = daemon_.storage().find(bridge);
  const Technology tech =
      record.has_value() ? record->via_tech : Technology::kBluetooth;

  wire::ConnectRequest request;
  request.session_id = channel->session_id();
  request.service = channel->service();

  wire::BridgeRequest bridge_request;
  bridge_request.destination = channel->peer();
  bridge_request.final_command = wire::Command::kResume;
  bridge_request.inner = std::move(request);

  const net::NetAddress hop{bridge, tech, net::kPeerHoodEnginePort};
  // The fallback closure captures the network (which outlives every node)
  // and our mac, not `this` — the Library may be gone by the time the first
  // dial fails, while the dial machinery only needs the transport.
  net::Network* network = &daemon_.network();
  const MacAddress self = daemon_.mac();
  Bytes resume_frame = wire::encode_bridge(bridge_request);
  bridge_request.final_command = wire::Command::kResumeRestart;
  Bytes restart_frame = wire::encode_bridge(bridge_request);

  dial(hop, std::move(resume_frame), timeout,
       [channel, callback, network, self, hop, timeout,
        restart_frame = std::move(restart_frame)](
           Result<net::ConnectionPtr> result) mutable {
         if (result.ok()) {
           channel->replace_connection(std::move(result).value());
           callback(Status::ok_status());
           return;
         }
         if (result.error().code != ErrorCode::kUnknownSession) {
           callback(Status{result.error()});
           return;
         }
         // The server dropped the session — it restarted. Re-dial once with
         // PH_RESUME_RESTART so its journal can revive the session.
         dial_with_ack(*network, self, hop, std::move(restart_frame), timeout,
                       [channel, callback](Result<net::ConnectionPtr> retry) {
                         if (!retry.ok()) {
                           callback(Status{retry.error()});
                           return;
                         }
                         channel->replace_connection(std::move(retry).value());
                         callback(Status::ok_status());
                       });
       });
}

void Library::resume_direct(const ChannelPtr& channel, StatusCallback callback,
                            SimDuration timeout) {
  const auto record = daemon_.storage().find(channel->peer());
  const Technology tech =
      record.has_value() ? record->via_tech : Technology::kBluetooth;

  wire::ConnectRequest request;
  request.session_id = channel->session_id();
  request.service = channel->service();

  const net::NetAddress hop{channel->peer(), tech, net::kPeerHoodEnginePort};
  net::Network* network = &daemon_.network();
  const MacAddress self = daemon_.mac();
  Bytes restart_frame = wire::encode_resume_restart(request);

  dial(hop, wire::encode_resume(request), timeout,
       [channel, callback, network, self, hop, timeout,
        restart_frame = std::move(restart_frame)](
           Result<net::ConnectionPtr> result) mutable {
         if (result.ok()) {
           channel->replace_connection(std::move(result).value());
           callback(Status::ok_status());
           return;
         }
         if (result.error().code != ErrorCode::kUnknownSession) {
           callback(Status{result.error()});
           return;
         }
         // Same session id on the responder's side, restored from its
         // journal rather than the (crashed) live session map.
         dial_with_ack(*network, self, hop, std::move(restart_frame), timeout,
                       [channel, callback](Result<net::ConnectionPtr> retry) {
                         if (!retry.ok()) {
                           callback(Status{retry.error()});
                           return;
                         }
                         channel->replace_connection(std::move(retry).value());
                         callback(Status::ok_status());
                       });
       });
}

}  // namespace peerhood
