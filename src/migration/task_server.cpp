#include "migration/task_server.hpp"

#include "common/log.hpp"

namespace peerhood::migration {

TaskServer::TaskServer(Library& library, TaskServerConfig config)
    : library_{library},
      config_{std::move(config)},
      router_{library, config_.result_routing} {}

TaskServer::~TaskServer() { stop(); }

void TaskServer::start() {
  if (running_) return;
  running_ = true;
  (void)library_.register_service(
      ServiceInfo{config_.service_name, "compute", 0},
      [this](ChannelPtr channel, const wire::ConnectRequest&) {
        on_connect(channel);
      });
}

void TaskServer::stop() {
  if (!running_) return;
  running_ = false;
  library_.unregister_service(config_.service_name);
  for (auto& [id, session] : sessions_) {
    library_.daemon().simulator().cancel(session.timeout);
    // The channel handlers capture `this`; sever them in case something
    // else (the engine's session table, a test) still reaches the channel.
    if (session.channel != nullptr) {
      session.channel->set_data_handler(nullptr);
      session.channel->set_handover_handler(nullptr);
    }
  }
  sessions_.clear();
}

void TaskServer::on_connect(const ChannelPtr& channel) {
  ++stats_.sessions;
  const std::uint64_t id = channel->session_id();
  Session session;
  session.channel = channel;
  sessions_[id] = std::move(session);

  channel->set_data_handler(
      [this, id](const Bytes& frame) { on_frame(id, frame); });
  channel->set_handover_handler([this, id](const net::ConnectionPtr&) {
    // The engine substituted the connection (routing handover / resume):
    // tell the client where to continue the upload.
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    ++stats_.resumes_seen;
    (void)it->second.channel->write(
        encode(ProgressFrame{it->second.next_expected}));
  });
  arm_timeout(id);
}

void TaskServer::arm_timeout(std::uint64_t session_id) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  sim::Simulator& sim = library_.daemon().simulator();
  sim.cancel(it->second.timeout);
  it->second.timeout = sim.schedule_after(
      config_.session_timeout, [this, session_id] {
        const auto found = sessions_.find(session_id);
        if (found == sessions_.end()) return;
        if (!found->second.processing) ++stats_.uploads_abandoned;
        sessions_.erase(found);
      });
}

void TaskServer::on_frame(std::uint64_t session_id, const Bytes& frame) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  const auto tag = tag_of(frame);
  if (!tag.has_value()) return;
  arm_timeout(session_id);

  switch (*tag) {
    case FrameTag::kHeader: {
      const auto header = decode_header(frame);
      if (!header.has_value()) return;
      session.spec = header->spec;
      session.header_seen = true;
      session.next_expected = 0;
      if (session.spec.package_count == 0) begin_processing(session_id);
      return;
    }
    case FrameTag::kPackage: {
      if (!session.header_seen || session.processing) return;
      const auto package = decode_package(frame);
      if (!package.has_value()) return;
      // In-order acceptance: after a handover, a resent suffix realigns the
      // stream; stray out-of-order packages are dropped.
      if (package->index != session.next_expected) return;
      ++session.next_expected;
      if (session.next_expected == session.spec.package_count) {
        begin_processing(session_id);
      }
      return;
    }
    default:
      return;  // clients do not send progress/result frames
  }
}

void TaskServer::begin_processing(std::uint64_t session_id) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  session.processing = true;
  ++stats_.uploads_completed;
  const SimDuration processing_time =
      session.spec.per_package_processing *
      static_cast<std::int64_t>(session.spec.package_count);
  library_.daemon().simulator().schedule_after(
      processing_time, [this, token = sentinel_.token(), session_id] {
        if (token.expired()) return;
        finish_session(session_id);
      });
}

void TaskServer::finish_session(std::uint64_t session_id) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  const bool was_open = session.channel->open();

  ResultFrame result;
  result.result_size = config_.result_size;
  result.packages_processed = session.spec.package_count;

  router_.deliver(session.channel, encode(result),
                  [this, token = sentinel_.token(), session_id,
                   was_open](Status status) {
                    if (token.expired()) return;
                    if (status.ok()) {
                      if (was_open) {
                        ++stats_.results_live;
                      } else {
                        ++stats_.results_routed;
                      }
                    } else {
                      ++stats_.results_failed;
                    }
                    const auto found = sessions_.find(session_id);
                    if (found != sessions_.end()) {
                      library_.daemon().simulator().cancel(
                          found->second.timeout);
                      sessions_.erase(found);
                    }
                  });
}

}  // namespace peerhood::migration
