// TaskClient — the mobile side of task migration (§5.1): connect to a
// processing service, upload the task packages, flag the end of sending
// (§5.3) and wait for the result — over the original channel, a handed-over
// channel, or a server-initiated reconnection.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/handler_slot.hpp"
#include "handover/handover.hpp"
#include "handover/result_router.hpp"
#include "migration/task.hpp"
#include "peerhood/library.hpp"

namespace peerhood::migration {

struct TaskClientConfig {
  TaskSpec spec{};
  // Attach a handover controller to the upload channel.
  bool use_handover{true};
  handover::HandoverConfig handover{};
  // How the server may call back with the result (§5.3 Methods 1 and 2).
  handover::ReconnectMethod reconnect_method{
      handover::ReconnectMethod::kClientParams};
  // Client-side service the server connects back to. Registered as a
  // visible "client" service for Method 1, hidden for Method 2.
  std::string reconnect_service{"client.result"};
  SimDuration result_timeout{std::chrono::seconds{600}};
  SimDuration connect_timeout{std::chrono::seconds{60}};
  // Initial-connection attempts; Bluetooth establishment faults are routine
  // (§4.3), so applications retry.
  int connect_attempts{3};
};

struct MigrationOutcome {
  enum class Kind {
    kCompletedLive,    // result arrived on the (possibly handed-over) channel
    kCompletedRouted,  // result arrived via server-initiated reconnection
    kFailed,
  };
  Kind kind{Kind::kFailed};
  Error error{};
  SimTime started{};
  SimTime upload_done{};
  SimTime finished{};
  std::uint64_t handovers{0};
  std::uint64_t handover_failures{0};
  bool upload_interrupted{false};
};

class TaskClient {
 public:
  using DoneCallback = std::function<void(const MigrationOutcome&)>;

  TaskClient(Library& library, MacAddress server, std::string service,
             TaskClientConfig config = {});
  ~TaskClient();

  TaskClient(const TaskClient&) = delete;
  TaskClient& operator=(const TaskClient&) = delete;

  // Runs the full migration once. The callback fires exactly once.
  void run(DoneCallback done);

  [[nodiscard]] const std::optional<MigrationOutcome>& outcome() const {
    return outcome_;
  }
  [[nodiscard]] handover::HandoverController* handover_controller() {
    return handover_.get();
  }
  [[nodiscard]] const ChannelPtr& channel() const { return channel_; }

 private:
  void try_connect(int attempts_left);
  void on_connected(ChannelPtr channel);
  void send_header_and_start();
  void send_package(std::uint32_t index);
  void on_frame(const Bytes& frame);
  void finish(MigrationOutcome::Kind kind, Error error = {});

  Library& library_;
  MacAddress server_;
  std::string service_;
  TaskClientConfig config_;
  DoneCallback done_;
  ChannelPtr channel_;
  // Server-initiated callback connection delivering a routed result.
  ChannelPtr reconnect_channel_;
  std::unique_ptr<handover::HandoverController> handover_;
  std::optional<MigrationOutcome> outcome_;
  MigrationOutcome pending_outcome_;
  std::uint32_t next_to_send_{0};
  bool upload_finished_{false};
  sim::EventId result_timer_{sim::kInvalidEvent};
  sim::EventId send_timer_{sim::kInvalidEvent};
  // Guards the in-flight connect attempts (their completions capture `this`
  // and may resolve after this client is destroyed mid-migration).
  DestructionSentinel sentinel_;
};

}  // namespace peerhood::migration
