// TaskServer — the picture-analyse style processing service of Fig. 5.10:
// receive the package count, read every package, process the data, then
// write the result back — reconnecting to the client first when the
// connection is gone (result routing, §5.3).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/handler_slot.hpp"
#include "handover/result_router.hpp"
#include "migration/task.hpp"
#include "peerhood/library.hpp"

namespace peerhood::migration {

struct TaskServerConfig {
  std::string service_name{"picture.analyse"};
  // Result payload size (e.g. the annotated picture sent back).
  std::uint32_t result_size{4000};
  handover::ResultRouterConfig result_routing{};
  // Sessions with no progress for this long are discarded.
  SimDuration session_timeout{std::chrono::seconds{300}};
};

class TaskServer {
 public:
  struct Stats {
    std::uint64_t sessions{0};
    std::uint64_t uploads_completed{0};
    std::uint64_t uploads_abandoned{0};
    std::uint64_t results_live{0};
    std::uint64_t results_routed{0};
    std::uint64_t results_failed{0};
    std::uint64_t resumes_seen{0};
  };

  TaskServer(Library& library, TaskServerConfig config = {});
  ~TaskServer();

  TaskServer(const TaskServer&) = delete;
  TaskServer& operator=(const TaskServer&) = delete;

  void start();
  void stop();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const TaskServerConfig& config() const { return config_; }

 private:
  struct Session {
    ChannelPtr channel;
    TaskSpec spec;
    std::uint32_t next_expected{0};
    bool header_seen{false};
    bool processing{false};
    sim::EventId timeout{sim::kInvalidEvent};
  };

  void on_connect(const ChannelPtr& channel);
  void on_frame(std::uint64_t session_id, const Bytes& frame);
  void begin_processing(std::uint64_t session_id);
  void finish_session(std::uint64_t session_id);
  void arm_timeout(std::uint64_t session_id);

  Library& library_;
  TaskServerConfig config_;
  handover::ResultRouter router_;
  std::map<std::uint64_t, Session> sessions_;
  Stats stats_;
  bool running_{false};
  // Guards the processing-completion events (they capture `this` and are
  // not individually tracked/cancelled).
  DestructionSentinel sentinel_;
};

}  // namespace peerhood::migration
