// Task-migration framing (§5.1/§5.3): the client uploads a header plus N
// data packages; the server processes them and returns a result. Frames are
// tagged so the same channel carries upload, resume-progress negotiation and
// the result. The resume negotiation (server tells the client where to
// continue after a connection substitution) is the application-level change
// the paper calls for in §4.3: "Further applications also need to be
// modified similarly."
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/sim_time.hpp"

namespace peerhood::migration {

enum class FrameTag : std::uint8_t {
  kHeader = 1,    // client -> server: task description
  kPackage = 2,   // client -> server: one data package
  kProgress = 3,  // server -> client: next package index expected (on resume)
  kResult = 4,    // server -> client: processed result
};

struct TaskSpec {
  std::uint32_t package_count{10};
  std::uint32_t package_size{1000};
  // Server-side processing cost per package (e.g. image analysis).
  SimDuration per_package_processing{std::chrono::milliseconds{200}};
  // Client pacing between packages (0 = back-to-back).
  SimDuration send_interval{SimDuration{0}};
};

struct HeaderFrame {
  TaskSpec spec;
};

struct PackageFrame {
  std::uint32_t index{0};
  std::uint32_t size{0};  // payload bytes (body is synthetic)
};

struct ProgressFrame {
  std::uint32_t next_expected{0};
};

struct ResultFrame {
  std::uint32_t result_size{0};
  std::uint32_t packages_processed{0};
};

[[nodiscard]] Bytes encode(const HeaderFrame& frame);
[[nodiscard]] Bytes encode(const PackageFrame& frame);
[[nodiscard]] Bytes encode(const ProgressFrame& frame);
[[nodiscard]] Bytes encode(const ResultFrame& frame);

[[nodiscard]] std::optional<FrameTag> tag_of(const Bytes& payload);
[[nodiscard]] std::optional<HeaderFrame> decode_header(const Bytes& payload);
[[nodiscard]] std::optional<PackageFrame> decode_package(const Bytes& payload);
[[nodiscard]] std::optional<ProgressFrame> decode_progress(
    const Bytes& payload);
[[nodiscard]] std::optional<ResultFrame> decode_result(const Bytes& payload);

}  // namespace peerhood::migration
