#include "migration/task.hpp"

namespace peerhood::migration {
namespace {

constexpr std::int64_t kMicrosPerSecond = 1'000'000;

}  // namespace

Bytes encode(const HeaderFrame& frame) {
  ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(FrameTag::kHeader));
  writer.u32(frame.spec.package_count);
  writer.u32(frame.spec.package_size);
  writer.u64(static_cast<std::uint64_t>(frame.spec.per_package_processing.count()));
  return std::move(writer).take();
}

Bytes encode(const PackageFrame& frame) {
  ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(FrameTag::kPackage));
  writer.u32(frame.index);
  writer.u32(frame.size);
  // Synthetic body: the size is what matters for transmission time.
  Bytes body(frame.size, 0xAB);
  writer.blob(body);
  return std::move(writer).take();
}

Bytes encode(const ProgressFrame& frame) {
  ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(FrameTag::kProgress));
  writer.u32(frame.next_expected);
  return std::move(writer).take();
}

Bytes encode(const ResultFrame& frame) {
  ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(FrameTag::kResult));
  writer.u32(frame.result_size);
  writer.u32(frame.packages_processed);
  Bytes body(frame.result_size, 0xCD);
  writer.blob(body);
  return std::move(writer).take();
}

std::optional<FrameTag> tag_of(const Bytes& payload) {
  if (payload.empty()) return std::nullopt;
  const auto tag = static_cast<FrameTag>(payload[0]);
  switch (tag) {
    case FrameTag::kHeader:
    case FrameTag::kPackage:
    case FrameTag::kProgress:
    case FrameTag::kResult:
      return tag;
  }
  return std::nullopt;
}

std::optional<HeaderFrame> decode_header(const Bytes& payload) {
  ByteReader reader{payload};
  if (static_cast<FrameTag>(reader.u8()) != FrameTag::kHeader) {
    return std::nullopt;
  }
  HeaderFrame frame;
  frame.spec.package_count = reader.u32();
  frame.spec.package_size = reader.u32();
  frame.spec.per_package_processing =
      SimDuration{static_cast<std::int64_t>(reader.u64())};
  if (!reader.ok()) return std::nullopt;
  (void)kMicrosPerSecond;
  return frame;
}

std::optional<PackageFrame> decode_package(const Bytes& payload) {
  ByteReader reader{payload};
  if (static_cast<FrameTag>(reader.u8()) != FrameTag::kPackage) {
    return std::nullopt;
  }
  PackageFrame frame;
  frame.index = reader.u32();
  frame.size = reader.u32();
  (void)reader.blob();
  if (!reader.ok()) return std::nullopt;
  return frame;
}

std::optional<ProgressFrame> decode_progress(const Bytes& payload) {
  ByteReader reader{payload};
  if (static_cast<FrameTag>(reader.u8()) != FrameTag::kProgress) {
    return std::nullopt;
  }
  ProgressFrame frame;
  frame.next_expected = reader.u32();
  if (!reader.ok()) return std::nullopt;
  return frame;
}

std::optional<ResultFrame> decode_result(const Bytes& payload) {
  ByteReader reader{payload};
  if (static_cast<FrameTag>(reader.u8()) != FrameTag::kResult) {
    return std::nullopt;
  }
  ResultFrame frame;
  frame.result_size = reader.u32();
  frame.packages_processed = reader.u32();
  (void)reader.blob();
  if (!reader.ok()) return std::nullopt;
  return frame;
}

}  // namespace peerhood::migration
