#include "migration/task_client.hpp"

#include "common/log.hpp"

namespace peerhood::migration {

TaskClient::TaskClient(Library& library, MacAddress server,
                       std::string service, TaskClientConfig config)
    : library_{library},
      server_{server},
      service_{std::move(service)},
      config_{std::move(config)} {}

TaskClient::~TaskClient() {
  sim::Simulator& sim = library_.daemon().simulator();
  sim.cancel(result_timer_);
  sim.cancel(send_timer_);
  if (handover_ != nullptr) handover_->stop();
  // Destroying the client mid-migration: the engine-registered service
  // handler and the channel handlers all capture `this` — sever them so a
  // still-running scenario cannot call into a dead client.
  if (!outcome_.has_value()) {
    library_.unregister_service(config_.reconnect_service);
  }
  for (const ChannelPtr& channel : {channel_, reconnect_channel_}) {
    if (channel != nullptr) {
      channel->set_data_handler(nullptr);
      channel->set_close_handler(nullptr);
    }
  }
}

void TaskClient::run(DoneCallback done) {
  done_ = std::move(done);
  pending_outcome_ = MigrationOutcome{};
  pending_outcome_.started = library_.daemon().simulator().now();

  // Register the call-back target for server-initiated result delivery.
  // Method 1 advertises it network-wide ("client" attribute); Method 2
  // keeps it hidden and pushes the parameters in the connect handshake.
  const bool visible =
      config_.reconnect_method == handover::ReconnectMethod::kClientService;
  (void)library_.register_service(
      ServiceInfo{config_.reconnect_service,
                  visible ? "client" : kHiddenAttribute, 0},
      [this](ChannelPtr back_channel, const wire::ConnectRequest&) {
        back_channel->set_data_handler([this](const Bytes& frame) {
          if (tag_of(frame) == FrameTag::kResult && !outcome_.has_value()) {
            finish(MigrationOutcome::Kind::kCompletedRouted);
          }
        });
        // Keep the callback connection alive until the client finishes.
        reconnect_channel_ = std::move(back_channel);
      });

  try_connect(config_.connect_attempts);

  result_timer_ = library_.daemon().simulator().schedule_after(
      config_.result_timeout, [this] {
        if (outcome_.has_value()) return;
        finish(MigrationOutcome::Kind::kFailed,
               Error{ErrorCode::kTimeout, "no result before deadline"});
      });
}

void TaskClient::try_connect(int attempts_left) {
  Library::ConnectOptions options;
  options.include_client_params = true;
  options.reconnect_service = config_.reconnect_service;
  options.timeout = config_.connect_timeout;
  library_.connect(server_, service_, options,
                   [this, token = sentinel_.token(),
                    attempts_left](Result<ChannelPtr> result) {
                     if (token.expired()) return;
                     if (result.ok()) {
                       on_connected(std::move(result).value());
                       return;
                     }
                     if (attempts_left > 1 && !outcome_.has_value()) {
                       try_connect(attempts_left - 1);
                       return;
                     }
                     finish(MigrationOutcome::Kind::kFailed, result.error());
                   });
}

void TaskClient::on_connected(ChannelPtr channel) {
  channel_ = std::move(channel);
  channel_->set_sending(true);
  channel_->set_data_handler([this](const Bytes& frame) { on_frame(frame); });
  channel_->set_close_handler([this] {
    if (outcome_.has_value()) return;
    if (!upload_finished_) pending_outcome_.upload_interrupted = true;
    // While waiting for the result the loss is expected (§5.3); the server
    // will reconnect. During upload the handover controller handles repair.
  });

  if (config_.use_handover) {
    handover_ = std::make_unique<handover::HandoverController>(
        library_, channel_, config_.handover);
    handover_->set_event_handler([this](const handover::HandoverEvent& event) {
      using Kind = handover::HandoverEvent::Kind;
      if (event.kind == Kind::kHandoverComplete) {
        ++pending_outcome_.handovers;
        // After substitution the server replies with a progress frame that
        // tells us where to resume; sending pauses until it arrives.
      } else if (event.kind == Kind::kHandoverFailed) {
        ++pending_outcome_.handover_failures;
      } else if (event.kind == Kind::kReconnected) {
        // New provider, new session: the whole task restarts (§5.2.2).
        channel_ = event.new_channel;
        channel_->set_data_handler(
            [this](const Bytes& frame) { on_frame(frame); });
        next_to_send_ = 0;
        upload_finished_ = false;
        send_header_and_start();
      } else if (event.kind == Kind::kGaveUp) {
        if (!outcome_.has_value() && !upload_finished_) {
          finish(MigrationOutcome::Kind::kFailed,
                 Error{ErrorCode::kConnectionFailed, event.detail});
        }
      }
    });
    handover_->start();
  }

  send_header_and_start();
}

void TaskClient::send_header_and_start() {
  (void)channel_->write(encode(HeaderFrame{config_.spec}));
  send_package(0);
}

void TaskClient::send_package(std::uint32_t index) {
  if (outcome_.has_value()) return;
  next_to_send_ = index;
  if (index >= config_.spec.package_count) {
    upload_finished_ = true;
    pending_outcome_.upload_done = library_.daemon().simulator().now();
    // §5.3: tell the monitor the connection is no longer needed.
    channel_->set_sending(false);
    return;
  }
  if (!channel_->open()) {
    // Paused: either the handover controller repairs the channel (then the
    // server's progress frame restarts us) or the task fails by timeout.
    return;
  }
  PackageFrame package;
  package.index = index;
  package.size = config_.spec.package_size;
  (void)channel_->write(encode(package));
  const SimDuration gap = config_.spec.send_interval;
  send_timer_ = library_.daemon().simulator().schedule_after(
      gap, [this, index] { send_package(index + 1); });
}

void TaskClient::on_frame(const Bytes& frame) {
  const auto tag = tag_of(frame);
  if (!tag.has_value()) return;
  switch (*tag) {
    case FrameTag::kProgress: {
      // Server tells us where to resume after a connection substitution.
      const auto progress = decode_progress(frame);
      if (!progress.has_value()) return;
      if (!upload_finished_) {
        channel_->set_sending(true);
        library_.daemon().simulator().cancel(send_timer_);
        send_package(progress->next_expected);
      }
      return;
    }
    case FrameTag::kResult: {
      if (!outcome_.has_value()) {
        finish(MigrationOutcome::Kind::kCompletedLive);
      }
      return;
    }
    default:
      return;
  }
}

void TaskClient::finish(MigrationOutcome::Kind kind, Error error) {
  if (outcome_.has_value()) return;
  pending_outcome_.kind = kind;
  pending_outcome_.error = std::move(error);
  pending_outcome_.finished = library_.daemon().simulator().now();
  outcome_ = pending_outcome_;
  if (handover_ != nullptr) handover_->stop();
  library_.daemon().simulator().cancel(result_timer_);
  library_.daemon().simulator().cancel(send_timer_);
  library_.unregister_service(config_.reconnect_service);
  if (done_) done_(*outcome_);
}

}  // namespace peerhood::migration
