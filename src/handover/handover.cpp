#include "handover/handover.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "net/network.hpp"
#include "peerhood/daemon.hpp"

namespace peerhood::handover {

namespace {
// Score penalty per failed resume attempt through a bridge within the
// current repair episode — larger than any achievable link score, so one
// failure sorts the bridge behind every untried candidate (a crashed relay
// would otherwise win re-planning forever on its stale advertised quality).
constexpr int kBridgeFailurePenalty = 1000;
}  // namespace

HandoverController::HandoverController(Library& library, ChannelPtr channel,
                                       HandoverConfig config)
    : library_{library}, channel_{std::move(channel)}, config_{config} {}

HandoverController::~HandoverController() { stop(); }

void HandoverController::start() {
  state_ = HandoverState::kPrepare;
  refresh_plan();
  state_ = HandoverState::kMonitor;
  if (config_.predictive_enabled) subscribe_link();
  monitor_.start(library_.daemon().simulator(), config_.monitor_period,
                 [this] { tick(); }, config_.monitor_period);
}

void HandoverController::stop() {
  monitor_.stop();
  disarm_predictor();
  unsubscribe_link();
}

std::optional<MacAddress> HandoverController::planned_bridge() const {
  if (plan_.empty()) return std::nullopt;
  return plan_.front().bridge;
}

void HandoverController::set_event_handler(EventHandler handler) {
  event_slot_.set(std::move(handler));
}

void HandoverController::set_permission_callback(PermissionCallback callback) {
  permission_ = std::move(callback);
}

bool HandoverController::emit(const HandoverEvent& event) {
  const DestructionSentinel::Token alive = sentinel_.token();
  // Copy-before-call (inside the slot): the handler may stop() this
  // controller, replace itself via set_event_handler, or destroy the
  // controller outright.
  event_slot_.invoke(event);
  return !alive.expired();
}

void HandoverController::refresh_plan() {
  // State 0 (Fig. 5.5): "Get DeviceList; find connected device from the
  // neighbours of each DeviceList element; store the best quality way."
  plan_.clear();
  const MacAddress peer = channel_->peer();
  const MacAddress self = library_.daemon().mac();
  for (const DeviceRecord& record : library_.daemon().storage().snapshot()) {
    if (!record.is_direct() || record.device.mac == peer ||
        record.device.mac == self) {
      continue;
    }
    const auto link = std::find_if(
        record.neighbour_links.begin(), record.neighbour_links.end(),
        [peer](const NeighbourLink& l) { return l.mac == peer; });
    if (link == record.neighbour_links.end()) continue;
    // Route strength = the weakest of self->bridge and bridge->peer, minus
    // the §3.4.3 mobility cost of the bridge: a relay moving with us is
    // likely to lose the peer exactly when we do.
    int score = std::min(record.quality_sum, link->quality) -
                config_.bridge_mobility_penalty *
                    mobility_cost(record.device.mobility);
    if (const auto failed = bridge_failures_.find(record.device.mac);
        failed != bridge_failures_.end()) {
      score -= kBridgeFailurePenalty * failed->second;
    }
    plan_.push_back(RouteCandidate{record.device.mac, score});
  }
  // Fallback: the storage's own (possibly multi-hop) route towards the
  // peer — its first hop can relay the resume through the chain, since
  // every bridge re-resolves the next hop from its own storage (Fig. 5.6).
  const auto peer_record = library_.daemon().storage().find(peer);
  if (peer_record.has_value() && !peer_record->is_direct()) {
    const bool already_planned = std::any_of(
        plan_.begin(), plan_.end(), [&](const RouteCandidate& c) {
          return c.bridge == peer_record->bridge;
        });
    if (!already_planned) {
      int score = peer_record->min_link_quality;
      const auto bridge_record =
          library_.daemon().storage().find(peer_record->bridge);
      if (bridge_record.has_value()) {
        score -= config_.bridge_mobility_penalty *
                 mobility_cost(bridge_record->device.mobility);
      }
      if (const auto failed = bridge_failures_.find(peer_record->bridge);
          failed != bridge_failures_.end()) {
        score -= kBridgeFailurePenalty * failed->second;
      }
      plan_.push_back(RouteCandidate{peer_record->bridge, score});
    }
  }
  std::sort(plan_.begin(), plan_.end(),
            [](const RouteCandidate& a, const RouteCandidate& b) {
              return a.score > b.score;
            });
}

// --- Predictive layer --------------------------------------------------------

void HandoverController::subscribe_link() {
  unsubscribe_link();
  if (channel_ == nullptr || channel_->connection() == nullptr) return;
  const net::NetAddress local = channel_->connection()->local_address();
  const net::NetAddress remote = channel_->connection()->remote_address();
  sim::QualityObserverConfig config;
  config.threshold = config_.quality_threshold + config_.predict_headroom;
  config.hysteresis = config_.hysteresis;
  config.min_interval = config_.quality_eval_interval;
  net::Network& network = library_.daemon().network();
  observer_ = network.observe_quality(
      local.mac, remote.mac, remote.tech, config,
      [this, token = sentinel_.token()](const sim::LinkQualityEvent& event) {
        if (token.expired()) return;
        on_quality_event(event);
      });
  // Backends without a geometry model (real sockets) decline the
  // subscription: the predictor then never arms and the reactive monitor
  // loop owns every repair.
  if (observer_ == sim::kInvalidQualityObserver) return;
  // The observer's edge detector primes silently: if the link is *already*
  // inside the arming band at subscription (connected near the edge, or a
  // post-handover hop that starts degraded), kFell will never fire — arm
  // the predictor directly.
  const sim::LinkQualityEvent probe =
      network.probe_link(local.mac, remote.mac, remote.tech);
  if (probe.quality > 0 && probe.quality < config.threshold && !busy_) {
    arm_predictor();
  }
}

void HandoverController::unsubscribe_link() {
  if (observer_ == sim::kInvalidQualityObserver) return;
  library_.daemon().network().unobserve_quality(observer_);
  observer_ = sim::kInvalidQualityObserver;
}

double HandoverController::setup_estimate_s() const {
  if (config_.bridge_setup_estimate > SimDuration{0}) {
    return std::chrono::duration<double>(config_.bridge_setup_estimate)
        .count();
  }
  // Worst-case establishment of a §4.1 bridge chain: the PH_OK travels back
  // only after *two* hops re-established (self->bridge, bridge->peer), each
  // paying the per-hop connect delay — the §4.3 measurement this whole
  // plane exists to outrun.
  Technology tech = Technology::kBluetooth;
  if (channel_ != nullptr && channel_->connection() != nullptr) {
    tech = channel_->connection()->remote_address().tech;
  }
  return 2.0 *
         library_.daemon().network().params(tech).connect_delay_max_s;
}

void HandoverController::on_quality_event(const sim::LinkQualityEvent& event) {
  ++stats_.quality_events;
  using Edge = sim::LinkQualityEvent::Edge;
  switch (event.edge) {
    case Edge::kFell:
      // Below threshold: start tracking time-to-loss. The first check runs
      // on this event's own measurements.
      if (!busy_ && channel_ != nullptr && channel_->open()) {
        arm_predictor();
        predict_check();
      }
      break;
    case Edge::kRose:
      disarm_predictor();
      low_count_ = 0;
      break;
    case Edge::kLost:
      // Coverage gone — prediction missed (or never had a mobility signal).
      link_lost_since_dial_ = true;
      disarm_predictor();
      if (!busy_ && channel_ != nullptr && channel_->sending()) {
        ++stats_.degradations;
        if (!emit(HandoverEvent{HandoverEvent::Kind::kDegradationDetected, {},
                                nullptr, "link left coverage"})) {
          return;  // handler destroyed the controller
        }
        execute();
      }
      break;
    case Edge::kRestored:
      break;
  }
}

void HandoverController::arm_predictor() {
  if (predictor_.running()) return;
  predictor_.start(library_.daemon().simulator(), config_.predict_poll_period,
                   [this] { predict_check(); }, config_.predict_poll_period);
}

void HandoverController::disarm_predictor() { predictor_.stop(); }

void HandoverController::predict_check() {
  if (busy_ || channel_ == nullptr || !channel_->open()) {
    disarm_predictor();
    return;
  }
  const net::ConnectionPtr& conn = channel_->connection();
  if (conn == nullptr) return;
  const net::NetAddress local = conn->local_address();
  const net::NetAddress remote = conn->remote_address();
  net::Network& network = library_.daemon().network();
  const sim::LinkQualityEvent probe =
      network.probe_link(local.mac, remote.mac, remote.tech);
  if (probe.quality > config_.quality_threshold + config_.predict_headroom +
                          config_.hysteresis) {
    // Recovered (defensive double-check of the kRose edge).
    disarm_predictor();
    return;
  }
  if (probe.quality == 0) {
    // Already dead at the model level; treat as a missed prediction — the
    // reactive path (kLost event / monitor tick) repairs it.
    return;
  }
  if (probe.radial_speed_mps <= 1e-6) return;  // not separating
  // §5.3: while the application is idle the loss does not matter — keep
  // watching silently (the predictor stays armed so repair resumes the
  // moment the sending flag comes back).
  if (!channel_->sending()) return;
  const double range = network.params(remote.tech).range_m;
  const double time_to_loss =
      (range - probe.distance_m) / probe.radial_speed_mps;
  if (time_to_loss > setup_estimate_s() * config_.setup_margin) return;
  // Pre-dialing only makes sense onto a route that does not share the dying
  // first hop: resuming "via" the hop we are already on replaces the
  // connection with an identical path. Terminal loss with no alternative
  // (and §5.2.2 reconnection) stays with the reactive path.
  if (!config_.routing_enabled) return;
  refresh_plan();
  std::erase_if(plan_, [hop = remote.mac](const RouteCandidate& c) {
    return c.bridge == hop;
  });
  if (plan_.empty()) return;  // keep watching; nothing better to dial
  // Make-before-break window open: pre-dial the best bridge now, swap while
  // the old link is still alive.
  disarm_predictor();
  ++stats_.predictions;
  ++stats_.degradations;
  predicted_ = true;
  link_lost_since_dial_ = false;
  if (!emit(HandoverEvent{
          HandoverEvent::Kind::kPredictedLoss, {}, nullptr,
          "predicted loss in " + std::to_string(time_to_loss) + " s"})) {
    return;  // handler destroyed the controller
  }
  execute();
}

// --- Reactive loop (the paper's Fig. 5.5, kept as fallback) ------------------

void HandoverController::tick() {
  if (busy_) return;
  // Keep the plan fresh: the neighbourhood changes while the device moves.
  refresh_plan();

  if (!channel_->open()) {
    link_lost_since_dial_ = true;
    // The link died before (or despite) soft handover.
    if (!channel_->sending()) {
      ++stats_.suppressed;
      state_ = HandoverState::kDone;
      if (!emit(HandoverEvent{HandoverEvent::Kind::kRepairSuppressed, {},
                              nullptr,
                              "connection lost while idle (result routing "
                              "mode)"})) {
        return;  // handler destroyed the controller
      }
      stop();
      return;
    }
    execute();
    return;
  }

  ++stats_.samples;
  const int quality = channel_->link_quality();
  if (quality < config_.quality_threshold) {
    ++low_count_;
  } else {
    low_count_ = 0;
  }
  if (low_count_ > config_.low_count_limit) {
    ++stats_.degradations;
    low_count_ = 0;
    if (!emit(HandoverEvent{HandoverEvent::Kind::kDegradationDetected, {},
                            nullptr, "link quality below threshold"})) {
      return;  // handler destroyed the controller
    }
    execute();
  }
}

void HandoverController::execute() {
  if (!channel_->sending()) {
    // §5.3: the application finished sending; repair would be wasted work —
    // the server will route the result back itself.
    ++stats_.suppressed;
    predicted_ = false;
    (void)emit(HandoverEvent{HandoverEvent::Kind::kRepairSuppressed, {},
                             nullptr, "sending flag cleared"});
    return;  // nothing below touches members — destruction-safe either way
  }
  state_ = HandoverState::kExecute;
  busy_ = true;
  if (config_.routing_enabled && !plan_.empty()) {
    attempt_route(0);
  } else if (config_.direct_resume_enabled && !channel_->open()) {
    // No routing plan at all, link dead: go straight at the peer — it may
    // have restarted and be journal-resumable.
    attempt_direct_resume();
  } else if (config_.reconnection_enabled) {
    start_reconnection();
  } else {
    busy_ = false;
    predicted_ = false;
    state_ = HandoverState::kFailed;
    if (!emit(HandoverEvent{HandoverEvent::Kind::kGaveUp, {}, nullptr,
                            "no routing plan and reconnection disabled"})) {
      return;  // handler destroyed the controller
    }
    stop();
  }
}

void HandoverController::attempt_route(std::size_t candidate_index) {
  const std::size_t limit = std::min<std::size_t>(
      plan_.size(), static_cast<std::size_t>(config_.max_route_attempts));
  if (candidate_index >= limit) {
    ++stats_.route_failures;
    predicted_ = false;
    if (!channel_->open()) {
      if (config_.direct_resume_enabled) {
        attempt_direct_resume();
        return;
      }
      finish_dead_link_pass();
      return;
    }
    // Connection still alive: stay in monitor state and hope for recovery
    // or a better plan on the next tick. Re-arm the predictor — the link is
    // still degrading and kFell will not fire again while below threshold.
    dead_link_passes_ = 0;
    busy_ = false;
    state_ = HandoverState::kMonitor;
    if (config_.predictive_enabled && channel_->open()) arm_predictor();
    return;
  }
  const MacAddress bridge = plan_[candidate_index].bridge;
  ++stats_.route_attempts;
  library_.resume_via_bridge(
      bridge, channel_,
      [this, token = sentinel_.token(), bridge,
       candidate_index](Status status) {
        // The resume may resolve long after this controller died.
        if (token.expired()) return;
        if (status.ok()) {
          ++stats_.handovers;
          if (predicted_ && !link_lost_since_dial_) {
            // The swap completed with the old transport still alive —
            // a genuine make-before-break, no outage window.
            ++stats_.predictive_handovers;
          }
          predicted_ = false;
          busy_ = false;
          low_count_ = 0;
          dead_link_passes_ = 0;
          bridge_failures_.clear();
          state_ = HandoverState::kMonitor;
          // Traffic now flows through the bridge: move the observer to the
          // link the device can actually sense (self -> bridge hop).
          if (config_.predictive_enabled) subscribe_link();
          (void)emit(HandoverEvent{HandoverEvent::Kind::kHandoverComplete,
                                   bridge, nullptr,
                                   "rerouted via " + bridge.to_string()});
          return;
        }
        ++bridge_failures_[bridge];
        if (!emit(HandoverEvent{HandoverEvent::Kind::kHandoverFailed, bridge,
                                nullptr, status.error().to_string()})) {
          return;  // handler destroyed the controller
        }
        attempt_route(candidate_index + 1);
      },
      config_.resume_timeout);
}

void HandoverController::attempt_direct_resume() {
  ++stats_.direct_resumes;
  library_.resume_direct(
      channel_,
      [this, token = sentinel_.token()](Status status) {
        if (token.expired()) return;
        if (status.ok()) {
          // Same recovery as a successful routing handover, minus a bridge:
          // the session survived, possibly across a peer restart.
          ++stats_.handovers;
          predicted_ = false;
          busy_ = false;
          low_count_ = 0;
          dead_link_passes_ = 0;
          bridge_failures_.clear();
          state_ = HandoverState::kMonitor;
          if (config_.predictive_enabled) subscribe_link();
          (void)emit(HandoverEvent{HandoverEvent::Kind::kHandoverComplete, {},
                                   nullptr, "resumed directly with peer"});
          return;
        }
        if (!emit(HandoverEvent{HandoverEvent::Kind::kHandoverFailed, {},
                                nullptr, status.error().to_string()})) {
          return;  // handler destroyed the controller
        }
        finish_dead_link_pass();
      },
      config_.resume_timeout);
}

void HandoverController::finish_dead_link_pass() {
  if (config_.reconnection_enabled) {
    start_reconnection();
    return;
  }
  // Link dead and the whole plan failed. On a bursty medium one pass can
  // fail spuriously (every handshake of every candidate lost), so drop back
  // to monitor and let tick() re-run the plan — but only a few times. After
  // that the route is genuinely gone: go terminal so the application's own
  // recovery (the scenario watchdog) takes over.
  if (++dead_link_passes_ < config_.max_dead_link_passes) {
    busy_ = false;
    state_ = HandoverState::kMonitor;
    return;
  }
  busy_ = false;
  state_ = HandoverState::kFailed;
  if (!emit(HandoverEvent{HandoverEvent::Kind::kGaveUp, {}, nullptr,
                          "routing plan exhausted on a dead link"})) {
    return;  // handler destroyed the controller
  }
  stop();
}

void HandoverController::start_reconnection() {
  state_ = HandoverState::kReconnecting;
  predicted_ = false;
  // §5.2.2: ask the user before restarting the task on another provider.
  // The grant may arrive asynchronously, long after this controller died —
  // hence the sentinel token.
  auto proceed = [this, token = sentinel_.token()](bool granted) {
    if (token.expired()) return;
    if (!granted) {
      busy_ = false;
      state_ = HandoverState::kFailed;
      if (!emit(HandoverEvent{HandoverEvent::Kind::kGaveUp, {}, nullptr,
                              "user declined reconnection"})) {
        return;  // handler destroyed the controller
      }
      stop();
      return;
    }
    const auto providers =
        library_.daemon().storage().providers_of(channel_->service());
    const MacAddress old_peer = channel_->peer();
    const auto it = std::find_if(
        providers.begin(), providers.end(),
        [old_peer](const DeviceRecord& r) { return r.device.mac != old_peer; });
    if (it == providers.end()) {
      busy_ = false;
      state_ = HandoverState::kFailed;
      if (!emit(HandoverEvent{
              HandoverEvent::Kind::kGaveUp, {}, nullptr,
              "no alternative provider of " + channel_->service()})) {
        return;  // handler destroyed the controller
      }
      stop();
      return;
    }
    Library::ConnectOptions options;
    library_.connect(
        it->device.mac, channel_->service(), options,
        [this, token](Result<ChannelPtr> result) {
          if (token.expired()) return;
          busy_ = false;
          if (!result.ok()) {
            state_ = HandoverState::kFailed;
            if (!emit(HandoverEvent{HandoverEvent::Kind::kGaveUp, {}, nullptr,
                                    result.error().to_string()})) {
              return;  // handler destroyed the controller
            }
            stop();
            return;
          }
          ++stats_.reconnections;
          state_ = HandoverState::kDone;
          // A reconnection is a *new* session: the task restarts (§5.2.2
          // "the process is identical to a completely new connection").
          if (!emit(HandoverEvent{HandoverEvent::Kind::kReconnected, {},
                                  std::move(result).value(),
                                  "reconnected to another provider"})) {
            return;  // handler destroyed the controller
          }
          stop();
        });
  };
  // Copy before calling: the permission callback may replace itself.
  if (permission_) {
    const PermissionCallback ask = permission_;
    ask(std::move(proceed));
  } else {
    proceed(true);
  }
}

}  // namespace peerhood::handover
