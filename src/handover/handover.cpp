#include "handover/handover.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace peerhood::handover {

HandoverController::HandoverController(Library& library, ChannelPtr channel,
                                       HandoverConfig config)
    : library_{library}, channel_{std::move(channel)}, config_{config} {}

HandoverController::~HandoverController() { stop(); }

void HandoverController::start() {
  state_ = HandoverState::kPrepare;
  refresh_plan();
  state_ = HandoverState::kMonitor;
  monitor_.start(library_.daemon().simulator(), config_.monitor_period,
                 [this] { tick(); }, config_.monitor_period);
}

void HandoverController::stop() { monitor_.stop(); }

std::optional<MacAddress> HandoverController::planned_bridge() const {
  if (plan_.empty()) return std::nullopt;
  return plan_.front().bridge;
}

void HandoverController::set_event_handler(EventHandler handler) {
  event_slot_.set(std::move(handler));
}

void HandoverController::set_permission_callback(PermissionCallback callback) {
  permission_ = std::move(callback);
}

bool HandoverController::emit(const HandoverEvent& event) {
  const DestructionSentinel::Token alive = sentinel_.token();
  // Copy-before-call (inside the slot): the handler may stop() this
  // controller, replace itself via set_event_handler, or destroy the
  // controller outright.
  event_slot_.invoke(event);
  return !alive.expired();
}

void HandoverController::refresh_plan() {
  // State 0 (Fig. 5.5): "Get DeviceList; find connected device from the
  // neighbours of each DeviceList element; store the best quality way."
  plan_.clear();
  const MacAddress peer = channel_->peer();
  const MacAddress self = library_.daemon().mac();
  for (const DeviceRecord& record : library_.daemon().storage().snapshot()) {
    if (!record.is_direct() || record.device.mac == peer ||
        record.device.mac == self) {
      continue;
    }
    const auto link = std::find_if(
        record.neighbour_links.begin(), record.neighbour_links.end(),
        [peer](const NeighbourLink& l) { return l.mac == peer; });
    if (link == record.neighbour_links.end()) continue;
    // Route strength = the weakest of self->bridge and bridge->peer.
    const int score = std::min(record.quality_sum, link->quality);
    plan_.push_back(RouteCandidate{record.device.mac, score});
  }
  // Fallback: the storage's own (possibly multi-hop) route towards the
  // peer — its first hop can relay the resume through the chain, since
  // every bridge re-resolves the next hop from its own storage (Fig. 5.6).
  const auto peer_record = library_.daemon().storage().find(peer);
  if (peer_record.has_value() && !peer_record->is_direct()) {
    const bool already_planned = std::any_of(
        plan_.begin(), plan_.end(), [&](const RouteCandidate& c) {
          return c.bridge == peer_record->bridge;
        });
    if (!already_planned) {
      plan_.push_back(
          RouteCandidate{peer_record->bridge, peer_record->min_link_quality});
    }
  }
  std::sort(plan_.begin(), plan_.end(),
            [](const RouteCandidate& a, const RouteCandidate& b) {
              return a.score > b.score;
            });
}

void HandoverController::tick() {
  if (busy_) return;
  // Keep the plan fresh: the neighbourhood changes while the device moves.
  refresh_plan();

  if (!channel_->open()) {
    // The link died before (or despite) soft handover.
    if (!channel_->sending()) {
      ++stats_.suppressed;
      state_ = HandoverState::kDone;
      if (!emit(HandoverEvent{HandoverEvent::Kind::kRepairSuppressed, {},
                              nullptr,
                              "connection lost while idle (result routing "
                              "mode)"})) {
        return;  // handler destroyed the controller
      }
      stop();
      return;
    }
    execute();
    return;
  }

  ++stats_.samples;
  const int quality = channel_->link_quality();
  if (quality < config_.quality_threshold) {
    ++low_count_;
  } else {
    low_count_ = 0;
  }
  if (low_count_ > config_.low_count_limit) {
    ++stats_.degradations;
    low_count_ = 0;
    if (!emit(HandoverEvent{HandoverEvent::Kind::kDegradationDetected, {},
                            nullptr, "link quality below threshold"})) {
      return;  // handler destroyed the controller
    }
    execute();
  }
}

void HandoverController::execute() {
  if (!channel_->sending()) {
    // §5.3: the application finished sending; repair would be wasted work —
    // the server will route the result back itself.
    ++stats_.suppressed;
    (void)emit(HandoverEvent{HandoverEvent::Kind::kRepairSuppressed, {},
                             nullptr, "sending flag cleared"});
    return;  // nothing below touches members — destruction-safe either way
  }
  state_ = HandoverState::kExecute;
  busy_ = true;
  if (config_.routing_enabled && !plan_.empty()) {
    attempt_route(0);
  } else if (config_.reconnection_enabled) {
    start_reconnection();
  } else {
    busy_ = false;
    state_ = HandoverState::kFailed;
    if (!emit(HandoverEvent{HandoverEvent::Kind::kGaveUp, {}, nullptr,
                            "no routing plan and reconnection disabled"})) {
      return;  // handler destroyed the controller
    }
    stop();
  }
}

void HandoverController::attempt_route(std::size_t candidate_index) {
  const std::size_t limit = std::min<std::size_t>(
      plan_.size(), static_cast<std::size_t>(config_.max_route_attempts));
  if (candidate_index >= limit) {
    ++stats_.route_failures;
    if (config_.reconnection_enabled && !channel_->open()) {
      start_reconnection();
      return;
    }
    // Connection still alive: stay in monitor state and hope for recovery
    // or a better plan on the next tick.
    busy_ = false;
    state_ = HandoverState::kMonitor;
    return;
  }
  const MacAddress bridge = plan_[candidate_index].bridge;
  ++stats_.route_attempts;
  library_.resume_via_bridge(
      bridge, channel_,
      [this, token = sentinel_.token(), bridge,
       candidate_index](Status status) {
        // The resume may resolve long after this controller died.
        if (token.expired()) return;
        if (status.ok()) {
          ++stats_.handovers;
          busy_ = false;
          low_count_ = 0;
          state_ = HandoverState::kMonitor;
          (void)emit(HandoverEvent{HandoverEvent::Kind::kHandoverComplete,
                                   bridge, nullptr,
                                   "rerouted via " + bridge.to_string()});
          return;
        }
        if (!emit(HandoverEvent{HandoverEvent::Kind::kHandoverFailed, bridge,
                                nullptr, status.error().to_string()})) {
          return;  // handler destroyed the controller
        }
        attempt_route(candidate_index + 1);
      },
      config_.resume_timeout);
}

void HandoverController::start_reconnection() {
  state_ = HandoverState::kReconnecting;
  // §5.2.2: ask the user before restarting the task on another provider.
  // The grant may arrive asynchronously, long after this controller died —
  // hence the sentinel token.
  auto proceed = [this, token = sentinel_.token()](bool granted) {
    if (token.expired()) return;
    if (!granted) {
      busy_ = false;
      state_ = HandoverState::kFailed;
      if (!emit(HandoverEvent{HandoverEvent::Kind::kGaveUp, {}, nullptr,
                              "user declined reconnection"})) {
        return;  // handler destroyed the controller
      }
      stop();
      return;
    }
    const auto providers =
        library_.daemon().storage().providers_of(channel_->service());
    const MacAddress old_peer = channel_->peer();
    const auto it = std::find_if(
        providers.begin(), providers.end(),
        [old_peer](const DeviceRecord& r) { return r.device.mac != old_peer; });
    if (it == providers.end()) {
      busy_ = false;
      state_ = HandoverState::kFailed;
      if (!emit(HandoverEvent{
              HandoverEvent::Kind::kGaveUp, {}, nullptr,
              "no alternative provider of " + channel_->service()})) {
        return;  // handler destroyed the controller
      }
      stop();
      return;
    }
    Library::ConnectOptions options;
    library_.connect(
        it->device.mac, channel_->service(), options,
        [this, token](Result<ChannelPtr> result) {
          if (token.expired()) return;
          busy_ = false;
          if (!result.ok()) {
            state_ = HandoverState::kFailed;
            if (!emit(HandoverEvent{HandoverEvent::Kind::kGaveUp, {}, nullptr,
                                    result.error().to_string()})) {
              return;  // handler destroyed the controller
            }
            stop();
            return;
          }
          ++stats_.reconnections;
          state_ = HandoverState::kDone;
          // A reconnection is a *new* session: the task restarts (§5.2.2
          // "the process is identical to a completely new connection").
          if (!emit(HandoverEvent{HandoverEvent::Kind::kReconnected, {},
                                  std::move(result).value(),
                                  "reconnected to another provider"})) {
            return;  // handler destroyed the controller
          }
          stop();
        });
  };
  // Copy before calling: the permission callback may replace itself.
  if (permission_) {
    const PermissionCallback ask = permission_;
    ask(std::move(proceed));
  } else {
    proceed(true);
  }
}

}  // namespace peerhood::handover
