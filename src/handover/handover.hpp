// HandoverController — the paper's HandoverThread (Fig. 5.5) as a scheduled
// task with the three states of §5.2.1:
//   state 0 (prepare): search the daemon's device list for the connected
//     address inside each direct neighbour's neighbour list and remember the
//     best-quality alternative route;
//   state 1 (monitor): sample link quality every period; more than
//     `low_count_limit` consecutive samples below `quality_threshold` (230)
//     mean degradation;
//   state 2 (execute): create a bridge connection through the stored route
//     and substitute the old connection (the ChangeConnection callback is
//     Channel's handover handler).
// When routing handover is impossible or exhausted, fall back to service
// reconnection (§5.2.2) — connect to another provider of the same service,
// with the user's permission, restarting the application task. The §5.3
// `sending` flag suppresses all repair while the application is idle waiting
// for a result.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/handler_slot.hpp"
#include "peerhood/library.hpp"
#include "sim/simulator.hpp"

namespace peerhood::handover {

struct HandoverConfig {
  int quality_threshold{230};
  int low_count_limit{3};
  SimDuration monitor_period{std::chrono::seconds{1}};
  // Routing-handover attempts (distinct bridges) before falling back.
  int max_route_attempts{2};
  // Disables routing handover entirely (hard-handover baseline: reconnect
  // to another provider only — the Fig. 5.3 behaviour).
  bool routing_enabled{true};
  bool reconnection_enabled{true};
  SimDuration resume_timeout{std::chrono::seconds{30}};
};

enum class HandoverState {
  kPrepare = 0,
  kMonitor = 1,
  kExecute = 2,
  kReconnecting = 3,
  kDone = 4,
  kFailed = 5,
};

struct HandoverEvent {
  enum class Kind {
    kDegradationDetected,
    kHandoverComplete,   // same session re-routed through `bridge`
    kHandoverFailed,     // one bridge attempt failed
    kReconnected,        // new session on another provider (`new_channel`)
    kRepairSuppressed,   // sending == false, loss does not matter (§5.3)
    kGaveUp,
  };
  Kind kind;
  MacAddress bridge;
  ChannelPtr new_channel;
  std::string detail;
};

class HandoverController {
 public:
  // Asks the user for permission before service reconnection (§5.2.2: "it's
  // preferable to notify the application user about the reconnection need").
  // Call grant(true/false). Default when unset: granted.
  using PermissionCallback =
      std::function<void(std::function<void(bool)> grant)>;
  using EventHandler = std::function<void(const HandoverEvent&)>;

  struct Stats {
    std::uint64_t samples{0};
    std::uint64_t degradations{0};
    std::uint64_t route_attempts{0};
    std::uint64_t handovers{0};
    std::uint64_t route_failures{0};
    std::uint64_t reconnections{0};
    std::uint64_t suppressed{0};
  };

  HandoverController(Library& library, ChannelPtr channel,
                     HandoverConfig config = {});
  ~HandoverController();

  HandoverController(const HandoverController&) = delete;
  HandoverController& operator=(const HandoverController&) = delete;

  void start();
  void stop();

  [[nodiscard]] HandoverState state() const { return state_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::optional<MacAddress> planned_bridge() const;

  void set_event_handler(EventHandler handler);
  void set_permission_callback(PermissionCallback callback);

  // Exposed for tests: one monitor tick / one plan refresh.
  void tick();
  void refresh_plan();

 private:
  struct RouteCandidate {
    MacAddress bridge;
    int score{0};  // weakest link of self->bridge->peer
  };

  // Dispatches the event with copy-before-call discipline. Returns false
  // when the callback destroyed this controller — the caller must then
  // return immediately without touching any member.
  bool emit(const HandoverEvent& event);
  void execute();
  void attempt_route(std::size_t candidate_index);
  void start_reconnection();

  Library& library_;
  ChannelPtr channel_;
  HandoverConfig config_;
  sim::PeriodicTask monitor_;
  HandoverState state_{HandoverState::kPrepare};
  int low_count_{0};
  std::vector<RouteCandidate> plan_;
  HandlerSlot<void(const HandoverEvent&)> event_slot_;
  PermissionCallback permission_;
  Stats stats_;
  bool busy_{false};
  // Guards the in-flight resume/reconnect callbacks (they capture `this`
  // and may resolve after this controller is destroyed).
  DestructionSentinel sentinel_;
};

}  // namespace peerhood::handover
