// HandoverController — the §5.2 handover plane as an event-driven engine.
//
// The seed implementation was the paper's HandoverThread (Fig. 5.5)
// verbatim: poll link quality once per second and react after
// `low_count_limit` consecutive bad samples — by which time the corridor
// walker of Fig. 5.4 has already lost the link, so every handover is an
// outage. This engine keeps that reactive loop as the fallback and layers a
// *predictive make-before-break* path on top of the medium's push-based
// quality plane:
//
//  * On start the controller subscribes a quality observer on the current
//    transport link (RadioMedium::observe_quality). The medium pushes
//    threshold/coverage crossings — no steady-state polling.
//  * A kFell crossing (quality under threshold, hysteresis-guarded) arms a
//    fast predictor that tracks the link's distance and radial speed
//    (RadioMedium::probe_link) and estimates time-to-loss = remaining
//    coverage / separation speed.
//  * When predicted loss is nearer than the estimated bridge establishment
//    latency (× margin), the engine pre-dials the best RouteCandidate
//    bridge — the §5.2.1 re-routing, but *before* the link dies — and the
//    session's connection is swapped while the old link is still alive
//    (make-before-break). The §4.1 chain machinery (and PR 3's HalfOpenDial
//    ownership) is reused unchanged via Library::resume_via_bridge.
//  * If prediction misses (link dies first, or quality collapses without a
//    mobility signal — e.g. the artificial decay of Fig. 5.8), the reactive
//    monitor still detects degradation / loss and repairs it, falling back
//    to §5.2.2 service reconnection when no route exists.
//
// The §5.3 `sending` flag suppresses all repair while the application is
// idle waiting for a result, exactly as before.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/handler_slot.hpp"
#include "peerhood/library.hpp"
#include "sim/medium.hpp"
#include "sim/simulator.hpp"

namespace peerhood::handover {

struct HandoverConfig {
  // --- Reactive (paper) parameters -----------------------------------------
  int quality_threshold{230};
  int low_count_limit{3};
  SimDuration monitor_period{std::chrono::seconds{1}};
  // Routing-handover attempts (distinct bridges) before falling back.
  int max_route_attempts{2};
  // Plan scoring: quality units subtracted per §3.4.3 mobility-cost unit of
  // the bridge ({static,hybrid,dynamic} = {0,1,3}). A mobile bridge whose
  // own link is about to die with ours (e.g. a fellow group member walking
  // the same corridor) must lose to a weaker but static relay even when its
  // advertised neighbour qualities are a full inquiry cycle stale — hence a
  // penalty larger than the stale-quality spread (~60 units for dynamic).
  int bridge_mobility_penalty{20};
  // Disables routing handover entirely (hard-handover baseline: reconnect
  // to another provider only — the Fig. 5.3 behaviour).
  bool routing_enabled{true};
  bool reconnection_enabled{true};
  SimDuration resume_timeout{std::chrono::seconds{30}};
  // Full routing-plan passes attempted against a dead link before the
  // controller goes terminal. Crash scenarios raise this so the controller
  // keeps retrying across a server's downtime and the restart-resume path
  // gets its chance once the peer is back.
  int max_dead_link_passes{3};
  // After the routing plan is exhausted on a dead link, try resuming the
  // session *directly* with the peer before reconnecting elsewhere. This is
  // the crash-recovery path: a restarted peer answers kUnknownSession and
  // the Library re-dials with kResumeRestart against its journal. Off by
  // default — it changes the repair sequence of established scenarios.
  bool direct_resume_enabled{false};

  // --- Predictive make-before-break layer ----------------------------------
  bool predictive_enabled{true};
  // The observer arms the predictor this many quality units *above* the
  // reactive threshold: early warning, so a slow bridge chain can still be
  // pre-dialed before the link reaches the edge.
  int predict_headroom{10};
  // Hysteresis band for the quality observer (kRose needs threshold +
  // hysteresis, so a hovering link cannot chatter).
  int hysteresis{5};
  // Observer rate limit: the medium re-evaluates the link at most this
  // often, however many events advance the clock.
  SimDuration quality_eval_interval{std::chrono::milliseconds{100}};
  // Cadence of the armed predictor between crossing events.
  SimDuration predict_poll_period{std::chrono::milliseconds{250}};
  // Estimated bridge establishment latency. zero() = derive from the link's
  // technology parameters (worst-case per-hop connect delay) at start.
  SimDuration bridge_setup_estimate{SimDuration{0}};
  // Pre-dial when predicted time-to-loss < estimate × margin.
  double setup_margin{1.3};
};

enum class HandoverState {
  kPrepare = 0,
  kMonitor = 1,
  kExecute = 2,
  kReconnecting = 3,
  kDone = 4,
  kFailed = 5,
};

struct HandoverEvent {
  enum class Kind {
    kDegradationDetected,
    kPredictedLoss,      // make-before-break pre-dial started
    kHandoverComplete,   // same session re-routed through `bridge`
    kHandoverFailed,     // one bridge attempt failed
    kReconnected,        // new session on another provider (`new_channel`)
    kRepairSuppressed,   // sending == false, loss does not matter (§5.3)
    kGaveUp,
  };
  Kind kind;
  MacAddress bridge;
  ChannelPtr new_channel;
  std::string detail;
};

class HandoverController {
 public:
  // Asks the user for permission before service reconnection (§5.2.2: "it's
  // preferable to notify the application user about the reconnection need").
  // Call grant(true/false). Default when unset: granted.
  using PermissionCallback =
      std::function<void(std::function<void(bool)> grant)>;
  using EventHandler = std::function<void(const HandoverEvent&)>;

  struct Stats {
    std::uint64_t samples{0};
    std::uint64_t degradations{0};
    std::uint64_t route_attempts{0};
    std::uint64_t handovers{0};
    std::uint64_t route_failures{0};
    // Direct session-resume attempts against the peer itself (the
    // crash-recovery path, see HandoverConfig::direct_resume_enabled).
    std::uint64_t direct_resumes{0};
    std::uint64_t reconnections{0};
    std::uint64_t suppressed{0};
    // Predictive layer.
    std::uint64_t quality_events{0};       // observer pushes received
    std::uint64_t predictions{0};          // pre-dial sequences started
    std::uint64_t predictive_handovers{0}; // swaps with the old link alive
  };

  HandoverController(Library& library, ChannelPtr channel,
                     HandoverConfig config = {});
  ~HandoverController();

  HandoverController(const HandoverController&) = delete;
  HandoverController& operator=(const HandoverController&) = delete;

  void start();
  void stop();

  [[nodiscard]] HandoverState state() const { return state_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::optional<MacAddress> planned_bridge() const;

  void set_event_handler(EventHandler handler);
  void set_permission_callback(PermissionCallback callback);

  // Exposed for tests: one monitor tick / one plan refresh.
  void tick();
  void refresh_plan();

 private:
  struct RouteCandidate {
    MacAddress bridge;
    int score{0};  // weakest link of self->bridge->peer
  };

  // Dispatches the event with copy-before-call discipline. Returns false
  // when the callback destroyed this controller — the caller must then
  // return immediately without touching any member.
  bool emit(const HandoverEvent& event);
  void execute();
  void attempt_route(std::size_t candidate_index);
  void attempt_direct_resume();
  // Shared tail of a failed repair pass on a dead link: reconnection if
  // enabled, otherwise count the pass and either drop back to monitor or go
  // terminal.
  void finish_dead_link_pass();
  void start_reconnection();

  // Predictive layer.
  void subscribe_link();    // (re-)observe the current transport link
  void unsubscribe_link();  // idempotent
  void on_quality_event(const sim::LinkQualityEvent& event);
  void arm_predictor();
  void disarm_predictor();
  void predict_check();
  [[nodiscard]] double setup_estimate_s() const;

  Library& library_;
  ChannelPtr channel_;
  HandoverConfig config_;
  sim::PeriodicTask monitor_;
  HandoverState state_{HandoverState::kPrepare};
  int low_count_{0};
  std::vector<RouteCandidate> plan_;
  HandlerSlot<void(const HandoverEvent&)> event_slot_;
  PermissionCallback permission_;
  Stats stats_;
  bool busy_{false};
  // Predictive state: observer handle, the armed fast predictor, and
  // whether the in-flight execute() was started by prediction with the old
  // link still alive when the swap completes.
  sim::QualityObserverId observer_{sim::kInvalidQualityObserver};
  sim::PeriodicTask predictor_;
  bool predicted_{false};
  bool link_lost_since_dial_{false};
  // Consecutive full-plan failures while the link was down. Bursty media
  // fail whole passes spuriously, so the reactive loop re-runs the plan a
  // few times before declaring the route dead and going terminal.
  int dead_link_passes_{0};
  // Bridges whose resume attempt failed during the current repair episode:
  // a crashed relay keeps failing, so demote it far below every fresh
  // candidate when re-planning. Cleared once a repair succeeds.
  std::unordered_map<MacAddress, int> bridge_failures_;
  // Guards the in-flight resume/reconnect callbacks (they capture `this`
  // and may resolve after this controller is destroyed).
  DestructionSentinel sentinel_;
};

}  // namespace peerhood::handover
