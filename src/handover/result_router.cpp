#include "handover/result_router.hpp"

#include <algorithm>

namespace peerhood::handover {

void ResultRouter::deliver(const ChannelPtr& channel, Bytes result,
                           std::function<void(Status)> done) {
  if (channel->open()) {
    const Status status = channel->write(std::move(result));
    if (status.ok()) {
      ++stats_.delivered_live;
      done(Status::ok_status());
      return;
    }
  }
  reconnect_and_send(channel, std::move(result), std::move(done),
                     config_.max_attempts);
}

void ResultRouter::reconnect_and_send(const ChannelPtr& channel, Bytes result,
                                      std::function<void(Status)> done,
                                      int attempts_left) {
  if (attempts_left <= 0) {
    ++stats_.failures;
    done(Status{ErrorCode::kConnectionFailed,
                "result routing exhausted its attempts"});
    return;
  }
  ++stats_.attempts;

  // Resolve the client's reconnection target.
  MacAddress target = channel->peer();
  std::string service;
  if (config_.method == ReconnectMethod::kClientParams) {
    if (!channel->client_params.has_value() ||
        channel->client_params->reconnect_service.empty()) {
      ++stats_.failures;
      done(Status{ErrorCode::kInvalidArgument,
                  "client pushed no reconnection parameters"});
      return;
    }
    target = channel->client_params->device.mac;
    service = channel->client_params->reconnect_service;
  } else {
    // Method 1: find a visible client service on the peer device in our own
    // storage ("server looks for the device in its neighborhood routing
    // table", §5.3).
    const auto record = library_.daemon().storage().find(target);
    if (record.has_value()) {
      const auto it = std::find_if(
          record->services.begin(), record->services.end(),
          [](const ServiceInfo& s) { return s.attribute == "client"; });
      if (it != record->services.end()) service = it->name;
    }
  }

  auto retry = [this, channel, done](Bytes payload, int remaining) {
    library_.daemon().simulator().schedule_after(
        config_.retry_delay,
        [this, channel, payload = std::move(payload), done, remaining] {
          reconnect_and_send(channel, payload, done, remaining);
        });
  };

  if (service.empty()) {
    // Client not (yet) visible — wait for a discovery cycle and retry.
    retry(std::move(result), attempts_left - 1);
    return;
  }

  Library::ConnectOptions options;
  options.timeout = config_.connect_timeout;
  options.skip_service_check =
      config_.method == ReconnectMethod::kClientParams;
  library_.connect(
      target, service, options,
      [this, channel, result = std::move(result), done = std::move(done),
       retry, attempts_left](Result<ChannelPtr> connected) mutable {
        if (!connected.ok()) {
          retry(std::move(result), attempts_left - 1);
          return;
        }
        const ChannelPtr back = std::move(connected).value();
        const Status status = back->write(std::move(result));
        if (!status.ok()) {
          ++stats_.failures;
          done(status);
          return;
        }
        ++stats_.delivered_reconnect;
        done(Status::ok_status());
      });
}

}  // namespace peerhood::handover
