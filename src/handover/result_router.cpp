#include "handover/result_router.hpp"

#include <algorithm>
#include <utility>

namespace peerhood::handover {

void ResultRouter::deliver(const ChannelPtr& channel, Bytes result,
                           std::function<void(Status)> done) {
  if (channel->open()) {
    const Status status = channel->write(std::move(result));
    if (status.ok()) {
      ++stats_.delivered_live;
      done(Status::ok_status());
      return;
    }
  }
  reconnect_and_send(channel, std::move(result), std::move(done),
                     config_.max_attempts);
}

void ResultRouter::reconnect_and_send(std::weak_ptr<Channel> weak_channel,
                                      Bytes result,
                                      std::function<void(Status)> done,
                                      int attempts_left) {
  const ChannelPtr channel = weak_channel.lock();
  if (channel == nullptr || channel->closed()) {
    // The session was released or retired while we waited for discovery:
    // there is nobody left to deliver to.
    ++stats_.failures;
    done(Status{ErrorCode::kConnectionClosed,
                "client session released before result delivery"});
    return;
  }
  if (attempts_left <= 0) {
    ++stats_.failures;
    done(Status{ErrorCode::kConnectionFailed,
                "result routing exhausted its attempts"});
    return;
  }
  ++stats_.attempts;

  // Resolve the client's reconnection target.
  MacAddress target = channel->peer();
  std::string service;
  if (config_.method == ReconnectMethod::kClientParams) {
    if (!channel->client_params.has_value() ||
        channel->client_params->reconnect_service.empty()) {
      ++stats_.failures;
      done(Status{ErrorCode::kInvalidArgument,
                  "client pushed no reconnection parameters"});
      return;
    }
    target = channel->client_params->device.mac;
    service = channel->client_params->reconnect_service;
  } else {
    // Method 1: find a visible client service on the peer device in our own
    // storage ("server looks for the device in its neighborhood routing
    // table", §5.3).
    const auto record = library_.daemon().storage().find(target);
    if (record.has_value()) {
      const auto it = std::find_if(
          record->services.begin(), record->services.end(),
          [](const ServiceInfo& s) { return s.attribute == "client"; });
      if (it != record->services.end()) service = it->name;
    }
  }

  // Both the retry event and the connect completion capture `this`; the
  // token lets them resolve harmlessly after this router is destroyed.
  auto retry = [this, token = sentinel_.token(), weak_channel,
                done](Bytes payload, int remaining) {
    // Jittered exponential backoff keyed to how many attempts are spent:
    // early retries catch a client that merely blinked, late ones give the
    // discovery plane whole inquiry cycles to re-route.
    sim::Simulator& sim = library_.daemon().simulator();
    const int used = std::max(config_.max_attempts - remaining, 1);
    const double base_s =
        std::chrono::duration<double>(config_.retry_base).count();
    const double cap_s =
        std::chrono::duration<double>(config_.retry_cap).count();
    const double backoff_s = std::min(
        base_s * static_cast<double>(std::uint64_t{1} << (used - 1)), cap_s);
    const double scale = sim.rng().uniform(1.0 - config_.retry_jitter,
                                           1.0 + config_.retry_jitter);
    sim.schedule_after(
        seconds(backoff_s * scale),
        [this, token, weak_channel, payload = std::move(payload), done,
         remaining] {
          if (token.expired()) return;
          reconnect_and_send(weak_channel, payload, done, remaining);
        });
  };

  if (service.empty()) {
    // Client not (yet) visible — wait for a discovery cycle and retry.
    retry(std::move(result), attempts_left - 1);
    return;
  }

  Library::ConnectOptions options;
  options.timeout = config_.connect_timeout;
  options.skip_service_check =
      config_.method == ReconnectMethod::kClientParams;
  library_.connect(
      target, service, options,
      [this, token = sentinel_.token(), result = std::move(result),
       done = std::move(done), retry,
       attempts_left](Result<ChannelPtr> connected) mutable {
        if (token.expired()) return;
        if (!connected.ok()) {
          retry(std::move(result), attempts_left - 1);
          return;
        }
        const ChannelPtr back = std::move(connected).value();
        const Status status = back->write(std::move(result));
        if (!status.ok()) {
          ++stats_.failures;
          done(status);
          return;
        }
        ++stats_.delivered_reconnect;
        done(Status::ok_status());
      });
}

}  // namespace peerhood::handover
