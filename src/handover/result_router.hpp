// ResultRouter — server-side result routing (§5.3): "the optimal would be
// the server establishes the connection with client after the data
// processing". When the task result is ready and the original channel is
// gone, the server reconnects to the client — possibly through bridge
// nodes — and delivers the result.
//
// Two reconnection methods from the paper:
//  * Method 1 ("client service"): the client registered a visible client
//    service; the server finds the client device in its own storage and
//    connects to that service. Costs an extra advertised service and depends
//    on the discovery process having (re)found the client.
//  * Method 2 ("connection parameters"): the client pushed its reconnection
//    parameters at connection start (wire::ClientParams); the server uses
//    them directly. The paper judges this "the best option".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/handler_slot.hpp"
#include "peerhood/library.hpp"
#include "sim/simulator.hpp"

namespace peerhood::handover {

enum class ReconnectMethod {
  kClientService = 1,  // Method 1
  kClientParams = 2,   // Method 2
};

struct ResultRouterConfig {
  ReconnectMethod method{ReconnectMethod::kClientParams};
  // Reconnect attempts; between attempts the router waits for the discovery
  // process to (re)locate the client (the stale direct record must age out
  // and a bridged route take its place — several inquiry cycles). The wait
  // doubles per attempt from retry_base up to retry_cap, scaled by
  // uniform(1 ± retry_jitter) so concurrent deliveries to one reappearing
  // client do not reconnect in lock-step.
  int max_attempts{6};
  SimDuration retry_base{std::chrono::seconds{6}};
  SimDuration retry_cap{std::chrono::seconds{48}};
  double retry_jitter{0.25};
  SimDuration connect_timeout{std::chrono::seconds{60}};
};

class ResultRouter {
 public:
  struct Stats {
    std::uint64_t delivered_live{0};
    std::uint64_t delivered_reconnect{0};
    std::uint64_t attempts{0};
    std::uint64_t failures{0};
  };

  explicit ResultRouter(Library& library, ResultRouterConfig config = {})
      : library_{library}, config_{config} {}

  // Delivers `result` to the client behind `channel`. Writes straight to the
  // channel while it is open; otherwise reconnects per the configured method
  // and sends the result on the new connection.
  void deliver(const ChannelPtr& channel, Bytes result,
               std::function<void(Status)> done);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const ResultRouterConfig& config() const { return config_; }

 private:
  // The retry chain holds the session weakly: a client that released its
  // channel must not be kept alive by a pending delivery, and a destroyed
  // router (token expired) silently abandons its in-flight attempts.
  void reconnect_and_send(std::weak_ptr<Channel> channel, Bytes result,
                          std::function<void(Status)> done, int attempts_left);

  Library& library_;
  ResultRouterConfig config_;
  Stats stats_;
  DestructionSentinel sentinel_;
};

}  // namespace peerhood::handover
