// Minimal Result<T> type for recoverable errors (connection faults, protocol
// violations from remote peers). GCC 12 lacks std::expected; this is the
// narrow slice of it the library needs.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace peerhood {

enum class ErrorCode {
  kOk = 0,
  kTimeout,
  kConnectionFailed,
  kConnectionClosed,
  kNoRoute,
  kNoSuchDevice,
  kNoSuchService,
  kProtocolError,
  kCapacityExceeded,
  kCancelled,
  kInvalidArgument,
  // Resume named a session the responder no longer holds in memory — the
  // daemon restarted. The client's cue to re-dial with kResumeRestart.
  kUnknownSession,
  // listen() on an address that already has a listener (EADDRINUSE).
  kAddressInUse,
};

[[nodiscard]] constexpr const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kConnectionFailed: return "connection_failed";
    case ErrorCode::kConnectionClosed: return "connection_closed";
    case ErrorCode::kNoRoute: return "no_route";
    case ErrorCode::kNoSuchDevice: return "no_such_device";
    case ErrorCode::kNoSuchService: return "no_such_service";
    case ErrorCode::kProtocolError: return "protocol_error";
    case ErrorCode::kCapacityExceeded: return "capacity_exceeded";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kUnknownSession: return "unknown_session";
    case ErrorCode::kAddressInUse: return "address_in_use";
  }
  return "unknown";
}

struct Error {
  ErrorCode code{ErrorCode::kOk};
  std::string message;

  [[nodiscard]] std::string to_string() const {
    std::string out = peerhood::to_string(code);
    if (!message.empty()) {
      out += ": ";
      out += message;
    }
    return out;
  }
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_{std::in_place_index<0>, std::move(value)} {}
  Result(Error error) : storage_{std::in_place_index<1>, std::move(error)} {}

  [[nodiscard]] bool ok() const { return storage_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<0>(std::move(storage_));
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<1>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<0>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

// Result specialisation for operations that return no value.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_{std::move(error)} {}
  Status(ErrorCode code, std::string message)
      : error_{code, std::move(message)} {}

  [[nodiscard]] static Status ok_status() { return Status{}; }

  [[nodiscard]] bool ok() const { return error_.code == ErrorCode::kOk; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const { return error_; }

 private:
  Error error_{};
};

}  // namespace peerhood
