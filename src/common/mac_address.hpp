// MAC address — the unique device identity used throughout PeerHood.
//
// The paper (§2.3) identifies devices by the MAC address of each network
// interface: "MAC-Address of network interfaces is the most appropriate due
// to the singularity of each interface, even inside the same device."
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace peerhood {

class MacAddress {
 public:
  constexpr MacAddress() = default;

  constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets)
      : octets_{octets} {}

  // Deterministically derives a MAC from a small integer; used by the
  // simulator to mint unique interface identities.
  [[nodiscard]] static MacAddress from_index(std::uint64_t index);

  // Parses "aa:bb:cc:dd:ee:ff"; returns nullopt on malformed input.
  [[nodiscard]] static std::optional<MacAddress> parse(std::string_view text);

  [[nodiscard]] const std::array<std::uint8_t, 6>& octets() const {
    return octets_;
  }

  // Packs the six octets into the low 48 bits of a u64 (big-endian order).
  [[nodiscard]] std::uint64_t as_u64() const;

  [[nodiscard]] static MacAddress from_u64(std::uint64_t packed);

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool is_null() const { return as_u64() == 0; }

  friend auto operator<=>(const MacAddress&, const MacAddress&) = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

}  // namespace peerhood

template <>
struct std::hash<peerhood::MacAddress> {
  std::size_t operator()(const peerhood::MacAddress& mac) const noexcept {
    return std::hash<std::uint64_t>{}(mac.as_u64());
  }
};
