#include "common/mac_address.hpp"

#include <cstdio>

namespace peerhood {

MacAddress MacAddress::from_index(std::uint64_t index) {
  // Locally-administered unicast prefix 02: keeps simulated MACs out of any
  // vendor OUI space.
  std::array<std::uint8_t, 6> octets{};
  octets[0] = 0x02;
  octets[1] = static_cast<std::uint8_t>(index >> 32);
  octets[2] = static_cast<std::uint8_t>(index >> 24);
  octets[3] = static_cast<std::uint8_t>(index >> 16);
  octets[4] = static_cast<std::uint8_t>(index >> 8);
  octets[5] = static_cast<std::uint8_t>(index);
  return MacAddress{octets};
}

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  if (text.size() != 17) return std::nullopt;
  std::array<std::uint8_t, 6> octets{};
  for (int i = 0; i < 6; ++i) {
    const std::size_t pos = static_cast<std::size_t>(i) * 3;
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    const int hi = hex(text[pos]);
    const int lo = hex(text[pos + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    if (i < 5 && text[pos + 2] != ':') return std::nullopt;
    octets[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(hi * 16 + lo);
  }
  return MacAddress{octets};
}

std::uint64_t MacAddress::as_u64() const {
  std::uint64_t packed = 0;
  for (const std::uint8_t octet : octets_) {
    packed = (packed << 8) | octet;
  }
  return packed;
}

MacAddress MacAddress::from_u64(std::uint64_t packed) {
  std::array<std::uint8_t, 6> octets{};
  for (int i = 5; i >= 0; --i) {
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(packed);
    packed >>= 8;
  }
  return MacAddress{octets};
}

std::string MacAddress::to_string() const {
  char buffer[18];
  std::snprintf(buffer, sizeof buffer, "%02x:%02x:%02x:%02x:%02x:%02x",
                octets_[0], octets_[1], octets_[2], octets_[3], octets_[4],
                octets_[5]);
  return std::string{buffer};
}

}  // namespace peerhood
