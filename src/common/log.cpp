#include "common/log.hpp"

#include <cstdio>

namespace peerhood {
namespace {

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, SimTime now, std::string_view component,
                   std::string_view message) {
  std::fprintf(stderr, "[%10.3fs] %s %.*s: %.*s\n", now.seconds(),
               level_tag(level), static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace peerhood
