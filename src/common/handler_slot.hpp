// HandlerSlot + DestructionSentinel — the shared ownership model for every
// handler/callback site in the session stack (PR 3).
//
// Ownership rules:
//  1. A handler must never own (hold a shared_ptr to) the object that stores
//     it, nor anything that transitively owns that object — that is a
//     reference cycle no destructor can break. Capture a weak_ptr, a raw
//     pointer to a strictly longer-lived owner, or keep the strong
//     reference in an explicit registry *outside* the handler.
//  2. Every owner severs its handlers in an idempotent close()/shutdown()
//     (and from its destructor), so captured resources are released the
//     moment the owner retires, not when a cycle happens to unwind.
//  3. Dispatch is reentrancy-safe: the handler is copied (or, for one-shot
//     slots, moved) out of the slot before it is invoked, so a callback may
//     legally replace itself, clear the slot, sever it, or even destroy the
//     owner. After invoking, the dispatcher must not touch the owner again.
//  4. Asynchronous callbacks that capture a raw owner pointer (scheduled
//     events, connect completions) guard with a DestructionSentinel token:
//     the callback checks token.expired() before touching the owner.
#pragma once

#include <functional>
#include <memory>
#include <utility>

namespace peerhood {

// A handler holder with pin-before-call dispatch and a severed terminal
// state. The handler is stored behind a shared_ptr, so dispatch pins it
// with a refcount bump instead of copying the std::function — reentrancy
// safety without a per-call heap allocation on the frame hot path, however
// large the handler's captures. Not thread-safe (the simulator is
// single-threaded by design).
template <typename Signature>
class HandlerSlot;

template <typename... Args>
class HandlerSlot<void(Args...)> {
 public:
  using Fn = std::function<void(Args...)>;
  // What sever_take() hands back: keeps the captures alive until the caller
  // (and any dispatch still pinning the handler) lets go.
  using Held = std::shared_ptr<const Fn>;

  HandlerSlot() = default;
  HandlerSlot(const HandlerSlot&) = delete;
  HandlerSlot& operator=(const HandlerSlot&) = delete;

  // Installs a handler. No-op after sever() — a retired owner silently
  // drops late installations instead of resurrecting dispatch.
  void set(Fn fn) {
    if (severed_) return;
    // Move the old handler out before storing the new one: destroying its
    // captures can reentrantly call set()/clear() on this same slot.
    Held doomed = std::move(fn_);
    fn_ = fn ? std::make_shared<const Fn>(std::move(fn)) : nullptr;
  }

  // Drops the current handler (releasing its captures); set() still works.
  void clear() {
    Held doomed = std::move(fn_);
    fn_ = nullptr;
  }

  // Terminal: drops the handler and rejects all future set() calls.
  void sever() {
    severed_ = true;
    clear();
  }

  // Severs and hands the handler to the caller, so its captures can be
  // released *after* the owner is done touching its own members (destroying
  // a handler may destroy the owner itself).
  [[nodiscard]] Held sever_take() {
    severed_ = true;
    Held out = std::move(fn_);
    fn_ = nullptr;
    return out;
  }

  [[nodiscard]] bool armed() const { return fn_ != nullptr; }
  explicit operator bool() const { return armed(); }

  // Pin-before-call dispatch. The callback may replace/clear/sever this
  // slot or destroy the owner; no member is touched after the call.
  template <typename... CallArgs>
  void invoke(CallArgs&&... args) const {
    if (fn_ == nullptr) return;
    const Held local = fn_;
    (*local)(std::forward<CallArgs>(args)...);
  }

  // One-shot dispatch: the handler is consumed, so a reentrant or repeated
  // trigger fires it at most once.
  template <typename... CallArgs>
  void fire_once(CallArgs&&... args) {
    if (fn_ == nullptr) return;
    const Held local = std::move(fn_);
    fn_ = nullptr;
    (*local)(std::forward<CallArgs>(args)...);
  }

 private:
  Held fn_;
  bool severed_{false};
};

// Lifetime tracker for owners that hand raw `this` captures to asynchronous
// callbacks (scheduled events, connect completions). The owner holds the
// sentinel as a member; callbacks hold a token and bail out once it expires.
class DestructionSentinel {
 public:
  using Token = std::weak_ptr<const bool>;

  DestructionSentinel() = default;
  DestructionSentinel(const DestructionSentinel&) = delete;
  DestructionSentinel& operator=(const DestructionSentinel&) = delete;

  [[nodiscard]] Token token() const { return alive_; }

 private:
  std::shared_ptr<const bool> alive_{std::make_shared<bool>(true)};
};

}  // namespace peerhood
