#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace peerhood {
namespace {

// SplitMix64 seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

bool Rng::bernoulli(double p) {
  return next_double() < std::clamp(p, 0.0, 1.0);
}

double Rng::exponential(double mean) {
  // Inverse-CDF sampling; next_double() < 1 so the log argument is > 0.
  return -mean * std::log(1.0 - next_double());
}

double Rng::gaussian(double mean, double sigma) {
  // Box–Muller, one branch of the pair (no cached second value, keeping the
  // per-call uniform consumption fixed at two draws).
  const double u1 = std::max(1e-300, 1.0 - next_double());
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + sigma * mag * std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::fork() { return Rng{next_u64()}; }

}  // namespace peerhood
