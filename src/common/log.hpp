// Lightweight leveled logger. Simulation components tag messages with the
// simulated clock so traces read like the paper's activity diagrams.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

#include "common/sim_time.hpp"

namespace peerhood {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, SimTime now, std::string_view component,
             std::string_view message);

 private:
  LogLevel level_{LogLevel::kWarn};
};

// Streams `parts...` into a single log line when the level is enabled.
template <typename... Parts>
void log(LogLevel level, SimTime now, std::string_view component,
         const Parts&... parts) {
  Logger& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  std::ostringstream os;
  (os << ... << parts);
  logger.write(level, now, component, os.str());
}

}  // namespace peerhood
