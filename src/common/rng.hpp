// Deterministic random number generation (xoshiro256**). Every stochastic
// element of the simulation — connect delays, failure injection, mobility —
// draws from an explicitly seeded Rng so whole-system runs replay exactly.
#pragma once

#include <cstdint>

namespace peerhood {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  [[nodiscard]] std::uint64_t next_u64();

  // Uniform double in [0, 1).
  [[nodiscard]] double next_double();

  // Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // True with probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p);

  // Exponentially distributed value with the given mean.
  [[nodiscard]] double exponential(double mean);

  // Normally distributed value (Box–Muller; draws exactly two uniforms per
  // call so consumers advance the stream deterministically).
  [[nodiscard]] double gaussian(double mean, double sigma);

  // Derives an independent child stream; used to give each simulated device
  // its own stream so that adding devices does not perturb others.
  [[nodiscard]] Rng fork();

 private:
  std::uint64_t state_[4];
};

}  // namespace peerhood
