#include "common/bytes.hpp"

#include <limits>

namespace peerhood {

void ByteWriter::u8(std::uint8_t v) { out_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v >> 8));
  u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::string(std::string_view v) {
  const auto n = std::min<std::size_t>(
      v.size(), std::numeric_limits<std::uint16_t>::max());
  u16(static_cast<std::uint16_t>(n));
  out_.insert(out_.end(), v.begin(), v.begin() + static_cast<long>(n));
}

void ByteWriter::blob(std::span<const std::uint8_t> v) {
  u32(static_cast<std::uint32_t>(v.size()));
  raw(v);
}

void ByteWriter::raw(std::span<const std::uint8_t> v) {
  out_.insert(out_.end(), v.begin(), v.end());
}

bool ByteReader::take(std::size_t n) {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  if (!take(2)) return 0;
  const auto hi = static_cast<std::uint16_t>(data_[pos_] << 8);
  const auto lo = static_cast<std::uint16_t>(data_[pos_ + 1]);
  pos_ += 2;
  return static_cast<std::uint16_t>(hi | lo);
}

std::uint32_t ByteReader::u32() {
  const auto hi = static_cast<std::uint32_t>(u16());
  const auto lo = static_cast<std::uint32_t>(u16());
  return failed_ ? 0 : (hi << 16) | lo;
}

std::uint64_t ByteReader::u64() {
  const auto hi = static_cast<std::uint64_t>(u32());
  const auto lo = static_cast<std::uint64_t>(u32());
  return failed_ ? 0 : (hi << 32) | lo;
}

std::string ByteReader::string() {
  return std::string{str_view()};
}

std::string_view ByteReader::str_view() {
  const std::size_t n = u16();
  if (!take(n)) return {};
  const std::string_view out{
      reinterpret_cast<const char*>(data_.data() + pos_), n};
  pos_ += n;
  return out;
}

Bytes ByteReader::blob() {
  const std::size_t n = u32();
  if (!take(n)) return {};
  Bytes out{data_.begin() + static_cast<long>(pos_),
            data_.begin() + static_cast<long>(pos_ + n)};
  pos_ += n;
  return out;
}

}  // namespace peerhood
