// Byte-buffer codec for the PeerHood wire protocol. All multi-byte integers
// are big-endian on the wire. Reads are bounds-checked; a read past the end
// marks the reader failed and yields zero values, so decoders can finish a
// parse and check `ok()` once (remote peers are untrusted input).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace peerhood {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  // Pre-sizes the buffer for `n` further bytes. Encoders call this with a
  // cheap size estimate before each message or repeated sub-record; growth
  // stays geometric (never below doubling) so a stream of exact-fit
  // estimates cannot degrade vector growth to per-call reallocations.
  void reserve(std::size_t n) {
    const std::size_t need = out_.size() + n;
    if (need > out_.capacity()) {
      out_.reserve(std::max(need, out_.capacity() * 2));
    }
  }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  // Length-prefixed (u16) string.
  void string(std::string_view v);
  // Length-prefixed (u32) blob.
  void blob(std::span<const std::uint8_t> v);
  void raw(std::span<const std::uint8_t> v);

  [[nodiscard]] const Bytes& bytes() const& { return out_; }
  [[nodiscard]] Bytes&& take() && { return std::move(out_); }

 private:
  Bytes out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_{data} {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::string string();
  // Zero-copy variant of string(): a view into the underlying buffer, valid
  // only while that buffer lives. Decode hot paths use it so fields that are
  // merely compared — or assigned into a std::string that already has the
  // capacity — never materialise a temporary heap string.
  [[nodiscard]] std::string_view str_view();
  [[nodiscard]] Bytes blob();

  // True iff no read has run past the end of the buffer and no decoder
  // called fail() on a semantically invalid field.
  [[nodiscard]] bool ok() const { return !failed_; }
  // Marks the reader failed: decoders reject out-of-domain values (an enum
  // byte outside its range, say) through the same single ok() check that
  // catches truncation.
  void fail() { failed_ = true; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  [[nodiscard]] bool take(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
  bool failed_{false};
};

}  // namespace peerhood
