// Simulation clock types. All protocol timing in the library is expressed on
// this clock so that tests and benchmarks are fully deterministic.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace peerhood {

// Microsecond-resolution point on the simulation timeline.
using SimDuration = std::chrono::microseconds;

struct SimTime {
  SimDuration since_epoch{0};

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{}; }

  [[nodiscard]] constexpr double seconds() const {
    return std::chrono::duration<double>(since_epoch).count();
  }

  friend constexpr auto operator<=>(const SimTime&, const SimTime&) = default;

  friend constexpr SimTime operator+(SimTime t, SimDuration d) {
    return SimTime{t.since_epoch + d};
  }
  friend constexpr SimDuration operator-(SimTime a, SimTime b) {
    return a.since_epoch - b.since_epoch;
  }
  constexpr SimTime& operator+=(SimDuration d) {
    since_epoch += d;
    return *this;
  }
};

constexpr SimDuration microseconds(std::int64_t n) { return SimDuration{n}; }
constexpr SimDuration milliseconds(std::int64_t n) {
  return std::chrono::duration_cast<SimDuration>(std::chrono::milliseconds{n});
}
constexpr SimDuration seconds(double n) {
  return std::chrono::duration_cast<SimDuration>(
      std::chrono::duration<double>{n});
}

[[nodiscard]] inline std::string to_string(SimTime t) {
  return std::to_string(t.seconds()) + "s";
}

}  // namespace peerhood
