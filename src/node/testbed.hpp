// Testbed + Node: scenario assembly. A Node composes the full PeerHood
// stack for one simulated device — daemon, library and the hidden bridge
// service (§4: "one hidden bridge service will be included in each PeerHood
// package and executed in the initialization of Daemon"). The Testbed owns
// the simulator, radio medium and network, and provides synchronous-style
// helpers that drive the event loop until an asynchronous operation
// resolves — used heavily by tests, benches and examples.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bridge/bridge_service.hpp"
#include "net/sim_network.hpp"
#include "peerhood/daemon.hpp"
#include "peerhood/library.hpp"
#include "sim/medium.hpp"
#include "sim/mobility.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace peerhood::node {

class Testbed;

struct NodeOptions {
  MobilityClass mobility{MobilityClass::kStatic};
  std::vector<Technology> technologies{Technology::kBluetooth};
  // Start the hidden bridge service (relaying capability).
  bool start_bridge{true};
  // Advertise the PeerHood SDP tag (false simulates a non-PeerHood device).
  bool peerhood_capable{true};
  // Overrides applied on top of the defaults; device_name/mobility/
  // technologies fields are filled by the testbed.
  DaemonConfig daemon{};
  bridge::BridgeConfig bridge{};
};

class Node {
 public:
  Node(Testbed& testbed, std::string name, MacAddress mac,
       std::shared_ptr<const sim::MobilityModel> mobility,
       const NodeOptions& options);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] MacAddress mac() const { return daemon_->mac(); }
  [[nodiscard]] Daemon& daemon() { return *daemon_; }
  [[nodiscard]] Library& library() { return *library_; }
  [[nodiscard]] bridge::BridgeService& bridge_service() { return *bridge_; }
  [[nodiscard]] Testbed& testbed() { return testbed_; }

  // Drives the simulator until the connect resolves (or `deadline_s` of
  // simulated time passes).
  [[nodiscard]] Result<ChannelPtr> connect_blocking(
      MacAddress destination, const std::string& service,
      Library::ConnectOptions options = {}, double deadline_s = 180.0);

  // Hard-kills the node's stack: the bridge service drops every relayed
  // pair, the daemon loses all volatile state (Daemon::crash), and the node
  // vanishes from the radio medium until restart(). The SessionStore journal
  // survives in place.
  void crash();
  // Brings a crashed (or stopped) node back: fresh daemon epoch, plugins and
  // engine listening again, bridge relaying again if it was configured to.
  void restart();
  [[nodiscard]] bool crashed() const { return crashed_; }

 private:
  Testbed& testbed_;
  std::string name_;
  std::unique_ptr<Daemon> daemon_;
  std::unique_ptr<Library> library_;
  std::unique_ptr<bridge::BridgeService> bridge_;
  // Whether restart() should bring the bridge service back up.
  bool bridge_configured_{false};
  bool crashed_{false};
};

class Testbed {
 public:
  // `shards` selects the sharded simulation core: 1 = the plain
  // single-threaded kernel (bit-identical to the pre-sharding Testbed),
  // N > 1 = conservative time windows on a worker pool, 0 (the default) =
  // read the PEERHOOD_SHARDS environment variable (absent/invalid -> 1).
  // The protocol stack always runs on the control shard (shard 0), whose
  // RNG stream equals a plain Simulator(seed) — so scenario results are
  // identical under every shard count, and the env knob lets the whole
  // suite run against the windowed path.
  explicit Testbed(std::uint64_t seed,
                   sim::LinkQualityModel quality_model = {},
                   std::uint32_t shards = 0);

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  [[nodiscard]] sim::ShardedSimulator& core() { return core_; }
  [[nodiscard]] sim::Simulator& sim() { return core_.control(); }
  [[nodiscard]] sim::RadioMedium& medium() { return medium_; }
  [[nodiscard]] net::SimNetwork& network() { return network_; }

  // Adds a stationary node at `position`.
  Node& add_node(const std::string& name, sim::Vec2 position,
                 NodeOptions options = {});
  // Adds a node with an arbitrary mobility model (mobile devices).
  Node& add_mobile_node(const std::string& name,
                        std::shared_ptr<const sim::MobilityModel> mobility,
                        NodeOptions options = {});

  [[nodiscard]] Node& node(const std::string& name);
  [[nodiscard]] std::vector<Node*> nodes();
  [[nodiscard]] std::vector<MacAddress> macs() const;

  // Advances simulated time.
  void run_for(double seconds_);
  // Runs `rounds` full discovery cycles of the slowest configured
  // technology — long enough for one more hop of awareness per round.
  void run_discovery_rounds(int rounds);

 private:
  sim::ShardedSimulator core_;
  sim::RadioMedium medium_;  // on the control shard
  net::SimNetwork network_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::uint64_t next_mac_index_{1};
};

}  // namespace peerhood::node
