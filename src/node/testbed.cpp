#include "node/testbed.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <stdexcept>

namespace peerhood::node {

Node::Node(Testbed& testbed, std::string name, MacAddress mac,
           std::shared_ptr<const sim::MobilityModel> mobility,
           const NodeOptions& options)
    : testbed_{testbed}, name_{std::move(name)} {
  DaemonConfig config = options.daemon;
  config.device_name = name_;
  config.mobility = options.mobility;
  config.technologies = options.technologies;
  daemon_ = std::make_unique<Daemon>(testbed.network(), mac,
                                     std::move(mobility), std::move(config));
  library_ = std::make_unique<Library>(*daemon_);
  daemon_->start();
  for (const Technology tech : options.technologies) {
    testbed.medium().set_peerhood_tag(mac, tech, options.peerhood_capable);
  }
  bridge::BridgeConfig bridge_config = options.bridge;
  bridge_config.max_connections = options.daemon.max_bridge_connections;
  bridge_ = std::make_unique<bridge::BridgeService>(*daemon_, *library_,
                                                    bridge_config);
  bridge_configured_ = options.start_bridge && options.daemon.bridge_enabled;
  if (bridge_configured_) {
    bridge_->start();
  }
}

Node::~Node() = default;

void Node::crash() {
  if (crashed_) return;
  crashed_ = true;
  // Order matters: the bridge unregisters its hidden service and engine
  // handler while the daemon is still up, then the daemon wipes everything
  // volatile and leaves the medium.
  bridge_->stop();
  daemon_->crash();
}

void Node::restart() {
  if (!crashed_) return;
  crashed_ = false;
  daemon_->start();
  if (bridge_configured_) bridge_->start();
}

Result<ChannelPtr> Node::connect_blocking(MacAddress destination,
                                          const std::string& service,
                                          Library::ConnectOptions options,
                                          double deadline_s) {
  std::optional<Result<ChannelPtr>> outcome;
  library_->connect(destination, service, options,
                    [&outcome](Result<ChannelPtr> result) {
                      outcome = std::move(result);
                    });
  sim::Simulator& sim = testbed_.sim();
  const SimTime deadline = sim.now() + seconds(deadline_s);
  while (!outcome.has_value() && sim.now() < deadline && sim.step()) {
  }
  if (!outcome.has_value()) {
    return Error{ErrorCode::kTimeout, "connect did not resolve in time"};
  }
  return std::move(*outcome);
}

namespace {

// shards == 0 -> the PEERHOOD_SHARDS environment variable (absent, empty or
// unparsable -> 1), so CI can run the entire suite against the windowed
// sharded path without touching a single call site.
std::uint32_t resolve_shards(std::uint32_t shards) {
  if (shards != 0) return shards;
  const char* env = std::getenv("PEERHOOD_SHARDS");
  if (env == nullptr) return 1;
  char* end = nullptr;
  const unsigned long value = std::strtoul(env, &end, 10);
  if (end == env || value < 1 || value > 64) return 1;
  return static_cast<std::uint32_t>(value);
}

}  // namespace

Testbed::Testbed(std::uint64_t seed, sim::LinkQualityModel quality_model,
                 std::uint32_t shards)
    : core_{seed, resolve_shards(shards)},
      medium_{core_.control(), quality_model},
      network_{medium_} {}

Node& Testbed::add_node(const std::string& name, sim::Vec2 position,
                        NodeOptions options) {
  return add_mobile_node(
      name, std::make_shared<sim::StaticPosition>(position), options);
}

Node& Testbed::add_mobile_node(
    const std::string& name,
    std::shared_ptr<const sim::MobilityModel> mobility, NodeOptions options) {
  const MacAddress mac = MacAddress::from_index(next_mac_index_++);
  nodes_.push_back(std::make_unique<Node>(*this, name, mac,
                                          std::move(mobility), options));
  return *nodes_.back();
}

Node& Testbed::node(const std::string& name) {
  const auto it = std::find_if(
      nodes_.begin(), nodes_.end(),
      [&name](const std::unique_ptr<Node>& n) { return n->name() == name; });
  if (it == nodes_.end()) {
    throw std::out_of_range("no node named " + name);
  }
  return **it;
}

std::vector<Node*> Testbed::nodes() {
  std::vector<Node*> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(node.get());
  return out;
}

std::vector<MacAddress> Testbed::macs() const {
  std::vector<MacAddress> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(node->mac());
  return out;
}

void Testbed::run_for(double seconds_) { core_.run_for(seconds(seconds_)); }

void Testbed::run_discovery_rounds(int rounds) {
  // Pace rounds off the slowest technology actually configured on a node;
  // idle technologies must not stretch every scenario's timeline.
  SimDuration slowest{0};
  for (const auto& node : nodes_) {
    for (const Technology tech : node->daemon().config().technologies) {
      slowest = std::max(slowest, medium_.params(tech).inquiry_interval);
    }
  }
  if (slowest == SimDuration{0}) {
    slowest = medium_.params(Technology::kBluetooth).inquiry_interval;
  }
  // A round must also cover the per-responder fetch time; pad by 50%.
  for (int i = 0; i < rounds; ++i) {
    core_.run_for(slowest + slowest / 2);
  }
}

}  // namespace peerhood::node
