// Mobility models. Each simulated device owns one model; the radio medium
// samples positions lazily at the current simulation time. Models cover the
// paper's scenarios: fixed servers (static), the corridor walk of §5.2.1
// (linear / waypoint), random office movement (random waypoint), plus the
// scenario-matrix models of the handover plane: temporally correlated
// Gauss–Markov motion, reference-point group mobility, and trace-driven
// waypoint paths (loaded by src/scenario/).
//
// Every model also reports its instantaneous velocity (velocity_at): the
// quality observers of RadioMedium use it to compute the signed link-quality
// slope, which is what turns threshold crossings into *predictions*.
//
// Segment-generating models (RandomWaypoint, GaussMarkov, GroupDeviation)
// keep their history bounded: segments wholly before the newest queried time
// are pruned once the history grows past a watermark, and a query *behind*
// the pruned base deterministically regenerates the walk from its initial
// RNG state — backwards queries stay exact, long sims stay O(1) in memory.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "sim/vec2.hpp"

namespace peerhood::sim {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  [[nodiscard]] virtual Vec2 position_at(SimTime t) const = 0;

  // Instantaneous velocity (m/s). The default is a symmetric finite
  // difference over position_at; models with analytic motion override it.
  // At kinks (waypoint corners, segment boundaries) the value is the
  // right-hand derivative by convention.
  [[nodiscard]] virtual Vec2 velocity_at(SimTime t) const;

  // True iff position_at returns the same point for every t. The radio
  // medium skips re-sampling (and re-indexing) static endpoints when the
  // clock advances, so a mostly-static deployment pays grid maintenance
  // only for the endpoints that actually move.
  [[nodiscard]] virtual bool is_static() const { return false; }

  // Deep deterministic copy for the sharded medium: replicas on different
  // worker threads each sample a private clone, so the mutable lazy-segment
  // caches of the stochastic models are never shared across threads. The
  // clone replays the identical trajectory (pristine initial RNG state
  // travels with the copy). Returns nullptr for models whose sampling is
  // immutable — those are safe to share as-is.
  [[nodiscard]] virtual std::shared_ptr<const MobilityModel> clone() const {
    return nullptr;
  }
};

// The sharing policy in one place: a private clone when the model needs one,
// the original otherwise.
inline std::shared_ptr<const MobilityModel> clone_or_share(
    const std::shared_ptr<const MobilityModel>& model) {
  auto clone = model->clone();
  return clone != nullptr ? clone : model;
}

// Fixed device (the paper's "static" terminals: PCs, servers).
class StaticPosition final : public MobilityModel {
 public:
  explicit StaticPosition(Vec2 position) : position_{position} {}

  [[nodiscard]] Vec2 position_at(SimTime) const override { return position_; }
  [[nodiscard]] Vec2 velocity_at(SimTime) const override { return {}; }
  [[nodiscard]] bool is_static() const override { return true; }

 private:
  Vec2 position_;
};

// Constant-velocity motion from `start` beginning at `departure`; models the
// walking-away scenarios of Fig. 5.4 and §5.2.1.
class LinearMotion final : public MobilityModel {
 public:
  LinearMotion(Vec2 start, Vec2 velocity_mps,
               SimTime departure = SimTime::zero())
      : start_{start}, velocity_{velocity_mps}, departure_{departure} {}

  [[nodiscard]] Vec2 position_at(SimTime t) const override {
    if (t <= departure_) return start_;
    const double dt = (t - departure_).count() * 1e-6;
    return start_ + velocity_ * dt;
  }

  [[nodiscard]] Vec2 velocity_at(SimTime t) const override {
    return t < departure_ ? Vec2{} : velocity_;
  }

 private:
  Vec2 start_;
  Vec2 velocity_;
  SimTime departure_;
};

// Piecewise-linear path through timestamped waypoints; holds the first
// waypoint before the path starts and the last one after it ends. Used to
// script walks (leave office, enter corridor, come back — Fig. 5.6/5.7) and
// to replay recorded traces (scenario::load_waypoint_trace).
class WaypointPath final : public MobilityModel {
 public:
  struct Waypoint {
    SimTime at;
    Vec2 position;
  };

  // Waypoints must be sorted by time and non-empty.
  explicit WaypointPath(std::vector<Waypoint> waypoints);

  [[nodiscard]] Vec2 position_at(SimTime t) const override;
  [[nodiscard]] Vec2 velocity_at(SimTime t) const override;

  [[nodiscard]] const std::vector<Waypoint>& waypoints() const {
    return waypoints_;
  }

 private:
  std::vector<Waypoint> waypoints_;
};

// Random-waypoint model inside a rectangular area: pick a target uniformly,
// walk to it at a uniform speed, pause, repeat. Segments are generated
// on demand from a private deterministic stream.
class RandomWaypoint final : public MobilityModel {
 public:
  struct Config {
    Vec2 area_min{0.0, 0.0};
    Vec2 area_max{100.0, 100.0};
    double speed_min_mps{0.5};
    double speed_max_mps{1.5};
    SimDuration pause{std::chrono::seconds{2}};
  };

  RandomWaypoint(Config config, Vec2 start, Rng rng);

  [[nodiscard]] Vec2 position_at(SimTime t) const override;
  [[nodiscard]] Vec2 velocity_at(SimTime t) const override;

  // Live history length — exposed so tests can assert the prune keeps long
  // sims bounded.
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }

  [[nodiscard]] std::shared_ptr<const MobilityModel> clone() const override {
    return std::make_shared<RandomWaypoint>(*this);
  }

 private:
  struct Segment {
    SimTime depart;
    SimTime arrive;  // includes the trailing pause
    Vec2 from;
    Vec2 to;
  };

  void extend_until(SimTime t) const;
  void rewind() const;
  [[nodiscard]] const Segment& segment_for(SimTime t) const;

  Config config_;
  Vec2 start_;
  Rng initial_rng_;  // pristine copy: backwards queries replay the walk
  mutable Rng rng_;
  mutable std::vector<Segment> segments_;
};

// Gauss–Markov mobility: speed and direction evolve as first-order
// autoregressive processes, so motion is temporally correlated — no sharp
// random-waypoint turnarounds. `alpha` tunes the memory (1 = straight line,
// 0 = memoryless). Near the area edge the mean direction steers back toward
// the centre (the standard boundary treatment).
class GaussMarkov final : public MobilityModel {
 public:
  struct Config {
    Vec2 area_min{0.0, 0.0};
    Vec2 area_max{100.0, 100.0};
    double mean_speed_mps{1.0};
    double speed_sigma{0.3};
    double direction_sigma{0.5};  // radians
    double alpha{0.85};
    SimDuration update_interval{std::chrono::seconds{1}};
    // Distance from an edge below which the mean direction turns inward.
    double edge_margin_m{5.0};
  };

  GaussMarkov(Config config, Vec2 start, Rng rng);

  [[nodiscard]] Vec2 position_at(SimTime t) const override;
  [[nodiscard]] Vec2 velocity_at(SimTime t) const override;

  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }

  [[nodiscard]] std::shared_ptr<const MobilityModel> clone() const override {
    return std::make_shared<GaussMarkov>(*this);
  }

 private:
  struct Segment {
    SimTime depart;
    Vec2 from;
    Vec2 to;  // position one update_interval later (both endpoints in-area)
  };
  struct WalkState {
    double speed{0.0};
    double direction{0.0};
  };

  void extend_until(SimTime t) const;
  void rewind() const;
  // Resets the AR state from the (re-)wound RNG stream and emits the first
  // segment — ctor and rewind() share it so replay is exact.
  void seed_segments() const;
  // Advances the AR state one step and emits the segment leaving `from`.
  [[nodiscard]] Segment make_segment(SimTime depart, Vec2 from) const;

  Config config_;
  Vec2 start_;
  Rng initial_rng_;
  mutable Rng rng_;
  mutable WalkState state_;
  mutable std::vector<Segment> segments_;
};

// Reference-point group mobility (RPGM): each member tracks a shared group
// reference model (any MobilityModel — typically RandomWaypoint for the
// group's logical centre) at a fixed formation offset, plus a bounded random
// deviation that re-targets every `update_interval`. Destroying members is
// independent of the reference; members share it by shared_ptr.
class GroupMember final : public MobilityModel {
 public:
  struct Config {
    double deviation_radius_m{2.0};
    SimDuration update_interval{std::chrono::seconds{4}};
  };

  GroupMember(std::shared_ptr<const MobilityModel> reference, Vec2 offset,
              Config config, Rng rng);

  [[nodiscard]] Vec2 position_at(SimTime t) const override;
  [[nodiscard]] Vec2 velocity_at(SimTime t) const override;
  [[nodiscard]] bool is_static() const override {
    return reference_->is_static() && config_.deviation_radius_m <= 0.0;
  }

  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }

  [[nodiscard]] std::shared_ptr<const MobilityModel> clone() const override {
    // Deep: the reference walk's cache must not be shared across threads
    // either, and its clone replays the identical group trajectory.
    auto copy = std::make_shared<GroupMember>(*this);
    if (auto reference = reference_->clone()) {
      copy->reference_ = std::move(reference);
    }
    return copy;
  }

 private:
  struct Segment {
    SimTime depart;
    Vec2 from;  // deviation vector at depart
    Vec2 to;    // deviation vector at depart + update_interval
  };

  void extend_until(SimTime t) const;
  void rewind() const;
  [[nodiscard]] Vec2 deviation_at(SimTime t) const;
  [[nodiscard]] Vec2 deviation_slope_at(SimTime t) const;

  std::shared_ptr<const MobilityModel> reference_;
  Vec2 offset_;
  Config config_;
  Rng initial_rng_;
  mutable Rng rng_;
  mutable std::vector<Segment> segments_;
};

}  // namespace peerhood::sim
