// Mobility models. Each simulated device owns one model; the radio medium
// samples positions lazily at the current simulation time. Models cover the
// paper's scenarios: fixed servers (static), the corridor walk of §5.2.1
// (linear / waypoint), and random office movement (random waypoint).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "sim/vec2.hpp"

namespace peerhood::sim {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  [[nodiscard]] virtual Vec2 position_at(SimTime t) const = 0;

  // True iff position_at returns the same point for every t. The radio
  // medium skips re-sampling (and re-indexing) static endpoints when the
  // clock advances, so a mostly-static deployment pays grid maintenance
  // only for the endpoints that actually move.
  [[nodiscard]] virtual bool is_static() const { return false; }
};

// Fixed device (the paper's "static" terminals: PCs, servers).
class StaticPosition final : public MobilityModel {
 public:
  explicit StaticPosition(Vec2 position) : position_{position} {}

  [[nodiscard]] Vec2 position_at(SimTime) const override { return position_; }
  [[nodiscard]] bool is_static() const override { return true; }

 private:
  Vec2 position_;
};

// Constant-velocity motion from `start` beginning at `departure`; models the
// walking-away scenarios of Fig. 5.4 and §5.2.1.
class LinearMotion final : public MobilityModel {
 public:
  LinearMotion(Vec2 start, Vec2 velocity_mps,
               SimTime departure = SimTime::zero())
      : start_{start}, velocity_{velocity_mps}, departure_{departure} {}

  [[nodiscard]] Vec2 position_at(SimTime t) const override {
    if (t <= departure_) return start_;
    const double dt = (t - departure_).count() * 1e-6;
    return start_ + velocity_ * dt;
  }

 private:
  Vec2 start_;
  Vec2 velocity_;
  SimTime departure_;
};

// Piecewise-linear path through timestamped waypoints; holds the last
// waypoint after the path ends. Used to script walks (leave office, enter
// corridor, come back — Fig. 5.6/5.7).
class WaypointPath final : public MobilityModel {
 public:
  struct Waypoint {
    SimTime at;
    Vec2 position;
  };

  // Waypoints must be sorted by time and non-empty.
  explicit WaypointPath(std::vector<Waypoint> waypoints);

  [[nodiscard]] Vec2 position_at(SimTime t) const override;

 private:
  std::vector<Waypoint> waypoints_;
};

// Random-waypoint model inside a rectangular area: pick a target uniformly,
// walk to it at a uniform speed, pause, repeat. Segments are generated
// on demand from a private deterministic stream.
class RandomWaypoint final : public MobilityModel {
 public:
  struct Config {
    Vec2 area_min{0.0, 0.0};
    Vec2 area_max{100.0, 100.0};
    double speed_min_mps{0.5};
    double speed_max_mps{1.5};
    SimDuration pause{std::chrono::seconds{2}};
  };

  RandomWaypoint(Config config, Vec2 start, Rng rng);

  [[nodiscard]] Vec2 position_at(SimTime t) const override;

 private:
  struct Segment {
    SimTime depart;
    SimTime arrive;
    Vec2 from;
    Vec2 to;
  };

  void extend_until(SimTime t) const;

  Config config_;
  mutable Rng rng_;
  mutable std::vector<Segment> segments_;
};

}  // namespace peerhood::sim
