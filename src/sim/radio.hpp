// Radio technology models. Parameters are calibrated from the paper's own
// measurements: Bluetooth bridge connections took 3-18 s and 3/10 attempts
// failed (§4.3); discovery is asymmetric — an inquiring Bluetooth device is
// itself undiscoverable (§3.4.2, citing [4]); link quality is the 0-255 RSSI
// style value with the handover threshold at 230 (§3.4.1, §5.2.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace peerhood {

// The paper's three supported "prototypes" (network technologies).
enum class Technology : std::uint8_t { kBluetooth = 0, kWlan = 1, kGprs = 2 };

// Number of technologies; Technology values are dense in [0, count) so they
// can index fixed arrays (per-technology parameters, spatial grids).
inline constexpr std::size_t kTechnologyCount = 3;

[[nodiscard]] constexpr std::string_view to_string(Technology tech) {
  switch (tech) {
    case Technology::kBluetooth: return "bluetooth";
    case Technology::kWlan: return "wlan";
    case Technology::kGprs: return "gprs";
  }
  return "unknown";
}

// The paper's device mobility classes with their numeric costs (§3.4.3):
// {static, hybrid, dynamic} = {0, 1, 3}.
enum class MobilityClass : std::uint8_t { kStatic = 0, kHybrid = 1, kDynamic = 3 };

[[nodiscard]] constexpr int mobility_cost(MobilityClass m) {
  return static_cast<int>(m);
}

[[nodiscard]] constexpr std::string_view to_string(MobilityClass m) {
  switch (m) {
    case MobilityClass::kStatic: return "static";
    case MobilityClass::kHybrid: return "hybrid";
    case MobilityClass::kDynamic: return "dynamic";
  }
  return "unknown";
}

namespace sim {

struct TechnologyParams {
  Technology tech{Technology::kBluetooth};
  double range_m{10.0};

  // Device discovery loop period ("device searching cycle", Fig. 3.10).
  SimDuration inquiry_interval{std::chrono::seconds{10}};
  // Time spent actively inquiring each cycle. While inquiring, a device with
  // asymmetric_discovery is not discoverable by others (§3.4.2).
  SimDuration inquiry_duration{std::chrono::milliseconds{2560}};
  bool asymmetric_discovery{true};

  // Duration of one short information-fetch connection (Fig. 3.7 shows four
  // per discovered device: device / prototype / service / neighbourhood).
  SimDuration fetch_time{std::chrono::milliseconds{300}};
  double fetch_failure_prob{0.05};

  // Data-connection establishment (per hop).
  double connect_delay_min_s{1.5};
  double connect_delay_max_s{9.0};
  double connect_failure_prob{0.16};

  // Data-plane characteristics.
  SimDuration per_hop_latency{std::chrono::milliseconds{30}};
  double bytes_per_second{100'000.0};
};

// Calibration notes:
//  * Bluetooth: class-2 range ~10 m. Per-hop connect delay U(1.5 s, 9 s), so
//    a two-hop bridge path lands in the 3-18 s window reported in §4.3, and
//    per-hop failure 0.16 reproduces ~3 failures in 10 two-hop attempts.
//  * WLAN: larger range, fast association, low loss.
//  * GPRS: cellular — effectively always in range, moderate setup time.
[[nodiscard]] TechnologyParams bluetooth_params();
[[nodiscard]] TechnologyParams wlan_params();
[[nodiscard]] TechnologyParams gprs_params();
[[nodiscard]] TechnologyParams default_params(Technology tech);

// Path-loss law selecting how quality decays between transmitter and the
// coverage edge:
//  * kConcavePower — RSSI stays near maximum until close to the edge
//    (q_max - (q_max-q_edge)·(d/r)^exponent); the seed model.
//  * kLogDistance — log-distance profile: quality falls steeply near the
//    transmitter and flattens toward the edge, the classic indoor shape.
enum class PathLossLaw : std::uint8_t { kConcavePower = 0, kLogDistance = 1 };

// Distance -> link-quality mapping (0-255). Quality decays from q_max at the
// transmitter towards q_edge at the coverage edge under the configured
// path-loss law, optionally offset by per-link log-normal-style shadowing
// (a deterministic N(0, shadow_sigma) quality offset hashed from the link
// key, so a given pair sees the same shadow for the whole run), plus bounded
// per-sample noise. Beyond the range the link is dead (quality 0).
struct LinkQualityModel {
  PathLossLaw law{PathLossLaw::kConcavePower};
  int q_max{255};
  int q_edge{175};
  double exponent{2.0};
  double noise{2.0};
  // 0 = shadowing off. In quality units (the 0-255 scale is the sim's dB
  // analogue). `shadow_seed` decorrelates shadow maps across runs.
  double shadow_sigma{0.0};
  std::uint64_t shadow_seed{0};

  // The paper's "minimum demanded" link quality (Fig. 3.9, §5.2.1).
  static constexpr int kDefaultThreshold = 230;

  // Noise-free quality before the integer clamp; <= 0.0 means dead link
  // (out of range). `link_key` selects the shadowing offset (pass 0 for an
  // un-shadowed sample, e.g. analytic benches).
  [[nodiscard]] double base_quality(double distance_m, double range_m,
                                    std::uint64_t link_key = 0) const;
  // Applies per-sample noise and the 1..255 clamp to a live base quality.
  [[nodiscard]] int finalize(double base, Rng* noise_rng) const;
  // Deterministic per-link shadow offset (0 when shadow_sigma == 0).
  [[nodiscard]] double shadow_offset(std::uint64_t link_key) const;

  [[nodiscard]] int quality(double distance_m, double range_m,
                            Rng* noise_rng = nullptr,
                            std::uint64_t link_key = 0) const;
};

}  // namespace sim
}  // namespace peerhood
