// The simulation kernel: a virtual clock plus the event queue. All PeerHood
// "threads" from the paper (inquiry, advertise, handover monitor, bridge main
// loop) are cooperative tasks scheduled here — deterministic and replayable
// (C++ Core Guidelines CP.4: think in terms of tasks, not threads).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/handler_slot.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "sim/event_queue.hpp"

namespace peerhood::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed) : rng_{seed} {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // Time observers fire whenever the virtual clock actually advances (never
  // for same-time events). The radio medium uses this to invalidate its
  // position cache and spatial grids exactly once per distinct SimTime.
  using TimeObserver = std::function<void()>;
  using TimeObserverId = std::size_t;

  TimeObserverId add_time_observer(TimeObserver observer) {
    // Reuse a removed slot so repeated register/unregister cycles (e.g. many
    // scenario media on one simulator) don't grow the observer list.
    for (TimeObserverId id = 0; id < time_observers_.size(); ++id) {
      if (time_observers_[id] == nullptr) {
        time_observers_[id] = std::move(observer);
        return id;
      }
    }
    time_observers_.push_back(std::move(observer));
    return time_observers_.size() - 1;
  }

  void remove_time_observer(TimeObserverId id) {
    if (id < time_observers_.size()) time_observers_[id] = nullptr;
  }

  // Actions are InlineCallables: lambdas whose captures fit the inline
  // buffer schedule with zero heap traffic (see sim/inline_callable.hpp).
  EventId schedule_at(SimTime at, InlineCallable action) {
    return queue_.schedule(at < now_ ? now_ : at, std::move(action));
  }

  EventId schedule_after(SimDuration delay, InlineCallable action) {
    return queue_.schedule(now_ + delay, std::move(action));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  // Runs a single event; returns false when the queue is empty. The clock
  // advances *before* the event runs so callbacks observe the fire time.
  bool step() {
    if (queue_.empty()) return false;
    advance_to(queue_.next_time());
    (void)queue_.run_next();
    return true;
  }

  // Runs events until the queue is empty or the clock would pass `deadline`.
  // The clock is left at `deadline` (so repeated run_until calls compose).
  void run_until(SimTime deadline) {
    while (!queue_.empty() && queue_.next_time() <= deadline) {
      advance_to(queue_.next_time());
      (void)queue_.run_next();
    }
    if (now_ < deadline) advance_to(deadline);
  }

  void run_for(SimDuration duration) { run_until(now_ + duration); }

  // Runs events strictly before `horizon` and stops, leaving the clock at
  // the last fired event (never advanced to the horizon itself). This is the
  // conservative-window primitive for the sharded engine: a shard drains its
  // window without manufacturing artificial clock advances, so a sharded run
  // fires time observers at exactly the same instants as a plain run_until.
  void run_before(SimTime horizon) {
    while (!queue_.empty() && queue_.next_time() < horizon) {
      advance_to(queue_.next_time());
      (void)queue_.run_next();
    }
  }

  // Time of the earliest pending event; only valid when !idle().
  [[nodiscard]] SimTime next_event_time() const { return queue_.next_time(); }

  // Advances the clock (firing time observers) without running any event.
  // Used by the sharded coordinator to align shard clocks on the final
  // deadline, mirroring run_until's trailing advance. No-op unless t is
  // ahead of the clock; precondition: no pending event before t.
  void advance_clock_to(SimTime t) {
    if (t > now_) advance_to(t);
  }

  // Drains the queue completely (with a safety cap against runaway loops).
  void run_all(std::uint64_t max_events = 50'000'000) {
    while (max_events-- > 0 && step()) {
    }
  }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] Rng fork_rng() { return rng_.fork(); }

 private:
  void advance_to(SimTime t) {
    if (t == now_) return;
    now_ = t;
    // Keep the queue's near-horizon window tracking the clock, so events
    // scheduled after an idle stretch still take the O(1) wheel path.
    queue_.advance_window(t);
    for (const TimeObserver& observer : time_observers_) {
      if (observer) observer();
    }
  }

  SimTime now_{};
  EventQueue queue_;
  Rng rng_;
  std::vector<TimeObserver> time_observers_;
};

// Repeating task helper (inquiry loops, link monitors, relay polls). The task
// stops rearming once cancelled or destroyed; destruction is safe mid-cycle —
// including from *inside* the tick itself (a tick callback may destroy the
// object owning this task, e.g. an application event handler tearing down a
// HandoverController from a monitor tick).
class PeriodicTask {
 public:
  PeriodicTask() = default;
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;
  ~PeriodicTask() { stop(); }

  void start(Simulator& sim, SimDuration period, std::function<void()> tick,
             SimDuration initial_delay = SimDuration{0}) {
    stop();
    sim_ = &sim;
    period_ = period;
    tick_ = std::make_shared<const std::function<void()>>(std::move(tick));
    stopped_ = false;
    arm(initial_delay);
  }

  void stop() {
    stopped_ = true;
    if (sim_ != nullptr && event_ != kInvalidEvent) {
      sim_->cancel(event_);
    }
    event_ = kInvalidEvent;
  }

  [[nodiscard]] bool running() const { return !stopped_ && sim_ != nullptr; }

 private:
  void arm(SimDuration delay) {
    // Pin the tick and watch the sentinel: the callback may stop() this
    // task or destroy it outright; members are only touched while the
    // token is live.
    event_ = sim_->schedule_after(
        delay, [this, token = sentinel_.token(), tick = tick_] {
          event_ = kInvalidEvent;
          (*tick)();
          if (token.expired()) return;  // tick destroyed this task
          if (!stopped_) arm(period_);
        });
  }

  Simulator* sim_{nullptr};
  SimDuration period_{};
  std::shared_ptr<const std::function<void()>> tick_;
  EventId event_{kInvalidEvent};
  bool stopped_{true};
  peerhood::DestructionSentinel sentinel_;
};

}  // namespace peerhood::sim
