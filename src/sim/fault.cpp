#include "sim/fault.hpp"

#include <algorithm>
#include <cmath>

namespace peerhood::sim {
namespace {

[[nodiscard]] double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

[[nodiscard]] bool contains(const std::vector<MacAddress>& set,
                            MacAddress mac) {
  return std::find(set.begin(), set.end(), mac) != set.end();
}

}  // namespace

LinkFaultModel::LinkKey LinkFaultModel::link_key(MacAddress a, MacAddress b,
                                                 Technology tech) {
  std::uint64_t lo = a.as_u64();
  std::uint64_t hi = b.as_u64();
  if (lo > hi) std::swap(lo, hi);
  return {lo, hi, static_cast<std::uint8_t>(tech)};
}

void LinkFaultModel::set_profile(Technology tech, FaultProfile profile) {
  tech_profiles_[static_cast<std::size_t>(tech)] = profile;
}

void LinkFaultModel::set_link_profile(MacAddress a, MacAddress b,
                                      Technology tech, FaultProfile profile) {
  link_profiles_[link_key(a, b, tech)] = profile;
}

void LinkFaultModel::clear_link_profile(MacAddress a, MacAddress b,
                                        Technology tech) {
  link_profiles_.erase(link_key(a, b, tech));
}

const FaultProfile& LinkFaultModel::profile(MacAddress a, MacAddress b,
                                            Technology tech) const {
  const auto it = link_profiles_.find(link_key(a, b, tech));
  if (it != link_profiles_.end()) return it->second;
  return tech_profiles_[static_cast<std::size_t>(tech)];
}

bool LinkFaultModel::any_profile_active() const {
  for (const FaultProfile& p : tech_profiles_) {
    if (p.active()) return true;
  }
  for (const auto& [key, p] : link_profiles_) {
    if (p.active()) return true;
  }
  return false;
}

void LinkFaultModel::schedule_blackout(Blackout window) {
  blackouts_.push_back(std::move(window));
}

bool LinkFaultModel::blackout_possible(SimTime now) const {
  for (const Blackout& b : blackouts_) {
    if (now >= b.start && now < b.start + b.duration) return true;
  }
  return false;
}

bool LinkFaultModel::blacked_out(MacAddress from, MacAddress to, SimTime now,
                                 Vec2 from_pos, Vec2 to_pos) const {
  for (const Blackout& b : blackouts_) {
    if (now < b.start || now >= b.start + b.duration) continue;
    if (b.radius_m > 0.0 &&
        distance(b.center, from_pos) > b.radius_m &&
        distance(b.center, to_pos) > b.radius_m) {
      continue;  // region blackout, neither endpoint inside
    }
    if (b.side_a.empty()) {
      if (b.radius_m > 0.0 || b.side_b.empty()) return true;  // global/region
      continue;
    }
    const bool from_a = contains(b.side_a, from);
    const bool to_a = contains(b.side_a, to);
    if (b.side_b.empty()) {
      // Node-set blackout: anything touching side_a is silenced.
      if (from_a || to_a) return true;
      continue;
    }
    // Partition: only frames crossing the cut die.
    const bool from_b = contains(b.side_b, from);
    const bool to_b = contains(b.side_b, to);
    if ((from_a && to_b) || (from_b && to_a)) return true;
  }
  return false;
}

FaultDecision LinkFaultModel::judge(MacAddress from, MacAddress to,
                                    Technology tech, double degradation,
                                    SimTime now, Vec2 from_pos, Vec2 to_pos) {
  FaultDecision decision;
  ++stats_.frames_seen;
  if (blackout_possible(now) &&
      blacked_out(from, to, now, from_pos, to_pos)) {
    ++stats_.blackout_drops;
    decision.drop = true;
    return decision;
  }
  const FaultProfile& p = profile(from, to, tech);
  if (!p.active()) return decision;

  // The quality coupling scales the burst machinery by link degradation:
  // a link at the coverage edge (degradation 1, coupling 1) enters bursts
  // and loses frames at twice its base rate.
  const double scale = 1.0 + p.quality_coupling * clamp01(degradation);

  bool& bad = burst_state_[link_key(from, to, tech)];
  if (bad) {
    if (rng_.bernoulli(p.p_bad_to_good)) bad = false;
  } else {
    if (rng_.bernoulli(clamp01(p.p_good_to_bad * scale))) {
      bad = true;
      ++stats_.burst_entries;
    }
  }
  const double loss = clamp01((bad ? p.loss_bad : p.loss_good) * scale);
  if (rng_.bernoulli(loss)) {
    ++stats_.loss_drops;
    decision.drop = true;
    return decision;
  }
  if (rng_.bernoulli(p.corrupt_prob)) {
    ++stats_.corrupted;
    decision.corrupt = true;
  }
  if (rng_.bernoulli(p.duplicate_prob)) {
    ++stats_.duplicated;
    decision.duplicate = true;
    decision.duplicate_lag = p.duplicate_lag;
  }
  if (rng_.bernoulli(p.reorder_prob)) {
    ++stats_.reordered;
    decision.reorder = true;
    const double max_s =
        std::chrono::duration<double>(p.reorder_delay_max).count();
    decision.extra_delay = seconds(rng_.uniform(0.0, max_s));
  }
  return decision;
}

void LinkFaultModel::corrupt(Bytes& frame) {
  if (frame.empty()) return;
  const int flips = static_cast<int>(rng_.uniform_int(1, 3));
  for (int i = 0; i < flips; ++i) {
    const auto pos = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(frame.size()) - 1));
    const auto bit = static_cast<std::uint8_t>(rng_.uniform_int(0, 7));
    frame[pos] ^= static_cast<std::uint8_t>(1u << bit);
  }
}

// ---------------------------------------------------------------------------
// NodeCrashPlane

namespace {

// Exponential draw via inverse transform; 1-u keeps the argument of log in
// (0, 1] for u in [0, 1).
[[nodiscard]] SimDuration exponential(Rng& rng, SimDuration mean) {
  const double mean_s = std::chrono::duration<double>(mean).count();
  const double u = rng.uniform(0.0, 1.0);
  return seconds(-mean_s * std::log(std::max(1.0 - u, 1e-12)));
}

constexpr SimDuration kMinDowntime = std::chrono::milliseconds{100};

}  // namespace

void NodeCrashPlane::set_hooks(NodeHook kill, NodeHook restart) {
  kill_ = std::move(kill);
  restart_ = std::move(restart);
}

void NodeCrashPlane::schedule_crash(MacAddress mac, SimTime at,
                                    SimDuration downtime) {
  sim_.schedule_at(at, [this, mac, downtime] { crash_now(mac, downtime); });
}

void NodeCrashPlane::crash_now(MacAddress mac, SimDuration downtime) {
  if (contains(down_, mac)) return;  // already down (overlapping schedules)
  down_.push_back(mac);
  ++stats_.node_crashes;
  if (kill_) kill_(mac);
  sim_.schedule_after(std::max(downtime, kMinDowntime), [this, mac] {
    down_.erase(std::remove(down_.begin(), down_.end(), mac), down_.end());
    ++stats_.node_restarts;
    if (restart_) restart_(mac);
  });
}

void NodeCrashPlane::start_churn(std::vector<MacAddress> targets,
                                 SimDuration mtbf_mean, SimDuration mttr_mean,
                                 SimTime start, SimTime stop) {
  if (targets.empty()) return;
  ChurnState churn;
  churn.targets = std::move(targets);
  churn.mtbf_mean = mtbf_mean;
  churn.mttr_mean = mttr_mean;
  churn.stop = stop;
  churns_.push_back(std::move(churn));
  const std::size_t index = churns_.size() - 1;
  const SimTime first =
      std::max(start, sim_.now()) + exponential(rng_, mtbf_mean);
  sim_.schedule_at(first, [this, index] { churn_tick(index); });
}

void NodeCrashPlane::churn_tick(std::size_t churn_index) {
  const ChurnState& churn = churns_[churn_index];
  if (sim_.now() >= churn.stop) return;
  // Draw the victim and downtime *before* the down-check so a skipped draw
  // still advances the RNG stream identically across replays.
  const auto pick = static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(churn.targets.size()) - 1));
  const MacAddress victim = churn.targets[pick];
  const SimDuration downtime = exponential(rng_, churn.mttr_mean);
  if (!contains(down_, victim)) crash_now(victim, downtime);
  const SimTime next = sim_.now() + exponential(rng_, churn.mtbf_mean);
  sim_.schedule_at(next, [this, index = churn_index] { churn_tick(index); });
}

}  // namespace peerhood::sim
