// Region-partitioned radio medium for the sharded simulation core.
//
// A ShardedMedium owns one full RadioMedium replica per shard. Every
// endpoint is registered on every replica (with a private clone of any
// stateful mobility model — see MobilityModel::clone), so geometry, range
// and quality queries are answered locally on any shard, exactly, with no
// cross-shard reads during a window. What is partitioned is *ownership*:
// the world is split into K vertical stripes of [world_min_x, world_max_x],
// and the shard whose stripe contains an endpoint owns it — application
// events for the endpoint run on the owner's simulator, and frames
// addressed to it are delivered (handler invoked) on the owner's replica.
//
// Cross-shard frames ride the conservative core: RadioMedium's remote
// router intercepts a send whose receiver lives on another shard *after*
// the full send-side pipeline (fault judgement, serialization delay,
// in-order bump) has produced the final delivery time, and posts a
// time-stamped message that invokes deliver_frame on the owning replica at
// exactly that time. Send-side state therefore evolves identically whether
// the receiver is local or remote, and the merged per-replica TrafficStats
// of a sharded run equal the stats of a single-shard run of the same
// workload.
//
// Endpoints migrate when mobility carries them across a stripe boundary
// (plus a hysteresis margin, so boundary-hugging walks don't thrash):
// each shard scans its owned mobile endpoints at the end of every window
// (the core's window hook, positions sampled at the window horizon) and
// posts barrier-immediate migration messages. The barrier applies them
// deterministically: ownership flips, the endpoint's in-order
// (last-delivery) state moves to the new owner's replica, and the
// registered migration handler fires so the application can re-arm
// per-endpoint timers on the new shard. Frames already in flight toward
// the old owner are forwarded by the delivery stub when they land —
// bounded-late by one window, exactly-once, and counted.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mac_address.hpp"
#include "sim/medium.hpp"
#include "sim/shard.hpp"

namespace peerhood::sim {

struct ShardedMediumStats {
  std::uint64_t migrations{0};       // ownership transfers applied
  std::uint64_t remote_frames{0};    // frames routed cross-shard at send
  std::uint64_t forwarded_frames{0}; // landed on an ex-owner, re-forwarded
};

struct ShardedMediumConfig {
  // World extent partitioned into shard_count() equal vertical stripes.
  double world_min_x{0.0};
  double world_max_x{1000.0};
  // An endpoint migrates only once it is `margin_m` past its owner's
  // stripe boundary; within the margin it stays put.
  double margin_m{1.0};
};

class ShardedMedium {
 public:
  using Config = ShardedMediumConfig;

  explicit ShardedMedium(ShardedSimulator& core, Config config = {},
                         LinkQualityModel quality_model = {});
  ~ShardedMedium();

  ShardedMedium(const ShardedMedium&) = delete;
  ShardedMedium& operator=(const ShardedMedium&) = delete;

  // Applies to every replica and tightens the core's lookahead to the
  // minimum per-hop frame latency across the configured technologies.
  void configure(const TechnologyParams& params);

  // --- Endpoint registry (coordinator-only: between runs) -------------------
  // Registers on every replica; the endpoint's initial owner is the stripe
  // containing its position at the current (control-shard) time. `handler`
  // is invoked only on the owning replica.
  void register_endpoint(MacAddress mac, Technology tech,
                         std::shared_ptr<const MobilityModel> mobility,
                         RadioMedium::FrameHandler handler);
  void unregister_endpoint(MacAddress mac, Technology tech);

  void set_discoverable(MacAddress mac, Technology tech, bool discoverable);
  void set_inquiring(MacAddress mac, Technology tech, bool inquiring);

  // --- Ownership -------------------------------------------------------------
  [[nodiscard]] std::uint32_t owner_of(MacAddress mac) const;
  [[nodiscard]] std::uint32_t stripe_of(double x) const;
  [[nodiscard]] RadioMedium& replica(std::uint32_t shard) {
    return *replicas_[shard];
  }
  [[nodiscard]] RadioMedium& owner_replica(MacAddress mac) {
    return *replicas_[owner_of(mac)];
  }
  [[nodiscard]] Simulator& owner_sim(MacAddress mac) {
    return core_.shard(owner_of(mac));
  }
  // Mobile endpoints currently owned by `shard` (the migration scan's
  // working set), in deterministic order.
  [[nodiscard]] std::size_t owned_mobile_count(std::uint32_t shard) const {
    return owned_mobiles_[shard].size();
  }

  // Fired at the barrier, after ownership has flipped and in-order state
  // has moved — the application re-arms per-endpoint work on `to_shard`
  // here. Runs on the coordinator thread between windows. Schedule
  // re-armed work relative to `at` (the migration time): the new owner's
  // clock may trail it arbitrarily if the shard has been idle, and
  // anchoring timers to that stale clock would schedule them into the
  // global past.
  using MigrationHandler = std::function<void(
      MacAddress mac, std::uint32_t from_shard, std::uint32_t to_shard,
      SimTime at)>;
  void set_migration_handler(MigrationHandler handler) {
    migration_handler_ = std::move(handler);
  }

  // --- Transport -------------------------------------------------------------
  // Sends from `from`'s owner replica (the shard where the sender's
  // application events run). Remote receivers are routed automatically.
  void send_frame(MacAddress from, MacAddress to, Technology tech,
                  Bytes frame) {
    owner_replica(from).send_frame(from, to, tech, std::move(frame));
  }

  // --- Merged accounting -----------------------------------------------------
  [[nodiscard]] TrafficStats merged_stats() const;
  [[nodiscard]] QualityStats merged_quality_stats() const;
  [[nodiscard]] ShardedMediumStats stats() const;

  [[nodiscard]] ShardedSimulator& core() { return core_; }

 private:
  struct Owned {
    std::uint32_t owner{0};
    // The original model (replicas hold clones); sampled only by the
    // owning shard's migration scan, so its lazy caches are single-writer.
    std::shared_ptr<const MobilityModel> mobility;
    bool is_static{false};
    std::uint32_t tech_registrations{0};
  };
  // Counter slots are per-shard so worker threads never share a cache line
  // or a counter; summed into ShardedMediumStats on read.
  struct alignas(64) ShardCounters {
    std::uint64_t remote_frames{0};
    std::uint64_t forwarded_frames{0};
  };

  void migration_scan(std::uint32_t shard, SimTime horizon);
  void apply_migration(MacAddress mac, std::uint32_t from_shard,
                       std::uint32_t to_shard, SimTime at);

  ShardedSimulator& core_;
  Config config_;
  std::vector<std::unique_ptr<RadioMedium>> replicas_;
  // Written only at the barrier / between runs (coordinator); read freely
  // during windows — the barrier handshake orders the accesses.
  std::unordered_map<std::uint64_t, Owned> owners_;
  std::vector<std::vector<MacAddress>> owned_mobiles_;  // per shard
  std::vector<ShardCounters> counters_;                 // per shard
  std::uint64_t migrations_{0};
  MigrationHandler migration_handler_;
};

}  // namespace peerhood::sim
