#include "sim/spatial_grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace peerhood::sim {

SpatialGrid::SpatialGrid(double cell_size) { set_cell_size(cell_size); }

void SpatialGrid::set_cell_size(double cell_size) {
  assert(cell_size > 0.0);
  cell_ = cell_size;
  inv_cell_ = 1.0 / cell_size;
  clear();
}

void SpatialGrid::clear() {
  cells_.clear();
  index_.clear();
}

bool SpatialGrid::contains(std::uint64_t id) const {
  return index_.contains(id);
}

std::int32_t SpatialGrid::cell_coord(double v) const {
  return static_cast<std::int32_t>(std::floor(v * inv_cell_));
}

std::uint64_t SpatialGrid::cell_key(std::int32_t cx, std::int32_t cy) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
}

void SpatialGrid::insert(std::uint64_t id, Vec2 position,
                         const void* payload) {
  remove(id);
  const std::uint64_t key = cell_key(cell_coord(position.x),
                                     cell_coord(position.y));
  cells_[key].push_back(Entry{id, position, payload});
  index_.emplace(id, key);
}

bool SpatialGrid::update(std::uint64_t id, Vec2 position) {
  const auto indexed = index_.find(id);
  if (indexed == index_.end()) return false;
  const std::uint64_t new_key = cell_key(cell_coord(position.x),
                                         cell_coord(position.y));
  const auto bucket = cells_.find(indexed->second);
  assert(bucket != cells_.end());
  std::vector<Entry>& entries = bucket->second;
  const auto entry = std::find_if(entries.begin(), entries.end(),
                                  [&](const Entry& e) { return e.id == id; });
  assert(entry != entries.end());
  if (new_key == indexed->second) {
    entry->position = position;
    return true;
  }
  Entry moved = *entry;
  moved.position = position;
  *entry = entries.back();
  entries.pop_back();
  if (entries.empty()) cells_.erase(bucket);
  cells_[new_key].push_back(moved);
  indexed->second = new_key;
  return true;
}

bool SpatialGrid::remove(std::uint64_t id) {
  const auto indexed = index_.find(id);
  if (indexed == index_.end()) return false;
  const auto bucket = cells_.find(indexed->second);
  assert(bucket != cells_.end());
  std::vector<Entry>& entries = bucket->second;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].id != id) continue;
    entries[i] = entries.back();
    entries.pop_back();
    break;
  }
  if (entries.empty()) cells_.erase(bucket);
  index_.erase(indexed);
  return true;
}

}  // namespace peerhood::sim
