// Discrete-event scheduler. Events fire in (time, insertion-order) order;
// cancellation is O(1) (a generation check plus lazy removal).
//
// Zero-allocation steady state: event storage is a pooled slot arena — a
// vector of slots recycled through a free list, each holding the event's
// InlineCallable (closures ≤ 48 B live inside the slot, no heap traffic).
// An EventId packs {slot index, slot generation} into a u64, so cancel and
// the fired/stale checks are a single array index + compare; there is no
// id → action map at all.
//
// The pending set is two-tier, exploiting the shape of simulator traffic:
//
//  * Near events — zero-delay deferrals, cascades, per-hop frame latencies
//    (~30 ms), bumped in-order frame trains — land in a timing wheel of
//    2^15 one-microsecond buckets (a ~33 ms window). Schedule is an O(1)
//    FIFO append (events are chained intrusively through their slots) and
//    fire is an O(1) pop guided by a two-level occupancy bitmap. This is
//    the hot path: a comparison heap pays its worst case exactly here
//    (near-now keys sift to the root on push and force full sift-downs on
//    pop), the wheel pays nothing.
//  * Mid events — keepalive periods, inquiry cycles, connect delays — land
//    in a hierarchical second-level wheel of 2^10 buckets, each covering one
//    2^15 µs *frame* of the first wheel (~33.6 s horizon). Schedule is the
//    same O(1) chained append; when the clock enters a frame, its bucket
//    cascades into the first-level wheel (each event re-bucketed in O(1),
//    amortized one cascade per event). Live entries can never alias a
//    bucket: the clock cannot pass a live event, so every live frame lies
//    within one wheel revolution of the current frame.
//  * Far events — anything beyond the second wheel's horizon — go to an
//    implicit 4-ary min-heap (shallower than a binary heap, and the four
//    children of a node share a cache line), with cancelled entries dropped
//    lazily when they surface at the top.
//
// Ordering across the three tiers stays exact: candidates are compared by
// (time, global sequence) when both are non-empty, and the cascade path
// inserts by sequence so a far-scheduled event and a near-scheduled event
// sharing a timestamp still fire in insertion order. A first-wheel bucket
// holds events of a single timestamp (two distinct in-window times can
// never collide in a bucket, see wheel_peek), so bucket chain order is
// sequence order. Once the arena, free list, heap and wheels have grown to
// the scenario's high-water mark, schedule/cancel/fire allocate nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"
#include "sim/inline_callable.hpp"

namespace peerhood::sim {

// High 32 bits: slot generation (never 0); low 32 bits: slot index.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  EventQueue();

  EventId schedule(SimTime at, InlineCallable action);

  // Cancels a pending event. Safe to call on already-fired or invalid ids:
  // firing/cancelling bumps the slot's generation, so a stale id can never
  // match — even after the slot has been recycled for a newer event.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  // Time of the earliest pending event; only valid when !empty().
  [[nodiscard]] SimTime next_time() const;

  // Pops and runs the earliest event; returns its scheduled time. The slot
  // is released *before* the action runs, so the action may freely schedule
  // (and even land in the slot it just vacated) or cancel.
  SimTime run_next();

  // Moves the wheel's window base forward to `t` (no-op when t is not ahead
  // of the last fired time). The Simulator calls this whenever its clock
  // advances — without it, events scheduled after an idle gap would measure
  // their delay against a stale base and spill into the far heap even when
  // they are near-horizon. Precondition: no live event is pending before
  // `t` (the Simulator only advances past times it has drained).
  void advance_window(SimTime t);

 private:
  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFF;
  static constexpr std::size_t kWheelBits = 15;
  static constexpr std::size_t kWheelSize = std::size_t{1} << kWheelBits;
  static constexpr std::size_t kWheelMask = kWheelSize - 1;
  static constexpr std::size_t kWheelWords = kWheelSize / 64;
  static constexpr std::size_t kSummaryWords = kWheelWords / 64;
  static constexpr std::size_t kNoBucket = kWheelSize;
  // Second-level wheel: one bucket per 2^15 µs frame, 2^10 frames of
  // horizon (~33.6 s — covers keepalives, inquiry cycles, connect delays).
  static constexpr std::size_t kWheel2Bits = 10;
  static constexpr std::size_t kWheel2Size = std::size_t{1} << kWheel2Bits;
  static constexpr std::size_t kWheel2Mask = kWheel2Size - 1;
  static constexpr std::size_t kWheel2Words = kWheel2Size / 64;
  static constexpr std::size_t kNoBucket2 = kWheel2Size;

  enum class SlotState : std::uint8_t {
    kIdle,            // free or fired; not in any structure
    kWheelLive,       // chained in a first-wheel bucket, pending
    kWheelCancelled,  // chained in a first-wheel bucket, cancelled — the slot
                      // is returned to the pool only when physically unlinked
    kWheel2Live,       // chained in a second-wheel frame bucket, pending
    kWheel2Cancelled,  // chained in a second-wheel bucket, cancelled
    kHeapLive,         // referenced by a live heap entry
  };

  struct Slot {
    InlineCallable action;
    SimTime at{};                  // absolute deadline (cascade + flush)
    std::uint64_t seq{0};          // insertion order (wheel ordering + flush)
    std::uint32_t gen{1};
    std::uint32_t next{kNilSlot};  // intrusive wheel-bucket chain
    SlotState state{SlotState::kIdle};
  };

  struct Entry {  // far-event heap entry
    SimTime at;
    std::uint64_t seq;
    EventId id;
  };

  struct Bucket {
    std::uint32_t head{kNilSlot};
    std::uint32_t tail{kNilSlot};
  };

  // Next live candidate across both tiers (valid after the call; peeking
  // physically drains cancelled wheel entries and stale heap tops it meets).
  struct Candidate {
    bool any{false};
    bool from_wheel{false};
    SimTime at{};
    std::size_t bucket{kNoBucket};
  };

  [[nodiscard]] static constexpr std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  [[nodiscard]] static constexpr std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  [[nodiscard]] static constexpr EventId make_id(std::uint32_t gen,
                                                 std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  // Min-heap ordering: earlier time first, then insertion order.
  [[nodiscard]] static bool before(const Entry& a, const Entry& b) {
    return a.at < b.at || (a.at == b.at && a.seq < b.seq);
  }

  // A heap entry is live iff its generation still matches its slot's.
  [[nodiscard]] bool is_live(EventId id) const {
    return slots_[slot_of(id)].gen == gen_of(id);
  }

  [[nodiscard]] std::uint32_t acquire_slot();
  // Invalidates all outstanding ids for `slot` and returns it to the pool.
  void release_slot(std::uint32_t slot);

  // --- wheel -----------------------------------------------------------------
  [[nodiscard]] static std::size_t bucket_of(std::int64_t at_us) {
    return static_cast<std::size_t>(at_us) & kWheelMask;
  }
  [[nodiscard]] static std::int64_t frame_of(std::int64_t at_us) {
    return at_us >> kWheelBits;
  }
  void wheel_append(std::size_t bucket, std::uint32_t slot);
  // Chain insert keeping the bucket seq-sorted — the cascade path, where the
  // incoming (older) event may need to fire before a later same-time event
  // that was scheduled near-horizon directly.
  void wheel_insert_sorted(std::size_t bucket, std::uint32_t slot) const;
  // Unlinks the bucket head (precondition: non-empty) and returns it.
  std::uint32_t wheel_pop_head(std::size_t bucket) const;
  void occupancy_set(std::size_t bucket) const;
  void occupancy_clear(std::size_t bucket) const;
  // First occupied bucket at cyclic distance >= 0 from `start`, or kNoBucket.
  [[nodiscard]] std::size_t wheel_scan(std::size_t start) const;
  // Nearest bucket with a *live* head, draining cancelled entries met on the
  // way; kNoBucket when the wheel holds no live event.
  [[nodiscard]] std::size_t wheel_peek() const;
  // --- second-level wheel ----------------------------------------------------
  void wheel2_append(std::size_t bucket, std::uint32_t slot);
  std::uint32_t wheel2_pop_head(std::size_t bucket) const;
  void occupancy2_set(std::size_t bucket) const;
  void occupancy2_clear(std::size_t bucket) const;
  // First occupied frame bucket at cyclic distance >= 0 from `start`, or
  // kNoBucket2 when the second wheel is empty.
  [[nodiscard]] std::size_t wheel2_scan(std::size_t start) const;
  // Empties frame bucket `bucket` into the first wheel (live entries
  // seq-sorted into their 1 µs buckets, cancelled debris recycled), sliding
  // the window base to the frame start. Legal only when no live event lies
  // before the frame start — peek() establishes that before calling.
  void cascade_frame(std::size_t bucket) const;

  // Scheduling before `now_` (impossible through the Simulator, which clamps
  // to its clock, but legal on the raw queue) would move the wheel's window
  // base backwards under its entries; spill both wheels into the heap first.
  void flush_wheel_to_heap();
  // Called whenever live_count_ drops to zero: everything still chained or
  // heaped is cancelled debris, so reclaim it eagerly. Without this, a
  // cancel-heavy workload that empties the queue would strand cancelled
  // wheel slots (no pop ever walks their buckets) and grow the arena.
  void reset_stale();

  // --- far-event heap --------------------------------------------------------
  void heap_push(const Entry& entry) const;
  void heap_pop_top() const;

  [[nodiscard]] Candidate peek() const;

  // Mutable: peeking from const next_time() physically drains cancelled
  // entries (heap tops, wheel bucket chains) and recycles their slots.
  mutable std::vector<Slot> slots_;
  mutable std::vector<std::uint32_t> free_slots_;
  mutable std::vector<Entry> heap_;
  mutable std::vector<Bucket> buckets_;
  mutable std::vector<std::uint64_t> occupancy_;          // one bit per bucket
  mutable std::uint64_t occupancy_summary_[kSummaryWords]{};  // per 64 buckets
  mutable std::vector<Bucket> buckets2_;                  // per-frame chains
  mutable std::uint64_t occupancy2_[kWheel2Words]{};
  // Last fired time: the wheel's window base. First-wheel entries always lie
  // in [now_, now_ + kWheelSize) microseconds; second-wheel entries in
  // frames [frame(now_), frame(now_) + kWheel2Size). Mutable: a cascade from
  // const peek() slides the base to the frame start (never past a live
  // event, so the Simulator's clock contract is unaffected).
  mutable SimTime now_{};
  std::uint64_t next_seq_{1};
  std::size_t live_count_{0};
};

}  // namespace peerhood::sim
