// Discrete-event scheduler. Events fire in (time, insertion-order) order;
// cancellation is O(1) (lazy removal when the event surfaces).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/sim_time.hpp"

namespace peerhood::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  EventId schedule(SimTime at, std::function<void()> action);

  // Cancels a pending event. Safe to call on already-fired or invalid ids.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  // Time of the earliest pending event; only valid when !empty().
  [[nodiscard]] SimTime next_time() const;

  // Pops and runs the earliest event; returns its scheduled time.
  SimTime run_next();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    EventId id;

    // Min-heap ordering: earlier time first, then insertion order.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> actions_;
  std::uint64_t next_seq_{1};
  EventId next_id_{1};
  std::size_t live_count_{0};
};

}  // namespace peerhood::sim
