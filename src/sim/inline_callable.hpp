// Move-only type-erased `void()` callable with a small-buffer optimisation
// sized for the simulator's hot-path closures (frame deliveries, periodic
// ticks, link monitors). Captures up to kInlineSize bytes live inside the
// object itself — scheduling such an event touches no heap at all — while
// oversized or over-aligned captures fall back to a single heap allocation,
// exactly like std::function but with a 3× larger inline buffer and no
// copyability requirement (so move-only captures such as unique_ptr work).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace peerhood::sim {

class InlineCallable {
 public:
  // Chosen to fit the largest hot-path closure: the radio medium's frame
  // delivery captures {this, from, to, tech, shared_ptr<const Bytes>} ≈ 40 B.
  static constexpr std::size_t kInlineSize = 48;

  InlineCallable() = default;

  // Implicit by design: call sites pass lambdas straight to schedule_*.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineCallable> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineCallable(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &InlineModel<Fn>::ops;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &HeapModel<Fn>::ops;
    }
  }

  InlineCallable(InlineCallable&& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = std::exchange(other.ops_, nullptr);
    }
  }

  InlineCallable& operator=(InlineCallable&& other) noexcept {
    if (this == &other) return *this;
    reset();
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = std::exchange(other.ops_, nullptr);
    }
    return *this;
  }

  InlineCallable(const InlineCallable&) = delete;
  InlineCallable& operator=(const InlineCallable&) = delete;

  ~InlineCallable() { reset(); }

  // Precondition: *this holds a callable (operator bool is true).
  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  // True when the wrapped callable spilled to the heap (capture larger or
  // more aligned than the inline buffer). Exposed for the allocation tests.
  [[nodiscard]] bool heap_allocated() const {
    return ops_ != nullptr && ops_->heap;
  }

 private:
  struct Ops {
    void (*invoke)(void* target);
    // Move-constructs dst from src, then destroys src (noexcept: inline
    // storage is only used for nothrow-move-constructible captures).
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* target);
    bool heap;
  };

  template <typename Fn>
  static constexpr bool fits_inline =
      sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  [[nodiscard]] static Fn* as(void* p) {
    return std::launder(reinterpret_cast<Fn*>(p));
  }

  template <typename Fn>
  struct InlineModel {
    static void invoke(void* target) { (*as<Fn>(target))(); }
    static void relocate(void* src, void* dst) noexcept {
      Fn* from = as<Fn>(src);
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void destroy(void* target) { as<Fn>(target)->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, /*heap=*/false};
  };

  template <typename Fn>
  struct HeapModel {
    static void invoke(void* target) { (**as<Fn*>(target))(); }
    static void relocate(void* src, void* dst) noexcept {
      ::new (dst) Fn*(*as<Fn*>(src));
    }
    static void destroy(void* target) { delete *as<Fn*>(target); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, /*heap=*/true};
  };

  alignas(std::max_align_t) std::byte storage_[kInlineSize];
  const Ops* ops_{nullptr};
};

}  // namespace peerhood::sim
