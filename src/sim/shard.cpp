#include "sim/shard.hpp"

#include <algorithm>
#include <limits>

namespace peerhood::sim {

namespace {

// splitmix64 finalizer: derives shard seeds from (root seed, shard index)
// only — independent of the shard count, so a given shard's RNG stream is
// stable as the world is re-partitioned.
std::uint64_t mix_seed(std::uint64_t seed, std::uint32_t shard) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (shard + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr SimTime kNoEvent{SimDuration{std::numeric_limits<std::int64_t>::max()}};

}  // namespace

ShardedSimulator::ShardedSimulator(std::uint64_t seed, std::uint32_t shards,
                                   SimDuration lookahead)
    : lookahead_{lookahead} {
  assert(shards >= 1);
  assert(lookahead_.count() > 0);
  shards_.reserve(shards);
  for (std::uint32_t i = 0; i < shards; ++i) {
    // Shard 0 owns the root stream: a plain Simulator(seed) and shard 0 of
    // any ShardedSimulator(seed, K) draw identical values in identical call
    // order, which is what makes shards=1 vs shards=N scenario runs
    // bit-comparable.
    shards_.push_back(std::make_unique<ShardEngine>(
        i, i == 0 ? seed : mix_seed(seed, i)));
  }
  mailboxes_.resize(static_cast<std::size_t>(shards) * shards);
  for (auto& box : mailboxes_) box = std::make_unique<ShardMailbox>();
}

ShardedSimulator::~ShardedSimulator() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    quit_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ShardedSimulator::post(std::uint32_t src, std::uint32_t dst,
                            SimTime msg_at, InlineCallable action,
                            bool immediate) {
  assert(src < shards_.size() && dst < shards_.size());
  ShardMessage msg;
  msg.at = msg_at;
  msg.seq = shards_[src]->next_out_seq();
  msg.src = src;
  msg.immediate = immediate;
  msg.action = std::move(action);
  mailbox(src, dst).push(std::move(msg));
}

void ShardedSimulator::start_workers() {
  if (!workers_.empty() || shards_.size() == 1) return;
  workers_.reserve(shards_.size() - 1);
  for (std::uint32_t i = 1; i < shards_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

void ShardedSimulator::run_window_on(std::uint32_t shard_index) {
  Simulator& sim = shards_[shard_index]->sim();
  sim.run_before(window_horizon_);
  if (window_hook_) window_hook_(shard_index, window_horizon_);
}

void ShardedSimulator::worker_main(std::uint32_t shard_index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [&] { return quit_ || work_epoch_ != seen_epoch; });
      if (quit_) return;
      seen_epoch = work_epoch_;
    }
    run_window_on(shard_index);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--outstanding_ == 0) done_cv_.notify_one();
    }
  }
}

void ShardedSimulator::drain_mailboxes(SimTime horizon) {
  const std::uint32_t k = shard_count();
  for (std::uint32_t dst = 0; dst < k; ++dst) {
    merge_scratch_.clear();
    for (std::uint32_t src = 0; src < k; ++src) {
      ShardMessage msg;
      while (mailbox(src, dst).pop(msg)) {
        merge_scratch_.push_back(std::move(msg));
      }
    }
    if (merge_scratch_.empty()) continue;
    // Deterministic merge: messages apply in (time, source shard, source
    // sequence) order, independent of thread interleaving.
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const ShardMessage& a, const ShardMessage& b) {
                if (a.at != b.at) return a.at < b.at;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    Simulator& sim = shards_[dst]->sim();
    for (ShardMessage& msg : merge_scratch_) {
      ++stats_.messages;
      if (msg.immediate) {
        ++stats_.immediate;
        msg.action();
        continue;
      }
      if (msg.at < horizon) ++stats_.late_messages;
      // schedule_at clamps to the destination clock, so even a late message
      // (a lookahead violation) degrades to prompt delivery, never to a
      // backwards-scheduled event.
      (void)sim.schedule_at(msg.at, std::move(msg.action));
    }
  }
}

void ShardedSimulator::run_until(SimTime deadline) {
  if (shards_.size() == 1) {
    // The bit-for-bit single-threaded path: no windows, no threads, no
    // barriers — exactly the pre-sharding kernel.
    shards_[0]->sim().run_until(deadline);
    return;
  }
  start_workers();
  running_ = true;
  for (;;) {
    SimTime earliest = kNoEvent;
    for (const auto& shard : shards_) {
      if (!shard->sim().idle()) {
        earliest = std::min(earliest, shard->sim().next_event_time());
      }
    }
    if (earliest > deadline) break;
    // Conservative horizon: any message produced by an event at time s >=
    // earliest lands at s + lookahead >= horizon, i.e. strictly after
    // every event this window may run. The +1 µs makes the deadline itself
    // inclusive, matching Simulator::run_until. The horizon is clamped
    // monotone: an event scheduled onto a long-idle shard (whose clock
    // trails the fleet) must not drag the global time base backwards —
    // it simply runs inside the current window instead.
    window_horizon_ = std::max(
        window_horizon_,
        std::min(earliest + lookahead_, deadline + microseconds(1)));
    ++stats_.windows;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      outstanding_ = shard_count() - 1;
      ++work_epoch_;
    }
    work_cv_.notify_all();
    run_window_on(0);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [&] { return outstanding_ == 0; });
    }
    drain_mailboxes(window_horizon_);
  }
  // All shards are drained through the deadline; align their clocks on it
  // (firing each shard's time observers once, as run_until would).
  for (const auto& shard : shards_) {
    shard->sim().advance_clock_to(deadline);
  }
  running_ = false;
}

}  // namespace peerhood::sim
