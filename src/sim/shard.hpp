// Sharded parallel simulation core (conservative PDES).
//
// A ShardedSimulator owns K ShardEngines — each a full Simulator kernel
// (pooled EventQueue, virtual clock, forked RNG stream) — and runs them on a
// thread pool under conservative time-window synchronization:
//
//   window:  every shard drains its events strictly before a shared horizon
//            h = min(earliest pending event across shards + lookahead,
//                    deadline), in parallel, touching only shard-local state.
//   barrier: the coordinator drains the inter-shard mailboxes and applies
//            their messages in a deterministic merge order.
//
// The lookahead is the minimum cross-shard interaction latency — for the
// radio medium, the minimum per-hop frame latency (~30 ms by default): an
// event at time s can only affect another shard at s + lookahead or later,
// so nothing sent during a window can land inside it. Messages are
// time-stamped and travel in lock-free per-(src,dst) SPSC mailboxes; the
// merge sorts by (time, source shard, source sequence), so any (seed, shard
// count) pair replays bit-identically regardless of thread scheduling.
//
// Two contracts the rest of the system leans on:
//
//  * shards=1 collapses to the plain single-threaded code path: run_until is
//    forwarded verbatim to the lone Simulator — no windows, no threads, no
//    barriers — byte-identical to the pre-sharding kernel.
//  * Windows never manufacture clock advances: Simulator::run_before leaves
//    each shard's clock at its last fired event, so time observers (position
//    caches, quality observers) fire at exactly the same instants as in a
//    single-threaded run. A workload confined to one shard therefore
//    executes identically under any shard count.
//
// Shard 0 is the control shard: it is seeded with the root seed (its RNG
// stream is the same stream a plain Simulator(seed) would own), and the
// full PeerHood protocol stack runs there. Shards 1..K-1 are seeded with
// streams derived from (seed, shard index) — independent of K.
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/sim_time.hpp"
#include "sim/inline_callable.hpp"
#include "sim/simulator.hpp"

namespace peerhood::sim {

// A time-stamped cross-shard message. `immediate` messages run at the
// barrier itself (ownership transfers, state broadcasts); scheduled messages
// become events on the destination shard at `at`.
struct ShardMessage {
  SimTime at{};
  std::uint64_t seq{0};   // producer-side sequence (merge tie-break)
  std::uint32_t src{0};
  bool immediate{false};
  InlineCallable action;
};

// Unbounded lock-free SPSC queue (single producer: the source shard's worker
// during a window; single consumer: the coordinator after the barrier). The
// classic two-stub linked design: the producer publishes via a release store
// on the tail node's `next`, the consumer acquires it — no locks, no CAS.
class ShardMailbox {
 public:
  ShardMailbox() : head_{new Node}, tail_{head_} {}
  ~ShardMailbox() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }
  ShardMailbox(const ShardMailbox&) = delete;
  ShardMailbox& operator=(const ShardMailbox&) = delete;

  void push(ShardMessage msg) {
    Node* n = new Node;
    n->msg = std::move(msg);
    tail_->next.store(n, std::memory_order_release);
    tail_ = n;
  }

  // Pops the oldest message into `out`; false when empty.
  bool pop(ShardMessage& out) {
    Node* next = head_->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    out = std::move(next->msg);
    delete head_;
    head_ = next;
    return true;
  }

 private:
  struct Node {
    ShardMessage msg;
    std::atomic<Node*> next{nullptr};
  };
  Node* head_;  // consumer-owned stub
  Node* tail_;  // producer-owned
};

// One shard: a full Simulator kernel plus its outbound message sequencing.
// The per-shard SpatialGrid and position cache live in the shard's
// RadioMedium replica (see sim/sharded_medium.hpp), which registers itself
// against this engine's simulator.
class ShardEngine {
 public:
  ShardEngine(std::uint32_t id, std::uint64_t seed) : id_{id}, sim_{seed} {}

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] const Simulator& sim() const { return sim_; }
  [[nodiscard]] std::uint64_t next_out_seq() { return out_seq_++; }

 private:
  std::uint32_t id_;
  Simulator sim_;
  std::uint64_t out_seq_{1};
};

struct ShardedSimulatorStats {
  std::uint64_t windows{0};          // synchronization cycles run
  std::uint64_t messages{0};         // cross-shard messages delivered
  std::uint64_t immediate{0};        // of which barrier-immediate
  std::uint64_t late_messages{0};    // scheduled below the safe horizon
};

class ShardedSimulator {
 public:
  // `lookahead` is the conservative window length: the minimum latency of
  // any cross-shard interaction. The radio medium's minimum per-hop frame
  // latency is the binding constraint; ShardedMedium tightens it on
  // configure(). Must be > 0 for multi-shard runs.
  explicit ShardedSimulator(std::uint64_t seed, std::uint32_t shards = 1,
                            SimDuration lookahead = milliseconds(30));
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] Simulator& shard(std::uint32_t i) { return shards_[i]->sim(); }
  [[nodiscard]] ShardEngine& engine(std::uint32_t i) { return *shards_[i]; }
  // The control shard's simulator — where the protocol stack runs. With
  // shards=1 this is *the* simulator.
  [[nodiscard]] Simulator& control() { return shards_[0]->sim(); }

  [[nodiscard]] SimDuration lookahead() const { return lookahead_; }
  // Only legal while stopped (between run_until calls).
  void set_lookahead(SimDuration lookahead) {
    assert(!running_ && lookahead.count() > 0);
    lookahead_ = lookahead;
  }

  // Posts a message from shard `src` to shard `dst`. Legal from `src`'s
  // worker during a window, or from the coordinator between windows.
  // Scheduled messages (immediate=false) become events at `msg_at` on the
  // destination; the conservative contract requires msg_at to be at or
  // beyond the current window horizon (violations are clamped to the
  // destination clock and counted in stats().late_messages).
  void post(std::uint32_t src, std::uint32_t dst, SimTime msg_at,
            InlineCallable action, bool immediate = false);

  // Runs every shard to `deadline` (inclusive, matching Simulator::run_until)
  // and leaves every shard clock at `deadline`. With one shard this forwards
  // directly to Simulator::run_until.
  void run_until(SimTime deadline);
  void run_for(SimDuration duration) {
    run_until(control().now() + duration);
  }

  // Hook run per shard, on that shard's worker, after the shard drains each
  // window and before the barrier — the migration-scan point. Receives the
  // shard id and the window horizon; horizons are non-decreasing across
  // windows (see run_until).
  using WindowHook = std::function<void(std::uint32_t, SimTime)>;
  void set_window_hook(WindowHook hook) {
    assert(!running_);
    window_hook_ = std::move(hook);
  }

  [[nodiscard]] const ShardedSimulatorStats& stats() const { return stats_; }
  [[nodiscard]] bool running() const { return running_; }

 private:
  [[nodiscard]] ShardMailbox& mailbox(std::uint32_t src, std::uint32_t dst) {
    return *mailboxes_[src * shards_.size() + dst];
  }
  void run_window_on(std::uint32_t shard_index);
  void start_workers();
  void drain_mailboxes(SimTime horizon);
  void worker_main(std::uint32_t shard_index);

  std::vector<std::unique_ptr<ShardEngine>> shards_;
  std::vector<std::unique_ptr<ShardMailbox>> mailboxes_;  // K×K, src-major
  SimDuration lookahead_;
  WindowHook window_hook_;
  ShardedSimulatorStats stats_;
  bool running_{false};

  // Worker-pool handshake. Workers cover shards 1..K-1; the coordinator
  // (the thread calling run_until) runs shard 0's window inline.
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t work_epoch_{0};
  std::uint32_t outstanding_{0};
  SimTime window_horizon_{};
  bool quit_{false};

  // Merge scratch (coordinator-only), reused across windows.
  std::vector<ShardMessage> merge_scratch_;
};

}  // namespace peerhood::sim
