#include "sim/mobility.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace peerhood::sim {
namespace {

// History watermarks shared by the segment-generating models: once a walk
// holds more than kMaxSegments, everything wholly before the queried time is
// pruned down to kKeepBehind trailing segments (a little slack for small
// backwards probes, e.g. finite-difference velocity checks in tests).
constexpr std::size_t kMaxSegments = 64;
constexpr std::size_t kKeepBehind = 8;

constexpr double kMicrosPerSecond = 1e6;

double to_seconds(SimDuration d) {
  return static_cast<double>(d.count()) / kMicrosPerSecond;
}

Vec2 clamp_into(Vec2 p, Vec2 lo, Vec2 hi) {
  return {std::clamp(p.x, lo.x, hi.x), std::clamp(p.y, lo.y, hi.y)};
}

// Drops fully-past history once it crosses the watermark. `t` is the newest
// query; only segments that end strictly before it are candidates.
template <typename Segments, typename EndsBefore>
void prune_history(Segments& segments, SimTime t, EndsBefore ends_before) {
  if (segments.size() <= kMaxSegments) return;
  std::size_t cut = 0;
  while (cut + kKeepBehind < segments.size() &&
         ends_before(segments[cut], t)) {
    ++cut;
  }
  if (cut > kKeepBehind) cut -= kKeepBehind;
  else cut = 0;
  if (cut > 0) segments.erase(segments.begin(), segments.begin() + cut);
}

}  // namespace

Vec2 MobilityModel::velocity_at(SimTime t) const {
  // Symmetric finite difference, degrading to forward difference at t = 0.
  constexpr SimDuration h = std::chrono::milliseconds{25};
  const SimTime hi = t + h;
  const SimTime lo = t.since_epoch >= h ? SimTime{t.since_epoch - h}
                                        : SimTime::zero();
  const double dt = to_seconds(hi - lo);
  if (dt <= 0.0) return {};
  return (position_at(hi) - position_at(lo)) * (1.0 / dt);
}

WaypointPath::WaypointPath(std::vector<Waypoint> waypoints)
    : waypoints_{std::move(waypoints)} {
  assert(!waypoints_.empty());
  assert(std::is_sorted(
      waypoints_.begin(), waypoints_.end(),
      [](const Waypoint& a, const Waypoint& b) { return a.at < b.at; }));
}

Vec2 WaypointPath::position_at(SimTime t) const {
  if (t <= waypoints_.front().at) return waypoints_.front().position;
  if (t >= waypoints_.back().at) return waypoints_.back().position;
  // Find the segment [prev, next] containing t.
  const auto next = std::upper_bound(
      waypoints_.begin(), waypoints_.end(), t,
      [](SimTime value, const Waypoint& w) { return value < w.at; });
  const auto prev = next - 1;
  const double span = (next->at - prev->at).count() * 1e-6;
  if (span <= 0.0) return next->position;
  const double alpha = (t - prev->at).count() * 1e-6 / span;
  return prev->position + (next->position - prev->position) * alpha;
}

Vec2 WaypointPath::velocity_at(SimTime t) const {
  // Holding before the first and after the last waypoint: standing still.
  if (t < waypoints_.front().at || t >= waypoints_.back().at) return {};
  const auto next = std::upper_bound(
      waypoints_.begin(), waypoints_.end(), t,
      [](SimTime value, const Waypoint& w) { return value < w.at; });
  const auto prev = next - 1;
  const double span = to_seconds(next->at - prev->at);
  if (span <= 0.0) return {};
  return (next->position - prev->position) * (1.0 / span);
}

RandomWaypoint::RandomWaypoint(Config config, Vec2 start, Rng rng)
    : config_{config}, start_{start}, initial_rng_{rng}, rng_{rng} {
  segments_.push_back(
      Segment{SimTime::zero(), SimTime::zero() + config_.pause, start, start});
}

void RandomWaypoint::rewind() const {
  rng_ = initial_rng_;
  segments_.clear();
  segments_.push_back(Segment{SimTime::zero(), SimTime::zero() + config_.pause,
                              start_, start_});
}

void RandomWaypoint::extend_until(SimTime t) const {
  while (segments_.back().arrive < t) {
    const Segment& last = segments_.back();
    const Vec2 target{rng_.uniform(config_.area_min.x, config_.area_max.x),
                      rng_.uniform(config_.area_min.y, config_.area_max.y)};
    const double speed =
        rng_.uniform(config_.speed_min_mps, config_.speed_max_mps);
    const double dist = distance(last.to, target);
    const SimTime depart = last.arrive;
    const SimTime arrive =
        depart + seconds(speed > 0.0 ? dist / speed : 0.0) + config_.pause;
    segments_.push_back(Segment{depart, arrive, last.to, target});
  }
}

const RandomWaypoint::Segment& RandomWaypoint::segment_for(SimTime t) const {
  // A query behind the pruned base deterministically replays the whole walk
  // from the initial RNG state — exactness over speed for the rare backwards
  // jump; forward queries stay O(1) amortised with bounded history.
  if (t < segments_.front().depart) rewind();
  extend_until(t);
  prune_history(segments_, t,
                [](const Segment& s, SimTime at) { return s.arrive < at; });
  const auto next = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](SimTime value, const Segment& s) { return value < s.depart; });
  assert(next != segments_.begin());
  return *(next - 1);
}

Vec2 RandomWaypoint::position_at(SimTime t) const {
  const Segment& seg = segment_for(t);
  const double travel = to_seconds(seg.arrive - seg.depart) -
                        to_seconds(config_.pause);
  if (travel <= 0.0) return seg.to;
  const double elapsed = to_seconds(t - seg.depart);
  const double alpha = std::clamp(elapsed / travel, 0.0, 1.0);
  return seg.from + (seg.to - seg.from) * alpha;
}

Vec2 RandomWaypoint::velocity_at(SimTime t) const {
  const Segment& seg = segment_for(t);
  const double travel = to_seconds(seg.arrive - seg.depart) -
                        to_seconds(config_.pause);
  const double elapsed = to_seconds(t - seg.depart);
  // Paused at the target (or a zero-length hop): standing still.
  if (travel <= 0.0 || elapsed >= travel) return {};
  return (seg.to - seg.from) * (1.0 / travel);
}

GaussMarkov::GaussMarkov(Config config, Vec2 start, Rng rng)
    : config_{config}, start_{start}, initial_rng_{rng}, rng_{rng} {
  seed_segments();
}

void GaussMarkov::rewind() const {
  rng_ = initial_rng_;
  seed_segments();
}

void GaussMarkov::seed_segments() const {
  state_.speed = std::max(0.0, config_.mean_speed_mps);
  state_.direction = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  segments_.clear();
  segments_.push_back(make_segment(
      SimTime::zero(),
      clamp_into(start_, config_.area_min, config_.area_max)));
}

GaussMarkov::Segment GaussMarkov::make_segment(SimTime depart,
                                               Vec2 from) const {
  const double dt = std::max(1e-6, to_seconds(config_.update_interval));
  // Steer the mean heading back toward the centre when hugging an edge.
  double mean_dir = state_.direction;
  const Vec2 centre = (config_.area_min + config_.area_max) * 0.5;
  const bool near_edge =
      from.x < config_.area_min.x + config_.edge_margin_m ||
      from.x > config_.area_max.x - config_.edge_margin_m ||
      from.y < config_.area_min.y + config_.edge_margin_m ||
      from.y > config_.area_max.y - config_.edge_margin_m;
  if (near_edge) mean_dir = std::atan2(centre.y - from.y, centre.x - from.x);

  const double a = std::clamp(config_.alpha, 0.0, 1.0);
  const double memoryless = std::sqrt(std::max(0.0, 1.0 - a * a));
  state_.speed = std::max(
      0.0, a * state_.speed + (1.0 - a) * config_.mean_speed_mps +
               memoryless * rng_.gaussian(0.0, config_.speed_sigma));
  // Blend toward the mean heading along the short way around the circle:
  // the random walk drifts the unwrapped direction arbitrarily far, and a
  // naive (1-a)·(mean - dir) step would then spin instead of steer.
  const double turn = std::remainder(mean_dir - state_.direction,
                                     2.0 * std::numbers::pi);
  state_.direction += (1.0 - a) * turn +
                      memoryless * rng_.gaussian(0.0, config_.direction_sigma);

  const Vec2 velocity{state_.speed * std::cos(state_.direction),
                      state_.speed * std::sin(state_.direction)};
  Segment seg;
  seg.depart = depart;
  seg.from = from;
  seg.to = clamp_into(from + velocity * dt, config_.area_min, config_.area_max);
  return seg;
}

void GaussMarkov::extend_until(SimTime t) const {
  while (segments_.back().depart + config_.update_interval < t) {
    const Segment& last = segments_.back();
    segments_.push_back(
        make_segment(last.depart + config_.update_interval, last.to));
  }
}

Vec2 GaussMarkov::position_at(SimTime t) const {
  if (t < segments_.front().depart) rewind();
  extend_until(t);
  prune_history(segments_, t, [this](const Segment& s, SimTime at) {
    return s.depart + config_.update_interval < at;
  });
  const auto next = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](SimTime value, const Segment& s) { return value < s.depart; });
  assert(next != segments_.begin());
  const Segment& seg = *(next - 1);
  const double dt = to_seconds(config_.update_interval);
  if (dt <= 0.0) return seg.from;
  const double alpha =
      std::clamp(to_seconds(t - seg.depart) / dt, 0.0, 1.0);
  return seg.from + (seg.to - seg.from) * alpha;
}

Vec2 GaussMarkov::velocity_at(SimTime t) const {
  if (t < segments_.front().depart) rewind();
  extend_until(t);
  const auto next = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](SimTime value, const Segment& s) { return value < s.depart; });
  assert(next != segments_.begin());
  const Segment& seg = *(next - 1);
  const double dt = to_seconds(config_.update_interval);
  if (dt <= 0.0) return {};
  return (seg.to - seg.from) * (1.0 / dt);
}

GroupMember::GroupMember(std::shared_ptr<const MobilityModel> reference,
                         Vec2 offset, Config config, Rng rng)
    : reference_{std::move(reference)},
      offset_{offset},
      config_{config},
      initial_rng_{rng},
      rng_{rng} {
  assert(reference_ != nullptr);
}

void GroupMember::rewind() const {
  rng_ = initial_rng_;
  segments_.clear();
}

void GroupMember::extend_until(SimTime t) const {
  auto draw_target = [this]() -> Vec2 {
    const double angle = rng_.uniform(0.0, 2.0 * std::numbers::pi);
    // sqrt for a uniform density over the disk, not clustered at the centre.
    const double radius =
        config_.deviation_radius_m * std::sqrt(rng_.next_double());
    return {radius * std::cos(angle), radius * std::sin(angle)};
  };
  if (segments_.empty()) {
    segments_.push_back(Segment{SimTime::zero(), {}, draw_target()});
  }
  while (segments_.back().depart + config_.update_interval < t) {
    const Segment& last = segments_.back();
    segments_.push_back(Segment{last.depart + config_.update_interval,
                                last.to, draw_target()});
  }
}

Vec2 GroupMember::deviation_at(SimTime t) const {
  if (config_.deviation_radius_m <= 0.0) return {};
  if (!segments_.empty() && t < segments_.front().depart) rewind();
  extend_until(t);
  prune_history(segments_, t, [this](const Segment& s, SimTime at) {
    return s.depart + config_.update_interval < at;
  });
  const auto next = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](SimTime value, const Segment& s) { return value < s.depart; });
  assert(next != segments_.begin());
  const Segment& seg = *(next - 1);
  const double dt = to_seconds(config_.update_interval);
  if (dt <= 0.0) return seg.from;
  const double alpha =
      std::clamp(to_seconds(t - seg.depart) / dt, 0.0, 1.0);
  return seg.from + (seg.to - seg.from) * alpha;
}

Vec2 GroupMember::deviation_slope_at(SimTime t) const {
  if (config_.deviation_radius_m <= 0.0) return {};
  if (!segments_.empty() && t < segments_.front().depart) rewind();
  extend_until(t);
  const auto next = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](SimTime value, const Segment& s) { return value < s.depart; });
  assert(next != segments_.begin());
  const Segment& seg = *(next - 1);
  const double dt = to_seconds(config_.update_interval);
  if (dt <= 0.0) return {};
  return (seg.to - seg.from) * (1.0 / dt);
}

Vec2 GroupMember::position_at(SimTime t) const {
  return reference_->position_at(t) + offset_ + deviation_at(t);
}

Vec2 GroupMember::velocity_at(SimTime t) const {
  return reference_->velocity_at(t) + deviation_slope_at(t);
}

}  // namespace peerhood::sim
