#include "sim/mobility.hpp"

#include <algorithm>
#include <cassert>

namespace peerhood::sim {

WaypointPath::WaypointPath(std::vector<Waypoint> waypoints)
    : waypoints_{std::move(waypoints)} {
  assert(!waypoints_.empty());
  assert(std::is_sorted(
      waypoints_.begin(), waypoints_.end(),
      [](const Waypoint& a, const Waypoint& b) { return a.at < b.at; }));
}

Vec2 WaypointPath::position_at(SimTime t) const {
  if (t <= waypoints_.front().at) return waypoints_.front().position;
  if (t >= waypoints_.back().at) return waypoints_.back().position;
  // Find the segment [prev, next] containing t.
  const auto next = std::upper_bound(
      waypoints_.begin(), waypoints_.end(), t,
      [](SimTime value, const Waypoint& w) { return value < w.at; });
  const auto prev = next - 1;
  const double span = (next->at - prev->at).count() * 1e-6;
  if (span <= 0.0) return next->position;
  const double alpha = (t - prev->at).count() * 1e-6 / span;
  return prev->position + (next->position - prev->position) * alpha;
}

RandomWaypoint::RandomWaypoint(Config config, Vec2 start, Rng rng)
    : config_{config}, rng_{rng} {
  segments_.push_back(
      Segment{SimTime::zero(), SimTime::zero() + config_.pause, start, start});
}

void RandomWaypoint::extend_until(SimTime t) const {
  while (segments_.back().arrive < t) {
    const Segment& last = segments_.back();
    const Vec2 target{rng_.uniform(config_.area_min.x, config_.area_max.x),
                      rng_.uniform(config_.area_min.y, config_.area_max.y)};
    const double speed =
        rng_.uniform(config_.speed_min_mps, config_.speed_max_mps);
    const double dist = distance(last.to, target);
    const SimTime depart = last.arrive;
    const SimTime arrive =
        depart + seconds(speed > 0.0 ? dist / speed : 0.0) + config_.pause;
    segments_.push_back(Segment{depart, arrive, last.to, target});
  }
}

Vec2 RandomWaypoint::position_at(SimTime t) const {
  extend_until(t);
  // Walk backwards: recent queries dominate.
  auto it = std::find_if(segments_.rbegin(), segments_.rend(),
                         [t](const Segment& s) { return s.depart <= t; });
  assert(it != segments_.rend());
  const Segment& seg = *it;
  const double travel =
      (seg.arrive - seg.depart).count() * 1e-6 -
      std::chrono::duration<double>(config_.pause).count();
  if (travel <= 0.0) return seg.to;
  const double elapsed = (t - seg.depart).count() * 1e-6;
  const double alpha = std::clamp(elapsed / travel, 0.0, 1.0);
  return seg.from + (seg.to - seg.from) * alpha;
}

}  // namespace peerhood::sim
