#include "sim/sharded_medium.hpp"

#include <algorithm>
#include <cassert>

namespace peerhood::sim {

ShardedMedium::ShardedMedium(ShardedSimulator& core, Config config,
                             LinkQualityModel quality_model)
    : core_{core},
      config_{config},
      owned_mobiles_(core.shard_count()),
      counters_(core.shard_count()) {
  assert(config_.world_max_x > config_.world_min_x);
  const std::uint32_t k = core_.shard_count();
  replicas_.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    // Replica 0 is built first, on the control simulator: it forks its
    // noise stream from the root RNG at exactly the point a single-shard
    // setup would, keeping shards=1 runs bit-identical to a plain
    // Simulator + RadioMedium pair.
    replicas_.push_back(
        std::make_unique<RadioMedium>(core_.shard(i), quality_model));
    const std::uint32_t shard = i;
    replicas_.back()->set_remote_router(
        [this, shard](MacAddress from, MacAddress to, Technology tech,
                      SimTime deliver_at, const RadioMedium::FramePtr& frame) {
          const std::uint32_t owner = owner_of(to);
          if (owner == shard) return false;  // local after all
          ++counters_[shard].remote_frames;
          RadioMedium* target = replicas_[owner].get();
          core_.post(shard, owner, deliver_at,
                     [target, from, to, tech, frame] {
                       target->deliver_frame(from, to, tech, frame);
                     });
          return true;
        });
  }
  core_.set_lookahead(replicas_[0]->min_per_hop_latency());
  core_.set_window_hook([this](std::uint32_t shard, SimTime horizon) {
    migration_scan(shard, horizon);
  });
}

ShardedMedium::~ShardedMedium() {
  // The replicas' routers and the core's window hook capture `this`; drop
  // them before members go away in case the core outlives us.
  core_.set_window_hook(nullptr);
  for (auto& replica : replicas_) replica->set_remote_router(nullptr);
}

void ShardedMedium::configure(const TechnologyParams& params) {
  for (auto& replica : replicas_) replica->configure(params);
  // The binding conservative lookahead: no frame crosses shards in less
  // simulated time than the fastest technology's per-hop latency.
  core_.set_lookahead(replicas_[0]->min_per_hop_latency());
}

std::uint32_t ShardedMedium::stripe_of(double x) const {
  const double span = config_.world_max_x - config_.world_min_x;
  const double rel = (x - config_.world_min_x) / span;
  const auto k = static_cast<std::int64_t>(core_.shard_count());
  const auto raw = static_cast<std::int64_t>(rel * static_cast<double>(k));
  return static_cast<std::uint32_t>(std::clamp<std::int64_t>(raw, 0, k - 1));
}

std::uint32_t ShardedMedium::owner_of(MacAddress mac) const {
  const auto it = owners_.find(mac.as_u64());
  assert(it != owners_.end());
  return it->second.owner;
}

void ShardedMedium::register_endpoint(
    MacAddress mac, Technology tech,
    std::shared_ptr<const MobilityModel> mobility,
    RadioMedium::FrameHandler handler) {
  assert(!core_.running());
  auto [it, inserted] = owners_.try_emplace(mac.as_u64());
  Owned& rec = it->second;
  if (inserted) {
    rec.mobility = mobility;
    rec.is_static = mobility->is_static();
    rec.owner =
        stripe_of(mobility->position_at(core_.control().now()).x);
    if (!rec.is_static) owned_mobiles_[rec.owner].push_back(mac);
  }
  ++rec.tech_registrations;

  // The real handler is pinned in a shared_ptr so every replica's delivery
  // stub can reference one copy; only the owning replica ever invokes it.
  auto pinned = std::make_shared<const RadioMedium::FrameHandler>(
      std::move(handler));
  for (std::uint32_t shard = 0; shard < core_.shard_count(); ++shard) {
    replicas_[shard]->register_endpoint(
        mac, tech, clone_or_share(mobility),
        [this, shard, mac, tech, pinned](MacAddress from,
                                         const Bytes& frame) {
          const std::uint32_t owner = owner_of(mac);
          if (owner == shard) {
            if (*pinned) (*pinned)(from, frame);
            return;
          }
          // The endpoint migrated while this frame was in flight: forward
          // to the new owner's replica. Bounded-late by one window (the
          // core clamps the timestamp to the destination clock), counted,
          // exactly-once — the stub on the new owner delivers for real.
          ++counters_[shard].forwarded_frames;
          RadioMedium* target = replicas_[owner].get();
          auto copy = std::make_shared<const Bytes>(frame);
          core_.post(shard, owner, core_.shard(shard).now(),
                     [target, from, mac, tech, copy] {
                       target->deliver_frame(from, mac, tech, copy);
                     });
        });
  }
}

void ShardedMedium::unregister_endpoint(MacAddress mac, Technology tech) {
  assert(!core_.running());
  for (auto& replica : replicas_) replica->unregister_endpoint(mac, tech);
  const auto it = owners_.find(mac.as_u64());
  if (it == owners_.end()) return;
  if (--it->second.tech_registrations == 0) {
    auto& owned = owned_mobiles_[it->second.owner];
    owned.erase(std::remove(owned.begin(), owned.end(), mac), owned.end());
    owners_.erase(it);
  }
}

void ShardedMedium::set_discoverable(MacAddress mac, Technology tech,
                                     bool discoverable) {
  for (auto& replica : replicas_) {
    replica->set_discoverable(mac, tech, discoverable);
  }
}

void ShardedMedium::set_inquiring(MacAddress mac, Technology tech,
                                  bool inquiring) {
  for (auto& replica : replicas_) replica->set_inquiring(mac, tech, inquiring);
}

void ShardedMedium::migration_scan(std::uint32_t shard, SimTime horizon) {
  const double span = config_.world_max_x - config_.world_min_x;
  const double stripe_w = span / core_.shard_count();
  for (MacAddress mac : owned_mobiles_[shard]) {
    const Owned& rec = owners_.find(mac.as_u64())->second;
    const double x = rec.mobility->position_at(horizon).x;
    // Hysteresis: stay put until the endpoint is margin_m past its own
    // stripe — a walk hugging the boundary doesn't thrash ownership.
    const double lo =
        config_.world_min_x + stripe_w * shard - config_.margin_m;
    const double hi =
        config_.world_min_x + stripe_w * (shard + 1) + config_.margin_m;
    if (x >= lo && x <= hi) continue;
    const std::uint32_t target = stripe_of(x);
    if (target == shard) continue;
    core_.post(
        shard, target, horizon,
        [this, mac, shard, target, horizon] {
          apply_migration(mac, shard, target, horizon);
        },
        /*immediate=*/true);
  }
}

void ShardedMedium::apply_migration(MacAddress mac, std::uint32_t from_shard,
                                    std::uint32_t to_shard, SimTime at) {
  const auto it = owners_.find(mac.as_u64());
  if (it == owners_.end() || it->second.owner != from_shard) return;
  it->second.owner = to_shard;
  auto& old_list = owned_mobiles_[from_shard];
  old_list.erase(std::remove(old_list.begin(), old_list.end(), mac),
                 old_list.end());
  owned_mobiles_[to_shard].push_back(mac);
  // The in-order guarantee spans the migration: the endpoint's outbound
  // last-delivery times follow it, so its future sends (from the new
  // owner's replica) keep bumping past frames it already has in flight.
  replicas_[to_shard]->import_last_delivery(
      replicas_[from_shard]->export_last_delivery(mac));
  ++migrations_;
  if (migration_handler_) migration_handler_(mac, from_shard, to_shard, at);
}

TrafficStats ShardedMedium::merged_stats() const {
  TrafficStats total;
  for (const auto& replica : replicas_) total += replica->stats();
  return total;
}

QualityStats ShardedMedium::merged_quality_stats() const {
  QualityStats total;
  for (const auto& replica : replicas_) total += replica->quality_stats();
  return total;
}

ShardedMediumStats ShardedMedium::stats() const {
  ShardedMediumStats total;
  total.migrations = migrations_;
  for (const ShardCounters& c : counters_) {
    total.remote_frames += c.remote_frames;
    total.forwarded_frames += c.forwarded_frames;
  }
  return total;
}

}  // namespace peerhood::sim
