#include "sim/medium.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace peerhood::sim {

RadioMedium::RadioMedium(Simulator& sim, LinkQualityModel quality_model)
    : sim_{sim}, quality_model_{quality_model}, noise_rng_{sim.fork_rng()} {
  for (const Technology tech : {Technology::kBluetooth, Technology::kWlan,
                                Technology::kGprs}) {
    configure(default_params(tech));
  }
}

void RadioMedium::configure(const TechnologyParams& params) {
  params_[static_cast<std::uint8_t>(params.tech)] = params;
}

const TechnologyParams& RadioMedium::params(Technology tech) const {
  const auto it = params_.find(static_cast<std::uint8_t>(tech));
  assert(it != params_.end());
  return it->second;
}

void RadioMedium::register_endpoint(
    MacAddress mac, Technology tech,
    std::shared_ptr<const MobilityModel> mobility, FrameHandler handler) {
  assert(mobility != nullptr);
  Endpoint endpoint;
  endpoint.mac = mac;
  endpoint.tech = tech;
  endpoint.mobility = std::move(mobility);
  endpoint.handler = std::move(handler);
  endpoints_.insert_or_assign(key(mac, tech), std::move(endpoint));
}

void RadioMedium::unregister_endpoint(MacAddress mac, Technology tech) {
  endpoints_.erase(key(mac, tech));
}

bool RadioMedium::has_endpoint(MacAddress mac, Technology tech) const {
  return endpoints_.contains(key(mac, tech));
}

const RadioMedium::Endpoint* RadioMedium::find(MacAddress mac,
                                               Technology tech) const {
  const auto it = endpoints_.find(key(mac, tech));
  return it == endpoints_.end() ? nullptr : &it->second;
}

RadioMedium::Endpoint* RadioMedium::find(MacAddress mac, Technology tech) {
  const auto it = endpoints_.find(key(mac, tech));
  return it == endpoints_.end() ? nullptr : &it->second;
}

void RadioMedium::set_discoverable(MacAddress mac, Technology tech,
                                   bool discoverable) {
  if (Endpoint* e = find(mac, tech)) e->discoverable = discoverable;
}

void RadioMedium::set_inquiring(MacAddress mac, Technology tech,
                                bool inquiring) {
  if (Endpoint* e = find(mac, tech)) e->inquiring = inquiring;
}

void RadioMedium::set_peerhood_tag(MacAddress mac, Technology tech,
                                   bool tagged) {
  if (Endpoint* e = find(mac, tech)) e->peerhood_tag = tagged;
}

bool RadioMedium::peerhood_tag(MacAddress mac, Technology tech) const {
  const Endpoint* e = find(mac, tech);
  return e != nullptr && e->peerhood_tag;
}

std::optional<Vec2> RadioMedium::position_of(MacAddress mac,
                                             Technology tech) const {
  const Endpoint* e = find(mac, tech);
  if (e == nullptr) return std::nullopt;
  return e->mobility->position_at(sim_.now());
}

double RadioMedium::distance(MacAddress a, MacAddress b,
                             Technology tech) const {
  const auto pa = position_of(a, tech);
  const auto pb = position_of(b, tech);
  if (!pa || !pb) return std::numeric_limits<double>::infinity();
  return sim::distance(*pa, *pb);
}

bool RadioMedium::in_range(MacAddress a, MacAddress b, Technology tech) const {
  return distance(a, b, tech) <= params(tech).range_m;
}

int RadioMedium::sample_quality(MacAddress a, MacAddress b, Technology tech) {
  const double d = distance(a, b, tech);
  return quality_model_.quality(d, params(tech).range_m, &noise_rng_);
}

int RadioMedium::expected_quality(MacAddress a, MacAddress b,
                                  Technology tech) const {
  const double d = distance(a, b, tech);
  return quality_model_.quality(d, params(tech).range_m, nullptr);
}

std::vector<MacAddress> RadioMedium::in_range_of(MacAddress mac,
                                                 Technology tech) const {
  std::vector<MacAddress> out;
  const auto origin = position_of(mac, tech);
  if (!origin) return out;
  const double range = params(tech).range_m;
  for (const auto& [k, endpoint] : endpoints_) {
    if (endpoint.tech != tech || endpoint.mac == mac) continue;
    const Vec2 pos = endpoint.mobility->position_at(sim_.now());
    if (sim::distance(*origin, pos) <= range) out.push_back(endpoint.mac);
  }
  return out;
}

std::vector<MacAddress> RadioMedium::discoverable_in_range(
    MacAddress mac, Technology tech) const {
  const bool asymmetric = params(tech).asymmetric_discovery;
  std::vector<MacAddress> out;
  for (const MacAddress peer : in_range_of(mac, tech)) {
    const Endpoint* e = find(peer, tech);
    if (e == nullptr || !e->discoverable) continue;
    // Bluetooth asymmetry: a device busy inquiring does not answer inquiries.
    if (asymmetric && e->inquiring) continue;
    out.push_back(peer);
  }
  return out;
}

void RadioMedium::send_frame(MacAddress from, MacAddress to, Technology tech,
                             Bytes frame) {
  ++stats_.frames;
  stats_.frame_bytes += frame.size();
  const TechnologyParams& p = params(tech);
  if (!in_range(from, to, tech)) {
    ++stats_.drops;
    return;
  }
  const SimDuration tx_time =
      seconds(static_cast<double>(frame.size()) / p.bytes_per_second);
  SimTime deliver_at = sim_.now() + p.per_hop_latency + tx_time;

  const auto dir_key = std::tuple{from.as_u64(), to.as_u64(),
                                  static_cast<std::uint8_t>(tech)};
  auto& last = last_delivery_[dir_key];
  if (deliver_at <= last) deliver_at = last + microseconds(1);
  last = deliver_at;

  sim_.schedule_at(
      deliver_at, [this, from, to, tech, frame = std::move(frame)]() {
        const Endpoint* e = find(to, tech);
        if (e == nullptr || !in_range(from, to, tech)) {
          ++stats_.drops;
          return;
        }
        if (e->handler) e->handler(from, frame);
      });
}

}  // namespace peerhood::sim
