#include "sim/medium.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace peerhood::sim {

RadioMedium::RadioMedium(Simulator& sim, LinkQualityModel quality_model)
    : sim_{sim}, quality_model_{quality_model}, noise_rng_{sim.fork_rng()} {
  for (const Technology tech : {Technology::kBluetooth, Technology::kWlan,
                                Technology::kGprs}) {
    configure(default_params(tech));
  }
  time_observer_ = sim_.add_time_observer([this] {
    ++position_gen_;
    // Push path of the quality plane: observers attached to endpoints that
    // can have moved are re-checked here, once per distinct SimTime.
    evaluate_quality_observers();
  });
}

RadioMedium::~RadioMedium() { sim_.remove_time_observer(time_observer_); }

std::size_t RadioMedium::tech_index(Technology tech) {
  const auto index = static_cast<std::size_t>(tech);
  assert(index < kTechnologyCount);
  return index;
}

bool RadioMedium::within_range(Vec2 a, Vec2 b, double range_m) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy <= range_m * range_m;
}

RadioMedium::TechState& RadioMedium::state(Technology tech) const {
  return tech_[tech_index(tech)];
}

void RadioMedium::configure(const TechnologyParams& params) {
  assert(params.range_m > 0.0);
  TechState& ts = state(params.tech);
  ts.params = params;
  if (ts.grid.cell_size() != params.range_m) {
    ts.grid.set_cell_size(params.range_m);
  }
  ts.grid_gen = 0;  // force a rebuild on the next query
}

const TechnologyParams& RadioMedium::params(Technology tech) const {
  return state(tech).params;
}

void RadioMedium::register_endpoint(
    MacAddress mac, Technology tech,
    std::shared_ptr<const MobilityModel> mobility, FrameHandler handler) {
  assert(mobility != nullptr);
  Endpoint endpoint;
  endpoint.mac = mac;
  endpoint.tech = tech;
  endpoint.is_static = mobility->is_static();
  endpoint.mobility = std::move(mobility);
  endpoint.handler = std::move(handler);
  TechState& ts = state(tech);
  {
    // Re-registration may swap the mobility model; retire the old entry's
    // mobile-list slot first (the map node — and thus the pointer — is
    // reused by insert_or_assign below).
    const auto existing = endpoints_.find(key(mac, tech));
    if (existing != endpoints_.end() && !existing->second.is_static) {
      std::erase(ts.mobiles, &existing->second);
    }
  }
  const auto [it, inserted] =
      endpoints_.insert_or_assign(key(mac, tech), std::move(endpoint));
  if (!it->second.is_static) ts.mobiles.push_back(&it->second);
  // A built grid (current or stale) is maintained incrementally: a stale one
  // is only ever *refreshed* on the next query, so every registered endpoint
  // must already have an entry.
  if (ts.grid_gen != 0) {
    const Vec2 at = cached_position(it->second);
    ts.grid.insert(mac.as_u64(), at, &it->second);
    it->second.grid_position = at;
  }
  (void)inserted;
  // Observers may outlive endpoint churn: re-attach any that watch a link
  // touching the (re-)registered endpoint. insert_or_assign wiped the old
  // watcher list, so this rebuild is what keeps them firing.
  if (live_observers_ > 0) {
    for (std::uint32_t index = 0;
         index < static_cast<std::uint32_t>(observers_.size()); ++index) {
      const QualityObserver& obs = observers_[index];
      if (obs.live && obs.tech == tech && (obs.a == mac || obs.b == mac)) {
        attach_watcher(index);
      }
    }
  }
}

void RadioMedium::unregister_endpoint(MacAddress mac, Technology tech) {
  const auto it = endpoints_.find(key(mac, tech));
  if (it == endpoints_.end()) return;
  TechState& ts = state(tech);
  if (!it->second.is_static) std::erase(ts.mobiles, &it->second);
  endpoints_.erase(it);
  // Always evict: the grid must never hold a dangling payload.
  ts.grid.remove(mac.as_u64());
}

bool RadioMedium::has_endpoint(MacAddress mac, Technology tech) const {
  return endpoints_.contains(key(mac, tech));
}

const RadioMedium::Endpoint* RadioMedium::find(MacAddress mac,
                                               Technology tech) const {
  const auto it = endpoints_.find(key(mac, tech));
  return it == endpoints_.end() ? nullptr : &it->second;
}

RadioMedium::Endpoint* RadioMedium::find(MacAddress mac, Technology tech) {
  const auto it = endpoints_.find(key(mac, tech));
  return it == endpoints_.end() ? nullptr : &it->second;
}

Vec2 RadioMedium::cached_position(const Endpoint& endpoint) const {
  if (endpoint.cached_gen != position_gen_) {
    // Static endpoints are sampled exactly once (cached_gen 0): their model
    // returns the same point forever, so only the tag needs refreshing.
    if (!endpoint.is_static || endpoint.cached_gen == 0) {
      endpoint.cached_position = endpoint.mobility->position_at(sim_.now());
    }
    endpoint.cached_gen = position_gen_;
  }
  return endpoint.cached_position;
}

void RadioMedium::ensure_grid(TechState& ts) const {
  if (ts.grid_gen == position_gen_) return;
  // Bring every stale grid current in (at most) one pass over the endpoint
  // map, so a tick that queries several technologies still pays one scan.
  //
  // Three per-technology regimes:
  //  * never built / params changed (grid_gen 0): wholesale rebuild — the
  //    only case that walks the whole endpoint map (one pass for all such
  //    technologies);
  //  * built, but no mobile endpoints: nothing can have moved — revalidate
  //    in O(1) without touching any endpoint;
  //  * built with mobiles: refresh the per-tech mobile list only — statics
  //    are never visited, and of the mobiles only ones whose position
  //    actually changed touch their cells (same-cell moves just rewrite the
  //    stored point).
  bool full_rebuild = false;
  for (TechState& stale : tech_) {
    if (stale.grid_gen == position_gen_) continue;
    if (stale.grid_gen == 0) {
      stale.grid.clear();
      full_rebuild = true;
    }
  }
  if (full_rebuild) {
    for (const auto& [k, endpoint] : endpoints_) {
      TechState& owner = tech_[tech_index(endpoint.tech)];
      if (owner.grid_gen != 0) continue;
      const Vec2 at = cached_position(endpoint);
      owner.grid.insert(endpoint.mac.as_u64(), at, &endpoint);
      endpoint.grid_position = at;
    }
  }
  for (TechState& stale : tech_) {
    if (stale.grid_gen == position_gen_ || stale.grid_gen == 0) continue;
    for (const Endpoint* endpoint : stale.mobiles) {
      const Vec2 fresh = cached_position(*endpoint);
      if (fresh == endpoint->grid_position) continue;
      stale.grid.update(endpoint->mac.as_u64(), fresh);
      endpoint->grid_position = fresh;
    }
  }
  for (TechState& stale : tech_) stale.grid_gen = position_gen_;
}

void RadioMedium::set_discoverable(MacAddress mac, Technology tech,
                                   bool discoverable) {
  if (Endpoint* e = find(mac, tech)) e->discoverable = discoverable;
}

void RadioMedium::set_inquiring(MacAddress mac, Technology tech,
                                bool inquiring) {
  if (Endpoint* e = find(mac, tech)) e->inquiring = inquiring;
}

void RadioMedium::set_peerhood_tag(MacAddress mac, Technology tech,
                                   bool tagged) {
  if (Endpoint* e = find(mac, tech)) e->peerhood_tag = tagged;
}

bool RadioMedium::peerhood_tag(MacAddress mac, Technology tech) const {
  const Endpoint* e = find(mac, tech);
  return e != nullptr && e->peerhood_tag;
}

std::optional<Vec2> RadioMedium::position_of(MacAddress mac,
                                             Technology tech) const {
  const Endpoint* e = find(mac, tech);
  if (e == nullptr) return std::nullopt;
  return cached_position(*e);
}

double RadioMedium::distance(MacAddress a, MacAddress b,
                             Technology tech) const {
  const Endpoint* ea = find(a, tech);
  const Endpoint* eb = find(b, tech);
  if (ea == nullptr || eb == nullptr) {
    return std::numeric_limits<double>::infinity();
  }
  return sim::distance(cached_position(*ea), cached_position(*eb));
}

bool RadioMedium::in_range(MacAddress a, MacAddress b, Technology tech) const {
  const Endpoint* ea = find(a, tech);
  const Endpoint* eb = find(b, tech);
  if (ea == nullptr || eb == nullptr) return false;
  return within_range(cached_position(*ea), cached_position(*eb),
                      params(tech).range_m);
}

std::uint64_t RadioMedium::link_shadow_key(MacAddress a, MacAddress b,
                                           Technology tech) {
  const std::uint64_t lo = std::min(a.as_u64(), b.as_u64());
  const std::uint64_t hi = std::max(a.as_u64(), b.as_u64());
  return (lo * 0x9e3779b97f4a7c15ULL) ^ (hi * 0xbf58476d1ce4e5b9ULL) ^
         static_cast<std::uint64_t>(tech);
}

const RadioMedium::LinkCacheEntry& RadioMedium::link_cache_entry(
    const Endpoint& ea, const Endpoint& eb) const {
  const std::uint64_t ka = ea.mac.as_u64();
  const std::uint64_t kb = eb.mac.as_u64();
  const auto key = std::tuple{std::min(ka, kb), std::max(ka, kb),
                              static_cast<std::uint8_t>(ea.tech)};
  LinkCacheEntry& entry = link_cache_[key];
  if (entry.gen == position_gen_) {
    ++quality_stats_.cache_hits;
    return entry;
  }
  entry.gen = position_gen_;
  entry.distance = sim::distance(cached_position(ea), cached_position(eb));
  entry.base = quality_model_.base_quality(
      entry.distance, state(ea.tech).params.range_m,
      link_shadow_key(ea.mac, eb.mac, ea.tech));
  ++quality_stats_.evaluations;
  if (link_cache_.size() >= link_cache_sweep_limit_) {
    // Entries only serve repeats within one SimTime; anything stale is dead
    // weight. The fresh entry carries the current gen and survives.
    std::erase_if(link_cache_, [this](const auto& kv) {
      return kv.second.gen != position_gen_;
    });
    link_cache_sweep_limit_ =
        std::max(kLastDeliveryMinSweep, link_cache_.size() * 2);
  }
  return entry;
}

int RadioMedium::sample_quality(MacAddress a, MacAddress b, Technology tech) {
  const Endpoint* ea = find(a, tech);
  const Endpoint* eb = find(b, tech);
  if (ea == nullptr || eb == nullptr) return 0;
  return quality_model_.finalize(link_cache_entry(*ea, *eb).base, &noise_rng_);
}

int RadioMedium::expected_quality(MacAddress a, MacAddress b,
                                  Technology tech) const {
  const Endpoint* ea = find(a, tech);
  const Endpoint* eb = find(b, tech);
  if (ea == nullptr || eb == nullptr) return 0;
  return quality_model_.finalize(link_cache_entry(*ea, *eb).base, nullptr);
}

QualityObserverId RadioMedium::observe_quality(MacAddress a, MacAddress b,
                                               Technology tech,
                                               QualityObserverConfig config,
                                               QualityHandler handler) {
  std::uint32_t index;
  if (!observer_free_.empty()) {
    index = observer_free_.back();
    observer_free_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(observers_.size());
    observers_.emplace_back();
  }
  QualityObserver& obs = observers_[index];
  ++obs.gen;  // stale ids from the slot's previous life stop resolving
  obs.live = true;
  obs.a = a;
  obs.b = b;
  obs.tech = tech;
  obs.config = config;
  obs.handler = handler
                    ? std::make_shared<const QualityHandler>(std::move(handler))
                    : nullptr;
  obs.below = false;
  obs.in_range = false;
  obs.next_eval = SimTime::zero();
  obs.eval_gen = 0;
  ++live_observers_;
  attach_watcher(index);
  // Prime the edge detector against the current link state; deliberately
  // silent — only crossings *after* subscription are pushed.
  evaluate_observer(index, sim_.now(), /*emit=*/false);
  return (static_cast<QualityObserverId>(observers_[index].gen) << 32) |
         (index + 1);
}

void RadioMedium::unobserve_quality(QualityObserverId id) {
  if (id == kInvalidQualityObserver) return;
  const std::uint64_t slot = id & 0xffffffffULL;
  if (slot == 0 || slot > observers_.size()) return;
  const auto index = static_cast<std::uint32_t>(slot - 1);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  QualityObserver& obs = observers_[index];
  if (!obs.live || obs.gen != gen) return;  // stale or repeated unsubscribe
  obs.live = false;
  // Release the captures now; a dispatch in progress still holds its pin.
  obs.handler.reset();
  --live_observers_;
  observer_free_.push_back(index);
  // Watcher-list entries are dropped lazily by the per-tick walk.
}

void RadioMedium::attach_watcher(std::uint32_t index) {
  const QualityObserver& obs = observers_[index];
  for (const MacAddress mac : {obs.a, obs.b}) {
    const Endpoint* e = find(mac, obs.tech);
    if (e == nullptr) continue;
    if (std::find(e->watchers.begin(), e->watchers.end(), index) ==
        e->watchers.end()) {
      e->watchers.push_back(index);
    }
  }
}

void RadioMedium::evaluate_quality_observers() {
  if (live_observers_ == 0) return;
  const SimTime now = sim_.now();
  for (TechState& ts : tech_) {
    // Only endpoints that can have moved are walked: a subscriber set full
    // of static-static links costs nothing per tick. Index loops + lazy
    // dead-entry eviction keep this safe against reentrant subscribe /
    // unsubscribe from inside a callback (callbacks must not, however,
    // register or unregister endpoints — see observe_quality).
    for (std::size_t m = 0; m < ts.mobiles.size(); ++m) {
      const Endpoint* e = ts.mobiles[m];
      auto& watchers = e->watchers;
      for (std::size_t i = 0; i < watchers.size();) {
        const std::uint32_t index = watchers[i];
        const QualityObserver* obs =
            index < observers_.size() ? &observers_[index] : nullptr;
        const bool valid = obs != nullptr && obs->live &&
                           obs->tech == e->tech &&
                           (obs->a == e->mac || obs->b == e->mac);
        if (!valid) {
          watchers[i] = watchers.back();
          watchers.pop_back();
          continue;
        }
        ++i;
        // Dedupe (a link whose both ends are mobile is visited twice) and
        // rate-limit; both checks are O(1), no quality math.
        if (obs->eval_gen == position_gen_ || now < obs->next_eval) continue;
        evaluate_observer(index, now, /*emit=*/true);
      }
    }
  }
}

LinkQualityEvent RadioMedium::probe_link(MacAddress a, MacAddress b,
                                         Technology tech) const {
  LinkQualityEvent event;
  event.a = a;
  event.b = b;
  event.tech = tech;
  event.at = sim_.now();
  const Endpoint* ea = find(a, tech);
  const Endpoint* eb = find(b, tech);
  if (ea == nullptr || eb == nullptr) return event;
  const LinkCacheEntry& cache = link_cache_entry(*ea, *eb);
  const double range = state(tech).params.range_m;
  event.distance_m = cache.distance;
  event.quality = quality_model_.finalize(cache.base, nullptr);
  // Signed slope from the models' velocities: project the relative
  // velocity onto the separation axis, then difference the path-loss
  // curve one second of radial motion ahead (clamped to the coverage).
  const Vec2 rel = cached_position(*ea) - cached_position(*eb);
  const Vec2 vrel =
      ea->mobility->velocity_at(event.at) - eb->mobility->velocity_at(event.at);
  event.radial_speed_mps =
      cache.distance > 1e-9
          ? (rel.x * vrel.x + rel.y * vrel.y) / cache.distance
          : vrel.norm();
  // A dead link has no meaningful quality slope: the ahead-point would
  // clamp back inside coverage and report a phantom recovery.
  if (event.quality > 0) {
    const double ahead =
        std::clamp(cache.distance + event.radial_speed_mps, 0.0, range);
    const double base_ahead =
        quality_model_.base_quality(ahead, range, link_shadow_key(a, b, tech));
    event.slope_per_s =
        static_cast<double>(quality_model_.finalize(base_ahead, nullptr)) -
        static_cast<double>(event.quality);
  }
  return event;
}

void RadioMedium::evaluate_observer(std::uint32_t index, SimTime now,
                                    bool emit) {
  QualityObserver& obs = observers_[index];
  const std::uint32_t gen = obs.gen;
  obs.eval_gen = position_gen_;
  obs.next_eval = now + obs.config.min_interval;
  ++quality_stats_.observer_evals;

  LinkQualityEvent event = probe_link(obs.a, obs.b, obs.tech);
  const bool in_range = event.quality > 0;

  const bool was_in = obs.in_range;
  const bool was_below = obs.below;
  bool below = was_below;
  if (event.quality < obs.config.threshold) {
    below = true;
  } else if (event.quality > obs.config.threshold + obs.config.hysteresis) {
    below = false;
  }
  // Commit the detector state before dispatch: the callback may unsubscribe
  // this observer or subscribe new ones (which reallocates observers_).
  obs.in_range = in_range;
  obs.below = below;
  if (!emit) return;

  using Edge = LinkQualityEvent::Edge;
  Edge edges[2];
  std::size_t edge_count = 0;
  if (was_in && !in_range) {
    edges[edge_count++] = Edge::kLost;
  } else if (!was_in && in_range) {
    edges[edge_count++] = Edge::kRestored;
    if (below) edges[edge_count++] = Edge::kFell;
  } else if (in_range) {
    if (!was_below && below) edges[edge_count++] = Edge::kFell;
    if (was_below && !below) edges[edge_count++] = Edge::kRose;
  }

  for (std::size_t i = 0; i < edge_count; ++i) {
    // Pin-before-call (HandlerSlot discipline): the callback may
    // unsubscribe, resubscribe, or destroy its owning controller.
    const auto handler = observers_[index].handler;
    if (handler == nullptr || !*handler) return;
    event.edge = edges[i];
    ++quality_stats_.events_emitted;
    (*handler)(event);
    // The callback may have retired or recycled this slot; stop if so.
    if (index >= observers_.size() || !observers_[index].live ||
        observers_[index].gen != gen) {
      return;
    }
  }
}

void RadioMedium::collect_in_range(const Endpoint& origin, TechState& ts,
                                   std::vector<const Endpoint*>& out) const {
  ensure_grid(ts);
  const Vec2 at = cached_position(origin);
  const double range = ts.params.range_m;
  ts.grid.visit_block(at, [&](const SpatialGrid::Entry& entry) {
    const auto* e = static_cast<const Endpoint*>(entry.payload);
    if (e == &origin) return;
    // entry.position was sampled at the grid's generation == current
    // generation, so it matches cached_position(*e) exactly.
    if (within_range(at, entry.position, range)) out.push_back(e);
  });
  std::sort(out.begin(), out.end(), [](const Endpoint* a, const Endpoint* b) {
    return a->mac < b->mac;
  });
}

std::vector<MacAddress> RadioMedium::in_range_of(MacAddress mac,
                                                 Technology tech) const {
  std::vector<MacAddress> out;
  const Endpoint* origin = find(mac, tech);
  if (origin == nullptr) return out;
  std::vector<const Endpoint*> hits;
  collect_in_range(*origin, state(tech), hits);
  out.reserve(hits.size());
  for (const Endpoint* e : hits) out.push_back(e->mac);
  return out;
}

std::vector<MacAddress> RadioMedium::in_range_of_brute(MacAddress mac,
                                                       Technology tech) const {
  std::vector<MacAddress> out;
  const Endpoint* origin = find(mac, tech);
  if (origin == nullptr) return out;
  const Vec2 at = origin->mobility->position_at(sim_.now());
  const double range = params(tech).range_m;
  // endpoints_ iterates in ascending (mac, tech) order, so `out` comes back
  // in ascending MAC order — the same contract as the grid path.
  for (const auto& [k, endpoint] : endpoints_) {
    if (endpoint.tech != tech || endpoint.mac == mac) continue;
    const Vec2 pos = endpoint.mobility->position_at(sim_.now());
    if (within_range(at, pos, range)) out.push_back(endpoint.mac);
  }
  return out;
}

std::vector<MacAddress> RadioMedium::discoverable_in_range(
    MacAddress mac, Technology tech) const {
  std::vector<MacAddress> out;
  const Endpoint* origin = find(mac, tech);
  if (origin == nullptr) return out;
  TechState& ts = state(tech);
  const bool asymmetric = ts.params.asymmetric_discovery;
  std::vector<const Endpoint*> hits;
  collect_in_range(*origin, ts, hits);
  out.reserve(hits.size());
  // A blackout partition silences inquiry responses across the cut too —
  // otherwise discovery would keep "seeing" devices no frame can reach.
  const bool blackout =
      faults_ != nullptr && faults_->blackout_possible(sim_.now());
  const Vec2 origin_pos = blackout ? cached_position(*origin) : Vec2{};
  for (const Endpoint* e : hits) {
    if (!e->discoverable) continue;
    // Bluetooth asymmetry: a device busy inquiring does not answer inquiries.
    if (asymmetric && e->inquiring) continue;
    if (blackout && faults_->blacked_out(mac, e->mac, sim_.now(), origin_pos,
                                         cached_position(*e))) {
      continue;
    }
    out.push_back(e->mac);
  }
  return out;
}

LinkFaultModel& RadioMedium::fault_plane() {
  if (faults_ == nullptr) {
    faults_ = std::make_unique<LinkFaultModel>(sim_.fork_rng());
  }
  return *faults_;
}

bool RadioMedium::link_blacked_out(MacAddress a, MacAddress b,
                                   Technology tech) const {
  if (faults_ == nullptr || !faults_->blackout_possible(sim_.now())) {
    return false;
  }
  const Endpoint* ea = find(a, tech);
  const Endpoint* eb = find(b, tech);
  if (ea == nullptr || eb == nullptr) return false;
  return faults_->blacked_out(a, b, sim_.now(), cached_position(*ea),
                              cached_position(*eb));
}

void RadioMedium::send_frame(MacAddress from, MacAddress to, Technology tech,
                             FramePtr frame) {
  assert(frame != nullptr);
  ++stats_.frames;
  stats_.frame_bytes += frame->size();
  const TechnologyParams& p = params(tech);
  const Endpoint* from_e = find(from, tech);
  const Endpoint* to_e = find(to, tech);
  if (from_e == nullptr || to_e == nullptr ||
      !within_range(cached_position(*from_e), cached_position(*to_e),
                    p.range_m)) {
    ++stats_.drops;
    return;
  }
  FaultDecision fault{};
  if (faults_ != nullptr) {
    // Degradation for the quality coupling: 0 at full quality, 1 at the
    // coverage edge (out-of-range frames never reach this point).
    const LinkCacheEntry& link = link_cache_entry(*from_e, *to_e);
    const double span = std::max(
        1.0, static_cast<double>(quality_model_.q_max - quality_model_.q_edge));
    const double degradation = std::clamp(
        (static_cast<double>(quality_model_.q_max) - link.base) / span, 0.0,
        1.0);
    fault = faults_->judge(from, to, tech, degradation, sim_.now(),
                           cached_position(*from_e), cached_position(*to_e));
    if (fault.drop) {
      ++stats_.drops;
      return;
    }
    if (fault.corrupt) {
      // Never mutate the shared buffer — other queued deliveries (and the
      // sender's cache) may reference the same allocation.
      Bytes mangled = *frame;
      faults_->corrupt(mangled);
      frame = std::make_shared<const Bytes>(std::move(mangled));
    }
  }

  const SimDuration tx_time =
      seconds(static_cast<double>(frame->size()) / p.bytes_per_second);
  const int copies = fault.duplicate ? 2 : 1;
  for (int copy = 0; copy < copies; ++copy) {
    SimTime deliver_at =
        sim_.now() + p.per_hop_latency + tx_time + fault.extra_delay;
    if (copy == 1) deliver_at = deliver_at + fault.duplicate_lag;

    if (!fault.reorder) {
      const auto dir_key = std::tuple{from.as_u64(), to.as_u64(),
                                      static_cast<std::uint8_t>(tech)};
      auto& last = last_delivery_[dir_key];
      if (deliver_at <= last) deliver_at = last + microseconds(1);
      last = deliver_at;
      if (last_delivery_.size() >= last_delivery_sweep_limit_) {
        age_last_delivery();
      }
    }
    // A reordered frame is exempt from the in-order bump: its extra delay
    // lets frames sent after it overtake it, which is the whole point.

    // Remote interception happens *after* the in-order bump so the
    // send-side state (stats, last_delivery_) evolves identically whether
    // the receiver is local or on another shard.
    if (remote_router_ != nullptr &&
        remote_router_(from, to, tech, deliver_at, frame)) {
      continue;
    }

    auto deliver = [this, from, to, tech, frame]() {
      deliver_frame(from, to, tech, frame);
    };
    // The whole point of the FramePtr scheme: a delivery event must fit the
    // event queue's inline buffer, so the per-frame hot path never allocates.
    static_assert(sizeof(deliver) <= InlineCallable::kInlineSize);
    sim_.schedule_at(deliver_at, std::move(deliver));
  }
}

void RadioMedium::deliver_frame(MacAddress from, MacAddress to,
                                Technology tech, const FramePtr& frame) {
  // Positions have moved since send time; one cached re-check decides
  // delivery (drop if either side is gone or out of coverage).
  const Endpoint* sender = find(from, tech);
  const Endpoint* receiver = find(to, tech);
  if (sender == nullptr || receiver == nullptr ||
      !within_range(cached_position(*sender), cached_position(*receiver),
                    params(tech).range_m)) {
    ++stats_.drops;
    return;
  }
  if (receiver->handler) receiver->handler(from, *frame);
}

std::vector<RadioMedium::LastDeliveryEntry> RadioMedium::export_last_delivery(
    MacAddress mac) {
  std::vector<LastDeliveryEntry> out;
  const std::uint64_t raw = mac.as_u64();
  for (auto it = last_delivery_.begin(); it != last_delivery_.end();) {
    // Send-side state only (from == mac): the in-order bump runs on the
    // *sender's* replica, so entries where `mac` is the receiver belong to
    // whatever shard owns the sender and must stay put.
    if (std::get<0>(it->first) == raw) {
      out.emplace_back(it->first, it->second);
      it = last_delivery_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

void RadioMedium::import_last_delivery(
    const std::vector<LastDeliveryEntry>& entries) {
  for (const auto& [key, at] : entries) {
    auto [it, inserted] = last_delivery_.emplace(key, at);
    if (!inserted && it->second < at) it->second = at;
  }
}

SimDuration RadioMedium::min_per_hop_latency() const {
  SimDuration min_latency = tech_[0].params.per_hop_latency;
  for (std::size_t i = 1; i < tech_.size(); ++i) {
    min_latency = std::min(min_latency, tech_[i].params.per_hop_latency);
  }
  return min_latency;
}

void RadioMedium::age_last_delivery() {
  const SimTime now = sim_.now();
  // Strict `<`: an entry equal to `now` can still force a bump when a
  // zero-latency, zero-size frame would otherwise land at the same instant.
  std::erase_if(last_delivery_,
                [now](const auto& kv) { return kv.second < now; });
  last_delivery_sweep_limit_ =
      std::max(kLastDeliveryMinSweep, last_delivery_.size() * 2);
}

}  // namespace peerhood::sim
