#include "sim/medium.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace peerhood::sim {

RadioMedium::RadioMedium(Simulator& sim, LinkQualityModel quality_model)
    : sim_{sim}, quality_model_{quality_model}, noise_rng_{sim.fork_rng()} {
  for (const Technology tech : {Technology::kBluetooth, Technology::kWlan,
                                Technology::kGprs}) {
    configure(default_params(tech));
  }
  time_observer_ = sim_.add_time_observer([this] { ++position_gen_; });
}

RadioMedium::~RadioMedium() { sim_.remove_time_observer(time_observer_); }

std::size_t RadioMedium::tech_index(Technology tech) {
  const auto index = static_cast<std::size_t>(tech);
  assert(index < kTechnologyCount);
  return index;
}

bool RadioMedium::within_range(Vec2 a, Vec2 b, double range_m) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy <= range_m * range_m;
}

RadioMedium::TechState& RadioMedium::state(Technology tech) const {
  return tech_[tech_index(tech)];
}

void RadioMedium::configure(const TechnologyParams& params) {
  assert(params.range_m > 0.0);
  TechState& ts = state(params.tech);
  ts.params = params;
  if (ts.grid.cell_size() != params.range_m) {
    ts.grid.set_cell_size(params.range_m);
  }
  ts.grid_gen = 0;  // force a rebuild on the next query
}

const TechnologyParams& RadioMedium::params(Technology tech) const {
  return state(tech).params;
}

void RadioMedium::register_endpoint(
    MacAddress mac, Technology tech,
    std::shared_ptr<const MobilityModel> mobility, FrameHandler handler) {
  assert(mobility != nullptr);
  Endpoint endpoint;
  endpoint.mac = mac;
  endpoint.tech = tech;
  endpoint.is_static = mobility->is_static();
  endpoint.mobility = std::move(mobility);
  endpoint.handler = std::move(handler);
  TechState& ts = state(tech);
  {
    // Re-registration may swap the mobility model; retire the old entry's
    // mobile-list slot first (the map node — and thus the pointer — is
    // reused by insert_or_assign below).
    const auto existing = endpoints_.find(key(mac, tech));
    if (existing != endpoints_.end() && !existing->second.is_static) {
      std::erase(ts.mobiles, &existing->second);
    }
  }
  const auto [it, inserted] =
      endpoints_.insert_or_assign(key(mac, tech), std::move(endpoint));
  if (!it->second.is_static) ts.mobiles.push_back(&it->second);
  // A built grid (current or stale) is maintained incrementally: a stale one
  // is only ever *refreshed* on the next query, so every registered endpoint
  // must already have an entry.
  if (ts.grid_gen != 0) {
    const Vec2 at = cached_position(it->second);
    ts.grid.insert(mac.as_u64(), at, &it->second);
    it->second.grid_position = at;
  }
  (void)inserted;
}

void RadioMedium::unregister_endpoint(MacAddress mac, Technology tech) {
  const auto it = endpoints_.find(key(mac, tech));
  if (it == endpoints_.end()) return;
  TechState& ts = state(tech);
  if (!it->second.is_static) std::erase(ts.mobiles, &it->second);
  endpoints_.erase(it);
  // Always evict: the grid must never hold a dangling payload.
  ts.grid.remove(mac.as_u64());
}

bool RadioMedium::has_endpoint(MacAddress mac, Technology tech) const {
  return endpoints_.contains(key(mac, tech));
}

const RadioMedium::Endpoint* RadioMedium::find(MacAddress mac,
                                               Technology tech) const {
  const auto it = endpoints_.find(key(mac, tech));
  return it == endpoints_.end() ? nullptr : &it->second;
}

RadioMedium::Endpoint* RadioMedium::find(MacAddress mac, Technology tech) {
  const auto it = endpoints_.find(key(mac, tech));
  return it == endpoints_.end() ? nullptr : &it->second;
}

Vec2 RadioMedium::cached_position(const Endpoint& endpoint) const {
  if (endpoint.cached_gen != position_gen_) {
    // Static endpoints are sampled exactly once (cached_gen 0): their model
    // returns the same point forever, so only the tag needs refreshing.
    if (!endpoint.is_static || endpoint.cached_gen == 0) {
      endpoint.cached_position = endpoint.mobility->position_at(sim_.now());
    }
    endpoint.cached_gen = position_gen_;
  }
  return endpoint.cached_position;
}

void RadioMedium::ensure_grid(TechState& ts) const {
  if (ts.grid_gen == position_gen_) return;
  // Bring every stale grid current in (at most) one pass over the endpoint
  // map, so a tick that queries several technologies still pays one scan.
  //
  // Three per-technology regimes:
  //  * never built / params changed (grid_gen 0): wholesale rebuild — the
  //    only case that walks the whole endpoint map (one pass for all such
  //    technologies);
  //  * built, but no mobile endpoints: nothing can have moved — revalidate
  //    in O(1) without touching any endpoint;
  //  * built with mobiles: refresh the per-tech mobile list only — statics
  //    are never visited, and of the mobiles only ones whose position
  //    actually changed touch their cells (same-cell moves just rewrite the
  //    stored point).
  bool full_rebuild = false;
  for (TechState& stale : tech_) {
    if (stale.grid_gen == position_gen_) continue;
    if (stale.grid_gen == 0) {
      stale.grid.clear();
      full_rebuild = true;
    }
  }
  if (full_rebuild) {
    for (const auto& [k, endpoint] : endpoints_) {
      TechState& owner = tech_[tech_index(endpoint.tech)];
      if (owner.grid_gen != 0) continue;
      const Vec2 at = cached_position(endpoint);
      owner.grid.insert(endpoint.mac.as_u64(), at, &endpoint);
      endpoint.grid_position = at;
    }
  }
  for (TechState& stale : tech_) {
    if (stale.grid_gen == position_gen_ || stale.grid_gen == 0) continue;
    for (const Endpoint* endpoint : stale.mobiles) {
      const Vec2 fresh = cached_position(*endpoint);
      if (fresh == endpoint->grid_position) continue;
      stale.grid.update(endpoint->mac.as_u64(), fresh);
      endpoint->grid_position = fresh;
    }
  }
  for (TechState& stale : tech_) stale.grid_gen = position_gen_;
}

void RadioMedium::set_discoverable(MacAddress mac, Technology tech,
                                   bool discoverable) {
  if (Endpoint* e = find(mac, tech)) e->discoverable = discoverable;
}

void RadioMedium::set_inquiring(MacAddress mac, Technology tech,
                                bool inquiring) {
  if (Endpoint* e = find(mac, tech)) e->inquiring = inquiring;
}

void RadioMedium::set_peerhood_tag(MacAddress mac, Technology tech,
                                   bool tagged) {
  if (Endpoint* e = find(mac, tech)) e->peerhood_tag = tagged;
}

bool RadioMedium::peerhood_tag(MacAddress mac, Technology tech) const {
  const Endpoint* e = find(mac, tech);
  return e != nullptr && e->peerhood_tag;
}

std::optional<Vec2> RadioMedium::position_of(MacAddress mac,
                                             Technology tech) const {
  const Endpoint* e = find(mac, tech);
  if (e == nullptr) return std::nullopt;
  return cached_position(*e);
}

double RadioMedium::distance(MacAddress a, MacAddress b,
                             Technology tech) const {
  const Endpoint* ea = find(a, tech);
  const Endpoint* eb = find(b, tech);
  if (ea == nullptr || eb == nullptr) {
    return std::numeric_limits<double>::infinity();
  }
  return sim::distance(cached_position(*ea), cached_position(*eb));
}

bool RadioMedium::in_range(MacAddress a, MacAddress b, Technology tech) const {
  const Endpoint* ea = find(a, tech);
  const Endpoint* eb = find(b, tech);
  if (ea == nullptr || eb == nullptr) return false;
  return within_range(cached_position(*ea), cached_position(*eb),
                      params(tech).range_m);
}

int RadioMedium::sample_quality(MacAddress a, MacAddress b, Technology tech) {
  const double d = distance(a, b, tech);
  return quality_model_.quality(d, params(tech).range_m, &noise_rng_);
}

int RadioMedium::expected_quality(MacAddress a, MacAddress b,
                                  Technology tech) const {
  const double d = distance(a, b, tech);
  return quality_model_.quality(d, params(tech).range_m, nullptr);
}

void RadioMedium::collect_in_range(const Endpoint& origin, TechState& ts,
                                   std::vector<const Endpoint*>& out) const {
  ensure_grid(ts);
  const Vec2 at = cached_position(origin);
  const double range = ts.params.range_m;
  ts.grid.visit_block(at, [&](const SpatialGrid::Entry& entry) {
    const auto* e = static_cast<const Endpoint*>(entry.payload);
    if (e == &origin) return;
    // entry.position was sampled at the grid's generation == current
    // generation, so it matches cached_position(*e) exactly.
    if (within_range(at, entry.position, range)) out.push_back(e);
  });
  std::sort(out.begin(), out.end(), [](const Endpoint* a, const Endpoint* b) {
    return a->mac < b->mac;
  });
}

std::vector<MacAddress> RadioMedium::in_range_of(MacAddress mac,
                                                 Technology tech) const {
  std::vector<MacAddress> out;
  const Endpoint* origin = find(mac, tech);
  if (origin == nullptr) return out;
  std::vector<const Endpoint*> hits;
  collect_in_range(*origin, state(tech), hits);
  out.reserve(hits.size());
  for (const Endpoint* e : hits) out.push_back(e->mac);
  return out;
}

std::vector<MacAddress> RadioMedium::in_range_of_brute(MacAddress mac,
                                                       Technology tech) const {
  std::vector<MacAddress> out;
  const Endpoint* origin = find(mac, tech);
  if (origin == nullptr) return out;
  const Vec2 at = origin->mobility->position_at(sim_.now());
  const double range = params(tech).range_m;
  // endpoints_ iterates in ascending (mac, tech) order, so `out` comes back
  // in ascending MAC order — the same contract as the grid path.
  for (const auto& [k, endpoint] : endpoints_) {
    if (endpoint.tech != tech || endpoint.mac == mac) continue;
    const Vec2 pos = endpoint.mobility->position_at(sim_.now());
    if (within_range(at, pos, range)) out.push_back(endpoint.mac);
  }
  return out;
}

std::vector<MacAddress> RadioMedium::discoverable_in_range(
    MacAddress mac, Technology tech) const {
  std::vector<MacAddress> out;
  const Endpoint* origin = find(mac, tech);
  if (origin == nullptr) return out;
  TechState& ts = state(tech);
  const bool asymmetric = ts.params.asymmetric_discovery;
  std::vector<const Endpoint*> hits;
  collect_in_range(*origin, ts, hits);
  out.reserve(hits.size());
  for (const Endpoint* e : hits) {
    if (!e->discoverable) continue;
    // Bluetooth asymmetry: a device busy inquiring does not answer inquiries.
    if (asymmetric && e->inquiring) continue;
    out.push_back(e->mac);
  }
  return out;
}

void RadioMedium::send_frame(MacAddress from, MacAddress to, Technology tech,
                             FramePtr frame) {
  assert(frame != nullptr);
  ++stats_.frames;
  stats_.frame_bytes += frame->size();
  const TechnologyParams& p = params(tech);
  const Endpoint* from_e = find(from, tech);
  const Endpoint* to_e = find(to, tech);
  if (from_e == nullptr || to_e == nullptr ||
      !within_range(cached_position(*from_e), cached_position(*to_e),
                    p.range_m)) {
    ++stats_.drops;
    return;
  }
  const SimDuration tx_time =
      seconds(static_cast<double>(frame->size()) / p.bytes_per_second);
  SimTime deliver_at = sim_.now() + p.per_hop_latency + tx_time;

  const auto dir_key = std::tuple{from.as_u64(), to.as_u64(),
                                  static_cast<std::uint8_t>(tech)};
  auto& last = last_delivery_[dir_key];
  if (deliver_at <= last) deliver_at = last + microseconds(1);
  last = deliver_at;
  if (last_delivery_.size() >= last_delivery_sweep_limit_) {
    age_last_delivery();
  }

  auto deliver = [this, from, to, tech, frame = std::move(frame)]() {
    // Positions have moved since send time; one cached re-check decides
    // delivery (drop if either side is gone or out of coverage).
    const Endpoint* sender = find(from, tech);
    const Endpoint* receiver = find(to, tech);
    if (sender == nullptr || receiver == nullptr ||
        !within_range(cached_position(*sender), cached_position(*receiver),
                      params(tech).range_m)) {
      ++stats_.drops;
      return;
    }
    if (receiver->handler) receiver->handler(from, *frame);
  };
  // The whole point of the FramePtr scheme: a delivery event must fit the
  // event queue's inline buffer, so the per-frame hot path never allocates.
  static_assert(sizeof(deliver) <= InlineCallable::kInlineSize);
  sim_.schedule_at(deliver_at, std::move(deliver));
}

void RadioMedium::age_last_delivery() {
  const SimTime now = sim_.now();
  // Strict `<`: an entry equal to `now` can still force a bump when a
  // zero-latency, zero-size frame would otherwise land at the same instant.
  std::erase_if(last_delivery_,
                [now](const auto& kv) { return kv.second < now; });
  last_delivery_sweep_limit_ =
      std::max(kLastDeliveryMinSweep, last_delivery_.size() * 2);
}

}  // namespace peerhood::sim
