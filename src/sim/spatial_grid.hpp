// Uniform spatial hash grid over 2-D positions, the index behind the radio
// medium's neighbour queries. The cell edge equals the query radius, so every
// point within `radius` of a query origin lies inside the 3x3 block of cells
// centred on the origin's cell — a radius query inspects at most nine buckets
// instead of every registered entry. Entries carry a caller-owned payload
// pointer so query results need no further map lookups.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/vec2.hpp"

namespace peerhood::sim {

class SpatialGrid {
 public:
  struct Entry {
    std::uint64_t id{0};
    Vec2 position{};
    const void* payload{nullptr};
  };

  explicit SpatialGrid(double cell_size = 1.0);

  // Changing the cell size invalidates every bucket assignment, so it
  // implies clear(); the owner rebuilds afterwards.
  void set_cell_size(double cell_size);
  [[nodiscard]] double cell_size() const { return cell_; }

  void clear();
  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] bool contains(std::uint64_t id) const;

  // Inserting an id that is already present replaces its entry (the node may
  // have been re-registered at a new position).
  void insert(std::uint64_t id, Vec2 position, const void* payload);
  // Returns false when the id is not in the grid. Removal does not need the
  // position: the grid remembers each entry's cell.
  bool remove(std::uint64_t id);
  // Moves an existing entry to `position`, keeping its payload. When the new
  // position lands in the same cell only the stored point is rewritten — no
  // bucket churn — which makes the per-tick refresh of a moving endpoint
  // O(bucket) instead of a remove+insert pair. Returns false when the id is
  // not in the grid.
  bool update(std::uint64_t id, Vec2 position);

  // Calls `visit(const Entry&)` for every entry in the 3x3 cell block around
  // `origin` — a superset of all entries within cell_size() of it. The exact
  // distance test (and any ordering) stays with the caller. Entries within a
  // bucket are visited in unspecified order.
  template <typename Visitor>
  void visit_block(Vec2 origin, Visitor&& visit) const {
    const std::int32_t cx = cell_coord(origin.x);
    const std::int32_t cy = cell_coord(origin.y);
    for (std::int32_t dx = -1; dx <= 1; ++dx) {
      for (std::int32_t dy = -1; dy <= 1; ++dy) {
        const auto it = cells_.find(cell_key(cx + dx, cy + dy));
        if (it == cells_.end()) continue;
        for (const Entry& entry : it->second) visit(entry);
      }
    }
  }

 private:
  [[nodiscard]] std::int32_t cell_coord(double v) const;
  [[nodiscard]] static std::uint64_t cell_key(std::int32_t cx,
                                              std::int32_t cy);

  double cell_{1.0};
  double inv_cell_{1.0};
  std::unordered_map<std::uint64_t, std::vector<Entry>> cells_;
  // id -> occupied cell key, for O(1) removal of moved entries.
  std::unordered_map<std::uint64_t, std::uint64_t> index_;
};

}  // namespace peerhood::sim
