// Deterministic link-fault injection for the radio medium. The seed model
// delivers every in-range frame intact and in order; real radios do not
// (the paper itself flags data integrity under connection loss as the open
// problem, Ch. 6). The LinkFaultModel decides, per frame, whether the medium
// loses, corrupts, duplicates or delays it, and whether a scheduled blackout
// (partition) silences the link outright:
//
//  * Loss follows a two-state Gilbert–Elliott channel per undirected link —
//    a `good` state with low loss and a `bad` (burst) state with high loss.
//    Bad link quality couples into the model: the closer the link sits to
//    its coverage edge, the more often it enters (and the harder it loses
//    inside) the burst state, reusing the PR 5 LinkQualityModel geometry.
//  * Corruption flips 1-3 random bits in a copy of the frame; the original
//    shared buffer is never mutated (other deliveries may reference it).
//    Detection is the transport's job (net/frame_check.hpp).
//  * Duplication delivers a second copy shortly after the first; reordering
//    adds a random extra delay and exempts the frame from the medium's
//    in-order bump, so later frames overtake it.
//  * Blackouts are scheduled windows (start + duration) that drop every
//    frame crossing a node-set cut or touching a circular region —
//    partitions, elevator rides, jammed rooms.
//
// Every random decision draws from one forked Rng owned by this model, so a
// fixed (seed, schedule) pair replays the exact same fault sequence — the
// per-kind counters below are asserted identical across repeat runs.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <tuple>
#include <vector>

#include "common/bytes.hpp"
#include "common/mac_address.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "sim/radio.hpp"
#include "sim/simulator.hpp"
#include "sim/vec2.hpp"

namespace peerhood::sim {

// Per-technology (or per-link override) fault parameters. Default constructed
// = fault free; `active()` lets the medium skip the whole plane cheaply.
struct FaultProfile {
  // Gilbert–Elliott loss: drop probabilities inside each state and the
  // per-frame state transition probabilities.
  double loss_good{0.0};
  double loss_bad{0.0};
  double p_good_to_bad{0.0};
  double p_bad_to_good{0.25};
  // 0..1: how strongly link degradation (0 at full quality, 1 at the
  // coverage edge) scales the burst-entry probability and both loss rates.
  // 1.0 doubles them at the edge.
  double quality_coupling{0.0};

  // Independent per-frame probabilities.
  double corrupt_prob{0.0};
  double duplicate_prob{0.0};
  double reorder_prob{0.0};

  // Extra delivery delay drawn U(0, reorder_delay_max) for reordered frames.
  SimDuration reorder_delay_max{std::chrono::milliseconds{150}};
  // The duplicate copy lands this long after the original.
  SimDuration duplicate_lag{std::chrono::milliseconds{20}};

  [[nodiscard]] bool active() const {
    return loss_good > 0.0 || loss_bad > 0.0 || p_good_to_bad > 0.0 ||
           corrupt_prob > 0.0 || duplicate_prob > 0.0 || reorder_prob > 0.0;
  }
};

// Per-kind counters; identical across runs with the same (seed, schedule).
struct FaultStats {
  std::uint64_t frames_seen{0};
  std::uint64_t loss_drops{0};
  std::uint64_t blackout_drops{0};
  std::uint64_t corrupted{0};
  std::uint64_t duplicated{0};
  std::uint64_t reordered{0};
  std::uint64_t burst_entries{0};  // good -> bad transitions
  // Node crash plane (NodeCrashPlane fills these; the link model never does).
  std::uint64_t node_crashes{0};
  std::uint64_t node_restarts{0};
};

// What the medium should do with one frame.
struct FaultDecision {
  bool drop{false};
  bool corrupt{false};
  bool duplicate{false};
  bool reorder{false};
  SimDuration extra_delay{SimDuration{0}};   // reorder jitter
  SimDuration duplicate_lag{SimDuration{0}};  // second-copy offset
};

class LinkFaultModel {
 public:
  // A scheduled blackout window. Semantics of the node sets:
  //  * both empty (and radius_m <= 0): global blackout;
  //  * side_b empty: every frame touching a side_a node is dropped
  //    (node-set blackout);
  //  * both non-empty: only frames crossing the side_a <-> side_b cut are
  //    dropped (partition) — traffic inside either side still flows.
  // A radius_m > 0 additionally requires one endpoint inside the circle, so
  // region blackouts compose with the node-set filter.
  struct Blackout {
    SimTime start{};
    SimDuration duration{SimDuration{0}};
    std::vector<MacAddress> side_a;
    std::vector<MacAddress> side_b;
    Vec2 center{};
    double radius_m{0.0};
  };

  explicit LinkFaultModel(Rng rng) : rng_{rng} {}

  // Per-technology baseline profile (applies to every link of that tech).
  void set_profile(Technology tech, FaultProfile profile);
  // Per-link override, undirected; wins over the technology profile.
  void set_link_profile(MacAddress a, MacAddress b, Technology tech,
                        FaultProfile profile);
  void clear_link_profile(MacAddress a, MacAddress b, Technology tech);
  [[nodiscard]] const FaultProfile& profile(MacAddress a, MacAddress b,
                                            Technology tech) const;

  void schedule_blackout(Blackout window);
  // True while any blackout window covers `now` — the cheap pre-check the
  // hot paths make before the per-link cut test.
  [[nodiscard]] bool blackout_possible(SimTime now) const;
  // True when a frame (or inquiry response / connect attempt) between the
  // endpoints is silenced by an active blackout.
  [[nodiscard]] bool blacked_out(MacAddress from, MacAddress to, SimTime now,
                                 Vec2 from_pos, Vec2 to_pos) const;

  // Rolls the dice for one frame. `degradation` is 0 (perfect link) .. 1
  // (coverage edge), from the medium's quality model. Blackouts are checked
  // first; a blacked-out frame returns drop without advancing the GE state,
  // so healing restores the channel exactly where it paused.
  [[nodiscard]] FaultDecision judge(MacAddress from, MacAddress to,
                                    Technology tech, double degradation,
                                    SimTime now, Vec2 from_pos, Vec2 to_pos);

  // Flips 1-3 random bits; the caller passes a fresh copy of the frame.
  void corrupt(Bytes& frame);

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  void reset_stats() { stats_ = FaultStats{}; }

  // True when any technology profile or link override injects faults —
  // blackouts count separately via blackout_possible().
  [[nodiscard]] bool any_profile_active() const;

 private:
  using LinkKey = std::tuple<std::uint64_t, std::uint64_t, std::uint8_t>;
  [[nodiscard]] static LinkKey link_key(MacAddress a, MacAddress b,
                                        Technology tech);

  Rng rng_;
  std::array<FaultProfile, kTechnologyCount> tech_profiles_{};
  std::map<LinkKey, FaultProfile> link_profiles_;
  // Gilbert-Elliott state per undirected link, created on first frame.
  std::map<LinkKey, bool> burst_state_;
  std::vector<Blackout> blackouts_;
  FaultStats stats_;
};

// ---------------------------------------------------------------------------
// Node crash plane. Where the LinkFaultModel breaks *links*, this breaks
// *processes*: at scheduled instants (or at seeded exponential MTBF/MTTR
// intervals) it hard-kills a node's whole daemon stack and later restarts it.
// The plane itself knows nothing about daemons — the owner installs kill /
// restart callbacks keyed by MAC — so it lives in sim/ next to its sibling
// without dragging in peerhood types. All randomness (churn inter-arrival
// and repair draws) comes from one forked Rng owned by the plane, so a fixed
// (seed, schedule) pair replays the exact crash sequence; like the link
// model, the plane is only constructed when a crash schedule exists, leaving
// crash-free runs byte-identical.
class NodeCrashPlane {
 public:
  using NodeHook = std::function<void(MacAddress)>;

  NodeCrashPlane(Simulator& sim, Rng rng) : sim_{sim}, rng_{rng} {}

  // `kill` tears the node down mid-flight; `restart` brings it back (fresh
  // epoch is the callee's job). Install before scheduling anything.
  void set_hooks(NodeHook kill, NodeHook restart);

  // One-shot: crash `mac` at `at`, restart it `downtime` later.
  void schedule_crash(MacAddress mac, SimTime at, SimDuration downtime);

  // Seeded random crash–restart churn over a node set: inter-crash gaps are
  // Exp(mtbf_mean), repair times Exp(mttr_mean) (clamped to >= 100 ms so a
  // restart is never in the same event batch as its crash), victims drawn
  // uniformly from `targets`. No new crash is *started* at or after `stop`;
  // an in-flight downtime still completes with its restart.
  void start_churn(std::vector<MacAddress> targets, SimDuration mtbf_mean,
                   SimDuration mttr_mean, SimTime start, SimTime stop);

  [[nodiscard]] const FaultStats& stats() const { return stats_; }

 private:
  void crash_now(MacAddress mac, SimDuration downtime);
  void churn_tick(std::size_t churn_index);

  struct ChurnState {
    std::vector<MacAddress> targets;
    SimDuration mtbf_mean{};
    SimDuration mttr_mean{};
    SimTime stop{};
  };

  Simulator& sim_;
  Rng rng_;
  NodeHook kill_;
  NodeHook restart_;
  std::vector<ChurnState> churns_;
  // Nodes currently down; a churn draw that lands on one is skipped (the
  // gap is re-drawn) rather than double-killed.
  std::vector<MacAddress> down_;
  FaultStats stats_;
};

}  // namespace peerhood::sim
