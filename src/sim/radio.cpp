#include "sim/radio.hpp"

#include <algorithm>
#include <cmath>

namespace peerhood::sim {

TechnologyParams bluetooth_params() {
  TechnologyParams p;
  p.tech = Technology::kBluetooth;
  p.range_m = 10.0;
  p.inquiry_interval = std::chrono::seconds{10};
  // Effective undiscoverable window per cycle. Real inquiry lasts longer
  // but interleaves with scan; ~13% of samples miss an inquiring device.
  p.inquiry_duration = std::chrono::milliseconds{1280};
  p.asymmetric_discovery = true;
  p.fetch_time = std::chrono::milliseconds{300};
  p.fetch_failure_prob = 0.05;
  p.connect_delay_min_s = 1.5;
  p.connect_delay_max_s = 9.0;
  p.connect_failure_prob = 0.16;
  p.per_hop_latency = std::chrono::milliseconds{30};
  p.bytes_per_second = 100'000.0;  // ~BT 1.2 practical throughput
  return p;
}

TechnologyParams wlan_params() {
  TechnologyParams p;
  p.tech = Technology::kWlan;
  p.range_m = 50.0;
  p.inquiry_interval = std::chrono::seconds{5};
  p.inquiry_duration = std::chrono::milliseconds{500};
  p.asymmetric_discovery = false;
  p.fetch_time = std::chrono::milliseconds{50};
  p.fetch_failure_prob = 0.01;
  p.connect_delay_min_s = 0.2;
  p.connect_delay_max_s = 1.0;
  p.connect_failure_prob = 0.02;
  p.per_hop_latency = std::chrono::milliseconds{5};
  p.bytes_per_second = 1'000'000.0;
  return p;
}

TechnologyParams gprs_params() {
  TechnologyParams p;
  p.tech = Technology::kGprs;
  p.range_m = 2000.0;  // cellular cell radius
  p.inquiry_interval = std::chrono::seconds{15};
  p.inquiry_duration = std::chrono::milliseconds{200};
  p.asymmetric_discovery = false;
  p.fetch_time = std::chrono::milliseconds{400};
  p.fetch_failure_prob = 0.03;
  p.connect_delay_min_s = 1.0;
  p.connect_delay_max_s = 3.0;
  p.connect_failure_prob = 0.05;
  p.per_hop_latency = std::chrono::milliseconds{350};
  p.bytes_per_second = 6'000.0;
  return p;
}

TechnologyParams default_params(Technology tech) {
  switch (tech) {
    case Technology::kBluetooth: return bluetooth_params();
    case Technology::kWlan: return wlan_params();
    case Technology::kGprs: return gprs_params();
  }
  return bluetooth_params();
}

int LinkQualityModel::quality(double distance_m, double range_m,
                              Rng* noise_rng) const {
  if (distance_m > range_m || range_m <= 0.0) return 0;
  const double frac = std::clamp(distance_m / range_m, 0.0, 1.0);
  double q = q_max - (q_max - q_edge) * std::pow(frac, exponent);
  if (noise_rng != nullptr && noise > 0.0) {
    q += noise_rng->uniform(-noise, noise);
  }
  return std::clamp(static_cast<int>(std::lround(q)), 1, 255);
}

}  // namespace peerhood::sim
