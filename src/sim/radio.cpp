#include "sim/radio.hpp"

#include <algorithm>
#include <cmath>

namespace peerhood::sim {

TechnologyParams bluetooth_params() {
  TechnologyParams p;
  p.tech = Technology::kBluetooth;
  p.range_m = 10.0;
  p.inquiry_interval = std::chrono::seconds{10};
  // Effective undiscoverable window per cycle. Real inquiry lasts longer
  // but interleaves with scan; ~13% of samples miss an inquiring device.
  p.inquiry_duration = std::chrono::milliseconds{1280};
  p.asymmetric_discovery = true;
  p.fetch_time = std::chrono::milliseconds{300};
  p.fetch_failure_prob = 0.05;
  p.connect_delay_min_s = 1.5;
  p.connect_delay_max_s = 9.0;
  p.connect_failure_prob = 0.16;
  p.per_hop_latency = std::chrono::milliseconds{30};
  p.bytes_per_second = 100'000.0;  // ~BT 1.2 practical throughput
  return p;
}

TechnologyParams wlan_params() {
  TechnologyParams p;
  p.tech = Technology::kWlan;
  p.range_m = 50.0;
  p.inquiry_interval = std::chrono::seconds{5};
  p.inquiry_duration = std::chrono::milliseconds{500};
  p.asymmetric_discovery = false;
  p.fetch_time = std::chrono::milliseconds{50};
  p.fetch_failure_prob = 0.01;
  p.connect_delay_min_s = 0.2;
  p.connect_delay_max_s = 1.0;
  p.connect_failure_prob = 0.02;
  p.per_hop_latency = std::chrono::milliseconds{5};
  p.bytes_per_second = 1'000'000.0;
  return p;
}

TechnologyParams gprs_params() {
  TechnologyParams p;
  p.tech = Technology::kGprs;
  p.range_m = 2000.0;  // cellular cell radius
  p.inquiry_interval = std::chrono::seconds{15};
  p.inquiry_duration = std::chrono::milliseconds{200};
  p.asymmetric_discovery = false;
  p.fetch_time = std::chrono::milliseconds{400};
  p.fetch_failure_prob = 0.03;
  p.connect_delay_min_s = 1.0;
  p.connect_delay_max_s = 3.0;
  p.connect_failure_prob = 0.05;
  p.per_hop_latency = std::chrono::milliseconds{350};
  p.bytes_per_second = 6'000.0;
  return p;
}

TechnologyParams default_params(Technology tech) {
  switch (tech) {
    case Technology::kBluetooth: return bluetooth_params();
    case Technology::kWlan: return wlan_params();
    case Technology::kGprs: return gprs_params();
  }
  return bluetooth_params();
}

double LinkQualityModel::shadow_offset(std::uint64_t link_key) const {
  if (shadow_sigma <= 0.0) return 0.0;
  // One splitmix-seeded draw per (seed, link): deterministic for the run,
  // decorrelated across links.
  Rng rng{shadow_seed ^ (link_key * 0x9e3779b97f4a7c15ULL + 1)};
  return rng.gaussian(0.0, shadow_sigma);
}

double LinkQualityModel::base_quality(double distance_m, double range_m,
                                      std::uint64_t link_key) const {
  if (distance_m > range_m || range_m <= 0.0) return 0.0;
  const double frac = std::clamp(distance_m / range_m, 0.0, 1.0);
  const double span = static_cast<double>(q_max - q_edge);
  double q = q_max;
  switch (law) {
    case PathLossLaw::kConcavePower:
      q -= span * std::pow(frac, exponent);
      break;
    case PathLossLaw::kLogDistance:
      // log10(1 + 9·frac) runs 0 -> 1 over the coverage: steep attenuation
      // near the transmitter, flat toward the edge.
      q -= span * std::log10(1.0 + 9.0 * frac);
      break;
  }
  if (link_key != 0) q += shadow_offset(link_key);
  // May come back <= 0 under deep shadow: a dead link inside nominal
  // coverage, which finalize() reports as quality 0.
  return q;
}

int LinkQualityModel::finalize(double base, Rng* noise_rng) const {
  if (base <= 0.0) return 0;
  double q = base;
  if (noise_rng != nullptr && noise > 0.0) {
    q += noise_rng->uniform(-noise, noise);
  }
  return std::clamp(static_cast<int>(std::lround(q)), 1, 255);
}

int LinkQualityModel::quality(double distance_m, double range_m,
                              Rng* noise_rng, std::uint64_t link_key) const {
  return finalize(base_quality(distance_m, range_m, link_key), noise_rng);
}

}  // namespace peerhood::sim
