#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace peerhood::sim {

EventId EventQueue::schedule(SimTime at, std::function<void()> action) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  actions_.emplace(id, std::move(action));
  ++live_count_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (actions_.erase(id) > 0) --live_count_;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && !actions_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  assert(!heap_.empty());
  return heap_.top().at;
}

SimTime EventQueue::run_next() {
  drop_cancelled();
  assert(!heap_.empty());
  const Entry entry = heap_.top();
  heap_.pop();
  auto node = actions_.extract(entry.id);
  assert(!node.empty());
  --live_count_;
  node.mapped()();
  return entry.at;
}

}  // namespace peerhood::sim
