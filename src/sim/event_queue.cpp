#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace peerhood::sim {

namespace {
constexpr std::uint64_t kAllOnes = ~std::uint64_t{0};
}  // namespace

EventQueue::EventQueue()
    : buckets_(kWheelSize), occupancy_(kWheelWords, 0),
      buckets2_(kWheel2Size) {}

std::uint32_t EventQueue::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  return slot;
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (++s.gen == 0) ++s.gen;  // generation 0 is reserved for kInvalidEvent
  s.state = SlotState::kIdle;
  s.next = kNilSlot;
  free_slots_.push_back(slot);
}

EventId EventQueue::schedule(SimTime at, InlineCallable action) {
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.action = std::move(action);
  s.at = at;
  s.seq = next_seq_++;
  const EventId id = make_id(s.gen, slot);
  const std::int64_t at_us = at.since_epoch.count();
  const std::int64_t delta_us = (at - now_).count();
  if (delta_us >= 0 && delta_us < static_cast<std::int64_t>(kWheelSize)) {
    s.state = SlotState::kWheelLive;
    wheel_append(bucket_of(at_us), slot);
  } else if (delta_us > 0 &&
             frame_of(at_us) - frame_of(now_.since_epoch.count()) <
                 static_cast<std::int64_t>(kWheel2Size)) {
    s.state = SlotState::kWheel2Live;
    wheel2_append(static_cast<std::size_t>(frame_of(at_us)) & kWheel2Mask,
                  slot);
  } else {
    // Past deadlines (delta < 0) also land here; run_next flushes the wheels
    // if and when the clock actually moves backwards to fire one.
    s.state = SlotState::kHeapLive;
    heap_push(Entry{at, s.seq, id});
  }
  ++live_count_;
  return id;
}

void EventQueue::advance_window(SimTime t) {
  if (t <= now_) return;
  assert(empty() || next_time() >= t);
  now_ = t;
}

void EventQueue::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size() || !is_live(id)) return;
  Slot& s = slots_[slot];
  s.action.reset();
  if (s.state == SlotState::kWheelLive) {
    // Invalidate the id now; the slot itself is recycled when the bucket
    // chain physically unlinks it (wheel_peek, flush, or reset_stale).
    s.state = SlotState::kWheelCancelled;
    if (++s.gen == 0) ++s.gen;
  } else if (s.state == SlotState::kWheel2Live) {
    // Same deferral: the frame bucket unlinks it on cascade/flush/reset.
    s.state = SlotState::kWheel2Cancelled;
    if (++s.gen == 0) ++s.gen;
  } else {
    release_slot(slot);
  }
  if (--live_count_ == 0) reset_stale();
}

void EventQueue::reset_stale() {
  // Heap entries' slots were already released when they were cancelled;
  // dropping the entries is enough.
  heap_.clear();
  for (std::size_t word = 0; word < kWheel2Words; ++word) {
    std::uint64_t bits = occupancy2_[word];
    while (bits != 0) {
      const std::size_t bucket =
          (word << 6) | std::size_t(std::countr_zero(bits));
      bits &= bits - 1;
      while (buckets2_[bucket].head != kNilSlot) {
        const std::uint32_t slot = wheel2_pop_head(bucket);
        slots_[slot].state = SlotState::kIdle;
        free_slots_.push_back(slot);
      }
    }
  }
  for (std::size_t sword = 0; sword < kSummaryWords; ++sword) {
    std::uint64_t sbits = occupancy_summary_[sword];
    while (sbits != 0) {
      const std::size_t word =
          (sword << 6) | std::size_t(std::countr_zero(sbits));
      sbits &= sbits - 1;
      std::uint64_t bits = occupancy_[word];
      while (bits != 0) {
        const std::size_t bucket =
            (word << 6) | std::size_t(std::countr_zero(bits));
        bits &= bits - 1;
        while (buckets_[bucket].head != kNilSlot) {
          const std::uint32_t slot = wheel_pop_head(bucket);
          slots_[slot].state = SlotState::kIdle;
          free_slots_.push_back(slot);
        }
      }
    }
  }
}

// --- wheel -------------------------------------------------------------------

void EventQueue::occupancy_set(std::size_t bucket) const {
  const std::size_t word = bucket >> 6;
  occupancy_[word] |= std::uint64_t{1} << (bucket & 63);
  occupancy_summary_[word >> 6] |= std::uint64_t{1} << (word & 63);
}

void EventQueue::occupancy_clear(std::size_t bucket) const {
  const std::size_t word = bucket >> 6;
  occupancy_[word] &= ~(std::uint64_t{1} << (bucket & 63));
  if (occupancy_[word] == 0) {
    occupancy_summary_[word >> 6] &= ~(std::uint64_t{1} << (word & 63));
  }
}

void EventQueue::wheel_append(std::size_t bucket, std::uint32_t slot) {
  Bucket& b = buckets_[bucket];
  slots_[slot].next = kNilSlot;
  if (b.head == kNilSlot) {
    b.head = b.tail = slot;
    occupancy_set(bucket);
  } else {
    slots_[b.tail].next = slot;
    b.tail = slot;
  }
}

std::uint32_t EventQueue::wheel_pop_head(std::size_t bucket) const {
  Bucket& b = buckets_[bucket];
  const std::uint32_t head = b.head;
  assert(head != kNilSlot);
  b.head = slots_[head].next;
  if (b.head == kNilSlot) {
    b.tail = kNilSlot;
    occupancy_clear(bucket);
  }
  slots_[head].next = kNilSlot;
  return head;
}

std::size_t EventQueue::wheel_scan(std::size_t start) const {
  const std::size_t start_word = start >> 6;
  const std::uint64_t head_bits =
      occupancy_[start_word] & (kAllOnes << (start & 63));
  if (head_bits != 0) {
    return (start_word << 6) | std::size_t(std::countr_zero(head_bits));
  }
  // Walk the summary cyclically; the final iteration re-reads the starting
  // word in full, covering buckets cyclically "behind" the start position.
  std::size_t sword = start_word >> 6;
  const std::size_t sbit = start_word & 63;
  std::uint64_t sbits =
      occupancy_summary_[sword] & (sbit == 63 ? 0 : kAllOnes << (sbit + 1));
  for (std::size_t i = 0; i <= kSummaryWords; ++i) {
    if (sbits != 0) {
      const std::size_t word =
          (sword << 6) | std::size_t(std::countr_zero(sbits));
      return (word << 6) | std::size_t(std::countr_zero(occupancy_[word]));
    }
    sword = (sword + 1) & (kSummaryWords - 1);
    sbits = occupancy_summary_[sword];
  }
  return kNoBucket;
}

std::size_t EventQueue::wheel_peek() const {
  const std::size_t start = bucket_of(now_.since_epoch.count());
  for (;;) {
    const std::size_t bucket = wheel_scan(start);
    if (bucket == kNoBucket) return kNoBucket;
    Bucket& b = buckets_[bucket];
    while (b.head != kNilSlot &&
           slots_[b.head].state == SlotState::kWheelCancelled) {
      const std::uint32_t slot = wheel_pop_head(bucket);
      // Generation was already bumped at cancel; just recycle the storage.
      slots_[slot].state = SlotState::kIdle;
      free_slots_.push_back(slot);
    }
    if (b.head != kNilSlot) return bucket;
    // Bucket held only cancelled events (occupancy got cleared): rescan.
  }
}

void EventQueue::flush_wheel_to_heap() {
  for (std::size_t sword = 0; sword < kSummaryWords; ++sword) {
    std::uint64_t sbits = occupancy_summary_[sword];
    while (sbits != 0) {
      const std::size_t word =
          (sword << 6) | std::size_t(std::countr_zero(sbits));
      sbits &= sbits - 1;
      std::uint64_t bits = occupancy_[word];
      while (bits != 0) {
        const std::size_t bucket =
            (word << 6) | std::size_t(std::countr_zero(bits));
        bits &= bits - 1;
        while (buckets_[bucket].head != kNilSlot) {
          const std::uint32_t slot = wheel_pop_head(bucket);
          Slot& s = slots_[slot];
          if (s.state == SlotState::kWheelCancelled) {
            s.state = SlotState::kIdle;
            free_slots_.push_back(slot);
          } else {
            s.state = SlotState::kHeapLive;
            heap_push(Entry{s.at, s.seq, make_id(s.gen, slot)});
          }
        }
      }
    }
  }
  for (std::size_t word = 0; word < kWheel2Words; ++word) {
    std::uint64_t bits = occupancy2_[word];
    while (bits != 0) {
      const std::size_t bucket =
          (word << 6) | std::size_t(std::countr_zero(bits));
      bits &= bits - 1;
      while (buckets2_[bucket].head != kNilSlot) {
        const std::uint32_t slot = wheel2_pop_head(bucket);
        Slot& s = slots_[slot];
        if (s.state == SlotState::kWheel2Cancelled) {
          s.state = SlotState::kIdle;
          free_slots_.push_back(slot);
        } else {
          s.state = SlotState::kHeapLive;
          heap_push(Entry{s.at, s.seq, make_id(s.gen, slot)});
        }
      }
    }
  }
}

// --- second-level wheel ------------------------------------------------------

void EventQueue::occupancy2_set(std::size_t bucket) const {
  occupancy2_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
}

void EventQueue::occupancy2_clear(std::size_t bucket) const {
  occupancy2_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
}

void EventQueue::wheel2_append(std::size_t bucket, std::uint32_t slot) {
  Bucket& b = buckets2_[bucket];
  slots_[slot].next = kNilSlot;
  if (b.head == kNilSlot) {
    b.head = b.tail = slot;
    occupancy2_set(bucket);
  } else {
    slots_[b.tail].next = slot;
    b.tail = slot;
  }
}

std::uint32_t EventQueue::wheel2_pop_head(std::size_t bucket) const {
  Bucket& b = buckets2_[bucket];
  const std::uint32_t head = b.head;
  assert(head != kNilSlot);
  b.head = slots_[head].next;
  if (b.head == kNilSlot) {
    b.tail = kNilSlot;
    occupancy2_clear(bucket);
  }
  slots_[head].next = kNilSlot;
  return head;
}

std::size_t EventQueue::wheel2_scan(std::size_t start) const {
  const std::size_t start_word = start >> 6;
  std::uint64_t bits = occupancy2_[start_word] & (kAllOnes << (start & 63));
  std::size_t word = start_word;
  // The final iteration re-reads the starting word in full, covering
  // buckets cyclically "behind" the start position.
  for (std::size_t i = 0; i <= kWheel2Words; ++i) {
    if (bits != 0) {
      return (word << 6) | std::size_t(std::countr_zero(bits));
    }
    word = (word + 1) & (kWheel2Words - 1);
    bits = occupancy2_[word];
  }
  return kNoBucket2;
}

void EventQueue::wheel_insert_sorted(std::size_t bucket,
                                     std::uint32_t slot) const {
  // Bucket chains are always seq-increasing: appends carry the globally
  // newest seq, and this path preserves the order — so a single walk finds
  // the insertion point.
  Bucket& b = buckets_[bucket];
  slots_[slot].next = kNilSlot;
  if (b.head == kNilSlot) {
    b.head = b.tail = slot;
    occupancy_set(bucket);
    return;
  }
  if (slots_[slot].seq > slots_[b.tail].seq) {
    slots_[b.tail].next = slot;
    b.tail = slot;
    return;
  }
  std::uint32_t prev = kNilSlot;
  std::uint32_t cur = b.head;
  while (cur != kNilSlot && slots_[cur].seq < slots_[slot].seq) {
    prev = cur;
    cur = slots_[cur].next;
  }
  slots_[slot].next = cur;
  if (prev == kNilSlot) {
    b.head = slot;
  } else {
    slots_[prev].next = slot;
  }
}

void EventQueue::cascade_frame(std::size_t bucket) const {
  // Reconstruct the frame this bucket represents (unique within one wheel
  // revolution of the current frame; a debris-only bucket may reconstruct
  // to an earlier frame, which only makes the window slide conservative).
  const std::int64_t cur_frame = frame_of(now_.since_epoch.count());
  const std::size_t start = static_cast<std::size_t>(cur_frame) & kWheel2Mask;
  const std::int64_t frame =
      cur_frame + static_cast<std::int64_t>((bucket - start) & kWheel2Mask);
  const SimTime frame_start =
      SimTime{} + microseconds(frame << kWheelBits);
  if (frame_start > now_) now_ = frame_start;
  while (buckets2_[bucket].head != kNilSlot) {
    const std::uint32_t slot = wheel2_pop_head(bucket);
    Slot& s = slots_[slot];
    if (s.state == SlotState::kWheel2Cancelled) {
      s.state = SlotState::kIdle;
      free_slots_.push_back(slot);
    } else {
      assert(s.state == SlotState::kWheel2Live);
      assert(s.at >= now_ && (s.at - now_).count() <
                                 static_cast<std::int64_t>(kWheelSize));
      s.state = SlotState::kWheelLive;
      wheel_insert_sorted(bucket_of(s.at.since_epoch.count()), slot);
    }
  }
}

// --- far-event heap ----------------------------------------------------------

void EventQueue::heap_push(const Entry& entry) const {
  heap_.push_back(entry);
  // Sift up with a hole: shift parents down, write the entry once at the end.
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventQueue::heap_pop_top() const {
  assert(!heap_.empty());
  const Entry last = heap_.back();
  heap_.pop_back();
  if (heap_.empty()) return;
  // Sift the former tail down from the root, again with a hole.
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t end_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < end_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

// --- pop paths ---------------------------------------------------------------

EventQueue::Candidate EventQueue::peek() const {
  for (;;) {
    while (!heap_.empty() && !is_live(heap_.front().id)) {
      heap_pop_top();
    }
    const std::size_t bucket = wheel_peek();
    Candidate c;
    if (bucket != kNoBucket) {
      const SimTime wheel_at = slots_[buckets_[bucket].head].at;
      if (heap_.empty() || wheel_at < heap_.front().at ||
          (wheel_at == heap_.front().at &&
           slots_[buckets_[bucket].head].seq < heap_.front().seq)) {
        c.any = true;
        c.from_wheel = true;
        c.at = wheel_at;
        c.bucket = bucket;
      }
    }
    if (!c.any && !heap_.empty()) {
      c.any = true;
      c.from_wheel = false;
      c.at = heap_.front().at;
    }
    // The winner so far beats the second wheel only if it fires strictly
    // before the earliest occupied frame could; on a tie (or no winner) the
    // frame cascades into the first wheel and the comparison reruns exactly.
    const std::size_t start2 =
        static_cast<std::size_t>(frame_of(now_.since_epoch.count())) &
        kWheel2Mask;
    const std::size_t b2 = wheel2_scan(start2);
    if (b2 == kNoBucket2) return c;
    const std::int64_t cur_frame = frame_of(now_.since_epoch.count());
    const std::int64_t frame =
        cur_frame + static_cast<std::int64_t>((b2 - start2) & kWheel2Mask);
    const SimTime frame_start = SimTime{} + microseconds(frame << kWheelBits);
    if (c.any && c.at < frame_start) return c;
    cascade_frame(b2);
  }
}

SimTime EventQueue::next_time() const {
  const Candidate c = peek();
  assert(c.any);
  return c.at;
}

SimTime EventQueue::run_next() {
  const Candidate c = peek();
  assert(c.any);
  std::uint32_t slot;
  if (c.from_wheel) {
    slot = wheel_pop_head(c.bucket);
  } else {
    slot = slot_of(heap_.front().id);
    heap_pop_top();
  }
  // The clock reached c.at: the wheel window slides forward with it. When a
  // past-scheduled heap event moves the clock *backwards*, the window base
  // shifts under any wheel entries scheduled meanwhile — spill them first.
  if (c.at < now_) flush_wheel_to_heap();
  now_ = c.at;
  InlineCallable action = std::move(slots_[slot].action);
  release_slot(slot);
  if (--live_count_ == 0) reset_stale();
  action();
  return c.at;
}

}  // namespace peerhood::sim
