// 2-D geometry for device positions (metres).
#pragma once

#include <cmath>

namespace peerhood::sim {

struct Vec2 {
  double x{0.0};
  double y{0.0};

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator*(Vec2 a, double k) {
    return {a.x * k, a.y * k};
  }
  friend constexpr bool operator==(Vec2 a, Vec2 b) {
    return a.x == b.x && a.y == b.y;
  }

  [[nodiscard]] double norm() const { return std::hypot(x, y); }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

}  // namespace peerhood::sim
