// The pre-arena event queue, retained verbatim as a reference
// implementation: std::priority_queue of (time, seq) entries plus an
// unordered_map from EventId to a std::function action — one map-node
// allocation per event and a heap-allocated closure for captures beyond
// std::function's tiny inline buffer.
//
// Like `RadioMedium::in_range_of_brute` for the spatial grid, this is the
// oracle for the pooled EventQueue: the randomized parity tests drive both
// queues through identical schedule/cancel/fire interleavings and require
// identical (time, insertion-order) fire sequences, and bench_event_core
// uses it as the before/after baseline for the schedule→fire hot loop.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/sim_time.hpp"

namespace peerhood::sim {

class ReferenceEventQueue {
 public:
  using EventId = std::uint64_t;

  EventId schedule(SimTime at, std::function<void()> action) {
    const EventId id = next_id_++;
    heap_.push(Entry{at, next_seq_++, id});
    actions_.emplace(id, std::move(action));
    ++live_count_;
    return id;
  }

  void cancel(EventId id) {
    if (actions_.erase(id) > 0) --live_count_;
  }

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  [[nodiscard]] SimTime next_time() const {
    drop_cancelled();
    assert(!heap_.empty());
    return heap_.top().at;
  }

  SimTime run_next() {
    drop_cancelled();
    assert(!heap_.empty());
    const Entry entry = heap_.top();
    heap_.pop();
    auto node = actions_.extract(entry.id);
    assert(!node.empty());
    --live_count_;
    node.mapped()();
    return entry.at;
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    EventId id;

    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() const {
    while (!heap_.empty() && !actions_.contains(heap_.top().id)) {
      heap_.pop();
    }
  }

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> actions_;
  std::uint64_t next_seq_{1};
  EventId next_id_{1};
  std::size_t live_count_{0};
};

}  // namespace peerhood::sim
