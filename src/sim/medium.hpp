// The shared radio medium: tracks every (device, technology) endpoint, its
// mobility, discoverability and inquiry state, answers range/quality queries
// and delivers unicast frames with per-technology latency, bandwidth and
// in-order guarantees. Everything above (sockets, plugins, daemon) is built
// on these primitives.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/mac_address.hpp"
#include "sim/mobility.hpp"
#include "sim/radio.hpp"
#include "sim/simulator.hpp"
#include "sim/vec2.hpp"

namespace peerhood::sim {

struct TrafficStats {
  std::uint64_t inquiries{0};
  std::uint64_t inquiry_responses{0};
  std::uint64_t frames{0};
  std::uint64_t frame_bytes{0};
  std::uint64_t drops{0};
};

class RadioMedium {
 public:
  using FrameHandler =
      std::function<void(MacAddress from, const Bytes& frame)>;

  explicit RadioMedium(Simulator& sim, LinkQualityModel quality_model = {});

  RadioMedium(const RadioMedium&) = delete;
  RadioMedium& operator=(const RadioMedium&) = delete;

  // Replaces the parameter set for one technology (defaults are installed
  // for all three at construction).
  void configure(const TechnologyParams& params);
  [[nodiscard]] const TechnologyParams& params(Technology tech) const;
  [[nodiscard]] const LinkQualityModel& quality_model() const {
    return quality_model_;
  }

  // --- Endpoint registry ---------------------------------------------------
  void register_endpoint(MacAddress mac, Technology tech,
                         std::shared_ptr<const MobilityModel> mobility,
                         FrameHandler handler);
  void unregister_endpoint(MacAddress mac, Technology tech);
  [[nodiscard]] bool has_endpoint(MacAddress mac, Technology tech) const;

  void set_discoverable(MacAddress mac, Technology tech, bool discoverable);
  void set_inquiring(MacAddress mac, Technology tech, bool inquiring);
  // The "PeerHood tag" found via SDP query (§2.3); endpoints without it are
  // detected but not PeerHood capable.
  void set_peerhood_tag(MacAddress mac, Technology tech, bool tagged);
  [[nodiscard]] bool peerhood_tag(MacAddress mac, Technology tech) const;

  // --- Geometry / link quality ---------------------------------------------
  [[nodiscard]] std::optional<Vec2> position_of(MacAddress mac,
                                                Technology tech) const;
  [[nodiscard]] double distance(MacAddress a, MacAddress b,
                                Technology tech) const;
  [[nodiscard]] bool in_range(MacAddress a, MacAddress b,
                              Technology tech) const;
  // Noisy sample of the RSSI-style quality (0 when out of range / missing).
  [[nodiscard]] int sample_quality(MacAddress a, MacAddress b,
                                   Technology tech);
  // Noise-free quality (for analytical benches).
  [[nodiscard]] int expected_quality(MacAddress a, MacAddress b,
                                     Technology tech) const;

  // Endpoints (other than `mac`) currently within radio range.
  [[nodiscard]] std::vector<MacAddress> in_range_of(MacAddress mac,
                                                    Technology tech) const;
  // As above, but honouring discoverability and the Bluetooth inquiry
  // asymmetry: a device that is itself inquiring does not respond (§3.4.2).
  [[nodiscard]] std::vector<MacAddress> discoverable_in_range(
      MacAddress mac, Technology tech) const;

  // --- Frame transport -------------------------------------------------------
  // Unicast, in-order per (from,to,tech) direction. The frame is dropped
  // (stats.drops++) if the peers are out of range at delivery time.
  void send_frame(MacAddress from, MacAddress to, Technology tech,
                  Bytes frame);

  [[nodiscard]] TrafficStats& stats() { return stats_; }
  [[nodiscard]] Simulator& simulator() { return sim_; }

 private:
  struct Endpoint {
    MacAddress mac;
    Technology tech;
    std::shared_ptr<const MobilityModel> mobility;
    FrameHandler handler;
    bool discoverable{true};
    bool inquiring{false};
    bool peerhood_tag{true};
  };

  using Key = std::pair<std::uint64_t, std::uint8_t>;  // (mac, tech)
  [[nodiscard]] static Key key(MacAddress mac, Technology tech) {
    return {mac.as_u64(), static_cast<std::uint8_t>(tech)};
  }

  [[nodiscard]] const Endpoint* find(MacAddress mac, Technology tech) const;
  [[nodiscard]] Endpoint* find(MacAddress mac, Technology tech);

  Simulator& sim_;
  LinkQualityModel quality_model_;
  Rng noise_rng_;
  std::map<Key, Endpoint> endpoints_;
  std::map<std::uint8_t, TechnologyParams> params_;
  // Last scheduled delivery per directed (from, to, tech) — preserves frame
  // ordering within a direction.
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint8_t>, SimTime>
      last_delivery_;
  TrafficStats stats_;
};

}  // namespace peerhood::sim
