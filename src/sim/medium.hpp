// The shared radio medium: tracks every (device, technology) endpoint, its
// mobility, discoverability and inquiry state, answers range/quality queries
// and delivers unicast frames with per-technology latency, bandwidth and
// in-order guarantees. Everything above (sockets, plugins, daemon) is built
// on these primitives.
//
// Neighbour queries are served by a per-technology uniform spatial grid
// (cell edge == radio range) instead of a linear scan, and every endpoint's
// mobility model is sampled at most once per distinct simulation time via a
// generation-tagged position cache. Complexity per discovery round:
//
//            | pre-grid                 | grid + cache
//   ---------+--------------------------+---------------------------------
//   in_range_of / discoverable_in_range
//            | O(N) position_at calls   | O(local density) after one
//            |   per query -> O(N^2)    |   O(N) rebuild per SimTime
//   in_range / distance / quality
//            | 2 position_at per call   | cached, once per SimTime
//
// The grid is rebuilt lazily when the clock advances (the Simulator time
// observer bumps `position_gen_`) and maintained incrementally while time
// stands still (register/unregister between events).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/mac_address.hpp"
#include "sim/fault.hpp"
#include "sim/mobility.hpp"
#include "sim/radio.hpp"
#include "sim/simulator.hpp"
#include "sim/spatial_grid.hpp"
#include "sim/vec2.hpp"

namespace peerhood::sim {

struct TrafficStats {
  std::uint64_t inquiries{0};
  std::uint64_t inquiry_responses{0};
  std::uint64_t frames{0};
  std::uint64_t frame_bytes{0};
  std::uint64_t drops{0};

  // Shard-mergeable: send-side counters accrue on the sending shard's
  // replica, delivery drops on the receiving shard's — the merged totals of
  // a sharded run must equal a single-shard run of the same workload.
  TrafficStats& operator+=(const TrafficStats& other) {
    inquiries += other.inquiries;
    inquiry_responses += other.inquiry_responses;
    frames += other.frames;
    frame_bytes += other.frame_bytes;
    drops += other.drops;
    return *this;
  }
};

// Counters for the link-quality plane. `evaluations` counts actual
// distance -> path-loss computations; `cache_hits` repeats served from the
// per-SimTime link cache; `observer_evals` observer re-checks (the
// O(moved endpoints) bound is asserted against this one); `events_emitted`
// threshold/coverage crossing callbacks delivered.
struct QualityStats {
  std::uint64_t evaluations{0};
  std::uint64_t cache_hits{0};
  std::uint64_t observer_evals{0};
  std::uint64_t events_emitted{0};

  // Per-shard-mergeable: each replica's observer tick walk only counts the
  // links it evaluates locally; totals across shards add up instead of
  // being recomputed globally on every walk.
  QualityStats& operator+=(const QualityStats& other) {
    evaluations += other.evaluations;
    cache_hits += other.cache_hits;
    observer_evals += other.observer_evals;
    events_emitted += other.events_emitted;
    return *this;
  }
};

// A threshold/coverage crossing on an observed link, pushed by the medium to
// subscribers (the predictive handover engine) instead of being polled.
struct LinkQualityEvent {
  enum class Edge : std::uint8_t {
    kFell,      // quality crossed below the observer's threshold
    kRose,      // quality recovered above threshold + hysteresis
    // Left coverage, or an endpoint vanished. Crossings are detected on the
    // link's next evaluation, which requires a surviving *mobile* endpoint:
    // if the only mobile side of a link unregisters (daemon churn), no
    // kLost is pushed — the transport keepalive / reactive monitor is the
    // detector for that case.
    kLost,
    kRestored,  // re-entered coverage
  };

  MacAddress a;  // the subscribing side, as passed to observe_quality
  MacAddress b;
  Technology tech{Technology::kBluetooth};
  Edge edge{Edge::kFell};
  // Noise-free (shadowed) quality at `at`; 0 when out of range.
  int quality{0};
  // Signed quality slope (units/s) derived from the mobility models'
  // velocities — negative while the endpoints separate.
  double slope_per_s{0.0};
  double distance_m{0.0};
  // d(distance)/dt in m/s; positive = separating. With distance_m and the
  // technology range this is what time-to-loss prediction runs on.
  double radial_speed_mps{0.0};
  SimTime at;
};

struct QualityObserverConfig {
  int threshold{LinkQualityModel::kDefaultThreshold};
  // kRose only fires once quality clears threshold + hysteresis, so a link
  // hovering at the threshold cannot chatter fell/rose every tick.
  int hysteresis{5};
  // A link is re-evaluated at most once per min_interval no matter how many
  // events advance the clock.
  SimDuration min_interval{std::chrono::milliseconds{100}};
};

// Slot+generation handle, same scheme as EventId: stale unsubscribes are
// detected and ignored, so unsubscribe is idempotent.
using QualityObserverId = std::uint64_t;
inline constexpr QualityObserverId kInvalidQualityObserver = 0;

class RadioMedium {
 public:
  using FrameHandler =
      std::function<void(MacAddress from, const Bytes& frame)>;
  // Frames travel through the medium as shared immutable buffers: the
  // payload is allocated once by the sender and every queued delivery event
  // captures a 16-byte reference, never a copy of the bytes.
  using FramePtr = std::shared_ptr<const Bytes>;

  explicit RadioMedium(Simulator& sim, LinkQualityModel quality_model = {});
  ~RadioMedium();

  RadioMedium(const RadioMedium&) = delete;
  RadioMedium& operator=(const RadioMedium&) = delete;

  // Replaces the parameter set for one technology (defaults are installed
  // for all three at construction). Resizes that technology's grid cells.
  void configure(const TechnologyParams& params);
  [[nodiscard]] const TechnologyParams& params(Technology tech) const;
  [[nodiscard]] const LinkQualityModel& quality_model() const {
    return quality_model_;
  }

  // --- Endpoint registry ---------------------------------------------------
  void register_endpoint(MacAddress mac, Technology tech,
                         std::shared_ptr<const MobilityModel> mobility,
                         FrameHandler handler);
  void unregister_endpoint(MacAddress mac, Technology tech);
  [[nodiscard]] bool has_endpoint(MacAddress mac, Technology tech) const;

  void set_discoverable(MacAddress mac, Technology tech, bool discoverable);
  void set_inquiring(MacAddress mac, Technology tech, bool inquiring);
  // The "PeerHood tag" found via SDP query (§2.3); endpoints without it are
  // detected but not PeerHood capable.
  void set_peerhood_tag(MacAddress mac, Technology tech, bool tagged);
  [[nodiscard]] bool peerhood_tag(MacAddress mac, Technology tech) const;

  // --- Geometry / link quality ---------------------------------------------
  [[nodiscard]] std::optional<Vec2> position_of(MacAddress mac,
                                                Technology tech) const;
  [[nodiscard]] double distance(MacAddress a, MacAddress b,
                                Technology tech) const;
  [[nodiscard]] bool in_range(MacAddress a, MacAddress b,
                              Technology tech) const;
  // Noisy sample of the RSSI-style quality (0 when out of range / missing).
  // The noise-free part is served from the per-SimTime link cache: repeated
  // reads of one link within a tick cost one distance evaluation.
  [[nodiscard]] int sample_quality(MacAddress a, MacAddress b,
                                   Technology tech);
  // Noise-free quality (for analytical benches and the observer plane).
  [[nodiscard]] int expected_quality(MacAddress a, MacAddress b,
                                     Technology tech) const;

  // --- Push-based quality observers ----------------------------------------
  // Subscribes to threshold/coverage crossings on the (a, b) link. The
  // medium re-evaluates an observed link only when the clock advances AND at
  // least one of its endpoints is mobile — a scenario tick costs
  // O(observers on moved endpoints), not O(subscribers) polls. The first
  // evaluation happens synchronously (priming the edge detector) but emits
  // nothing; only crossings after subscription are pushed.
  //
  // Handler lifecycle follows the HandlerSlot rules: the handler is pinned
  // before each call, so a callback may unsubscribe any observer (including
  // itself), subscribe new ones, or destroy its owning controller. It must
  // not register/unregister endpoints or destroy the medium.
  using QualityHandler = std::function<void(const LinkQualityEvent&)>;
  QualityObserverId observe_quality(MacAddress a, MacAddress b,
                                    Technology tech,
                                    QualityObserverConfig config,
                                    QualityHandler handler);
  // Idempotent; stale ids (already unsubscribed, or from a reused slot) are
  // ignored. Safe to call from inside a quality event.
  void unobserve_quality(QualityObserverId id);
  [[nodiscard]] std::size_t quality_observer_count() const {
    return live_observers_;
  }
  [[nodiscard]] const QualityStats& quality_stats() const {
    return quality_stats_;
  }
  // One-shot measurement of a link in observer-event form (edge is
  // meaningless here): noise-free quality, distance, radial speed and
  // quality slope. What an armed predictor polls between crossing events.
  [[nodiscard]] LinkQualityEvent probe_link(MacAddress a, MacAddress b,
                                            Technology tech) const;

  // Endpoints (other than `mac`) currently within radio range, in ascending
  // MAC order (the ordering contract shared with in_range_of_brute).
  [[nodiscard]] std::vector<MacAddress> in_range_of(MacAddress mac,
                                                    Technology tech) const;
  // Reference linear-scan implementation — one virtual position_at call per
  // registered endpoint, no grid, no cache. Kept as the oracle for the grid
  // parity tests and as the baseline for bench_medium_scale.
  [[nodiscard]] std::vector<MacAddress> in_range_of_brute(
      MacAddress mac, Technology tech) const;
  // As in_range_of, but honouring discoverability and the Bluetooth inquiry
  // asymmetry: a device that is itself inquiring does not respond (§3.4.2).
  [[nodiscard]] std::vector<MacAddress> discoverable_in_range(
      MacAddress mac, Technology tech) const;

  // --- Frame transport -------------------------------------------------------
  // Unicast, in-order per (from,to,tech) direction. The frame is dropped
  // (stats.drops++) if the peers are out of range at delivery time.
  void send_frame(MacAddress from, MacAddress to, Technology tech,
                  Bytes frame) {
    send_frame(from, to, tech,
               std::make_shared<const Bytes>(std::move(frame)));
  }
  // Copy-free variant: forwarding the same FramePtr across several hops
  // (bridging, relays) shares one payload allocation end to end.
  void send_frame(MacAddress from, MacAddress to, Technology tech,
                  FramePtr frame);

  // --- Sharding hooks --------------------------------------------------------
  // Terminal delivery of an already-scheduled frame: range-check at delivery
  // time and invoke the receiver's handler. send_frame's delivery events call
  // this; the sharded medium also calls it directly when a cross-shard frame
  // arrives on the owning replica.
  void deliver_frame(MacAddress from, MacAddress to, Technology tech,
                     const FramePtr& frame);

  // Remote-delivery interception point for the sharded medium. Called by
  // send_frame once the final delivery time is computed (fault judgement,
  // serialization delay and the in-order bump all included, so send-side
  // semantics are identical either way). Returning true claims the frame:
  // the local replica schedules no delivery event, and the router is
  // responsible for invoking deliver_frame on the owning shard's replica at
  // `deliver_at`. Returning false keeps ordinary local scheduling.
  using RemoteRouter = std::function<bool(
      MacAddress from, MacAddress to, Technology tech, SimTime deliver_at,
      const FramePtr& frame)>;
  void set_remote_router(RemoteRouter router) {
    remote_router_ = std::move(router);
  }

  // In-order state handoff for endpoint shard migration: a migrating
  // endpoint's *outbound* (from == mac) last-delivery entries move with it
  // — the in-order bump runs on the sender's replica, so the endpoint's
  // send-ordering state follows its owner while inbound entries stay with
  // each sender. export_ removes and returns the entries; import_ merges
  // them (keeping the later time on collision).
  using LastDeliveryEntry =
      std::pair<std::tuple<std::uint64_t, std::uint64_t, std::uint8_t>,
                SimTime>;
  [[nodiscard]] std::vector<LastDeliveryEntry> export_last_delivery(
      MacAddress mac);
  void import_last_delivery(const std::vector<LastDeliveryEntry>& entries);

  // The minimum per-hop frame latency across the configured technologies —
  // the binding lookahead of the conservative sharded core: no frame can
  // cross shards in less simulated time than this.
  [[nodiscard]] SimDuration min_per_hop_latency() const;

  // --- Fault injection -------------------------------------------------------
  // Lazily creates the fault plane. The dedicated RNG stream is forked on
  // first use, so runs that never touch the plane draw exactly the seed
  // sequences they always did (fault-free regression stays bit-stable).
  [[nodiscard]] LinkFaultModel& fault_plane();
  [[nodiscard]] bool has_fault_plane() const { return faults_ != nullptr; }
  // True while an active blackout window silences the (a, b) link. The
  // connection-establishment path and the inquiry plane honour partitions
  // too, not just in-flight data frames.
  [[nodiscard]] bool link_blacked_out(MacAddress a, MacAddress b,
                                      Technology tech) const;

  // Evicts `last_delivery_` entries whose delivery time has already passed —
  // they can no longer influence in-order bumping, since every new delivery
  // lands at or after `now`. Invoked automatically once the map crosses a
  // high-water mark, so long-running scenarios with many distinct
  // (from,to,tech) pairs stay bounded; public so tests and long-lived hosts
  // can force a sweep.
  void age_last_delivery();
  [[nodiscard]] std::size_t last_delivery_entries() const {
    return last_delivery_.size();
  }

  [[nodiscard]] TrafficStats& stats() { return stats_; }
  [[nodiscard]] Simulator& simulator() { return sim_; }

 private:
  struct Endpoint {
    MacAddress mac;
    Technology tech;
    std::shared_ptr<const MobilityModel> mobility;
    FrameHandler handler;
    bool discoverable{true};
    bool inquiring{false};
    bool peerhood_tag{true};
    // Static endpoints are sampled once and never re-indexed: the grid
    // refresh skips them entirely (mobility->is_static() at registration).
    bool is_static{false};
    // Position memoised against position_gen_; recomputed at most once per
    // distinct SimTime no matter how many queries touch this endpoint.
    mutable Vec2 cached_position{};
    mutable std::uint64_t cached_gen{0};
    // The position this endpoint's grid entry currently holds — the grid
    // refresh compares against it, so point queries that re-sample the
    // cache between refreshes cannot desynchronise the index.
    mutable Vec2 grid_position{};
    // Indices into observers_ watching a link that touches this endpoint.
    // Dead entries are dropped lazily during the per-tick walk.
    mutable std::vector<std::uint32_t> watchers;
  };

  struct QualityObserver {
    std::uint32_t gen{0};
    bool live{false};
    MacAddress a;
    MacAddress b;
    Technology tech{Technology::kBluetooth};
    QualityObserverConfig config{};
    // Pinned (shared_ptr copy) before every call — HandlerSlot discipline
    // without the slot, since observers are arena entries, not members.
    std::shared_ptr<const QualityHandler> handler;
    // Edge-detector state.
    bool below{false};
    bool in_range{false};
    SimTime next_eval{};
    std::uint64_t eval_gen{0};  // position_gen_ of the last evaluation
  };

  struct LinkCacheEntry {
    std::uint64_t gen{0};
    double distance{0.0};
    double base{0.0};  // noise-free shadowed quality; <= 0 = dead
  };

  struct TechState {
    TechnologyParams params{};
    SpatialGrid grid{1.0};
    // position_gen_ value the grid was built against; 0 = needs a full
    // rebuild (params changed / never built). A stale non-zero grid is
    // refreshed incrementally: only mobile endpoints are revisited (and of
    // those, only ones whose position moved touch their cells), so a
    // technology with no mobile endpoints revalidates in O(1) and a mostly
    // static deployment pays O(mobiles), not O(endpoints), per query tick.
    std::uint64_t grid_gen{0};
    // Registered endpoints whose mobility model is not static — the only
    // ones the incremental refresh must look at. Pointers stay valid:
    // endpoints_ is a node-stable map.
    std::vector<const Endpoint*> mobiles;
  };

  using Key = std::pair<std::uint64_t, std::uint8_t>;  // (mac, tech)
  [[nodiscard]] static Key key(MacAddress mac, Technology tech) {
    return {mac.as_u64(), static_cast<std::uint8_t>(tech)};
  }

  [[nodiscard]] static std::size_t tech_index(Technology tech);
  // Squared-distance range predicate shared by every in-range check (grid,
  // brute-force oracle, frame delivery) so their results are bit-identical.
  [[nodiscard]] static bool within_range(Vec2 a, Vec2 b, double range_m);

  [[nodiscard]] const Endpoint* find(MacAddress mac, Technology tech) const;
  [[nodiscard]] Endpoint* find(MacAddress mac, Technology tech);

  [[nodiscard]] Vec2 cached_position(const Endpoint& endpoint) const;
  [[nodiscard]] TechState& state(Technology tech) const;
  // Brings all stale technology grids current (single pass over the
  // endpoints); no-op when `ts`'s grid is already current. Never-built grids
  // are rebuilt wholesale, built ones refreshed incrementally (moved
  // endpoints only).
  void ensure_grid(TechState& ts) const;
  // In-range endpoints other than `origin`, ascending MAC order.
  void collect_in_range(const Endpoint& origin, TechState& ts,
                        std::vector<const Endpoint*>& out) const;

  // Per-SimTime link cache: distance + noise-free quality computed at most
  // once per distinct (link, SimTime) no matter how many reads hit it.
  [[nodiscard]] const LinkCacheEntry& link_cache_entry(const Endpoint& ea,
                                                       const Endpoint& eb)
      const;
  [[nodiscard]] static std::uint64_t link_shadow_key(MacAddress a,
                                                     MacAddress b,
                                                     Technology tech);
  // Re-checks observers attached to mobile endpoints; runs from the clock's
  // time observer, after position_gen_ was bumped.
  void evaluate_quality_observers();
  // One observer re-check: updates the edge detector and pushes crossing
  // events. Takes the index (not a reference): the handler may grow
  // observers_ reentrantly.
  void evaluate_observer(std::uint32_t index, SimTime now, bool emit);
  void attach_watcher(std::uint32_t index);

  Simulator& sim_;
  Simulator::TimeObserverId time_observer_{0};
  LinkQualityModel quality_model_;
  Rng noise_rng_;
  std::map<Key, Endpoint> endpoints_;
  mutable std::array<TechState, kTechnologyCount> tech_;
  // Bumped by the Simulator time observer whenever the clock advances; every
  // cached position / grid tagged with an older generation is stale.
  std::uint64_t position_gen_{1};
  // Last scheduled delivery per directed (from, to, tech) — preserves frame
  // ordering within a direction. Aged via age_last_delivery() once it grows
  // past last_delivery_sweep_limit_.
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint8_t>, SimTime>
      last_delivery_;
  std::size_t last_delivery_sweep_limit_{kLastDeliveryMinSweep};
  static constexpr std::size_t kLastDeliveryMinSweep = 64;
  TrafficStats stats_;
  // Null until fault_plane() is first called; the per-frame hot path pays
  // one pointer test when no faults were ever configured.
  std::unique_ptr<LinkFaultModel> faults_;
  // Null outside sharded runs; see set_remote_router.
  RemoteRouter remote_router_;

  // --- Link-quality plane ---------------------------------------------------
  std::vector<QualityObserver> observers_;
  std::vector<std::uint32_t> observer_free_;
  std::size_t live_observers_{0};
  // Keyed (min mac, max mac, tech); generation-tagged like the position
  // cache, swept when it outgrows the live working set.
  mutable std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint8_t>,
                   LinkCacheEntry>
      link_cache_;
  mutable std::size_t link_cache_sweep_limit_{kLastDeliveryMinSweep};
  mutable QualityStats quality_stats_;
};

}  // namespace peerhood::sim
