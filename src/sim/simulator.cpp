// Header-only kernel; this TU exists so the library has a home for future
// out-of-line definitions and to validate the header standalone.
#include "sim/simulator.hpp"
