#include "baseline/gnutella.hpp"

#include <deque>
#include <set>

namespace peerhood::baseline {

GnutellaOverlay GnutellaOverlay::from_medium(
    sim::RadioMedium& medium, const std::vector<MacAddress>& nodes,
    Technology tech) {
  Adjacency adjacency;
  for (const MacAddress node : nodes) {
    adjacency[node] = medium.in_range_of(node, tech);
  }
  return GnutellaOverlay{std::move(adjacency)};
}

GnutellaOverlay::SearchResult GnutellaOverlay::search(MacAddress origin,
                                                      MacAddress target,
                                                      int ttl) const {
  SearchResult result;
  if (!adjacency_.contains(origin)) return result;

  struct Hop {
    MacAddress node;
    MacAddress from;
    int depth;
  };
  // Gnutella floods: a node forwards the first copy of a query it sees to
  // all neighbours except the sender. Every forwarded copy is a message.
  std::set<MacAddress> forwarded;  // nodes that already forwarded
  std::deque<Hop> frontier;
  frontier.push_back(Hop{origin, origin, 0});
  forwarded.insert(origin);
  std::set<MacAddress> reached{origin};

  while (!frontier.empty()) {
    const Hop hop = frontier.front();
    frontier.pop_front();
    if (hop.depth >= ttl) continue;
    const auto it = adjacency_.find(hop.node);
    if (it == adjacency_.end()) continue;
    for (const MacAddress next : it->second) {
      if (next == hop.from) continue;
      ++result.query_messages;  // each copy crosses the air once
      reached.insert(next);
      if (next == target && result.hops_to_target < 0) {
        result.found = true;
        result.hops_to_target = hop.depth + 1;
      }
      if (forwarded.insert(next).second) {
        frontier.push_back(Hop{next, hop.node, hop.depth + 1});
      }
    }
  }
  result.nodes_reached = reached.size();
  return result;
}

std::uint64_t GnutellaOverlay::flood_messages(MacAddress origin,
                                              int ttl) const {
  // A ping flood has the same propagation pattern as a query flood.
  const SearchResult result = search(origin, MacAddress{}, ttl);
  return result.query_messages;
}

std::size_t GnutellaOverlay::edge_count() const {
  std::size_t degree_sum = 0;
  for (const auto& [node, neighbours] : adjacency_) {
    degree_sum += neighbours.size();
  }
  return degree_sum / 2;
}

}  // namespace peerhood::baseline
