// Gnutella-style flooding search (§3.2) — the baseline PeerHood's dynamic
// device discovery is designed against. Each node forwards a query to every
// neighbour except the sender until the TTL ("predetermined number of hops")
// expires; the result travels back along the query path. The biggest
// performance problem is "the huge network traffic generated due to the high
// number of query messages" — exactly what E3 quantifies.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/mac_address.hpp"
#include "sim/medium.hpp"

namespace peerhood::baseline {

class GnutellaOverlay {
 public:
  using Adjacency = std::map<MacAddress, std::vector<MacAddress>>;

  explicit GnutellaOverlay(Adjacency adjacency)
      : adjacency_{std::move(adjacency)} {}

  // Builds the overlay from current radio coverage: an edge exists between
  // endpoints in mutual range.
  [[nodiscard]] static GnutellaOverlay from_medium(
      sim::RadioMedium& medium, const std::vector<MacAddress>& nodes,
      Technology tech);

  struct SearchResult {
    bool found{false};
    // Query messages sent (every forward counts once).
    std::uint64_t query_messages{0};
    // Hops from the origin at which the target first received the query.
    int hops_to_target{-1};
    // Distinct nodes that saw the query.
    std::size_t nodes_reached{0};
  };

  // Floods a query for `target` from `origin` with the given TTL.
  [[nodiscard]] SearchResult search(MacAddress origin, MacAddress target,
                                    int ttl) const;

  // Messages for `origin` to discover the entire reachable network by
  // flooding (a ping sweep) — compare with PeerHood, where each node only
  // ever inquires its direct neighbours (§3.3: "the inquiry petition is not
  // repeated like Gnutella network").
  [[nodiscard]] std::uint64_t flood_messages(MacAddress origin, int ttl) const;

  [[nodiscard]] const Adjacency& adjacency() const { return adjacency_; }
  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const;

 private:
  Adjacency adjacency_;
};

}  // namespace peerhood::baseline
