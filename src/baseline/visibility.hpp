// Visibility metrics for the coverage-exclusion experiment (E1, Fig. 3.3):
// how much of the network a node can see with legacy two-jump vision [2]
// versus dynamic device discovery.
#pragma once

#include <cstddef>
#include <set>

#include "discovery/device_storage.hpp"

namespace peerhood::baseline {

// Devices the node can *route to* (records in storage).
[[nodiscard]] inline std::size_t routable_device_count(
    const DeviceStorage& storage) {
  return storage.size();
}

// Devices the node has *any information about*: storage records plus the
// neighbour lists attached to direct records (the legacy PeerHood [2]
// two-jump vision — it knows they exist but cannot reach them).
[[nodiscard]] inline std::size_t visible_device_count(
    const DeviceStorage& storage, MacAddress self) {
  std::set<MacAddress> seen;
  for (const DeviceRecord& record : storage.snapshot()) {
    seen.insert(record.device.mac);
    for (const NeighbourLink& link : record.neighbour_links) {
      if (link.mac != self) seen.insert(link.mac);
    }
  }
  return seen.size();
}

}  // namespace peerhood::baseline
