// BridgeService (Ch. 4): the hidden service started with every daemon that
// lets any device relay traffic between nodes that are not in mutual radio
// coverage. Implements the Fig. 4.3 connection process — receive PH_BRIDGE
// with destination address + service name, select the next hop from the
// *bridge's own* storage ("the suitable prototype and route selection of
// next connection will be always carried out by the bridge server and not
// the original device"), chain the connection, propagate the
// acknowledgement, then relay opaque traffic until either side closes.
//
// Connections are kept in one list with the paper's even/odd convention:
// each relayed pair stores its upstream connection at an even index and the
// downstream connection at the following odd index (§4.2).
#pragma once

#include <cstdint>
#include <vector>

#include "common/handler_slot.hpp"
#include "peerhood/daemon.hpp"
#include "peerhood/library.hpp"

namespace peerhood::bridge {

// The hidden service name advertised by bridging-capable daemons.
inline constexpr const char* kBridgeServiceName = "peerhood.bridge";

struct BridgeConfig {
  int max_connections{8};
  // §4.3: "the connection attempt repetition in the Bridge service design
  // would be necessary to guarantee a satisfactory connection".
  int connect_retries{1};
  SimDuration downstream_timeout{std::chrono::seconds{45}};
};

class BridgeService {
 public:
  struct Stats {
    std::uint64_t requests{0};
    std::uint64_t established{0};
    std::uint64_t failed_no_route{0};
    std::uint64_t failed_capacity{0};
    std::uint64_t failed_downstream{0};
    std::uint64_t retries{0};
    std::uint64_t relayed_frames{0};
    std::uint64_t relayed_bytes{0};
    std::uint64_t closed_pairs{0};
  };

  BridgeService(Daemon& daemon, Library& library, BridgeConfig config = {});
  ~BridgeService();

  BridgeService(const BridgeService&) = delete;
  BridgeService& operator=(const BridgeService&) = delete;

  // Registers the hidden service and installs the engine PH_BRIDGE handler.
  void start();
  void stop();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] int active_pairs() const;
  [[nodiscard]] const BridgeConfig& config() const { return config_; }

 private:
  void on_bridge_request(net::ConnectionPtr upstream,
                         wire::BridgeRequest request);
  void establish_downstream(net::ConnectionPtr upstream,
                            wire::BridgeRequest request, int attempts_left);
  void pair_up(net::ConnectionPtr upstream, net::ConnectionPtr downstream);
  void unpair(std::uint64_t conn_id);
  void update_load();

  Daemon& daemon_;
  Library& library_;
  BridgeConfig config_;
  // Even index: upstream (incoming); odd index: downstream (outgoing).
  std::vector<net::ConnectionPtr> connections_;
  Stats stats_;
  bool running_{false};
  // Guards the in-flight downstream dials (their completions capture `this`
  // and may resolve after this service stopped or was destroyed).
  DestructionSentinel sentinel_;
};

}  // namespace peerhood::bridge
