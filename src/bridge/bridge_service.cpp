#include "bridge/bridge_service.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"
#include "peerhood/dial.hpp"

namespace peerhood::bridge {

BridgeService::BridgeService(Daemon& daemon, Library& library,
                             BridgeConfig config)
    : daemon_{daemon}, library_{library}, config_{config} {}

BridgeService::~BridgeService() { stop(); }

void BridgeService::start() {
  if (running_) return;
  running_ = true;
  (void)daemon_.register_service(
      ServiceInfo{kBridgeServiceName, kHiddenAttribute, 0});
  daemon_.engine().set_bridge_handler(
      [this](net::ConnectionPtr upstream, wire::BridgeRequest request) {
        on_bridge_request(std::move(upstream), std::move(request));
      });
}

void BridgeService::stop() {
  if (!running_) return;
  running_ = false;
  daemon_.engine().set_bridge_handler(nullptr);
  daemon_.unregister_service(kBridgeServiceName);
  for (const auto& conn : connections_) {
    if (conn != nullptr) {
      conn->set_data_handler(nullptr);
      conn->set_close_handler(nullptr);
      conn->close();
    }
  }
  connections_.clear();
  update_load();
}

int BridgeService::active_pairs() const {
  return static_cast<int>(connections_.size() / 2);
}

void BridgeService::update_load() {
  const double max = std::max(config_.max_connections, 1);
  daemon_.set_load_fraction(active_pairs() / max);
}

void BridgeService::on_bridge_request(net::ConnectionPtr upstream,
                                      wire::BridgeRequest request) {
  ++stats_.requests;
  if (active_pairs() >= config_.max_connections) {
    ++stats_.failed_capacity;
    (void)upstream->write(wire::encode_fail(ErrorCode::kCapacityExceeded,
                                            "bridge at maximum connections"));
    upstream->close();
    return;
  }
  establish_downstream(std::move(upstream), std::move(request),
                       1 + config_.connect_retries);
}

void BridgeService::establish_downstream(net::ConnectionPtr upstream,
                                         wire::BridgeRequest request,
                                         int attempts_left) {
  // Next-hop selection from the bridge's own storage (§4.1).
  const auto record = daemon_.storage().find(request.destination);
  if (!record.has_value()) {
    ++stats_.failed_no_route;
    (void)upstream->write(wire::encode_fail(
        ErrorCode::kNoRoute,
        "bridge has no route to " + request.destination.to_string()));
    upstream->close();
    return;
  }

  Bytes forward_frame;
  net::NetAddress hop;
  if (record->is_direct()) {
    hop = net::NetAddress{request.destination, record->via_tech,
                          net::kPeerHoodEnginePort};
    switch (request.final_command) {
      case wire::Command::kResume:
        forward_frame = wire::encode_resume(request.inner);
        break;
      case wire::Command::kResumeRestart:
        forward_frame = wire::encode_resume_restart(request.inner);
        break;
      default:
        forward_frame = wire::encode_connect(request.inner);
        break;
    }
  } else {
    hop = net::NetAddress{record->bridge, record->via_tech,
                          net::kPeerHoodEnginePort};
    forward_frame = wire::encode_bridge(request);
  }

  // The downstream chaining is exactly a dial: connect, forward the bridge
  // frame, await the chain acknowledgement. Every completion below captures
  // `this`; the token turns a late resolution (after stop()/destruction)
  // into a polite teardown of both ends.
  auto retry_or_fail = [this, token = sentinel_.token(), upstream, request,
                        attempts_left](const Error& error) {
    if (token.expired()) {
      upstream->close();
      return;
    }
    if (attempts_left > 1 && running_) {
      ++stats_.retries;
      establish_downstream(upstream, request, attempts_left - 1);
      return;
    }
    ++stats_.failed_downstream;
    (void)upstream->write(wire::encode_fail(error.code, error.message));
    upstream->close();
  };

  dial_with_ack(
      daemon_.network(), daemon_.mac(), hop, std::move(forward_frame),
      config_.downstream_timeout,
      [this, token = sentinel_.token(), upstream,
       retry_or_fail](Result<net::ConnectionPtr> result) {
        if (!result.ok()) {
          retry_or_fail(result.error());
          return;
        }
        net::ConnectionPtr downstream = std::move(result).value();
        if (token.expired()) {
          // Chain came up just as the bridge died: tear it down.
          downstream->close();
          upstream->close();
          return;
        }
        // Chain is up: acknowledge upstream and start relaying.
        (void)upstream->write(wire::encode_ok());
        ++stats_.established;
        pair_up(upstream, std::move(downstream));
      });
}

void BridgeService::pair_up(net::ConnectionPtr upstream,
                            net::ConnectionPtr downstream) {
  // Even = incoming side, odd = outgoing side (§4.2).
  connections_.push_back(upstream);
  connections_.push_back(downstream);
  update_load();

  auto relay = [this](const net::ConnectionPtr& from,
                      const net::ConnectionPtr& to) {
    // The partner is captured weakly: `connections_` holds the only strong
    // references, so a relayed pair never keeps itself alive through its
    // own handlers (the upstream↔downstream handler cycle of old).
    from->set_data_handler(
        [this, partner = std::weak_ptr<net::Connection>{to}](
            const Bytes& frame) {
          const auto to = partner.lock();
          if (to == nullptr) return;  // pair already torn down
          ++stats_.relayed_frames;
          stats_.relayed_bytes += frame.size();
          // "Every traffic data it receives will be sent directly to the
          // destination" — the bridge does not interpret the payload.
          (void)to->write(frame);
        });
    from->set_close_handler([this, id = from->id()] { unpair(id); });
  };
  relay(upstream, downstream);
  relay(downstream, upstream);
}

void BridgeService::unpair(std::uint64_t conn_id) {
  const auto it = std::find_if(
      connections_.begin(), connections_.end(),
      [conn_id](const net::ConnectionPtr& c) {
        return c != nullptr && c->id() == conn_id;
      });
  if (it == connections_.end()) return;
  const std::size_t index = static_cast<std::size_t>(it - connections_.begin());
  const std::size_t even = index - (index % 2);
  assert(even + 1 < connections_.size());
  // Disconnection propagates to the partner; both leave the list (§4.2:
  // "corresponding connections are disconnected and erased").
  for (const std::size_t i : {even, even + 1}) {
    const net::ConnectionPtr& conn = connections_[i];
    if (conn != nullptr) {
      conn->set_data_handler(nullptr);
      conn->set_close_handler(nullptr);
      conn->close();
    }
  }
  connections_.erase(connections_.begin() + static_cast<long>(even),
                     connections_.begin() + static_cast<long>(even) + 2);
  ++stats_.closed_pairs;
  update_load();
}

}  // namespace peerhood::bridge
