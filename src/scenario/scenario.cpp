#include "scenario/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

namespace peerhood::scenario {
namespace {

// Payload layout of scenario traffic: 4-byte LE session index + 4-byte LE
// per-session message counter + padding. The index attributes received
// messages to sessions across handovers and reconnections; the counter is
// the exactly-once oracle — it survives session restarts (it lives in the
// runner's Session, not the channel), so duplicates and gaps are detectable
// across every repair path including crash–restart resumes.
constexpr std::size_t kPayloadHeader = 8;

void put_u32(Bytes& payload, std::size_t at, std::uint32_t value) {
  payload[at] = static_cast<std::uint8_t>(value & 0xff);
  payload[at + 1] = static_cast<std::uint8_t>((value >> 8) & 0xff);
  payload[at + 2] = static_cast<std::uint8_t>((value >> 16) & 0xff);
  payload[at + 3] = static_cast<std::uint8_t>((value >> 24) & 0xff);
}

std::optional<std::uint32_t> get_u32(const Bytes& payload, std::size_t at) {
  if (payload.size() < at + 4) return std::nullopt;
  return static_cast<std::uint32_t>(payload[at]) |
         (static_cast<std::uint32_t>(payload[at + 1]) << 8) |
         (static_cast<std::uint32_t>(payload[at + 2]) << 16) |
         (static_cast<std::uint32_t>(payload[at + 3]) << 24);
}

Bytes make_payload(std::uint32_t session_index, std::uint32_t counter,
                   std::size_t bytes) {
  Bytes payload(std::max(bytes, kPayloadHeader), std::uint8_t{0});
  put_u32(payload, 0, session_index);
  put_u32(payload, 4, counter);
  return payload;
}

std::optional<std::uint32_t> payload_session(const Bytes& payload) {
  return get_u32(payload, 0);
}

std::optional<std::uint32_t> payload_counter(const Bytes& payload) {
  return get_u32(payload, 4);
}

std::vector<sim::WaypointPath::Waypoint> shifted(
    std::vector<sim::WaypointPath::Waypoint> waypoints, sim::Vec2 offset) {
  for (auto& w : waypoints) w.position = w.position + offset;
  return waypoints;
}

}  // namespace

// --- Trace loading -----------------------------------------------------------

Result<std::vector<sim::WaypointPath::Waypoint>> parse_waypoint_trace(
    std::string_view text) {
  std::vector<sim::WaypointPath::Waypoint> out;
  std::istringstream stream{std::string{text}};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields{line};
    double t = 0.0;
    double x = 0.0;
    double y = 0.0;
    if (!(fields >> t)) continue;  // blank / comment-only line
    std::string rest;
    if (!(fields >> x >> y) || (fields >> rest)) {
      return Error{ErrorCode::kInvalidArgument,
                   "trace line " + std::to_string(line_no) +
                       ": expected '<seconds> <x> <y>'"};
    }
    if (t < 0.0) {
      return Error{ErrorCode::kInvalidArgument,
                   "trace line " + std::to_string(line_no) +
                       ": negative timestamp"};
    }
    const SimTime at = SimTime{} + seconds(t);
    if (!out.empty() && at < out.back().at) {
      return Error{ErrorCode::kInvalidArgument,
                   "trace line " + std::to_string(line_no) +
                       ": timestamps must be non-decreasing"};
    }
    out.push_back({at, {x, y}});
  }
  if (out.empty()) {
    return Error{ErrorCode::kInvalidArgument, "trace holds no waypoints"};
  }
  return out;
}

Result<std::vector<sim::WaypointPath::Waypoint>> load_waypoint_trace(
    const std::string& path) {
  std::ifstream file{path};
  if (!file) {
    return Error{ErrorCode::kInvalidArgument, "cannot open trace " + path};
  }
  std::ostringstream text;
  text << file.rdbuf();
  return parse_waypoint_trace(text.str());
}

// --- MobilitySpec ------------------------------------------------------------

std::shared_ptr<const sim::MobilityModel> MobilitySpec::build(
    Rng rng, sim::Vec2 offset,
    std::shared_ptr<const sim::MobilityModel> reference) const {
  switch (kind) {
    case Kind::kStatic:
      return std::make_shared<sim::StaticPosition>(start + offset);
    case Kind::kLinear:
      return std::make_shared<sim::LinearMotion>(start + offset, velocity,
                                                 departure);
    case Kind::kWaypoints:
      return std::make_shared<sim::WaypointPath>(shifted(waypoints, offset));
    case Kind::kTrace: {
      auto parsed = parse_waypoint_trace(trace);
      // Spec errors surface at build time; an invalid inline trace is a
      // programming error in the scenario, not a runtime condition.
      if (!parsed.ok()) return nullptr;
      return std::make_shared<sim::WaypointPath>(
          shifted(std::move(parsed).value(), offset));
    }
    case Kind::kRandomWaypoint:
      return std::make_shared<sim::RandomWaypoint>(random_waypoint,
                                                   start + offset, rng);
    case Kind::kGaussMarkov:
      return std::make_shared<sim::GaussMarkov>(gauss_markov, start + offset,
                                                rng);
    case Kind::kGroup:
      if (reference == nullptr) return nullptr;
      return std::make_shared<sim::GroupMember>(std::move(reference), offset,
                                                group, rng);
  }
  return nullptr;
}

// --- Metrics -----------------------------------------------------------------

std::uint64_t ScenarioMetrics::total_sent() const {
  std::uint64_t n = 0;
  for (const SessionMetrics& s : sessions) n += s.sent;
  return n;
}

std::uint64_t ScenarioMetrics::total_received() const {
  std::uint64_t n = 0;
  for (const SessionMetrics& s : sessions) n += s.received;
  return n;
}

std::uint64_t ScenarioMetrics::frames_lost() const {
  const std::uint64_t sent = total_sent();
  const std::uint64_t received = total_received();
  return sent > received ? sent - received : 0;
}

double ScenarioMetrics::total_outage_s() const {
  double total = 0.0;
  for (const SessionMetrics& s : sessions) total += s.outage_s;
  return total;
}

std::uint64_t ScenarioMetrics::total_handovers() const {
  std::uint64_t n = 0;
  for (const SessionMetrics& s : sessions) n += s.handovers;
  return n;
}

double ScenarioMetrics::mean_handover_latency_s() const {
  double sum = 0.0;
  std::uint64_t count = 0;
  for (const SessionMetrics& s : sessions) {
    sum += s.handover_latency_sum_s;
    count += s.handover_latency_count;
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

std::uint64_t ScenarioMetrics::control_frames() const {
  const std::uint64_t delivered = total_received();
  return medium_frames > delivered ? medium_frames - delivered : 0;
}

// --- ScenarioRunner ----------------------------------------------------------

struct ScenarioRunner::Session {
  std::size_t index{0};
  SessionSpec spec;
  node::Node* client{nullptr};
  MacAddress server_mac;
  ChannelPtr channel;
  // Client-side reliability layer when spec.reliable (rebuilt with every
  // attach_channel — it rides the channel, not the session).
  std::shared_ptr<ReliableChannel> reliable;
  std::unique_ptr<handover::HandoverController> controller;
  sim::PeriodicTask traffic;
  sim::PeriodicTask watchdog;
  bool reviving{false};
  SessionMetrics metrics;
  std::optional<SimTime> outage_start;
  std::optional<SimTime> degradation_at;
  // Exactly-once oracle: the next message counter the client will stamp and
  // the next the server expects. Session-lifetime (survive restarts).
  std::uint32_t next_msg{1};
  std::uint32_t server_expected{1};
  // Stats accumulated from controllers retired by reconnection / restart.
  handover::HandoverController::Stats prior_stats;
};

ScenarioRunner::ScenarioRunner(ScenarioSpec spec) : spec_{std::move(spec)} {}

ScenarioRunner::~ScenarioRunner() = default;

Status ScenarioRunner::setup() {
  testbed_ = std::make_unique<node::Testbed>(spec_.seed, spec_.quality_model,
                                             spec_.shards);
  if (spec_.radio.has_value()) testbed_->medium().configure(*spec_.radio);

  // The server-side accept handler needs to know, per service, whether its
  // sessions run the reliability layer — resolved up front from the specs.
  for (const SessionSpec& session : spec_.sessions) {
    if (session.reliable) reliable_services_.insert(session.service);
  }

  // Mobility streams are derived from the scenario seed, independent of the
  // testbed's internal draws, so adding nodes does not perturb the walks.
  Rng mobility_rng{spec_.seed ^ 0x5ca1ab1e0ddba11ULL};

  for (const NodeGroup& group : spec_.groups) {
    std::shared_ptr<const sim::MobilityModel> reference;
    if (group.mobility.kind == MobilitySpec::Kind::kGroup) {
      reference = group.group_reference.build(mobility_rng.fork());
      if (reference == nullptr) {
        return Status{ErrorCode::kInvalidArgument,
                      "group '" + group.prefix +
                          "': kGroup needs a valid group_reference"};
      }
    }
    for (int i = 0; i < group.count; ++i) {
      const std::string name = group.prefix + std::to_string(i);
      node::NodeOptions options;
      options.mobility = group.mobility_class;
      options.daemon.service_check_interval = seconds(5.0);
      const sim::Vec2 offset = group.spacing * static_cast<double>(i);
      auto model = group.mobility.build(mobility_rng.fork(), offset,
                                        reference);
      if (model == nullptr) {
        return Status{ErrorCode::kInvalidArgument,
                      "group '" + group.prefix + "': invalid mobility spec"};
      }
      node::Node& node = testbed_->add_mobile_node(name, std::move(model),
                                                   options);
      if (group.churn) churn_nodes_.push_back(&node);
      for (const std::string& service : group.services) {
        const Status status = node.library().register_service(
            ServiceInfo{service, "", 0},
            [this, daemon = &node.daemon()](ChannelPtr channel,
                                            const wire::ConnectRequest&) {
              // Every accepted channel stays in the registry for the whole
              // run — deliberately: the engine tracks sessions weakly, so a
              // transport-lost channel dropped here would make its session
              // unresumable and silently reject §5.2.1 handovers. Growth is
              // bounded by handovers + restarts and freed at teardown.
              server_channels_.push_back(std::move(channel));
              const ChannelPtr& accepted = server_channels_.back();
              if (reliable_services_.contains(accepted->service())) {
                adopt_reliable_server_channel(*daemon, accepted);
              } else {
                accepted->set_data_handler([this](const Bytes& payload) {
                  count_delivery(payload);
                });
              }
            });
        if (!status.ok()) return status;
      }
    }
  }

  testbed_->run_discovery_rounds(spec_.discovery_rounds);

  for (std::size_t i = 0; i < spec_.sessions.size(); ++i) {
    auto session = std::make_unique<Session>();
    session->index = i;
    session->spec = spec_.sessions[i];
    session->client = &testbed_->node(session->spec.client);
    session->server_mac = testbed_->node(session->spec.server).mac();
    sessions_.push_back(std::move(session));
  }
  for (const auto& session : sessions_) {
    // Mobile clients can be momentarily unreachable (out of direct range,
    // stale route); retry across the connect deadline like a user would.
    Result<ChannelPtr> result{
        Error{ErrorCode::kConnectionFailed, "not attempted"}};
    const SimTime deadline =
        testbed_->sim().now() + seconds(spec_.connect_deadline_s);
    do {
      result = session->client->connect_blocking(
          session->server_mac, session->spec.service, {},
          spec_.connect_deadline_s / 4.0);
      if (!result.ok()) testbed_->run_for(5.0);
    } while (!result.ok() && testbed_->sim().now() < deadline);
    if (!result.ok()) {
      return Status{result.error().code,
                    "session " + session->spec.client + "->" +
                        session->spec.server + ": " +
                        result.error().to_string()};
    }
    session->metrics.connected = true;
    attach_channel(*session, std::move(result).value());
    start_traffic(*session);
    start_watchdog(*session);
  }

  if (spec_.churn_interval_s > 0.0 && !churn_nodes_.empty()) {
    schedule_churn();
  }

  // The scenario body measures deltas from here: discovery warm-up and
  // connection establishment are setup, not steady-state overhead. Session
  // counters restart too — traffic delivered while a *later* session was
  // still connecting must not leak into body-only ratios like
  // control_frames().
  for (const auto& session : sessions_) {
    session->metrics.sent = 0;
    session->metrics.received = 0;
    session->metrics.dup_or_reorder = 0;
    session->metrics.gaps = 0;
    session->metrics.outage_s = 0.0;
    session->metrics.outage_episodes = session->outage_start.has_value() ? 1 : 0;
    if (session->outage_start.has_value()) {
      session->outage_start = testbed_->sim().now();
    }
  }
  medium_baseline_ = testbed_->medium().stats();
  observer_evals_baseline_ = testbed_->medium().quality_stats().observer_evals;
  ready_ = true;
  return Status::ok_status();
}

void ScenarioRunner::bank_controller_stats(Session& session) {
  if (session.controller == nullptr) return;
  const auto& stats = session.controller->stats();
  session.prior_stats.handovers += stats.handovers;
  session.prior_stats.predictions += stats.predictions;
  session.prior_stats.predictive_handovers += stats.predictive_handovers;
  session.prior_stats.reconnections += stats.reconnections;
  session.prior_stats.quality_events += stats.quality_events;
}

void ScenarioRunner::attach_channel(Session& session, ChannelPtr channel) {
  note_outage_end(session);
  // A fresh transport voids any in-flight degradation timestamp: a later
  // handover's latency must not be measured from a previous incarnation.
  session.degradation_at.reset();
  if (session.controller != nullptr) {
    // Bank the retiring controller's stats, then destroy it — legal even
    // from inside its own event handler (HandoverController::emit
    // discipline).
    bank_controller_stats(session);
    session.controller.reset();
  }
  // The old reliability layer detaches before its channel is touched — its
  // handlers hold raw-`this` into the layer (reliable_channel.hpp).
  session.reliable.reset();
  if (session.channel != nullptr) {
    // The dead predecessor must stop reporting into this session: close()
    // severs its handlers.
    session.channel->close();
  }
  session.channel = std::move(channel);
  Session* raw = &session;
  // The runner is the application here, so the app-side channel handlers are
  // its to use. Handlers capture the runner/session raw — the runner owns
  // both the channel registry and the testbed (handler_slot.hpp rule 1).
  session.channel->set_close_handler([this, raw] { note_outage_start(*raw); });
  if (session.spec.reliable) {
    // The reliability layer occupies the channel's data + handover slots;
    // the runner's outage accounting chains through its handover hook.
    session.reliable = std::make_shared<ReliableChannel>(
        testbed_->sim(), session.channel, session.spec.reliable_config);
    session.reliable->set_handover_handler(
        [this, raw] { note_outage_end(*raw); });
  } else {
    session.channel->set_handover_handler(
        [this, raw](const net::ConnectionPtr&) { note_outage_end(*raw); });
  }

  if (!session.spec.handover) return;
  session.controller = std::make_unique<handover::HandoverController>(
      session.client->library(), session.channel,
      session.spec.handover_config);
  session.controller->set_event_handler(
      [this, raw](const handover::HandoverEvent& event) {
        using Kind = handover::HandoverEvent::Kind;
        const SimTime now = testbed_->sim().now();
        switch (event.kind) {
          case Kind::kDegradationDetected:
          case Kind::kPredictedLoss:
            if (!raw->degradation_at.has_value()) raw->degradation_at = now;
            break;
          case Kind::kHandoverComplete:
            if (raw->degradation_at.has_value()) {
              raw->metrics.handover_latency_sum_s +=
                  (now - *raw->degradation_at).count() * 1e-6;
              ++raw->metrics.handover_latency_count;
              raw->degradation_at.reset();
            }
            break;
          case Kind::kReconnected: {
            if (raw->degradation_at.has_value()) {
              raw->metrics.handover_latency_sum_s +=
                  (now - *raw->degradation_at).count() * 1e-6;
              ++raw->metrics.handover_latency_count;
              raw->degradation_at.reset();
            }
            // The controller retires after a reconnection (§5.2.2: a brand
            // new session). attach_channel banks its stats, adopts the new
            // channel and puts a fresh controller on it — destroying the
            // emitting controller from its own event handler is legal
            // (emit() discipline).
            attach_channel(*raw, event.new_channel);
            break;
          }
          case Kind::kGaveUp:
          case Kind::kRepairSuppressed:
            // The repair attempt ended without a substitution; a later
            // handover starts its own latency clock.
            raw->degradation_at.reset();
            break;
          default:
            break;
        }
      });
  session.controller->start();
}

void ScenarioRunner::start_traffic(Session& session) {
  Session* raw = &session;
  const auto interval = seconds(session.spec.traffic.message_interval_s);
  // Stagger sessions so their writes do not land on one instant.
  const auto phase = microseconds(37'000 * (session.index + 1));
  session.traffic.start(
      testbed_->sim(), interval,
      [this, raw] {
        if (raw->channel == nullptr) return;
        // A reliable session keeps sending through an outage — the layer
        // buffers (bounded by its window) and replays after the resume. A
        // plain session's writes would just vanish; skip them.
        if (raw->reliable == nullptr && !raw->channel->open()) return;
        const Bytes payload =
            make_payload(static_cast<std::uint32_t>(raw->index),
                         raw->next_msg, raw->spec.traffic.message_bytes);
        const Status accepted = raw->reliable != nullptr
                                    ? raw->reliable->send(payload)
                                    : raw->channel->write(payload);
        if (accepted.ok()) {
          ++raw->metrics.sent;
          ++raw->next_msg;
        }
      },
      interval + phase);
}

void ScenarioRunner::start_watchdog(Session& session) {
  Session* raw = &session;
  constexpr double kReviveInterval = 10.0;
  session.watchdog.start(
      testbed_->sim(), seconds(kReviveInterval),
      [this, raw] {
        if (raw->reviving) return;
        if (raw->channel != nullptr && raw->channel->open()) return;
        if (raw->controller != nullptr) {
          // A live repair is still in flight; let the controller finish.
          const auto state = raw->controller->state();
          if (state != handover::HandoverState::kFailed &&
              state != handover::HandoverState::kDone) {
            return;
          }
        }
        raw->reviving = true;
        raw->client->library().connect(
            raw->server_mac, raw->spec.service, {},
            [this, raw](Result<ChannelPtr> result) {
              raw->reviving = false;
              if (!result.ok()) return;  // next watchdog tick retries
              ++raw->metrics.restarts;
              attach_channel(*raw, std::move(result).value());
            });
      },
      seconds(kReviveInterval));
}

void ScenarioRunner::note_outage_start(Session& session) {
  if (session.outage_start.has_value()) return;
  session.outage_start = testbed_->sim().now();
  ++session.metrics.outage_episodes;
}

void ScenarioRunner::note_outage_end(Session& session) {
  if (!session.outage_start.has_value()) return;
  session.metrics.outage_s +=
      (testbed_->sim().now() - *session.outage_start).count() * 1e-6;
  session.outage_start.reset();
}

void ScenarioRunner::count_delivery(const Bytes& payload) {
  const auto index = payload_session(payload);
  if (!index.has_value() || *index >= sessions_.size()) return;
  Session& session = *sessions_[*index];
  ++session.metrics.received;
  const auto counter = payload_counter(payload);
  if (!counter.has_value()) return;
  if (*counter < session.server_expected) {
    // Behind the high-water mark: a duplicate or reordered delivery. The
    // reliability layer must make this impossible; plain sessions surface
    // whatever the medium did.
    ++session.metrics.dup_or_reorder;
    return;
  }
  session.metrics.gaps += *counter - session.server_expected;
  session.server_expected = *counter + 1;
}

void ScenarioRunner::adopt_reliable_server_channel(Daemon& daemon,
                                                   const ChannelPtr& channel) {
  const std::uint64_t session_id = channel->session_id();
  auto layer = std::make_shared<ReliableChannel>(testbed_->sim(), channel);
  // A restart-resume: the journal still holds the frontier the crashed
  // incarnation reached — restore it before any frame flows, so redelivered
  // in-flight frames dedupe and our own seq stream does not restart at 1.
  if (const SessionRecord* record = daemon.session_store().find(session_id)) {
    layer->restore(record->next_seq, record->expected);
  }
  Daemon* raw_daemon = &daemon;
  layer->set_journal_hook(
      [raw_daemon, session_id, peer = channel->peer(),
       service = channel->service()](std::uint64_t next_seq,
                                     std::uint64_t expected) {
        if (!raw_daemon->session_store().update_frontier(session_id, next_seq,
                                                         expected)) {
          raw_daemon->session_store().put(
              SessionRecord{session_id, peer, service, next_seq, expected});
        }
      });
  layer->set_data_handler(
      [this](const Bytes& payload) { count_delivery(payload); });
  // A restart-resume replaces the layer the crash orphaned; destroying the
  // old one severs its handlers from its (dead) channel.
  server_reliable_[session_id] = std::move(layer);
}

std::vector<MacAddress> ScenarioRunner::resolve_prefixes(
    const std::vector<std::string>& prefixes) const {
  std::vector<MacAddress> macs;
  for (node::Node* node : testbed_->nodes()) {
    for (const std::string& prefix : prefixes) {
      if (node->name().rfind(prefix, 0) == 0) {
        macs.push_back(node->mac());
        break;
      }
    }
  }
  return macs;
}

node::Node* ScenarioRunner::find_node(MacAddress mac) const {
  for (node::Node* node : testbed_->nodes()) {
    if (node->mac() == mac) return node;
  }
  return nullptr;
}

void ScenarioRunner::schedule_churn() {
  churn_task_.start(
      testbed_->sim(), seconds(spec_.churn_interval_s),
      [this] {
        node::Node* node = churn_nodes_[next_churn_ % churn_nodes_.size()];
        ++next_churn_;
        if (!node->daemon().running()) return;  // still down from last cycle
        node->daemon().stop();
        Daemon* daemon = &node->daemon();
        testbed_->sim().schedule_after(
            seconds(spec_.churn_downtime_s), [daemon] {
              // The runner outlives the testbed's event queue; a restart
              // after teardown cannot happen (the queue dies with the sim).
              if (!daemon->running()) daemon->start();
            });
      },
      seconds(spec_.churn_interval_s));
}

void ScenarioRunner::install_faults() {
  if (spec_.faults.empty()) return;
  sim::LinkFaultModel& faults = testbed_->medium().fault_plane();
  for (const FaultScheduleSpec::TechProfile& entry : spec_.faults.profiles) {
    faults.set_profile(entry.tech, entry.profile);
  }
  if (spec_.faults.partitions.empty()) return;
  const SimTime base = testbed_->sim().now();
  for (const FaultScheduleSpec::Partition& cut : spec_.faults.partitions) {
    sim::LinkFaultModel::Blackout window;
    window.start = base + seconds(cut.start_s);
    window.duration = seconds(cut.duration_s);
    window.side_a = resolve_prefixes(cut.side_a);
    window.side_b = resolve_prefixes(cut.side_b);
    faults.schedule_blackout(window);
  }
}

void ScenarioRunner::install_crashes() {
  if (spec_.crashes.empty()) return;
  // Own forked stream, derived from the scenario seed only — like the link
  // fault plane, so a (seed, crash schedule) pair replays bit-identically
  // and an empty schedule never even constructs the plane.
  crash_plane_ = std::make_unique<sim::NodeCrashPlane>(
      testbed_->sim(), Rng{spec_.seed ^ 0xc7a5ffedfa117e11ULL});
  crash_plane_->set_hooks(
      [this](MacAddress mac) {
        if (node::Node* node = find_node(mac)) node->crash();
      },
      [this](MacAddress mac) {
        if (node::Node* node = find_node(mac)) node->restart();
      });
  const SimTime base = testbed_->sim().now();
  for (const CrashScheduleSpec::Crash& crash : spec_.crashes.crashes) {
    for (const MacAddress mac : resolve_prefixes(crash.targets)) {
      crash_plane_->schedule_crash(mac, base + seconds(crash.at_s),
                                   seconds(crash.downtime_s));
    }
  }
  for (const CrashScheduleSpec::Churn& churn : spec_.crashes.churns) {
    const double stop_s = churn.stop_s > 0.0 ? churn.stop_s : spec_.duration_s;
    crash_plane_->start_churn(resolve_prefixes(churn.targets),
                              seconds(churn.mtbf_s), seconds(churn.mttr_s),
                              base + seconds(churn.start_s),
                              base + seconds(stop_s));
  }
}

void ScenarioRunner::run() {
  if (!ready_) return;
  install_faults();
  install_crashes();
  testbed_->run_for(spec_.duration_s);

  metrics_.sessions.clear();
  metrics_.quality_events = 0;
  for (const auto& session : sessions_) {
    // Stop the drivers first, then close any open outage window at end time.
    session->traffic.stop();
    session->watchdog.stop();
    note_outage_end(*session);
    SessionMetrics m = session->metrics;
    // Fold the live controller into the banked totals (run() is one-shot).
    bank_controller_stats(*session);
    session->controller.reset();
    const handover::HandoverController::Stats& stats = session->prior_stats;
    m.handovers = stats.handovers;
    m.predictions = stats.predictions;
    m.predictive_handovers = stats.predictive_handovers;
    m.reconnections = stats.reconnections;
    metrics_.sessions.push_back(m);
    metrics_.quality_events += stats.quality_events;
  }
  const sim::TrafficStats& medium = testbed_->medium().stats();
  metrics_.medium_frames = medium.frames - medium_baseline_.frames;
  metrics_.medium_frame_bytes =
      medium.frame_bytes - medium_baseline_.frame_bytes;
  metrics_.quality_observer_evals =
      testbed_->medium().quality_stats().observer_evals -
      observer_evals_baseline_;
  // Faults install at the body start, so lifetime totals ARE body totals.
  if (testbed_->medium().has_fault_plane()) {
    metrics_.fault_stats = testbed_->medium().fault_plane().stats();
  }
  if (crash_plane_ != nullptr) {
    metrics_.fault_stats.node_crashes += crash_plane_->stats().node_crashes;
    metrics_.fault_stats.node_restarts += crash_plane_->stats().node_restarts;
  }
  metrics_.restart_resumes = 0;
  for (node::Node* node : testbed_->nodes()) {
    metrics_.restart_resumes += node->daemon().engine().stats().restart_resumes;
  }
  metrics_.corrupt_frames_dropped =
      testbed_->network().integrity_stats().corrupt_drops;
  metrics_.net_stats = testbed_->network().net_stats();
}

// --- Canned scenarios --------------------------------------------------------

namespace {

sim::TechnologyParams scenario_bluetooth(bool deterministic) {
  sim::TechnologyParams bt = sim::bluetooth_params();
  if (deterministic) {
    // Establishment stays slow (that is the phenomenon under test) but the
    // stochastic fault injection is off, so regression assertions hold for
    // every seed.
    bt.connect_delay_min_s = 1.5;
    bt.connect_delay_max_s = 3.0;
    bt.connect_failure_prob = 0.0;
    bt.fetch_failure_prob = 0.0;
  }
  return bt;
}

handover::HandoverConfig handover_policy(bool predictive) {
  handover::HandoverConfig config;
  config.predictive_enabled = predictive;
  return config;
}

}  // namespace

ScenarioSpec corridor_walk(std::uint64_t seed, bool predictive,
                           double speed_mps) {
  ScenarioSpec spec;
  spec.name = "corridor";
  spec.seed = seed;
  spec.radio = scenario_bluetooth(/*deterministic=*/true);

  NodeGroup server;
  server.prefix = "server";
  server.mobility.kind = MobilitySpec::Kind::kStatic;
  server.mobility.start = {0.0, 0.0};
  server.services = {"print"};
  spec.groups.push_back(server);

  NodeGroup bridge;
  bridge.prefix = "bridge";
  bridge.mobility.kind = MobilitySpec::Kind::kStatic;
  bridge.mobility.start = {8.0, 0.0};
  spec.groups.push_back(bridge);

  // Fig. 5.4: hold near the server (discovery + a stable traffic phase),
  // then walk down the corridor out of server range, stopping next to the
  // bridge (well inside its good-quality zone, so the handed-over session
  // settles instead of oscillating).
  const double walk_start = 90.0;
  const double walk_len = 10.0;
  NodeGroup walker;
  walker.prefix = "walker";
  walker.mobility_class = MobilityClass::kDynamic;
  walker.mobility.kind = MobilitySpec::Kind::kWaypoints;
  walker.mobility.waypoints = {
      {SimTime{} + seconds(0.0), {2.0, 0.0}},
      {SimTime{} + seconds(walk_start), {2.0, 0.0}},
      {SimTime{} + seconds(walk_start + walk_len / speed_mps), {12.0, 0.0}},
  };
  spec.groups.push_back(walker);

  SessionSpec session;
  session.client = "walker0";
  session.server = "server0";
  session.service = "print";
  session.handover_config = handover_policy(predictive);
  session.handover_config.reconnection_enabled = false;  // isolate routing
  spec.sessions.push_back(session);

  spec.discovery_rounds = 3;
  spec.duration_s = walk_start + walk_len / speed_mps + 30.0;
  return spec;
}

ScenarioSpec office(std::uint64_t seed, bool predictive, int n) {
  ScenarioSpec spec;
  spec.name = "office";
  spec.seed = seed;
  spec.radio = scenario_bluetooth(/*deterministic=*/true);

  const int servers = 2;
  const int statics = std::max(servers, n * 2 / 5);
  const int mobiles = std::max(2, n - statics);

  NodeGroup server_group;
  server_group.prefix = "srv";
  server_group.count = servers;
  server_group.mobility.kind = MobilitySpec::Kind::kStatic;
  server_group.mobility.start = {8.0, 8.0};
  server_group.spacing = {12.0, 8.0};
  server_group.services = {"task"};
  spec.groups.push_back(server_group);

  if (statics > servers) {
    NodeGroup anchors;
    anchors.prefix = "anchor";
    anchors.count = statics - servers;
    anchors.mobility.kind = MobilitySpec::Kind::kStatic;
    anchors.mobility.start = {4.0, 16.0};
    anchors.spacing = {7.0, -3.0};
    spec.groups.push_back(anchors);
  }

  NodeGroup walkers;
  walkers.prefix = "mob";
  walkers.count = mobiles;
  walkers.mobility_class = MobilityClass::kDynamic;
  walkers.mobility.kind = MobilitySpec::Kind::kRandomWaypoint;
  walkers.mobility.start = {10.0, 9.0};
  walkers.spacing = {1.5, 1.0};
  walkers.mobility.random_waypoint.area_min = {0.0, 0.0};
  walkers.mobility.random_waypoint.area_max = {22.0, 16.0};
  walkers.mobility.random_waypoint.speed_min_mps = 0.3;
  walkers.mobility.random_waypoint.speed_max_mps = 0.8;
  spec.groups.push_back(walkers);

  // Both sessions target the central server; the second server is the
  // §5.2.2 alternative provider the reconnection path can fall back to.
  for (int c = 0; c < 2; ++c) {
    SessionSpec session;
    session.client = "mob" + std::to_string(c);
    session.server = "srv0";
    session.service = "task";
    session.handover_config = handover_policy(predictive);
    spec.sessions.push_back(session);
  }

  spec.discovery_rounds = 3;
  spec.duration_s = 120.0;
  return spec;
}

ScenarioSpec group_walk(std::uint64_t seed, bool predictive, int members) {
  ScenarioSpec spec;
  spec.name = "group";
  spec.seed = seed;
  spec.radio = scenario_bluetooth(/*deterministic=*/true);

  NodeGroup server;
  server.prefix = "server";
  server.mobility.kind = MobilitySpec::Kind::kStatic;
  server.mobility.start = {0.0, 0.0};
  server.services = {"print"};
  spec.groups.push_back(server);

  NodeGroup bridge;
  bridge.prefix = "bridge";
  bridge.mobility.kind = MobilitySpec::Kind::kStatic;
  bridge.mobility.start = {8.0, 0.0};
  spec.groups.push_back(bridge);

  // The whole group (reference-point group mobility) walks the corridor
  // away from the server, ending next to the bridge so handed-over
  // sessions settle inside its good-quality zone.
  const double walk_start = 90.0;
  const double speed = 0.75;
  const double walk_len = 8.0;
  NodeGroup group;
  group.prefix = "member";
  group.count = std::max(2, members);
  group.mobility_class = MobilityClass::kDynamic;
  group.mobility.kind = MobilitySpec::Kind::kGroup;
  group.mobility.group.deviation_radius_m = 0.8;
  group.mobility.group.update_interval = seconds(4.0);
  group.spacing = {0.5, 0.3};
  group.group_reference.kind = MobilitySpec::Kind::kWaypoints;
  group.group_reference.waypoints = {
      {SimTime{} + seconds(0.0), {3.0, 0.5}},
      {SimTime{} + seconds(walk_start), {3.0, 0.5}},
      {SimTime{} + seconds(walk_start + walk_len / speed), {11.0, 0.5}},
  };
  spec.groups.push_back(group);

  for (int c = 0; c < 2; ++c) {
    SessionSpec session;
    session.client = "member" + std::to_string(c);
    session.server = "server0";
    session.service = "print";
    session.handover_config = handover_policy(predictive);
    session.handover_config.reconnection_enabled = false;
    spec.sessions.push_back(session);
  }

  // An extra round over the corridor default: with many members the
  // asymmetric-inquiry misses otherwise leave some server records routed
  // (via a fellow member), and a session that *starts* bridged through the
  // group gives the predictor no first-hop signal to extrapolate.
  spec.discovery_rounds = 4;
  spec.duration_s = walk_start + walk_len / speed + 30.0;
  return spec;
}

ScenarioSpec churn(std::uint64_t seed, bool predictive, int n) {
  ScenarioSpec spec = office(seed, predictive, n);
  spec.name = "churn";
  // The anchors (relay-capable but sessionless) cycle their daemons: routes
  // through them keep appearing and vanishing.
  for (NodeGroup& group : spec.groups) {
    if (group.prefix == "anchor") group.churn = true;
  }
  spec.churn_interval_s = 20.0;
  spec.churn_downtime_s = 8.0;
  return spec;
}

}  // namespace peerhood::scenario
