#include "scenario/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

namespace peerhood::scenario {
namespace {

// Payload layout of scenario traffic: 4-byte LE session index + padding, so
// the server side can attribute received messages to sessions across
// handovers and reconnections.
constexpr std::size_t kPayloadHeader = 4;

Bytes make_payload(std::uint32_t session_index, std::size_t bytes) {
  Bytes payload(std::max(bytes, kPayloadHeader), std::uint8_t{0});
  payload[0] = static_cast<std::uint8_t>(session_index & 0xff);
  payload[1] = static_cast<std::uint8_t>((session_index >> 8) & 0xff);
  payload[2] = static_cast<std::uint8_t>((session_index >> 16) & 0xff);
  payload[3] = static_cast<std::uint8_t>((session_index >> 24) & 0xff);
  return payload;
}

std::optional<std::uint32_t> payload_session(const Bytes& payload) {
  if (payload.size() < kPayloadHeader) return std::nullopt;
  return static_cast<std::uint32_t>(payload[0]) |
         (static_cast<std::uint32_t>(payload[1]) << 8) |
         (static_cast<std::uint32_t>(payload[2]) << 16) |
         (static_cast<std::uint32_t>(payload[3]) << 24);
}

std::vector<sim::WaypointPath::Waypoint> shifted(
    std::vector<sim::WaypointPath::Waypoint> waypoints, sim::Vec2 offset) {
  for (auto& w : waypoints) w.position = w.position + offset;
  return waypoints;
}

}  // namespace

// --- Trace loading -----------------------------------------------------------

Result<std::vector<sim::WaypointPath::Waypoint>> parse_waypoint_trace(
    std::string_view text) {
  std::vector<sim::WaypointPath::Waypoint> out;
  std::istringstream stream{std::string{text}};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields{line};
    double t = 0.0;
    double x = 0.0;
    double y = 0.0;
    if (!(fields >> t)) continue;  // blank / comment-only line
    std::string rest;
    if (!(fields >> x >> y) || (fields >> rest)) {
      return Error{ErrorCode::kInvalidArgument,
                   "trace line " + std::to_string(line_no) +
                       ": expected '<seconds> <x> <y>'"};
    }
    if (t < 0.0) {
      return Error{ErrorCode::kInvalidArgument,
                   "trace line " + std::to_string(line_no) +
                       ": negative timestamp"};
    }
    const SimTime at = SimTime{} + seconds(t);
    if (!out.empty() && at < out.back().at) {
      return Error{ErrorCode::kInvalidArgument,
                   "trace line " + std::to_string(line_no) +
                       ": timestamps must be non-decreasing"};
    }
    out.push_back({at, {x, y}});
  }
  if (out.empty()) {
    return Error{ErrorCode::kInvalidArgument, "trace holds no waypoints"};
  }
  return out;
}

Result<std::vector<sim::WaypointPath::Waypoint>> load_waypoint_trace(
    const std::string& path) {
  std::ifstream file{path};
  if (!file) {
    return Error{ErrorCode::kInvalidArgument, "cannot open trace " + path};
  }
  std::ostringstream text;
  text << file.rdbuf();
  return parse_waypoint_trace(text.str());
}

// --- MobilitySpec ------------------------------------------------------------

std::shared_ptr<const sim::MobilityModel> MobilitySpec::build(
    Rng rng, sim::Vec2 offset,
    std::shared_ptr<const sim::MobilityModel> reference) const {
  switch (kind) {
    case Kind::kStatic:
      return std::make_shared<sim::StaticPosition>(start + offset);
    case Kind::kLinear:
      return std::make_shared<sim::LinearMotion>(start + offset, velocity,
                                                 departure);
    case Kind::kWaypoints:
      return std::make_shared<sim::WaypointPath>(shifted(waypoints, offset));
    case Kind::kTrace: {
      auto parsed = parse_waypoint_trace(trace);
      // Spec errors surface at build time; an invalid inline trace is a
      // programming error in the scenario, not a runtime condition.
      if (!parsed.ok()) return nullptr;
      return std::make_shared<sim::WaypointPath>(
          shifted(std::move(parsed).value(), offset));
    }
    case Kind::kRandomWaypoint:
      return std::make_shared<sim::RandomWaypoint>(random_waypoint,
                                                   start + offset, rng);
    case Kind::kGaussMarkov:
      return std::make_shared<sim::GaussMarkov>(gauss_markov, start + offset,
                                                rng);
    case Kind::kGroup:
      if (reference == nullptr) return nullptr;
      return std::make_shared<sim::GroupMember>(std::move(reference), offset,
                                                group, rng);
  }
  return nullptr;
}

// --- Metrics -----------------------------------------------------------------

std::uint64_t ScenarioMetrics::total_sent() const {
  std::uint64_t n = 0;
  for (const SessionMetrics& s : sessions) n += s.sent;
  return n;
}

std::uint64_t ScenarioMetrics::total_received() const {
  std::uint64_t n = 0;
  for (const SessionMetrics& s : sessions) n += s.received;
  return n;
}

std::uint64_t ScenarioMetrics::frames_lost() const {
  const std::uint64_t sent = total_sent();
  const std::uint64_t received = total_received();
  return sent > received ? sent - received : 0;
}

double ScenarioMetrics::total_outage_s() const {
  double total = 0.0;
  for (const SessionMetrics& s : sessions) total += s.outage_s;
  return total;
}

std::uint64_t ScenarioMetrics::total_handovers() const {
  std::uint64_t n = 0;
  for (const SessionMetrics& s : sessions) n += s.handovers;
  return n;
}

double ScenarioMetrics::mean_handover_latency_s() const {
  double sum = 0.0;
  std::uint64_t count = 0;
  for (const SessionMetrics& s : sessions) {
    sum += s.handover_latency_sum_s;
    count += s.handover_latency_count;
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

std::uint64_t ScenarioMetrics::control_frames() const {
  const std::uint64_t delivered = total_received();
  return medium_frames > delivered ? medium_frames - delivered : 0;
}

// --- ScenarioRunner ----------------------------------------------------------

struct ScenarioRunner::Session {
  std::size_t index{0};
  SessionSpec spec;
  node::Node* client{nullptr};
  MacAddress server_mac;
  ChannelPtr channel;
  std::unique_ptr<handover::HandoverController> controller;
  sim::PeriodicTask traffic;
  sim::PeriodicTask watchdog;
  bool reviving{false};
  SessionMetrics metrics;
  std::optional<SimTime> outage_start;
  std::optional<SimTime> degradation_at;
  // Stats accumulated from controllers retired by reconnection / restart.
  handover::HandoverController::Stats prior_stats;
};

ScenarioRunner::ScenarioRunner(ScenarioSpec spec) : spec_{std::move(spec)} {}

ScenarioRunner::~ScenarioRunner() = default;

Status ScenarioRunner::setup() {
  testbed_ = std::make_unique<node::Testbed>(spec_.seed, spec_.quality_model);
  if (spec_.radio.has_value()) testbed_->medium().configure(*spec_.radio);

  // Mobility streams are derived from the scenario seed, independent of the
  // testbed's internal draws, so adding nodes does not perturb the walks.
  Rng mobility_rng{spec_.seed ^ 0x5ca1ab1e0ddba11ULL};

  for (const NodeGroup& group : spec_.groups) {
    std::shared_ptr<const sim::MobilityModel> reference;
    if (group.mobility.kind == MobilitySpec::Kind::kGroup) {
      reference = group.group_reference.build(mobility_rng.fork());
      if (reference == nullptr) {
        return Status{ErrorCode::kInvalidArgument,
                      "group '" + group.prefix +
                          "': kGroup needs a valid group_reference"};
      }
    }
    for (int i = 0; i < group.count; ++i) {
      const std::string name = group.prefix + std::to_string(i);
      node::NodeOptions options;
      options.mobility = group.mobility_class;
      options.daemon.service_check_interval = seconds(5.0);
      const sim::Vec2 offset = group.spacing * static_cast<double>(i);
      auto model = group.mobility.build(mobility_rng.fork(), offset,
                                        reference);
      if (model == nullptr) {
        return Status{ErrorCode::kInvalidArgument,
                      "group '" + group.prefix + "': invalid mobility spec"};
      }
      node::Node& node = testbed_->add_mobile_node(name, std::move(model),
                                                   options);
      if (group.churn) churn_nodes_.push_back(&node);
      for (const std::string& service : group.services) {
        const Status status = node.library().register_service(
            ServiceInfo{service, "", 0},
            [this](ChannelPtr channel, const wire::ConnectRequest&) {
              // Every accepted channel stays in the registry for the whole
              // run — deliberately: the engine tracks sessions weakly, so a
              // transport-lost channel dropped here would make its session
              // unresumable and silently reject §5.2.1 handovers. Growth is
              // bounded by handovers + restarts and freed at teardown.
              server_channels_.push_back(std::move(channel));
              server_channels_.back()->set_data_handler(
                  [this](const Bytes& payload) {
                    const auto index = payload_session(payload);
                    if (index.has_value() && *index < sessions_.size()) {
                      ++sessions_[*index]->metrics.received;
                    }
                  });
            });
        if (!status.ok()) return status;
      }
    }
  }

  testbed_->run_discovery_rounds(spec_.discovery_rounds);

  for (std::size_t i = 0; i < spec_.sessions.size(); ++i) {
    auto session = std::make_unique<Session>();
    session->index = i;
    session->spec = spec_.sessions[i];
    session->client = &testbed_->node(session->spec.client);
    session->server_mac = testbed_->node(session->spec.server).mac();
    sessions_.push_back(std::move(session));
  }
  for (const auto& session : sessions_) {
    // Mobile clients can be momentarily unreachable (out of direct range,
    // stale route); retry across the connect deadline like a user would.
    Result<ChannelPtr> result{
        Error{ErrorCode::kConnectionFailed, "not attempted"}};
    const SimTime deadline =
        testbed_->sim().now() + seconds(spec_.connect_deadline_s);
    do {
      result = session->client->connect_blocking(
          session->server_mac, session->spec.service, {},
          spec_.connect_deadline_s / 4.0);
      if (!result.ok()) testbed_->run_for(5.0);
    } while (!result.ok() && testbed_->sim().now() < deadline);
    if (!result.ok()) {
      return Status{result.error().code,
                    "session " + session->spec.client + "->" +
                        session->spec.server + ": " +
                        result.error().to_string()};
    }
    session->metrics.connected = true;
    attach_channel(*session, std::move(result).value());
    start_traffic(*session);
    start_watchdog(*session);
  }

  if (spec_.churn_interval_s > 0.0 && !churn_nodes_.empty()) {
    schedule_churn();
  }

  // The scenario body measures deltas from here: discovery warm-up and
  // connection establishment are setup, not steady-state overhead. Session
  // counters restart too — traffic delivered while a *later* session was
  // still connecting must not leak into body-only ratios like
  // control_frames().
  for (const auto& session : sessions_) {
    session->metrics.sent = 0;
    session->metrics.received = 0;
    session->metrics.outage_s = 0.0;
    session->metrics.outage_episodes = session->outage_start.has_value() ? 1 : 0;
    if (session->outage_start.has_value()) {
      session->outage_start = testbed_->sim().now();
    }
  }
  medium_baseline_ = testbed_->medium().stats();
  observer_evals_baseline_ = testbed_->medium().quality_stats().observer_evals;
  ready_ = true;
  return Status::ok_status();
}

void ScenarioRunner::bank_controller_stats(Session& session) {
  if (session.controller == nullptr) return;
  const auto& stats = session.controller->stats();
  session.prior_stats.handovers += stats.handovers;
  session.prior_stats.predictions += stats.predictions;
  session.prior_stats.predictive_handovers += stats.predictive_handovers;
  session.prior_stats.reconnections += stats.reconnections;
  session.prior_stats.quality_events += stats.quality_events;
}

void ScenarioRunner::attach_channel(Session& session, ChannelPtr channel) {
  note_outage_end(session);
  // A fresh transport voids any in-flight degradation timestamp: a later
  // handover's latency must not be measured from a previous incarnation.
  session.degradation_at.reset();
  if (session.controller != nullptr) {
    // Bank the retiring controller's stats, then destroy it — legal even
    // from inside its own event handler (HandoverController::emit
    // discipline).
    bank_controller_stats(session);
    session.controller.reset();
  }
  if (session.channel != nullptr) {
    // The dead predecessor must stop reporting into this session: close()
    // severs its handlers.
    session.channel->close();
  }
  session.channel = std::move(channel);
  Session* raw = &session;
  // The runner is the application here, so the app-side channel handlers are
  // its to use. Handlers capture the runner/session raw — the runner owns
  // both the channel registry and the testbed (handler_slot.hpp rule 1).
  session.channel->set_close_handler([this, raw] { note_outage_start(*raw); });
  session.channel->set_handover_handler(
      [this, raw](const net::ConnectionPtr&) { note_outage_end(*raw); });

  if (!session.spec.handover) return;
  session.controller = std::make_unique<handover::HandoverController>(
      session.client->library(), session.channel,
      session.spec.handover_config);
  session.controller->set_event_handler(
      [this, raw](const handover::HandoverEvent& event) {
        using Kind = handover::HandoverEvent::Kind;
        const SimTime now = testbed_->sim().now();
        switch (event.kind) {
          case Kind::kDegradationDetected:
          case Kind::kPredictedLoss:
            if (!raw->degradation_at.has_value()) raw->degradation_at = now;
            break;
          case Kind::kHandoverComplete:
            if (raw->degradation_at.has_value()) {
              raw->metrics.handover_latency_sum_s +=
                  (now - *raw->degradation_at).count() * 1e-6;
              ++raw->metrics.handover_latency_count;
              raw->degradation_at.reset();
            }
            break;
          case Kind::kReconnected: {
            if (raw->degradation_at.has_value()) {
              raw->metrics.handover_latency_sum_s +=
                  (now - *raw->degradation_at).count() * 1e-6;
              ++raw->metrics.handover_latency_count;
              raw->degradation_at.reset();
            }
            // The controller retires after a reconnection (§5.2.2: a brand
            // new session). attach_channel banks its stats, adopts the new
            // channel and puts a fresh controller on it — destroying the
            // emitting controller from its own event handler is legal
            // (emit() discipline).
            attach_channel(*raw, event.new_channel);
            break;
          }
          case Kind::kGaveUp:
          case Kind::kRepairSuppressed:
            // The repair attempt ended without a substitution; a later
            // handover starts its own latency clock.
            raw->degradation_at.reset();
            break;
          default:
            break;
        }
      });
  session.controller->start();
}

void ScenarioRunner::start_traffic(Session& session) {
  Session* raw = &session;
  const auto interval = seconds(session.spec.traffic.message_interval_s);
  // Stagger sessions so their writes do not land on one instant.
  const auto phase = microseconds(37'000 * (session.index + 1));
  session.traffic.start(
      testbed_->sim(), interval,
      [this, raw] {
        if (raw->channel == nullptr || !raw->channel->open()) return;
        const Bytes payload = make_payload(
            static_cast<std::uint32_t>(raw->index),
            raw->spec.traffic.message_bytes);
        if (raw->channel->write(payload).ok()) ++raw->metrics.sent;
      },
      interval + phase);
}

void ScenarioRunner::start_watchdog(Session& session) {
  Session* raw = &session;
  constexpr double kReviveInterval = 10.0;
  session.watchdog.start(
      testbed_->sim(), seconds(kReviveInterval),
      [this, raw] {
        if (raw->reviving) return;
        if (raw->channel != nullptr && raw->channel->open()) return;
        if (raw->controller != nullptr) {
          // A live repair is still in flight; let the controller finish.
          const auto state = raw->controller->state();
          if (state != handover::HandoverState::kFailed &&
              state != handover::HandoverState::kDone) {
            return;
          }
        }
        raw->reviving = true;
        raw->client->library().connect(
            raw->server_mac, raw->spec.service, {},
            [this, raw](Result<ChannelPtr> result) {
              raw->reviving = false;
              if (!result.ok()) return;  // next watchdog tick retries
              ++raw->metrics.restarts;
              attach_channel(*raw, std::move(result).value());
            });
      },
      seconds(kReviveInterval));
}

void ScenarioRunner::note_outage_start(Session& session) {
  if (session.outage_start.has_value()) return;
  session.outage_start = testbed_->sim().now();
  ++session.metrics.outage_episodes;
}

void ScenarioRunner::note_outage_end(Session& session) {
  if (!session.outage_start.has_value()) return;
  session.metrics.outage_s +=
      (testbed_->sim().now() - *session.outage_start).count() * 1e-6;
  session.outage_start.reset();
}

void ScenarioRunner::schedule_churn() {
  churn_task_.start(
      testbed_->sim(), seconds(spec_.churn_interval_s),
      [this] {
        node::Node* node = churn_nodes_[next_churn_ % churn_nodes_.size()];
        ++next_churn_;
        if (!node->daemon().running()) return;  // still down from last cycle
        node->daemon().stop();
        Daemon* daemon = &node->daemon();
        testbed_->sim().schedule_after(
            seconds(spec_.churn_downtime_s), [daemon] {
              // The runner outlives the testbed's event queue; a restart
              // after teardown cannot happen (the queue dies with the sim).
              if (!daemon->running()) daemon->start();
            });
      },
      seconds(spec_.churn_interval_s));
}

void ScenarioRunner::install_faults() {
  if (spec_.faults.empty()) return;
  sim::LinkFaultModel& faults = testbed_->medium().fault_plane();
  for (const FaultScheduleSpec::TechProfile& entry : spec_.faults.profiles) {
    faults.set_profile(entry.tech, entry.profile);
  }
  if (spec_.faults.partitions.empty()) return;
  const SimTime base = testbed_->sim().now();
  const auto resolve = [this](const std::vector<std::string>& prefixes) {
    std::vector<MacAddress> macs;
    for (node::Node* node : testbed_->nodes()) {
      for (const std::string& prefix : prefixes) {
        if (node->name().rfind(prefix, 0) == 0) {
          macs.push_back(node->mac());
          break;
        }
      }
    }
    return macs;
  };
  for (const FaultScheduleSpec::Partition& cut : spec_.faults.partitions) {
    sim::LinkFaultModel::Blackout window;
    window.start = base + seconds(cut.start_s);
    window.duration = seconds(cut.duration_s);
    window.side_a = resolve(cut.side_a);
    window.side_b = resolve(cut.side_b);
    faults.schedule_blackout(window);
  }
}

void ScenarioRunner::run() {
  if (!ready_) return;
  install_faults();
  testbed_->run_for(spec_.duration_s);

  metrics_.sessions.clear();
  metrics_.quality_events = 0;
  for (const auto& session : sessions_) {
    // Stop the drivers first, then close any open outage window at end time.
    session->traffic.stop();
    session->watchdog.stop();
    note_outage_end(*session);
    SessionMetrics m = session->metrics;
    // Fold the live controller into the banked totals (run() is one-shot).
    bank_controller_stats(*session);
    session->controller.reset();
    const handover::HandoverController::Stats& stats = session->prior_stats;
    m.handovers = stats.handovers;
    m.predictions = stats.predictions;
    m.predictive_handovers = stats.predictive_handovers;
    m.reconnections = stats.reconnections;
    metrics_.sessions.push_back(m);
    metrics_.quality_events += stats.quality_events;
  }
  const sim::TrafficStats& medium = testbed_->medium().stats();
  metrics_.medium_frames = medium.frames - medium_baseline_.frames;
  metrics_.medium_frame_bytes =
      medium.frame_bytes - medium_baseline_.frame_bytes;
  metrics_.quality_observer_evals =
      testbed_->medium().quality_stats().observer_evals -
      observer_evals_baseline_;
  // Faults install at the body start, so lifetime totals ARE body totals.
  if (testbed_->medium().has_fault_plane()) {
    metrics_.fault_stats = testbed_->medium().fault_plane().stats();
  }
  metrics_.corrupt_frames_dropped =
      testbed_->network().integrity_stats().corrupt_drops;
}

// --- Canned scenarios --------------------------------------------------------

namespace {

sim::TechnologyParams scenario_bluetooth(bool deterministic) {
  sim::TechnologyParams bt = sim::bluetooth_params();
  if (deterministic) {
    // Establishment stays slow (that is the phenomenon under test) but the
    // stochastic fault injection is off, so regression assertions hold for
    // every seed.
    bt.connect_delay_min_s = 1.5;
    bt.connect_delay_max_s = 3.0;
    bt.connect_failure_prob = 0.0;
    bt.fetch_failure_prob = 0.0;
  }
  return bt;
}

handover::HandoverConfig handover_policy(bool predictive) {
  handover::HandoverConfig config;
  config.predictive_enabled = predictive;
  return config;
}

}  // namespace

ScenarioSpec corridor_walk(std::uint64_t seed, bool predictive,
                           double speed_mps) {
  ScenarioSpec spec;
  spec.name = "corridor";
  spec.seed = seed;
  spec.radio = scenario_bluetooth(/*deterministic=*/true);

  NodeGroup server;
  server.prefix = "server";
  server.mobility.kind = MobilitySpec::Kind::kStatic;
  server.mobility.start = {0.0, 0.0};
  server.services = {"print"};
  spec.groups.push_back(server);

  NodeGroup bridge;
  bridge.prefix = "bridge";
  bridge.mobility.kind = MobilitySpec::Kind::kStatic;
  bridge.mobility.start = {8.0, 0.0};
  spec.groups.push_back(bridge);

  // Fig. 5.4: hold near the server (discovery + a stable traffic phase),
  // then walk down the corridor out of server range, stopping next to the
  // bridge (well inside its good-quality zone, so the handed-over session
  // settles instead of oscillating).
  const double walk_start = 90.0;
  const double walk_len = 10.0;
  NodeGroup walker;
  walker.prefix = "walker";
  walker.mobility_class = MobilityClass::kDynamic;
  walker.mobility.kind = MobilitySpec::Kind::kWaypoints;
  walker.mobility.waypoints = {
      {SimTime{} + seconds(0.0), {2.0, 0.0}},
      {SimTime{} + seconds(walk_start), {2.0, 0.0}},
      {SimTime{} + seconds(walk_start + walk_len / speed_mps), {12.0, 0.0}},
  };
  spec.groups.push_back(walker);

  SessionSpec session;
  session.client = "walker0";
  session.server = "server0";
  session.service = "print";
  session.handover_config = handover_policy(predictive);
  session.handover_config.reconnection_enabled = false;  // isolate routing
  spec.sessions.push_back(session);

  spec.discovery_rounds = 3;
  spec.duration_s = walk_start + walk_len / speed_mps + 30.0;
  return spec;
}

ScenarioSpec office(std::uint64_t seed, bool predictive, int n) {
  ScenarioSpec spec;
  spec.name = "office";
  spec.seed = seed;
  spec.radio = scenario_bluetooth(/*deterministic=*/true);

  const int servers = 2;
  const int statics = std::max(servers, n * 2 / 5);
  const int mobiles = std::max(2, n - statics);

  NodeGroup server_group;
  server_group.prefix = "srv";
  server_group.count = servers;
  server_group.mobility.kind = MobilitySpec::Kind::kStatic;
  server_group.mobility.start = {8.0, 8.0};
  server_group.spacing = {12.0, 8.0};
  server_group.services = {"task"};
  spec.groups.push_back(server_group);

  if (statics > servers) {
    NodeGroup anchors;
    anchors.prefix = "anchor";
    anchors.count = statics - servers;
    anchors.mobility.kind = MobilitySpec::Kind::kStatic;
    anchors.mobility.start = {4.0, 16.0};
    anchors.spacing = {7.0, -3.0};
    spec.groups.push_back(anchors);
  }

  NodeGroup walkers;
  walkers.prefix = "mob";
  walkers.count = mobiles;
  walkers.mobility_class = MobilityClass::kDynamic;
  walkers.mobility.kind = MobilitySpec::Kind::kRandomWaypoint;
  walkers.mobility.start = {10.0, 9.0};
  walkers.spacing = {1.5, 1.0};
  walkers.mobility.random_waypoint.area_min = {0.0, 0.0};
  walkers.mobility.random_waypoint.area_max = {22.0, 16.0};
  walkers.mobility.random_waypoint.speed_min_mps = 0.3;
  walkers.mobility.random_waypoint.speed_max_mps = 0.8;
  spec.groups.push_back(walkers);

  // Both sessions target the central server; the second server is the
  // §5.2.2 alternative provider the reconnection path can fall back to.
  for (int c = 0; c < 2; ++c) {
    SessionSpec session;
    session.client = "mob" + std::to_string(c);
    session.server = "srv0";
    session.service = "task";
    session.handover_config = handover_policy(predictive);
    spec.sessions.push_back(session);
  }

  spec.discovery_rounds = 3;
  spec.duration_s = 120.0;
  return spec;
}

ScenarioSpec group_walk(std::uint64_t seed, bool predictive, int members) {
  ScenarioSpec spec;
  spec.name = "group";
  spec.seed = seed;
  spec.radio = scenario_bluetooth(/*deterministic=*/true);

  NodeGroup server;
  server.prefix = "server";
  server.mobility.kind = MobilitySpec::Kind::kStatic;
  server.mobility.start = {0.0, 0.0};
  server.services = {"print"};
  spec.groups.push_back(server);

  NodeGroup bridge;
  bridge.prefix = "bridge";
  bridge.mobility.kind = MobilitySpec::Kind::kStatic;
  bridge.mobility.start = {8.0, 0.0};
  spec.groups.push_back(bridge);

  // The whole group (reference-point group mobility) walks the corridor
  // away from the server, ending next to the bridge so handed-over
  // sessions settle inside its good-quality zone.
  const double walk_start = 90.0;
  const double speed = 0.75;
  const double walk_len = 8.0;
  NodeGroup group;
  group.prefix = "member";
  group.count = std::max(2, members);
  group.mobility_class = MobilityClass::kDynamic;
  group.mobility.kind = MobilitySpec::Kind::kGroup;
  group.mobility.group.deviation_radius_m = 0.8;
  group.mobility.group.update_interval = seconds(4.0);
  group.spacing = {0.5, 0.3};
  group.group_reference.kind = MobilitySpec::Kind::kWaypoints;
  group.group_reference.waypoints = {
      {SimTime{} + seconds(0.0), {3.0, 0.5}},
      {SimTime{} + seconds(walk_start), {3.0, 0.5}},
      {SimTime{} + seconds(walk_start + walk_len / speed), {11.0, 0.5}},
  };
  spec.groups.push_back(group);

  for (int c = 0; c < 2; ++c) {
    SessionSpec session;
    session.client = "member" + std::to_string(c);
    session.server = "server0";
    session.service = "print";
    session.handover_config = handover_policy(predictive);
    session.handover_config.reconnection_enabled = false;
    spec.sessions.push_back(session);
  }

  // An extra round over the corridor default: with many members the
  // asymmetric-inquiry misses otherwise leave some server records routed
  // (via a fellow member), and a session that *starts* bridged through the
  // group gives the predictor no first-hop signal to extrapolate.
  spec.discovery_rounds = 4;
  spec.duration_s = walk_start + walk_len / speed + 30.0;
  return spec;
}

ScenarioSpec churn(std::uint64_t seed, bool predictive, int n) {
  ScenarioSpec spec = office(seed, predictive, n);
  spec.name = "churn";
  // The anchors (relay-capable but sessionless) cycle their daemons: routes
  // through them keep appearing and vanishing.
  for (NodeGroup& group : spec.groups) {
    if (group.prefix == "anchor") group.churn = true;
  }
  spec.churn_interval_s = 20.0;
  spec.churn_downtime_s = 8.0;
  return spec;
}

}  // namespace peerhood::scenario
