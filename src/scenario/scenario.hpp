// Declarative scenario subsystem: a ScenarioSpec describes node groups
// (count + mobility mix), registered services, client->server sessions with
// traffic shapes and handover policies; a ScenarioRunner assembles the full
// PeerHood stack on a Testbed, drives the run, and measures the handover
// plane — outage time, frames lost, handover latency, control overhead —
// so benches and tests stop hand-rolling topologies.
//
// See src/scenario/README.md for the spec vocabulary and the canned
// scenarios (corridor / office / group / churn) used by the bench matrix.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "handover/handover.hpp"
#include "net/network.hpp"
#include "node/testbed.hpp"
#include "peerhood/reliable_channel.hpp"
#include "sim/fault.hpp"
#include "sim/mobility.hpp"

namespace peerhood::scenario {

// How a node (or every member of a group) moves. For kGroup the member
// follows the group's shared reference model (NodeGroup::group_reference)
// at its formation offset plus a bounded random deviation.
struct MobilitySpec {
  enum class Kind {
    kStatic,
    kLinear,
    kWaypoints,
    kRandomWaypoint,
    kGaussMarkov,
    kGroup,
    kTrace,
  };

  Kind kind{Kind::kStatic};
  // Start position (kStatic / kLinear) or initial position inside the area
  // models. Group members ignore it (placement = reference + offset).
  sim::Vec2 start{};
  sim::Vec2 velocity{};                                // kLinear
  SimTime departure{};                                 // kLinear
  std::vector<sim::WaypointPath::Waypoint> waypoints;  // kWaypoints
  std::string trace;                                   // kTrace (trace text)
  sim::RandomWaypoint::Config random_waypoint{};
  sim::GaussMarkov::Config gauss_markov{};
  sim::GroupMember::Config group{};

  // Instantiates the model. `offset` shifts the start (for kGroup it is the
  // member's formation offset from the reference); `reference` is required
  // for kGroup; `rng` seeds the stochastic models (each member should get a
  // forked stream).
  [[nodiscard]] std::shared_ptr<const sim::MobilityModel> build(
      Rng rng, sim::Vec2 offset = {},
      std::shared_ptr<const sim::MobilityModel> reference = nullptr) const;
};

// Parses a waypoint trace: one "<seconds> <x> <y>" triple per line,
// '#'-comments and blank lines ignored, timestamps non-decreasing.
// The scenario layer's trace-driven loader — recorded walks (or ns-2-style
// exports converted to this form) replay as WaypointPath models.
[[nodiscard]] Result<std::vector<sim::WaypointPath::Waypoint>>
parse_waypoint_trace(std::string_view text);
// Same, from a file on disk.
[[nodiscard]] Result<std::vector<sim::WaypointPath::Waypoint>>
load_waypoint_trace(const std::string& path);

struct NodeGroup {
  std::string prefix;  // members are named prefix0, prefix1, ...
  int count{1};
  MobilityClass mobility_class{MobilityClass::kStatic};
  MobilitySpec mobility{};
  // Reference (centre) model shared by all members when mobility.kind is
  // kGroup.
  MobilitySpec group_reference{};
  // Per-member start offset: member i starts at mobility.start + spacing*i
  // (ignored by kGroup members, whose formation offset it becomes).
  sim::Vec2 spacing{};
  // Services registered (and advertised) on every member.
  std::vector<std::string> services;
  // Member daemons periodically stop and restart (ScenarioSpec::churn_*).
  bool churn{false};
};

struct TrafficSpec {
  double message_interval_s{1.0};
  std::size_t message_bytes{32};
};

struct SessionSpec {
  std::string client;   // node name (e.g. "walker0")
  std::string server;   // node name
  std::string service;  // must be registered on the server's group
  TrafficSpec traffic{};
  bool handover{true};
  handover::HandoverConfig handover_config{};
  // Run the session over ReliableChannel on both ends. The server side
  // journals the resume frontier into its daemon's SessionStore, so the
  // session survives a server crash–restart (kResumeRestart) exactly-once.
  bool reliable{false};
  ReliableConfig reliable_config{};
};

// Declarative fault plane (sim/fault.hpp): per-technology link-fault
// profiles plus scheduled blackouts/partitions, installed on the medium when
// run() starts. Setup and the discovery warm-up stay fault-free, so every
// scenario enters its body from a converged neighbourhood and the faults hit
// an established steady state — the recovery behaviour under test.
struct FaultScheduleSpec {
  struct TechProfile {
    Technology tech{Technology::kBluetooth};
    sim::FaultProfile profile{};
  };
  // Node sets are name prefixes ("anchor" covers anchor0, anchor1, ...),
  // resolved against the testbed at install time. Empty side_a = every node.
  // Empty side_b = the side_a set goes silent; otherwise only links between
  // the two sides are cut (a network partition). Times are relative to the
  // start of the scenario body.
  struct Partition {
    std::vector<std::string> side_a;
    std::vector<std::string> side_b;
    double start_s{0.0};
    double duration_s{10.0};
  };
  std::vector<TechProfile> profiles;
  std::vector<Partition> partitions;

  [[nodiscard]] bool empty() const {
    return profiles.empty() && partitions.empty();
  }
};

// Declarative node-crash plane (sim/fault.hpp NodeCrashPlane): scheduled
// one-shot crashes plus seeded MTBF/MTTR churn over name-prefix node sets.
// Like the link-fault plane it installs at the top of run() — the body, not
// the warm-up, runs under crash injection — and like it the plane is only
// constructed when the schedule is non-empty, so crash-free runs stay
// byte-identical to builds that predate it. Times are relative to the start
// of the scenario body.
struct CrashScheduleSpec {
  struct Crash {
    std::vector<std::string> targets;  // name prefixes, like Partition sides
    double at_s{0.0};
    double downtime_s{10.0};
  };
  struct Churn {
    std::vector<std::string> targets;
    double mtbf_s{30.0};  // mean time between crashes, Exp-distributed
    double mttr_s{5.0};   // mean downtime, Exp-distributed
    double start_s{0.0};
    double stop_s{0.0};  // 0 = end of the scenario body
  };
  std::vector<Crash> crashes;
  std::vector<Churn> churns;

  [[nodiscard]] bool empty() const {
    return crashes.empty() && churns.empty();
  }
};

struct ScenarioSpec {
  std::string name;
  std::uint64_t seed{1};
  std::optional<sim::TechnologyParams> radio;  // configure() when set
  sim::LinkQualityModel quality_model{};
  std::vector<NodeGroup> groups;
  std::vector<SessionSpec> sessions;
  int discovery_rounds{3};
  double duration_s{60.0};
  // Deadline for each session's initial connect.
  double connect_deadline_s{60.0};
  // Churn: every interval one churn-group daemon stops, restarting after
  // `churn_downtime_s`. 0 = no churn.
  double churn_interval_s{0.0};
  double churn_downtime_s{10.0};
  // Fault plane for the scenario body; empty = pristine medium (the fault
  // model is never even constructed, so fault-free runs draw identical RNG
  // streams to builds that predate the fault plane).
  FaultScheduleSpec faults{};
  // Node-crash plane for the scenario body; same lazy-construction contract.
  CrashScheduleSpec crashes{};
  // Simulation shard count handed to the Testbed: 1 = the plain
  // single-threaded kernel, N > 1 = the conservative windowed core on a
  // worker pool, 0 (default) = the PEERHOOD_SHARDS environment variable.
  // The stack runs on the control shard, so metrics are identical under
  // every shard count (tests/test_shard_scenario_parity.cpp).
  std::uint32_t shards{0};
};

struct SessionMetrics {
  bool connected{false};
  std::uint64_t sent{0};
  std::uint64_t received{0};
  std::uint64_t handovers{0};
  std::uint64_t predictions{0};
  std::uint64_t predictive_handovers{0};
  std::uint64_t reconnections{0};
  // Scenario-level session restarts: after the controller gave up, the
  // runner (as the application) re-established a brand-new session.
  std::uint64_t restarts{0};
  // Exactly-once accounting from the per-session message counter carried in
  // every payload: messages that arrived behind the server's high-water mark
  // (duplicates / reorders — must be 0 for reliable sessions) and counter
  // values skipped past (frames lost for good, e.g. across a watchdog
  // restart of an unreliable session).
  std::uint64_t dup_or_reorder{0};
  std::uint64_t gaps{0};
  std::uint64_t outage_episodes{0};
  // Total time with no usable connection (transport lost -> substituted /
  // reconnected / scenario end), in seconds.
  double outage_s{0.0};
  // Degradation/prediction -> completed handover.
  double handover_latency_sum_s{0.0};
  std::uint64_t handover_latency_count{0};
};

struct ScenarioMetrics {
  std::vector<SessionMetrics> sessions;
  // Medium deltas over the scenario body (setup/discovery excluded).
  std::uint64_t medium_frames{0};
  std::uint64_t medium_frame_bytes{0};
  std::uint64_t quality_observer_evals{0};
  std::uint64_t quality_events{0};
  // Per-kind fault-plane counters over the body (all zero when
  // ScenarioSpec::faults is empty). node_crashes/node_restarts are merged in
  // from the crash plane. Part of the determinism contract: the same (seed,
  // fault schedule, crash schedule) must reproduce these exactly.
  sim::FaultStats fault_stats{};
  std::uint64_t corrupt_frames_dropped{0};
  // Backend-agnostic transport counters (net::Network::net_stats()) over the
  // whole run. corrupt_frames_dropped above stays the body-scoped figure the
  // bench tables print; this is the raw backend total, comparable with what
  // a real-socket daemon logs on shutdown.
  net::NetStats net_stats{};
  // kResumeRestart handshakes honoured from a SessionStore journal, summed
  // over every node's engine — the crash plane's recovery counter.
  std::uint64_t restart_resumes{0};

  [[nodiscard]] std::uint64_t total_sent() const;
  [[nodiscard]] std::uint64_t total_received() const;
  [[nodiscard]] std::uint64_t frames_lost() const;
  [[nodiscard]] double total_outage_s() const;
  [[nodiscard]] std::uint64_t total_handovers() const;
  [[nodiscard]] double mean_handover_latency_s() const;
  // Non-payload medium frames: everything the stack sent beyond the
  // application's delivered messages (discovery, acks, repairs) — the
  // control-overhead figure of the bench matrix.
  [[nodiscard]] std::uint64_t control_frames() const;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioSpec spec);
  ~ScenarioRunner();

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  // Builds the testbed, runs discovery, opens every session and attaches
  // traffic + handover controllers. Fails if a session cannot connect.
  Status setup();
  // Runs the scenario body and finalises the metrics. setup() must have
  // succeeded.
  void run();

  [[nodiscard]] node::Testbed& testbed() { return *testbed_; }
  [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }
  [[nodiscard]] const ScenarioMetrics& metrics() const { return metrics_; }

 private:
  struct Session;

  void attach_channel(Session& session, ChannelPtr channel);
  void bank_controller_stats(Session& session);
  void start_traffic(Session& session);
  // Application-level persistence: once the controller has given up, retry
  // a fresh session periodically (outage keeps accruing until it lands).
  void start_watchdog(Session& session);
  void note_outage_start(Session& session);
  void note_outage_end(Session& session);
  void schedule_churn();
  // Installs spec_.faults on the medium (called at the top of run(), so the
  // body — not the warm-up — runs under fault injection).
  void install_faults();
  // Installs spec_.crashes (same body-only contract as install_faults).
  void install_crashes();
  // Server-side delivery accounting shared by plain and reliable sessions.
  void count_delivery(const Bytes& payload);
  // Wraps a freshly accepted server channel in a ReliableChannel wired to
  // the daemon's SessionStore journal (restoring the frontier after a
  // restart-resume).
  void adopt_reliable_server_channel(Daemon& daemon, const ChannelPtr& channel);
  [[nodiscard]] std::vector<MacAddress> resolve_prefixes(
      const std::vector<std::string>& prefixes) const;
  [[nodiscard]] node::Node* find_node(MacAddress mac) const;

  ScenarioSpec spec_;
  std::unique_ptr<node::Testbed> testbed_;
  std::vector<std::unique_ptr<Session>> sessions_;
  // Server-side sessions live here — handlers must not own their channel
  // (common/handler_slot.hpp).
  std::vector<ChannelPtr> server_channels_;
  // Server-side reliability layers by session id; a restart-resume replaces
  // the (inert) layer the crash orphaned.
  std::map<std::uint64_t, std::shared_ptr<ReliableChannel>> server_reliable_;
  // Services whose sessions run reliable (from SessionSpec::reliable).
  std::set<std::string> reliable_services_;
  std::vector<node::Node*> churn_nodes_;
  std::size_t next_churn_{0};
  sim::PeriodicTask churn_task_;
  std::unique_ptr<sim::NodeCrashPlane> crash_plane_;
  ScenarioMetrics metrics_;
  sim::TrafficStats medium_baseline_{};
  std::uint64_t observer_evals_baseline_{0};
  bool ready_{false};
};

// --- Canned scenarios used by the bench matrix and regression tests ---------
// All take the RNG seed and whether sessions run the predictive
// make-before-break engine (false = reactive baseline).

// The Fig. 5.4 corridor walk: static server, static mid-corridor bridge,
// one walker holding near the server then walking out of its range at
// `speed_mps`, messaging throughout.
[[nodiscard]] ScenarioSpec corridor_walk(std::uint64_t seed, bool predictive,
                                         double speed_mps = 0.75);
// Office floor: `n` nodes, 40% static (servers among them), the rest
// random-waypoint; a few mobile clients hold sessions to static servers.
[[nodiscard]] ScenarioSpec office(std::uint64_t seed, bool predictive,
                                  int n = 12);
// Reference-point group mobility: a group of `members` walks a corridor
// away from a static server past a static bridge; two members hold
// sessions to the server.
[[nodiscard]] ScenarioSpec group_walk(std::uint64_t seed, bool predictive,
                                      int members = 4);
// Office floor under churn: bridge-capable nodes restart on a cycle.
[[nodiscard]] ScenarioSpec churn(std::uint64_t seed, bool predictive,
                                 int n = 10);

}  // namespace peerhood::scenario
