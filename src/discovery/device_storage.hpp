// DeviceStorage — the heart of dynamic device discovery (Ch. 3). With the
// Bridge address and Jump number the storage becomes an ad-hoc routing table
// ("the use of Bridge address and Jump number are the most relevant elements
// that transform the DeviceStorage into an Ad-hoc routing address table").
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/sim_time.hpp"
#include "discovery/device.hpp"
#include "discovery/route_policy.hpp"

namespace peerhood {

// One known device plus the best route to it.
struct DeviceRecord {
  DeviceInfo device;
  std::vector<Technology> prototypes;
  std::vector<ServiceInfo> services;

  // Routing information. Direct neighbours have jump == 0 (paper convention:
  // "Direct devices have jump number as 0") and a null bridge.
  int jump{0};
  MacAddress bridge;
  // Mobility cost of the first-hop bridge ("only the nearest device's
  // mobility numbers are considered", §3.4.3); 0 for direct routes.
  int route_mobility{0};
  // Sum of link qualities along the route (Fig. 3.8) and the weakest link
  // (Fig. 3.9 admissibility).
  int quality_sum{0};
  int min_link_quality{0};
  Technology via_tech{Technology::kBluetooth};

  // Freshness bookkeeping (Fig. 3.12: "make older").
  SimTime last_seen{};
  int missed_loops{0};

  // For direct records only: the neighbour's own neighbour list.
  std::vector<NeighbourLink> neighbour_links;

  [[nodiscard]] bool is_direct() const { return jump == 0; }
  [[nodiscard]] bool provides(std::string_view service_name) const;
  [[nodiscard]] std::optional<ServiceInfo> find_service(
      std::string_view service_name) const;
};

class DeviceStorage {
 public:
  explicit DeviceStorage(RoutePolicy policy = {}) : policy_{policy} {}

  // Inserts `record` or — when the device is already known — keeps the
  // preferable route per RoutePolicy. A record describing the *same* route
  // (equal jump and bridge) always refreshes the stored one. Returns true if
  // the stored state changed.
  bool upsert(DeviceRecord record);

  [[nodiscard]] std::optional<DeviceRecord> find(MacAddress mac) const;
  [[nodiscard]] bool contains(MacAddress mac) const;
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }

  [[nodiscard]] std::vector<DeviceRecord> snapshot() const;
  [[nodiscard]] std::vector<DeviceRecord> direct_neighbours() const;

  // Devices offering `service_name` (used by service reconnection, §5.2.2).
  [[nodiscard]] std::vector<DeviceRecord> providers_of(
      std::string_view service_name) const;

  void remove(MacAddress mac);
  void clear() { records_.clear(); }

  // Ages direct records of `tech`: responders get refreshed timestamps; the
  // others accumulate missed loops and are dropped after `max_missed`.
  // Routed records whose bridge was dropped are removed in cascade. Returns
  // the macs removed.
  std::vector<MacAddress> age_direct(Technology tech,
                                     const std::vector<MacAddress>& responders,
                                     int max_missed, SimTime now);

  // Removes routed records that go through `bridge` (used both by aging and
  // when a bridge's snapshot no longer mentions a destination).
  void remove_routes_via(MacAddress bridge);

  // Drops routed records via `bridge` whose destination is not in `alive`
  // (the bridge's latest snapshot) — the bridge no longer knows them.
  void reconcile_bridge(MacAddress bridge, const std::vector<MacAddress>& alive);

  [[nodiscard]] const RoutePolicy& policy() const { return policy_; }

 private:
  RoutePolicy policy_;
  std::map<MacAddress, DeviceRecord> records_;
};

}  // namespace peerhood
