// DeviceStorage — the heart of dynamic device discovery (Ch. 3). With the
// Bridge address and Jump number the storage becomes an ad-hoc routing table
// ("the use of Bridge address and Jump number are the most relevant elements
// that transform the DeviceStorage into an Ad-hoc routing address table").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/sim_time.hpp"
#include "discovery/device.hpp"
#include "discovery/route_policy.hpp"

namespace peerhood {

// One known device plus the best route to it.
struct DeviceRecord {
  DeviceInfo device;
  std::vector<Technology> prototypes;
  std::vector<ServiceInfo> services;

  // Routing information. Direct neighbours have jump == 0 (paper convention:
  // "Direct devices have jump number as 0") and a null bridge.
  int jump{0};
  MacAddress bridge;
  // Mobility cost of the first-hop bridge ("only the nearest device's
  // mobility numbers are considered", §3.4.3); 0 for direct routes.
  int route_mobility{0};
  // Sum of link qualities along the route (Fig. 3.8) and the weakest link
  // (Fig. 3.9 admissibility).
  int quality_sum{0};
  int min_link_quality{0};
  Technology via_tech{Technology::kBluetooth};

  // Freshness bookkeeping (Fig. 3.12: "make older").
  SimTime last_seen{};
  int missed_loops{0};

  // For direct records only: the neighbour's own neighbour list.
  std::vector<NeighbourLink> neighbour_links;

  [[nodiscard]] bool is_direct() const { return jump == 0; }
  [[nodiscard]] bool provides(std::string_view service_name) const;
  [[nodiscard]] std::optional<ServiceInfo> find_service(
      std::string_view service_name) const;
};

class DeviceStorage {
 public:
  explicit DeviceStorage(RoutePolicy policy = {}) : policy_{policy} {}

  // Inserts `record` or — when the device is already known — keeps the
  // preferable route per RoutePolicy. A record describing the *same* route
  // (equal jump and bridge) always refreshes the stored one. Returns true if
  // the stored state changed.
  bool upsert(DeviceRecord record);

  // Monotonic content generation: bumped whenever the *advertised* state of
  // the storage changes (membership, or any field shipped in a neighbourhood
  // snapshot entry). Liveness bookkeeping (last_seen, missed_loops) and
  // neighbour-link refreshes do not move it, so an unchanged storage keeps a
  // stable generation across inquiry rounds — the discovery plane compares
  // generations for equality to skip re-encoding and re-shipping snapshots.
  // u32 wraparound is safe: consumers never order generations.
  [[nodiscard]] std::uint32_t generation() const { return generation_; }

  // Refreshes liveness of `mac` (Fig. 3.12 time stamp) without touching
  // advertised content — the kNotModified fast path. No generation bump.
  // Returns false when the device is unknown.
  bool touch(MacAddress mac, SimTime now);

  // kNotModified still rides a fetch exchange, so the requester re-samples
  // RSSI (§3.4.1) every round exactly like a full fetch: updates a *direct*
  // record's measured link quality and liveness in place, bumping the
  // generation only when the quality actually changed. Returns false when
  // no direct record exists.
  bool refresh_direct(MacAddress mac, int quality, SimTime now);

  // Bumped whenever stored state gets *weaker*: a record is removed, or an
  // upsert replaces one with content the old record would have beaten under
  // the route policy (same-route refresh after the link degraded).
  // Integration of a neighbour's snapshot is not a pure function of that
  // snapshot — either event can make a previously rejected candidate route
  // win now — so the inquiry loop drops its neighbours-section baselines
  // whenever this moves and re-fetches full snapshots once, re-offering
  // every candidate.
  [[nodiscard]] std::uint32_t weakening_generation() const {
    return weakening_gen_;
  }

  [[nodiscard]] std::optional<DeviceRecord> find(MacAddress mac) const;
  [[nodiscard]] bool contains(MacAddress mac) const;
  // True iff a *direct* record for `mac` is stored (no record copy — the
  // conditional-fetch hot path checks this per request).
  [[nodiscard]] bool contains_direct(MacAddress mac) const;
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }

  [[nodiscard]] std::vector<DeviceRecord> snapshot() const;
  [[nodiscard]] std::vector<DeviceRecord> direct_neighbours() const;

  // Visits every record (ascending MAC order) without copying — the
  // snapshot encoder walks the storage once per generation change.
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    for (const auto& [mac, record] : records_) visit(record);
  }

  // Devices offering `service_name` (used by service reconnection, §5.2.2).
  [[nodiscard]] std::vector<DeviceRecord> providers_of(
      std::string_view service_name) const;

  void remove(MacAddress mac);
  void clear();

  // Ages direct records of `tech`: responders get refreshed timestamps; the
  // others accumulate missed loops and are dropped after `max_missed`.
  // Routed records whose bridge was dropped are removed in cascade. Returns
  // the macs removed.
  std::vector<MacAddress> age_direct(Technology tech,
                                     const std::vector<MacAddress>& responders,
                                     int max_missed, SimTime now);

  // Removes routed records that go through `bridge` (used both by aging and
  // when a bridge's snapshot no longer mentions a destination).
  void remove_routes_via(MacAddress bridge);

  // Drops routed records via `bridge` whose destination is not in `alive`
  // (the bridge's latest snapshot) — the bridge no longer knows them.
  void reconcile_bridge(MacAddress bridge, const std::vector<MacAddress>& alive);

  [[nodiscard]] const RoutePolicy& policy() const { return policy_; }

 private:
  // True iff the two records advertise identically in a snapshot entry.
  [[nodiscard]] static bool advertised_equal(const DeviceRecord& a,
                                             const DeviceRecord& b);

  RoutePolicy policy_;
  std::map<MacAddress, DeviceRecord> records_;
  std::uint32_t generation_{1};
  std::uint32_t weakening_gen_{1};
};

}  // namespace peerhood
