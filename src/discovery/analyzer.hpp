// AnalyzeNeighbourhoodDevices (Fig. 3.13): integrates the neighbourhood
// snapshot received from an inquiry responder into the local DeviceStorage —
// this is what upgrades two-jump vision into total environment awareness
// (§3.3). Distance-vector style: entries gain one jump and inherit the
// responder as bridge; the route policy keeps the most efficient way.
#pragma once

#include <vector>

#include "common/mac_address.hpp"
#include "common/sim_time.hpp"
#include "discovery/device_storage.hpp"

namespace peerhood {

// One entry of a responder's advertised DeviceStorage.
struct NeighbourSnapshotEntry {
  DeviceInfo device;
  std::vector<Technology> prototypes;
  std::vector<ServiceInfo> services;
  int jump{0};             // responder's jump count to this device
  MacAddress bridge;       // responder's bridge towards it (null if direct)
  int quality_sum{0};      // responder's summed route quality
  int min_link_quality{0}; // responder's weakest route link

  friend bool operator==(const NeighbourSnapshotEntry&,
                         const NeighbourSnapshotEntry&) = default;
};

// The advertised form of a whole DeviceStorage: one snapshot entry per
// record, advertised fields only. This is the payload of the neighbours
// section; the snapshot cache re-builds it once per storage generation.
[[nodiscard]] std::vector<NeighbourSnapshotEntry> snapshot_entries(
    const DeviceStorage& storage);

struct AnalyzerConfig {
  // When false, snapshots only refresh the responder's neighbour-link list —
  // the pre-thesis behaviour of PeerHood [2] with two-jump vision and no
  // routing (baseline for experiment E1).
  bool propagate_routes{true};
};

class NeighbourhoodAnalyzer {
 public:
  NeighbourhoodAnalyzer(MacAddress self, AnalyzerConfig config = {})
      : self_{self}, config_{config} {}

  // Integrates responder `direct_record` (jump 0, measured link quality) and
  // its snapshot. Returns the number of storage records inserted or updated.
  int integrate(DeviceStorage& storage, DeviceRecord direct_record,
                const std::vector<NeighbourSnapshotEntry>& snapshot,
                Technology tech, SimTime now) const;

  [[nodiscard]] MacAddress self() const { return self_; }
  [[nodiscard]] const AnalyzerConfig& config() const { return config_; }

 private:
  MacAddress self_;
  AnalyzerConfig config_;
};

}  // namespace peerhood
