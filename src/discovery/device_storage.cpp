#include "discovery/device_storage.hpp"

#include <algorithm>
#include <unordered_set>

namespace peerhood {

bool DeviceRecord::provides(std::string_view service_name) const {
  return find_service(service_name).has_value();
}

std::optional<ServiceInfo> DeviceRecord::find_service(
    std::string_view service_name) const {
  const auto it =
      std::find_if(services.begin(), services.end(),
                   [&](const ServiceInfo& s) { return s.name == service_name; });
  if (it == services.end()) return std::nullopt;
  return *it;
}

bool RoutePolicy::admissible(const DeviceRecord& record) const {
  return record.min_link_quality >= quality_threshold;
}

bool RoutePolicy::prefer(const DeviceRecord& candidate,
                         const DeviceRecord& stored) const {
  // Fig. 3.13 comparison chain: jumps always dominate — in particular a
  // direct observation can never be displaced by a multi-hop route.
  if (candidate.jump != stored.jump) return candidate.jump < stored.jump;
  // Fig. 3.9: among routes with the same jump count, one whose weakest link
  // clears the minimum demanded quality beats one that does not ("the route
  // A-C-D won't be accepted due to A-C being lower than the minimum
  // threshold 230").
  if (enforce_threshold) {
    const bool cand_ok = admissible(candidate);
    const bool stored_ok = admissible(stored);
    if (cand_ok != stored_ok) return cand_ok;
  }
  if (candidate.route_mobility != stored.route_mobility) {
    return candidate.route_mobility < stored.route_mobility;
  }
  return candidate.quality_sum > stored.quality_sum;
}

bool DeviceStorage::advertised_equal(const DeviceRecord& a,
                                     const DeviceRecord& b) {
  // Exactly the fields a NeighbourSnapshotEntry ships; liveness bookkeeping
  // and the neighbour-link list are local-only and must not churn the
  // generation. KEEP IN SYNC with snapshot_entries() (analyzer.cpp) and
  // encode_snapshot_entry (protocol.cpp): a field shipped on the wire but
  // missing here would let the snapshot cache serve stale frames as
  // kNotModified. tests/test_device_storage.cpp
  // (GenerationCoversEveryAdvertisedField) flips each field one by one.
  return a.jump == b.jump && a.bridge == b.bridge &&
         a.quality_sum == b.quality_sum &&
         a.min_link_quality == b.min_link_quality && a.device == b.device &&
         a.prototypes == b.prototypes && a.services == b.services;
}

bool DeviceStorage::upsert(DeviceRecord record) {
  if (record.jump > policy_.max_jumps) return false;
  const MacAddress mac = record.device.mac;
  const auto it = records_.find(mac);
  if (it == records_.end()) {
    records_.emplace(mac, std::move(record));
    ++generation_;
    return true;
  }
  DeviceRecord& stored = it->second;
  const bool same_route =
      record.jump == stored.jump && record.bridge == stored.bridge;
  if (same_route || policy_.prefer(record, stored)) {
    if (!advertised_equal(record, stored)) {
      ++generation_;
      // A record that got *worse* (the old content would still win under
      // the policy) can un-dominate previously rejected candidates, exactly
      // like a removal: flag it so baselines are dropped and alternatives
      // re-offered.
      if (policy_.prefer(stored, record)) ++weakening_gen_;
    }
    stored = std::move(record);
    return true;
  }
  // Keep the stored route, but refresh liveness: seeing *any* route to the
  // device proves it exists.
  stored.last_seen = std::max(stored.last_seen, record.last_seen);
  return false;
}

bool DeviceStorage::touch(MacAddress mac, SimTime now) {
  const auto it = records_.find(mac);
  if (it == records_.end()) return false;
  it->second.last_seen = std::max(it->second.last_seen, now);
  it->second.missed_loops = 0;
  return true;
}

bool DeviceStorage::refresh_direct(MacAddress mac, int quality, SimTime now) {
  const auto it = records_.find(mac);
  if (it == records_.end() || !it->second.is_direct()) return false;
  DeviceRecord& record = it->second;
  if (record.quality_sum != quality || record.min_link_quality != quality) {
    // A drop in measured quality weakens the stored route exactly like a
    // policy-worse upsert: previously rejected alternatives could now win.
    if (quality < record.quality_sum || quality < record.min_link_quality) {
      ++weakening_gen_;
    }
    record.quality_sum = quality;
    record.min_link_quality = quality;
    ++generation_;
  }
  record.last_seen = std::max(record.last_seen, now);
  record.missed_loops = 0;
  return true;
}

std::optional<DeviceRecord> DeviceStorage::find(MacAddress mac) const {
  const auto it = records_.find(mac);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

bool DeviceStorage::contains(MacAddress mac) const {
  return records_.contains(mac);
}

bool DeviceStorage::contains_direct(MacAddress mac) const {
  const auto it = records_.find(mac);
  return it != records_.end() && it->second.is_direct();
}

std::vector<DeviceRecord> DeviceStorage::snapshot() const {
  std::vector<DeviceRecord> out;
  out.reserve(records_.size());
  for (const auto& [mac, record] : records_) out.push_back(record);
  return out;
}

std::vector<DeviceRecord> DeviceStorage::direct_neighbours() const {
  std::vector<DeviceRecord> out;
  for (const auto& [mac, record] : records_) {
    if (record.is_direct()) out.push_back(record);
  }
  return out;
}

std::vector<DeviceRecord> DeviceStorage::providers_of(
    std::string_view service_name) const {
  std::vector<DeviceRecord> out;
  for (const auto& [mac, record] : records_) {
    if (record.provides(service_name)) out.push_back(record);
  }
  return out;
}

void DeviceStorage::remove(MacAddress mac) {
  if (records_.erase(mac) > 0) {
    ++generation_;
    ++weakening_gen_;
  }
}

void DeviceStorage::clear() {
  if (!records_.empty()) {
    ++generation_;
    ++weakening_gen_;
  }
  records_.clear();
}

std::vector<MacAddress> DeviceStorage::age_direct(
    Technology tech, const std::vector<MacAddress>& responders, int max_missed,
    SimTime now) {
  std::vector<MacAddress> removed;
  // Hashed responder set: one pass over `responders` instead of a linear
  // std::find per stored record (O(records * responders) at scale).
  const std::unordered_set<MacAddress> responded_set(responders.begin(),
                                                     responders.end());
  for (auto it = records_.begin(); it != records_.end();) {
    DeviceRecord& record = it->second;
    if (!record.is_direct() || record.via_tech != tech) {
      ++it;
      continue;
    }
    const bool responded = responded_set.contains(record.device.mac);
    if (responded) {
      record.missed_loops = 0;
      record.last_seen = now;
      ++it;
      continue;
    }
    ++record.missed_loops;
    if (record.missed_loops > max_missed) {
      removed.push_back(record.device.mac);
      it = records_.erase(it);
      ++generation_;
      ++weakening_gen_;
    } else {
      ++it;
    }
  }
  for (const MacAddress mac : removed) remove_routes_via(mac);
  return removed;
}

void DeviceStorage::remove_routes_via(MacAddress bridge) {
  for (auto it = records_.begin(); it != records_.end();) {
    if (!it->second.is_direct() && it->second.bridge == bridge) {
      it = records_.erase(it);
      ++generation_;
      ++weakening_gen_;
    } else {
      ++it;
    }
  }
}

void DeviceStorage::reconcile_bridge(MacAddress bridge,
                                     const std::vector<MacAddress>& alive) {
  const std::unordered_set<MacAddress> alive_set(alive.begin(), alive.end());
  for (auto it = records_.begin(); it != records_.end();) {
    const DeviceRecord& record = it->second;
    const bool via_bridge = !record.is_direct() && record.bridge == bridge;
    const bool still_known = alive_set.contains(record.device.mac);
    if (via_bridge && !still_known) {
      it = records_.erase(it);
      ++generation_;
      ++weakening_gen_;
    } else {
      ++it;
    }
  }
}

}  // namespace peerhood
