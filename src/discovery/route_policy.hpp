// Route preference policy (Fig. 3.13 + §3.4). When several routes reach the
// same device the discovery process keeps the "most efficient way":
//   1. fewer jumps (the connection cost parameter, §3.3),
//   2. lower first-hop mobility cost ({static,hybrid,dynamic}={0,1,3}),
//   3. higher summed link quality (Fig. 3.8),
// subject to every link clearing the minimum quality threshold (Fig. 3.9:
// "the route A-C-D won't be accepted due to A-C being lower than the minimum
// threshold 230").
#pragma once

#include "sim/radio.hpp"

namespace peerhood {

struct DeviceRecord;  // defined in device_storage.hpp

struct RoutePolicy {
  // Per-link admissibility threshold (Fig. 3.9, §5.2.1).
  int quality_threshold{sim::LinkQualityModel::kDefaultThreshold};
  // When true, an admissible route always beats an inadmissible one; an
  // inadmissible route is still stored when it is the only way (the paper
  // prefers any connectivity over none).
  bool enforce_threshold{true};
  // Jump ceiling for stored routes; §3.4.2 recommends limiting jumps for
  // technologies with slow discovery ("a limitation of Num Jumps for moving
  // devices should be taken into account").
  int max_jumps{6};

  [[nodiscard]] bool admissible(const DeviceRecord& record) const;

  // True when `candidate` should replace `stored` (same destination).
  [[nodiscard]] bool prefer(const DeviceRecord& candidate,
                            const DeviceRecord& stored) const;
};

}  // namespace peerhood
