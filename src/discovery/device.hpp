// Device and service descriptors (§2.3): a device is identified by its
// interface MAC address plus a checksum (the daemon PID in the original
// implementation); a service is (name, attribute, port).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/mac_address.hpp"
#include "sim/radio.hpp"

namespace peerhood {

struct ServiceInfo {
  std::string name;
  std::string attribute;  // free-form; "hidden" services are not listed
  std::uint16_t port{0};

  friend bool operator==(const ServiceInfo&, const ServiceInfo&) = default;
};

// Attribute marking internal services (e.g. the bridge) that are excluded
// from application-facing service lists.
inline constexpr const char* kHiddenAttribute = "hidden";

struct DeviceInfo {
  MacAddress mac;
  std::string name;
  std::uint32_t checksum{0};  // daemon process id in the original system
  MobilityClass mobility{MobilityClass::kDynamic};

  friend bool operator==(const DeviceInfo&, const DeviceInfo&) = default;
};

// A direct neighbour's own link (mac + measured quality). Direct records
// carry their neighbour list (Fig. 3.2's second storage level); the handover
// controller uses it to find bridges that still see the peer (§5.2.1 state 0).
struct NeighbourLink {
  MacAddress mac;
  int quality{0};

  friend bool operator==(const NeighbourLink&, const NeighbourLink&) = default;
};

}  // namespace peerhood
