#include "discovery/analyzer.hpp"

#include <algorithm>

namespace peerhood {

std::vector<NeighbourSnapshotEntry> snapshot_entries(
    const DeviceStorage& storage) {
  std::vector<NeighbourSnapshotEntry> entries;
  entries.reserve(storage.size());
  storage.for_each([&](const DeviceRecord& record) {
    NeighbourSnapshotEntry entry;
    entry.device = record.device;
    entry.prototypes = record.prototypes;
    entry.services = record.services;
    entry.jump = record.jump;
    entry.bridge = record.bridge;
    entry.quality_sum = record.quality_sum;
    entry.min_link_quality = record.min_link_quality;
    entries.push_back(std::move(entry));
  });
  return entries;
}

int NeighbourhoodAnalyzer::integrate(
    DeviceStorage& storage, DeviceRecord direct_record,
    const std::vector<NeighbourSnapshotEntry>& snapshot, Technology tech,
    SimTime now) const {
  const MacAddress responder = direct_record.device.mac;
  const int responder_quality = direct_record.quality_sum;
  const int responder_mobility = mobility_cost(direct_record.device.mobility);

  // The responder's own direct neighbours become its neighbour-link list
  // (Fig. 3.2's second level) — consumed by handover state 0.
  direct_record.neighbour_links.clear();
  for (const NeighbourSnapshotEntry& entry : snapshot) {
    if (entry.jump == 0 && entry.device.mac != self_) {
      direct_record.neighbour_links.push_back(
          NeighbourLink{entry.device.mac, entry.quality_sum});
    }
  }
  direct_record.last_seen = now;
  direct_record.missed_loops = 0;
  int changed = storage.upsert(std::move(direct_record)) ? 1 : 0;

  if (!config_.propagate_routes) return changed;

  // Routes previously learned through this responder that it no longer
  // advertises are gone.
  std::vector<MacAddress> alive;
  alive.reserve(snapshot.size());
  for (const NeighbourSnapshotEntry& entry : snapshot) {
    alive.push_back(entry.device.mac);
  }
  storage.reconcile_bridge(responder, alive);

  for (const NeighbourSnapshotEntry& entry : snapshot) {
    // "Own device comparison filter is used to avoid duplicated route."
    if (entry.device.mac == self_) continue;
    if (entry.device.mac == responder) continue;
    // Loop avoidance: ignore routes the responder built through us.
    if (entry.bridge == self_) continue;

    DeviceRecord candidate;
    candidate.device = entry.device;
    candidate.prototypes = entry.prototypes;
    candidate.services = entry.services;
    candidate.jump = entry.jump + 1;
    candidate.bridge = responder;
    candidate.route_mobility = responder_mobility;
    candidate.quality_sum = entry.quality_sum + responder_quality;
    candidate.min_link_quality =
        std::min(entry.min_link_quality, responder_quality);
    candidate.via_tech = tech;
    candidate.last_seen = now;
    if (storage.upsert(std::move(candidate))) ++changed;
  }
  return changed;
}

}  // namespace peerhood
