// The Connection interface is header-only; the concrete SimConnection lives
// in network.cpp next to the network that owns its shared state.
#include "net/connection.hpp"
