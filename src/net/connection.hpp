// Connection abstraction — the simulated counterpart of the paper's
// MAbstractConnection (§2.3): applications Write and Read opaque frames and
// can sample the live link quality. Frames are delivered in order but, as in
// the paper, Write is *not* aware of connection loss ("there exists the
// possibility to lose data due to Write function not being aware of the
// connection loss", Ch. 6) — reliability is layered above when needed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "net/address.hpp"

namespace peerhood::net {

class Connection {
 public:
  using DataHandler = std::function<void(const Bytes&)>;
  using CloseHandler = std::function<void()>;
  // Maps simulation time to an RSSI-style quality value; used by §5.2.1's
  // artificial-decay handover experiments.
  using QualityOverride = std::function<int(SimTime)>;

  virtual ~Connection() = default;

  // Queues a frame towards the peer. Fails only when the connection is
  // already closed locally; in-flight loss is silent (see header comment).
  virtual Status write(Bytes frame) = 0;

  // Push-style delivery. While no handler is installed frames accumulate and
  // can be drained with poll_frame().
  virtual void set_data_handler(DataHandler handler) = 0;
  virtual void set_close_handler(CloseHandler handler) = 0;
  [[nodiscard]] virtual std::optional<Bytes> poll_frame() = 0;

  virtual void close() = 0;
  [[nodiscard]] virtual bool open() const = 0;

  // Live link-quality sample (0-255; 0 = dead). Honours any override.
  [[nodiscard]] virtual int link_quality() = 0;
  virtual void set_quality_override(QualityOverride override_fn) = 0;

  [[nodiscard]] virtual NetAddress local_address() const = 0;
  [[nodiscard]] virtual NetAddress remote_address() const = 0;

  // Identifier shared by both ends; the paper uses connection IDs to target
  // handover substitution ("Connection ID is used to identify the connection
  // to substitute", §2.3).
  [[nodiscard]] virtual std::uint64_t id() const = 0;
};

using ConnectionPtr = std::shared_ptr<Connection>;

}  // namespace peerhood::net
