#include "net/sim_network.hpp"

#include <cassert>
#include <utility>

#include "common/handler_slot.hpp"
#include "common/log.hpp"
#include "sim/simulator.hpp"

namespace peerhood::net {
namespace {

// Medium-level frame kinds.
constexpr std::uint8_t kFrameDatagram = SimNetwork::kDatagramFrameTag;
constexpr std::uint8_t kFrameData = 1;
constexpr std::uint8_t kFrameClose = 2;

}  // namespace

// Shared state of one connection: both ends plus the coverage keepalive.
struct SimNetwork::Pair {
  std::uint64_t id{0};
  Technology tech{Technology::kBluetooth};
  NetAddress addr_a;  // initiator side
  NetAddress addr_b;  // acceptor side
  std::weak_ptr<SimConnection> end_a;
  std::weak_ptr<SimConnection> end_b;
  bool open_a{true};
  bool open_b{true};
  bool torn_down{false};
  sim::PeriodicTask keepalive;
};

// One endpoint of a simulated connection.
class SimConnection final : public Connection,
                            public std::enable_shared_from_this<SimConnection> {
 public:
  SimConnection(SimNetwork& net, std::shared_ptr<SimNetwork::Pair> pair,
                bool is_a)
      : net_{net}, pair_{std::move(pair)}, is_a_{is_a} {}

  ~SimConnection() override {
    if (open_) {
      // RAII teardown: dropping the last handle closes this side politely.
      open_ = false;
      close_slot_.sever();
      net_.notify_local_close(*pair_, is_a_);
    }
  }

  Status write(Bytes frame) override {
    if (!open_) {
      return Status{ErrorCode::kConnectionClosed, "write on closed connection"};
    }
    net_.send_conn_frame(pair_->id, local_address().mac,
                         remote_address().mac, pair_->tech, kFrameData,
                         std::move(frame));
    return Status::ok_status();
  }

  void set_data_handler(DataHandler handler) override {
    data_slot_.set(std::move(handler));
    if (!data_slot_.armed() || rx_.empty()) return;
    // Drain buffered frames through the slot. A drained frame's handler may
    // replace itself (fresh handler re-read per frame) or release the last
    // strong reference to this connection — hold a strong self-reference per
    // iteration and re-acquire it through the weak pointer, so the loop
    // never touches a freed object.
    const std::weak_ptr<SimConnection> self = weak_from_this();
    while (const auto strong = self.lock()) {
      if (!strong->data_slot_.armed() || strong->rx_.empty()) break;
      Bytes frame = std::move(strong->rx_.front());
      strong->rx_.pop_front();
      strong->data_slot_.invoke(frame);
    }
  }

  void set_close_handler(CloseHandler handler) override {
    close_slot_.set(std::move(handler));
  }

  std::optional<Bytes> poll_frame() override {
    if (rx_.empty()) return std::nullopt;
    Bytes frame = std::move(rx_.front());
    rx_.pop_front();
    return frame;
  }

  void close() override {
    if (!open_) return;
    open_ = false;
    net_.notify_local_close(*pair_, is_a_);
    release_handlers_deferred();
  }

  [[nodiscard]] bool open() const override { return open_; }

  int link_quality() override {
    if (quality_override_) {
      return quality_override_(net_.simulator().now());
    }
    if (!open_) return 0;
    return net_.medium().sample_quality(local_address().mac,
                                        remote_address().mac, pair_->tech);
  }

  void set_quality_override(QualityOverride override_fn) override {
    quality_override_ = std::move(override_fn);
  }

  [[nodiscard]] NetAddress local_address() const override {
    return is_a_ ? pair_->addr_a : pair_->addr_b;
  }
  [[nodiscard]] NetAddress remote_address() const override {
    return is_a_ ? pair_->addr_b : pair_->addr_a;
  }
  [[nodiscard]] std::uint64_t id() const override { return pair_->id; }

  // --- internal hooks used by SimNetwork -----------------------------------
  void deliver(Bytes payload) {
    if (!open_) return;
    if (data_slot_.armed()) {
      // Slot dispatch copies the handler first: it may replace itself (e.g.
      // the engine's first-frame handshake handler hands the connection to a
      // channel) or release the last reference to this connection.
      data_slot_.invoke(payload);
    } else {
      // Undelivered frames are moved, not copied, into the rx queue.
      rx_.push_back(std::move(payload));
    }
  }

  // Peer closed or coverage lost: mark closed and inform the application.
  // The close handler is consumed, so it fires at most once even when both
  // the peer frame and the keepalive report the same death.
  void force_close() {
    if (!open_) return;
    open_ = false;
    release_handlers_deferred();
    close_slot_.fire_once();
  }

  // Handlers often capture the connection's own shared_ptr (handshake
  // awaiters, relay loops). Clearing them synchronously could destroy the
  // object mid-member-call, so break the cycle on the next event.
  void release_handlers_deferred() {
    const std::weak_ptr<SimConnection> self = weak_from_this();
    net_.simulator().schedule_after(SimDuration{0}, [self] {
      if (const auto strong = self.lock()) strong->clear_handlers();
    });
  }

  // Teardown support (see ~SimNetwork): phase 1 marks the end closed so a
  // later destructor never touches the dying network/medium; phase 2 drops
  // the handlers, breaking handler->channel->connection reference cycles.
  void mark_closed() { open_ = false; }
  void clear_handlers() {
    // Take both handlers out before destroying either: releasing a capture
    // can reentrantly call set_*_handler(nullptr) on this same connection
    // (via ~Channel) or even destroy this connection outright.
    auto data = data_slot_.sever_take();
    auto close_h = close_slot_.sever_take();
    // Locals destroyed here, releasing whatever they captured; no member of
    // *this is touched after this point.
  }

  [[nodiscard]] int override_quality_now() {
    return quality_override_ ? quality_override_(net_.simulator().now()) : -1;
  }
  [[nodiscard]] bool has_quality_override() const {
    return static_cast<bool>(quality_override_);
  }

 private:
  SimNetwork& net_;
  std::shared_ptr<SimNetwork::Pair> pair_;
  bool is_a_;
  bool open_{true};
  HandlerSlot<void(const Bytes&)> data_slot_;
  HandlerSlot<void()> close_slot_;
  QualityOverride quality_override_;
  std::deque<Bytes> rx_;
};

SimNetwork::SimNetwork(sim::RadioMedium& medium) : medium_{medium} {}

SimNetwork::~SimNetwork() {
  // Quiesce every live connection end before the network dies: application
  // code (service-handler lambdas) can hold channels whose connections are
  // only reachable through handler reference cycles; when those cycles are
  // broken below, the resulting destructor runs must not call back into
  // this network or the radio medium.
  std::vector<std::shared_ptr<Pair>> pairs;
  pairs.reserve(pairs_.size());
  for (const auto& [id, pair] : pairs_) pairs.push_back(pair);
  for (const auto& pair : pairs) {
    pair->keepalive.stop();
    pair->torn_down = true;
    for (const auto& end : {pair->end_a.lock(), pair->end_b.lock()}) {
      if (end != nullptr) end->mark_closed();
    }
  }
  for (const auto& pair : pairs) {
    for (const auto& end : {pair->end_a.lock(), pair->end_b.lock()}) {
      if (end != nullptr) end->clear_handlers();
    }
  }
  pairs_.clear();
}

void SimNetwork::attach_interface(
    MacAddress mac, Technology tech,
    std::shared_ptr<const sim::MobilityModel> mobility) {
  interfaces_[iface_key(mac, tech)] = Interface{};
  medium_.register_endpoint(
      mac, tech, std::move(mobility),
      [this, mac, tech](MacAddress from, const Bytes& frame) {
        handle_frame(mac, tech, from, frame);
      });
}

void SimNetwork::detach_interface(MacAddress mac, Technology tech) {
  interfaces_.erase(iface_key(mac, tech));
  medium_.unregister_endpoint(mac, tech);
}

void SimNetwork::set_datagram_handler(MacAddress mac, Technology tech,
                                      DatagramHandler handler) {
  const auto it = interfaces_.find(iface_key(mac, tech));
  assert(it != interfaces_.end());
  it->second.datagram_handler = std::move(handler);
}

void SimNetwork::send_datagram(MacAddress from, MacAddress to, Technology tech,
                               Bytes payload) {
  Bytes frame;
  frame.reserve(kFrameHeaderSize + payload.size() + 1);
  frame.resize(kFrameHeaderSize);
  frame.push_back(kFrameDatagram);
  frame.insert(frame.end(), payload.begin(), payload.end());
  seal_frame(frame);
  medium_.send_frame(from, to, tech, std::move(frame));
}

void SimNetwork::send_datagram(MacAddress from, MacAddress to, Technology tech,
                               sim::RadioMedium::FramePtr frame) {
  // The sender baked the sealed integrity header + datagram tag in.
  assert(frame != nullptr && frame->size() > kFrameHeaderSize &&
         (*frame)[kFrameHeaderSize] == kDatagramFrameTag);
  medium_.send_frame(from, to, tech, std::move(frame));
}

Status SimNetwork::listen(const NetAddress& address, AcceptHandler handler) {
  // Double-bind is an error, as on real sockets (EADDRINUSE). The silent
  // overwrite this used to do could drop a live engine listener on the floor.
  const auto [it, inserted] =
      listeners_.try_emplace(address, std::move(handler));
  if (!inserted) {
    return Status{ErrorCode::kAddressInUse,
                  "listener already bound at " + address.to_string()};
  }
  return Status::ok_status();
}

void SimNetwork::stop_listening(const NetAddress& address) {
  listeners_.erase(address);
}

void SimNetwork::begin_inquiry(MacAddress mac, Technology tech) {
  // Accounting order matches the pre-interface Plugin code exactly (count,
  // then flip the asymmetry flag) so sim runs stay byte-identical.
  ++medium_.stats().inquiries;
  medium_.set_inquiring(mac, tech, true);
}

std::vector<MacAddress> SimNetwork::end_inquiry(MacAddress mac,
                                                Technology tech) {
  medium_.set_inquiring(mac, tech, false);
  std::vector<MacAddress> responders =
      medium_.discoverable_in_range(mac, tech);
  medium_.stats().inquiry_responses += responders.size();
  return responders;
}

void SimNetwork::cancel_inquiry(MacAddress mac, Technology tech) {
  // Stopped mid-inquiry: leave the medium in a sane state, not forever
  // undiscoverable-by-asymmetry.
  medium_.set_inquiring(mac, tech, false);
}

bool SimNetwork::peerhood_tag(MacAddress mac, Technology tech) const {
  return medium_.peerhood_tag(mac, tech);
}

int SimNetwork::sample_quality(MacAddress local, MacAddress peer,
                               Technology tech) {
  return medium_.sample_quality(local, peer, tech);
}

const sim::TechnologyParams& SimNetwork::params(Technology tech) const {
  return medium_.params(tech);
}

sim::QualityObserverId SimNetwork::observe_quality(
    MacAddress a, MacAddress b, Technology tech,
    sim::QualityObserverConfig config,
    sim::RadioMedium::QualityHandler handler) {
  return medium_.observe_quality(a, b, tech, config, std::move(handler));
}

void SimNetwork::unobserve_quality(sim::QualityObserverId id) {
  medium_.unobserve_quality(id);
}

sim::LinkQualityEvent SimNetwork::probe_link(MacAddress a, MacAddress b,
                                             Technology tech) {
  return medium_.probe_link(a, b, tech);
}

void SimNetwork::connect(MacAddress from_mac, const NetAddress& to,
                         ConnectHandler handler) {
  sim::Simulator& sim = simulator();
  if (from_mac == to.mac) {
    sim.schedule_after(microseconds(1), [handler] {
      handler(Error{ErrorCode::kInvalidArgument, "connect to own interface"});
    });
    return;
  }
  const sim::TechnologyParams& p = medium_.params(to.tech);
  const double delay_s =
      sim.rng().uniform(p.connect_delay_min_s, p.connect_delay_max_s);
  const bool fault = sim.rng().bernoulli(p.connect_failure_prob);
  sim.schedule_after(seconds(delay_s), [this, from_mac, to, handler, fault] {
    if (fault) {
      handler(Error{ErrorCode::kConnectionFailed,
                    "link-layer connection fault"});
      return;
    }
    finish_connect(from_mac, to, handler);
  });
}

void SimNetwork::finish_connect(MacAddress from_mac, NetAddress to,
                                ConnectHandler handler) {
  if (!medium_.in_range(from_mac, to.mac, to.tech)) {
    handler(Error{ErrorCode::kConnectionFailed, "peer out of coverage"});
    return;
  }
  // A scheduled blackout silences the link-layer handshake. Established
  // connections merely stall under a blackout (their frames drop at the
  // medium and retransmission recovers after it lifts), but a new one
  // cannot form across radio silence.
  if (medium_.link_blacked_out(from_mac, to.mac, to.tech)) {
    handler(Error{ErrorCode::kConnectionFailed, "link blacked out"});
    return;
  }
  const auto listener = listeners_.find(to);
  if (listener == listeners_.end()) {
    handler(Error{ErrorCode::kConnectionFailed,
                  "no listener at " + to.to_string()});
    return;
  }

  auto pair = std::make_shared<Pair>();
  pair->id = next_conn_id_++;
  pair->tech = to.tech;
  pair->addr_a = NetAddress{from_mac, to.tech, 0};
  pair->addr_b = to;
  auto end_a = std::make_shared<SimConnection>(*this, pair, /*is_a=*/true);
  auto end_b = std::make_shared<SimConnection>(*this, pair, /*is_a=*/false);
  pair->end_a = end_a;
  pair->end_b = end_b;
  pairs_[pair->id] = pair;

  const std::uint64_t conn_id = pair->id;
  pair->keepalive.start(simulator(), keepalive_period_,
                        [this, conn_id] { check_keepalive(conn_id); },
                        keepalive_period_);

  // Acceptor first (mirrors listen/accept then connect-return ordering).
  // Copy the accept handler out of the map: it may stop_listening on this
  // very address from inside the callback.
  const AcceptHandler accept = listener->second;
  accept(end_b);
  handler(ConnectionPtr{end_a});
}

void SimNetwork::handle_frame(MacAddress local, Technology tech,
                              MacAddress from, const Bytes& frame) {
  ++integrity_.frames_checked;
  const auto body = check_frame(frame);
  if (!body.has_value()) {
    // Truncated or bit-corrupted on the air (sim/fault.hpp): count and drop
    // before any decoder sees the bytes.
    ++integrity_.corrupt_drops;
    return;
  }
  if (body->empty()) return;
  const std::uint8_t kind = (*body)[0];
  if (kind == kFrameDatagram) {
    const auto it = interfaces_.find(iface_key(local, tech));
    if (it != interfaces_.end() && it->second.datagram_handler) {
      // Copy the handler before calling: it may detach this very interface
      // (daemon stop from inside a datagram), invalidating the map slot.
      // The payload itself is handed out as a view — no copy.
      const DatagramHandler handler = it->second.datagram_handler;
      handler(from, body->subspan(1));
    }
    return;
  }
  ByteReader reader{body->subspan(1)};
  const std::uint64_t conn_id = reader.u64();
  if (!reader.ok()) return;
  if (kind == kFrameData) {
    Bytes payload;
    payload.assign(body->begin() + 9, body->end());
    on_peer_data(conn_id, local, std::move(payload));
  } else if (kind == kFrameClose) {
    on_peer_close(conn_id, local);
  }
}

void SimNetwork::send_conn_frame(std::uint64_t conn_id, MacAddress from,
                                 MacAddress to, Technology tech,
                                 std::uint8_t kind, Bytes payload) {
  ByteWriter writer;
  writer.reserve(kFrameHeaderSize + 9 + payload.size());
  begin_frame(writer);
  writer.u8(kind);
  writer.u64(conn_id);
  writer.raw(payload);
  Bytes frame = std::move(writer).take();
  seal_frame(frame);
  medium_.send_frame(from, to, tech, std::move(frame));
}

void SimNetwork::on_peer_data(std::uint64_t conn_id, MacAddress receiver,
                              Bytes payload) {
  const auto it = pairs_.find(conn_id);
  if (it == pairs_.end()) return;
  Pair& pair = *it->second;
  const bool to_a = receiver == pair.addr_a.mac;
  auto end = (to_a ? pair.end_a : pair.end_b).lock();
  if (end == nullptr || !end->open()) return;
  end->deliver(std::move(payload));
}

void SimNetwork::on_peer_close(std::uint64_t conn_id, MacAddress receiver) {
  const auto it = pairs_.find(conn_id);
  if (it == pairs_.end()) return;
  Pair& pair = *it->second;
  const bool to_a = receiver == pair.addr_a.mac;
  (to_a ? pair.open_a : pair.open_b) = false;
  if (auto end = (to_a ? pair.end_a : pair.end_b).lock()) {
    end->force_close();
  }
  teardown(pair, /*notify_peers=*/false);
}

void SimNetwork::notify_local_close(Pair& pair, bool is_a) {
  (is_a ? pair.open_a : pair.open_b) = false;
  if (pair.torn_down) return;
  // Tell the peer; a lost frame here is fine — its keepalive/expired-end
  // checks converge to closed anyway.
  const NetAddress& self = is_a ? pair.addr_a : pair.addr_b;
  const NetAddress& peer = is_a ? pair.addr_b : pair.addr_a;
  send_conn_frame(pair.id, self.mac, peer.mac, pair.tech, kFrameClose, {});
  teardown(pair, /*notify_peers=*/false);
}

void SimNetwork::check_keepalive(std::uint64_t conn_id) {
  const auto it = pairs_.find(conn_id);
  if (it == pairs_.end()) return;
  Pair& pair = *it->second;
  auto end_a = pair.end_a.lock();
  auto end_b = pair.end_b.lock();

  bool dead = !medium_.in_range(pair.addr_a.mac, pair.addr_b.mac, pair.tech);
  // An artificial quality override that reaches 0 also kills the link
  // (§5.2.1 decay experiments).
  for (const auto& end : {end_a, end_b}) {
    if (end != nullptr && end->has_quality_override() &&
        end->override_quality_now() <= 0) {
      dead = true;
    }
  }
  // An end whose last handle was dropped behaves as closed.
  if ((pair.open_a && end_a == nullptr) || (pair.open_b && end_b == nullptr)) {
    dead = true;
  }
  if (dead) teardown(pair, /*notify_peers=*/true);
}

void SimNetwork::teardown(Pair& pair, bool notify_peers) {
  if (notify_peers) {
    for (const bool side_a : {true, false}) {
      bool& open_flag = side_a ? pair.open_a : pair.open_b;
      if (!open_flag) continue;
      open_flag = false;
      if (auto end = (side_a ? pair.end_a : pair.end_b).lock()) {
        end->force_close();
      }
    }
  }
  if (pair.open_a || pair.open_b || pair.torn_down) return;
  pair.torn_down = true;
  pair.keepalive.stop();
  // Deferred erase: teardown may run inside the pair's own keepalive tick.
  const std::uint64_t id = pair.id;
  simulator().schedule_after(SimDuration{0}, [this, id] { pairs_.erase(id); });
}

std::size_t SimNetwork::live_connection_count() const {
  std::size_t count = 0;
  for (const auto& [id, pair] : pairs_) {
    if (!pair->torn_down) ++count;
  }
  return count;
}

}  // namespace peerhood::net
