#include "net/frame_check.hpp"

#include <cassert>

namespace peerhood::net {

std::uint32_t frame_checksum(std::span<const std::uint8_t> body) {
  std::uint32_t hash = 2166136261u;
  for (const std::uint8_t byte : body) {
    hash ^= byte;
    hash *= 16777619u;
  }
  return hash;
}

void begin_frame(ByteWriter& writer) {
  writer.u16(0);
  writer.u32(0);
}

void seal_frame(Bytes& frame) {
  assert(frame.size() >= kFrameHeaderSize);
  const std::size_t body_len = frame.size() - kFrameHeaderSize;
  assert(body_len <= 0xffff);
  const std::span<const std::uint8_t> body{frame.data() + kFrameHeaderSize,
                                           body_len};
  const std::uint32_t checksum = frame_checksum(body);
  frame[0] = static_cast<std::uint8_t>(body_len >> 8);
  frame[1] = static_cast<std::uint8_t>(body_len & 0xff);
  frame[2] = static_cast<std::uint8_t>(checksum >> 24);
  frame[3] = static_cast<std::uint8_t>((checksum >> 16) & 0xff);
  frame[4] = static_cast<std::uint8_t>((checksum >> 8) & 0xff);
  frame[5] = static_cast<std::uint8_t>(checksum & 0xff);
}

std::optional<std::span<const std::uint8_t>> check_frame(
    std::span<const std::uint8_t> frame) {
  if (frame.size() < kFrameHeaderSize) return std::nullopt;
  const std::size_t body_len =
      (static_cast<std::size_t>(frame[0]) << 8) | frame[1];
  if (body_len != frame.size() - kFrameHeaderSize) return std::nullopt;
  const std::uint32_t claimed = (static_cast<std::uint32_t>(frame[2]) << 24) |
                                (static_cast<std::uint32_t>(frame[3]) << 16) |
                                (static_cast<std::uint32_t>(frame[4]) << 8) |
                                static_cast<std::uint32_t>(frame[5]);
  const std::span<const std::uint8_t> body = frame.subspan(kFrameHeaderSize);
  if (frame_checksum(body) != claimed) return std::nullopt;
  return body;
}

}  // namespace peerhood::net
