// PosixNetwork: the real-socket net::Network backend — the daemon leaves
// the simulator. UDP datagrams carry the discovery plane (fetch requests,
// snapshot responses, inquiry beacons); connections are length-prefix-framed
// TCP streams (net/stream_framer.hpp) multiplexed onto one listening socket
// per process via a logical-port hello. Everything is non-blocking over one
// epoll instance.
//
// Event core bridge: the backend owns a sim::Simulator whose clock is
// advanced to *wall time* (microseconds since construction) by poll_once().
// Every protocol timer — handshake retransmits, reliable-channel RTOs,
// inquiry cycles, deferred sends — schedules on that simulator exactly as it
// does against SimNetwork, and the epoll_wait timeout is bounded by the
// timing wheel's next deadline, so sockets and timers share one core.
//
// Robustness contract (PR 7's crash plane made real): a kill -9'd process
// loses exactly what Daemon::crash() loses. Peers observe the death as
// FIN/RST (connections force_close), the restarted daemon re-binds the same
// ports with a fresh epoch, and sessions resume through the kResumeRestart
// journal path. Send queues are bounded per connection with oldest-drop
// accounting; connects retry with capped backoff; EAGAIN, partial writes
// and RST land in the same close/retry paths the sim fault plane exercises.
//
// Scope: a static localhost/LAN peer table (mac -> ip:ports) stands in for
// the radio medium's geometry. Quality observation is declined (the
// handover controller falls back to its reactive loop) and sample_quality
// reports a flat healthy value for configured peers.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "net/address.hpp"
#include "net/connection.hpp"
#include "net/network.hpp"
#include "net/stream_framer.hpp"
#include "sim/simulator.hpp"

namespace peerhood::net {

class PosixConnection;

// One row of the static peer table.
struct PosixPeer {
  MacAddress mac;
  std::string ip{"127.0.0.1"};
  std::uint16_t udp_port{0};
  std::uint16_t tcp_port{0};
};

struct PosixConfig {
  MacAddress mac;
  std::string bind_ip{"127.0.0.1"};
  // 0 = kernel-assigned; read the bound value back via udp_port()/tcp_port().
  std::uint16_t udp_port{0};
  std::uint16_t tcp_port{0};
  std::uint64_t seed{1};
  // Advertised in inquiry beacon replies (the SDP PeerHood tag).
  bool peerhood_capable{true};
  // TCP connect + logical-port handshake deadline per attempt.
  SimDuration connect_timeout{std::chrono::milliseconds{1000}};
  // Attempts per connect() call; retries pay capped exponential backoff and
  // are counted in NetStats::reconnect_attempts.
  int connect_attempts{3};
  SimDuration connect_backoff_base{std::chrono::milliseconds{100}};
  SimDuration connect_backoff_cap{std::chrono::milliseconds{1000}};
  // Per-connection bounded send queue (frames); the oldest frame is dropped
  // on overflow (NetStats::send_queue_drops) — PR 7's accounting on a socket.
  std::size_t max_send_queue{1024};
  // Quality reported for configured peers (loopback links do not degrade).
  int link_quality{240};
};

class PosixNetwork final : public Network {
 public:
  explicit PosixNetwork(PosixConfig config);
  ~PosixNetwork() override;

  // Static topology: who exists and where their sockets live. Localhost
  // integration adds every process up front; add_peer after start is fine.
  void add_peer(const PosixPeer& peer);

  // Kernel-assigned ports after binding (for peer-table exchange in tests).
  [[nodiscard]] std::uint16_t udp_port() const { return udp_port_; }
  [[nodiscard]] std::uint16_t tcp_port() const { return tcp_port_; }
  [[nodiscard]] MacAddress mac() const { return config_.mac; }

  // Runs the event core once: fires due timers, waits for socket events at
  // most `max_wait` (bounded by the next timer deadline), handles them, and
  // fires timers that came due meanwhile. The daemon main loop and the
  // in-process tests/bench drive this.
  void poll_once(SimDuration max_wait = std::chrono::milliseconds{50});

  // Wall-clock now as SimTime (microseconds since construction).
  [[nodiscard]] SimTime wall_now() const;

  // --- net::Network ---------------------------------------------------------
  void attach_interface(
      MacAddress mac, Technology tech,
      std::shared_ptr<const sim::MobilityModel> mobility) override;
  void detach_interface(MacAddress mac, Technology tech) override;

  void set_datagram_handler(MacAddress mac, Technology tech,
                            DatagramHandler handler) override;
  void send_datagram(MacAddress from, MacAddress to, Technology tech,
                     Bytes payload) override;
  void send_datagram(MacAddress from, MacAddress to, Technology tech,
                     FramePtr frame) override;

  [[nodiscard]] Status listen(const NetAddress& address,
                              AcceptHandler handler) override;
  void stop_listening(const NetAddress& address) override;
  void connect(MacAddress from_mac, const NetAddress& to,
               ConnectHandler handler) override;
  void set_keepalive_period(SimDuration period) override {
    keepalive_period_ = period;
  }

  void begin_inquiry(MacAddress mac, Technology tech) override;
  [[nodiscard]] std::vector<MacAddress> end_inquiry(MacAddress mac,
                                                    Technology tech) override;
  void cancel_inquiry(MacAddress mac, Technology tech) override;
  [[nodiscard]] bool peerhood_tag(MacAddress mac,
                                  Technology tech) const override;
  [[nodiscard]] int sample_quality(MacAddress local, MacAddress peer,
                                   Technology tech) override;

  [[nodiscard]] const sim::TechnologyParams& params(
      Technology tech) const override;
  // Replaces the parameter set for one technology (fast localhost defaults
  // are installed at construction: sub-second inquiry cadence, no synthetic
  // connect delay or failure injection).
  void configure(const sim::TechnologyParams& params);

  [[nodiscard]] sim::Simulator& simulator() override { return sim_; }
  [[nodiscard]] std::size_t live_connection_count() const override;
  [[nodiscard]] NetStats net_stats() const override;

 private:
  friend class PosixConnection;

  struct PendingConnect;
  struct IncomingStream;
  struct ConnState;

  using IfaceKey = std::pair<std::uint64_t, std::uint8_t>;
  [[nodiscard]] static IfaceKey iface_key(MacAddress mac, Technology tech) {
    return {mac.as_u64(), static_cast<std::uint8_t>(tech)};
  }

  void advance_clock();
  void handle_udp_readable();
  void handle_listener_readable();
  void handle_pending_connect(int fd, std::uint32_t events);
  void handle_incoming(int fd, std::uint32_t events);
  void handle_conn_event(int fd, std::uint32_t events);
  void on_udp_packet(std::span<const std::uint8_t> packet);
  void on_beacon(std::span<const std::uint8_t> packet);
  void start_connect_attempt(std::uint64_t pending_id);
  void fail_connect(std::uint64_t pending_id, const std::string& reason);
  void finish_connect_handshake(std::uint64_t pending_id,
                                std::span<const std::uint8_t> ack_body);
  void accept_hello(int fd, std::span<const std::uint8_t> hello_body);
  void conn_write(ConnState& conn, std::span<const std::uint8_t> frame_body);
  void drain_conn_outbox(ConnState& conn);
  void close_conn(std::uint64_t conn_id, bool notify_app);
  void update_epoll(int fd, std::uint32_t events);
  void send_beacon(const PosixPeer& peer, Technology tech, bool reply);
  [[nodiscard]] const PosixPeer* find_peer(MacAddress mac) const;

  PosixConfig config_;
  sim::Simulator sim_;
  // steady_clock origin captured at construction (nanoseconds).
  std::int64_t wall_origin_ns_{0};

  int epoll_fd_{-1};
  int udp_fd_{-1};
  int tcp_fd_{-1};
  std::uint16_t udp_port_{0};
  std::uint16_t tcp_port_{0};

  std::map<std::uint64_t, PosixPeer> peers_;
  std::set<IfaceKey> attached_;
  std::map<IfaceKey, DatagramHandler> datagram_handlers_;
  std::map<NetAddress, AcceptHandler> listeners_;

  // Inquiry windows and learned SDP tags, per technology.
  std::set<std::uint8_t> inquiring_;
  std::map<std::uint8_t, std::set<std::uint64_t>> inquiry_responders_;
  std::map<IfaceKey, bool> peer_tags_;

  // fd -> state for the three live-socket kinds.
  std::map<int, std::uint64_t> fd_pending_;          // connecting/awaiting ack
  std::map<int, std::unique_ptr<IncomingStream>> incoming_;  // pre-hello
  std::map<int, std::uint64_t> fd_conn_;
  std::map<std::uint64_t, std::unique_ptr<PendingConnect>> pending_;
  std::map<std::uint64_t, std::shared_ptr<ConnState>> conns_;

  sim::TechnologyParams params_[kTechnologyCount];
  SimDuration keepalive_period_{std::chrono::milliseconds{500}};
  std::uint64_t next_pending_id_{1};
  std::uint64_t next_conn_seq_{1};
  std::uint64_t send_queue_drops_{0};
  std::uint64_t reconnect_attempts_{0};
  bool destroying_{false};
};

}  // namespace peerhood::net
