// SimNetwork: the simulated net::Network backend — connection-oriented
// transport plus datagrams on top of the radio medium. Models the paper's
// measured Bluetooth behaviour: connection establishment takes seconds and
// fails stochastically (§4.3), and an open link dies when the peers leave
// mutual coverage. Deterministic under a seed; the fault-injection plane
// (sim/fault.hpp) and the sharded medium both sit below this class.
//
// The real-socket counterpart is net/posix_network.hpp; the shared contract
// is net/network.hpp.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "net/address.hpp"
#include "net/connection.hpp"
#include "net/frame_check.hpp"
#include "net/network.hpp"
#include "sim/medium.hpp"

namespace peerhood::net {

class SimConnection;

class SimNetwork final : public Network {
 public:
  explicit SimNetwork(sim::RadioMedium& medium);
  ~SimNetwork() override;

  // Attaches a (device, technology) interface to the medium. All listeners,
  // datagrams and connections for that interface flow through this network.
  void attach_interface(
      MacAddress mac, Technology tech,
      std::shared_ptr<const sim::MobilityModel> mobility) override;
  void detach_interface(MacAddress mac, Technology tech) override;

  // --- Datagrams (used by the discovery plane) ------------------------------
  void set_datagram_handler(MacAddress mac, Technology tech,
                            DatagramHandler handler) override;
  void send_datagram(MacAddress from, MacAddress to, Technology tech,
                     Bytes payload) override;
  void send_datagram(MacAddress from, MacAddress to, Technology tech,
                     FramePtr frame) override;

  // --- Connections ----------------------------------------------------------
  [[nodiscard]] Status listen(const NetAddress& address,
                              AcceptHandler handler) override;
  void stop_listening(const NetAddress& address) override;

  // Asynchronously establishes a connection. The handler fires exactly once,
  // after the sampled per-technology establishment delay, with either an open
  // connection or an error (failure injection / out of range / no listener).
  void connect(MacAddress from_mac, const NetAddress& to,
               ConnectHandler handler) override;

  // How often open connections verify they are still in coverage.
  void set_keepalive_period(SimDuration period) override {
    keepalive_period_ = period;
  }

  // --- Discovery inquiry plane ---------------------------------------------
  // Delegates to the medium, preserving the pre-interface accounting order
  // (inquiries counted when the window opens, responses when it closes) so
  // sim runs stay byte-identical.
  void begin_inquiry(MacAddress mac, Technology tech) override;
  [[nodiscard]] std::vector<MacAddress> end_inquiry(MacAddress mac,
                                                    Technology tech) override;
  void cancel_inquiry(MacAddress mac, Technology tech) override;
  [[nodiscard]] bool peerhood_tag(MacAddress mac,
                                  Technology tech) const override;
  [[nodiscard]] int sample_quality(MacAddress local, MacAddress peer,
                                   Technology tech) override;

  [[nodiscard]] const sim::TechnologyParams& params(
      Technology tech) const override;

  // --- Quality observation (full support: the medium has geometry) ----------
  sim::QualityObserverId observe_quality(
      MacAddress a, MacAddress b, Technology tech,
      sim::QualityObserverConfig config,
      sim::RadioMedium::QualityHandler handler) override;
  void unobserve_quality(sim::QualityObserverId id) override;
  [[nodiscard]] sim::LinkQualityEvent probe_link(MacAddress a, MacAddress b,
                                                 Technology tech) override;

  [[nodiscard]] sim::RadioMedium& medium() { return medium_; }
  [[nodiscard]] sim::Simulator& simulator() override {
    return medium_.simulator();
  }

  // Count of connection pairs not yet fully closed (for tests).
  [[nodiscard]] std::size_t live_connection_count() const override;

 private:
  friend class SimConnection;

  struct Interface {
    DatagramHandler datagram_handler;
  };

  struct Pair;  // shared state of one connection (both ends)

  using IfaceKey = std::pair<std::uint64_t, std::uint8_t>;
  [[nodiscard]] static IfaceKey iface_key(MacAddress mac, Technology tech) {
    return {mac.as_u64(), static_cast<std::uint8_t>(tech)};
  }

  void handle_frame(MacAddress local, Technology tech, MacAddress from,
                    const Bytes& frame);
  void finish_connect(MacAddress from_mac, NetAddress to,
                      ConnectHandler handler);
  void on_peer_data(std::uint64_t conn_id, MacAddress receiver, Bytes payload);
  void on_peer_close(std::uint64_t conn_id, MacAddress receiver);
  void notify_local_close(Pair& pair, bool is_a);
  void check_keepalive(std::uint64_t conn_id);
  void teardown(Pair& pair, bool notify_peers);
  void send_conn_frame(std::uint64_t conn_id, MacAddress from, MacAddress to,
                       Technology tech, std::uint8_t kind, Bytes payload);

  sim::RadioMedium& medium_;
  std::map<IfaceKey, Interface> interfaces_;
  std::map<NetAddress, AcceptHandler> listeners_;
  std::map<std::uint64_t, std::shared_ptr<Pair>> pairs_;
  std::uint64_t next_conn_id_{1};
  SimDuration keepalive_period_{std::chrono::milliseconds{500}};
};

}  // namespace peerhood::net
