// Wire-frame integrity: every SimNetwork frame carries a 6-byte header —
// u16 body length + u32 FNV-1a checksum of the body — so bit corruption on
// the medium (sim/fault.hpp) is detected and the frame dropped at the
// receiver instead of feeding mangled bytes to the decoders. The decoders
// stay untrusted-input-strict regardless: the checksum is a fault *counter*,
// not the security boundary.
//
// Frames are built with a 6-byte placeholder (begin_frame) and sealed in
// place once the body is complete, so the send path stays single-allocation;
// shared cached frames (SnapshotCache) bake the sealed header into the
// buffer once and every requester ships the same allocation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/bytes.hpp"

namespace peerhood::net {

// u16 body length + u32 checksum.
inline constexpr std::size_t kFrameHeaderSize = 6;

// FNV-1a over the body bytes.
[[nodiscard]] std::uint32_t frame_checksum(std::span<const std::uint8_t> body);

// Reserves the header: writes kFrameHeaderSize zero bytes. The frame body
// follows; seal_frame fills the header in afterwards.
void begin_frame(ByteWriter& writer);

// Overwrites the placeholder at frame[0..5] with the real length + checksum
// of everything after it. The body must fit a u16 (asserted; medium frames
// are hundreds of bytes).
void seal_frame(Bytes& frame);

// Verifies the header; returns the body span on success, nullopt when the
// frame is truncated, length-inconsistent or fails the checksum.
[[nodiscard]] std::optional<std::span<const std::uint8_t>> check_frame(
    std::span<const std::uint8_t> frame);

}  // namespace peerhood::net
