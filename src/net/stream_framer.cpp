#include "net/stream_framer.hpp"

#include "net/frame_check.hpp"

namespace peerhood::net {

Bytes encode_stream_frame(std::span<const std::uint8_t> body) {
  Bytes frame;
  frame.reserve(kStreamHeaderSize + body.size());
  frame.push_back(static_cast<std::uint8_t>(kStreamMagic >> 8));
  frame.push_back(static_cast<std::uint8_t>(kStreamMagic & 0xff));
  // The remainder is a standard sealed frame: 6-byte placeholder, body,
  // seal in place.
  frame.resize(frame.size() + kFrameHeaderSize);
  frame.insert(frame.end(), body.begin(), body.end());
  // seal_frame seals from offset 0; the magic prefix means we seal a view.
  // Re-seal manually: u16 len + u32 checksum at offsets 2..7.
  const std::size_t body_len = body.size();
  frame[2] = static_cast<std::uint8_t>(body_len >> 8);
  frame[3] = static_cast<std::uint8_t>(body_len & 0xff);
  const std::uint32_t sum = frame_checksum(body);
  frame[4] = static_cast<std::uint8_t>(sum >> 24);
  frame[5] = static_cast<std::uint8_t>(sum >> 16);
  frame[6] = static_cast<std::uint8_t>(sum >> 8);
  frame[7] = static_cast<std::uint8_t>(sum & 0xff);
  return frame;
}

void StreamFramer::feed(std::span<const std::uint8_t> data) {
  if (poisoned_) return;  // the stream is already untrustworthy
  // Compact before growing: keeps the buffer bounded by (one frame + one
  // read) instead of the whole connection history.
  if (head_ > 0 && head_ == buffer_.size()) {
    buffer_.clear();
    head_ = 0;
  } else if (head_ > kStreamHeaderSize + 0xffff) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

std::optional<Bytes> StreamFramer::next() {
  if (poisoned_) return std::nullopt;
  const std::size_t avail = buffer_.size() - head_;
  if (avail < kStreamHeaderSize) return std::nullopt;
  const std::uint8_t* p = buffer_.data() + head_;
  const std::uint16_t magic =
      static_cast<std::uint16_t>((p[0] << 8) | p[1]);
  if (magic != kStreamMagic) {
    poisoned_ = true;
    return std::nullopt;
  }
  const std::size_t body_len = static_cast<std::size_t>((p[2] << 8) | p[3]);
  const std::size_t total = kStreamHeaderSize + body_len;
  if (avail < total) return std::nullopt;  // partial frame: wait for more
  // Verify with the shared integrity checker over the sealed part
  // (len + checksum + body).
  const auto body = check_frame(
      std::span<const std::uint8_t>{p + 2, kFrameHeaderSize + body_len});
  if (!body.has_value()) {
    poisoned_ = true;
    return std::nullopt;
  }
  Bytes out{body->begin(), body->end()};
  head_ += total;
  return out;
}

}  // namespace peerhood::net
