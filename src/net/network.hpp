// SimNetwork: connection-oriented transport plus datagrams on top of the
// radio medium. Models the paper's measured Bluetooth behaviour: connection
// establishment takes seconds and fails stochastically (§4.3), and an open
// link dies when the peers leave mutual coverage.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "net/address.hpp"
#include "net/connection.hpp"
#include "net/frame_check.hpp"
#include "sim/medium.hpp"

namespace peerhood::net {

class SimConnection;

class SimNetwork {
 public:
  using AcceptHandler = std::function<void(ConnectionPtr)>;
  using ConnectHandler = std::function<void(Result<ConnectionPtr>)>;
  // The payload view is valid only for the duration of the call; handlers
  // decode in place (no per-datagram copy on the receive path).
  using DatagramHandler =
      std::function<void(MacAddress from, std::span<const std::uint8_t>)>;

  // First *body* byte (after the integrity header, net/frame_check.hpp) of
  // every medium frame carrying a datagram. Public so the discovery snapshot
  // cache can bake the header + tag into its shared response buffers and
  // send them through send_datagram(FramePtr) without a copy.
  static constexpr std::uint8_t kDatagramFrameTag = 0;

  // Receive-side integrity accounting: frames whose length/checksum header
  // failed verification (bit corruption on the medium) are counted and
  // dropped before any decoder sees them.
  struct IntegrityStats {
    std::uint64_t frames_checked{0};
    std::uint64_t corrupt_drops{0};
  };

  explicit SimNetwork(sim::RadioMedium& medium);
  ~SimNetwork();

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  // Attaches a (device, technology) interface to the medium. All listeners,
  // datagrams and connections for that interface flow through this network.
  void attach_interface(MacAddress mac, Technology tech,
                        std::shared_ptr<const sim::MobilityModel> mobility);
  void detach_interface(MacAddress mac, Technology tech);

  // --- Datagrams (used by the discovery plane) ------------------------------
  void set_datagram_handler(MacAddress mac, Technology tech,
                            DatagramHandler handler);
  void send_datagram(MacAddress from, MacAddress to, Technology tech,
                     Bytes payload);
  // Copy-free variant: `frame` must already start with kDatagramFrameTag
  // (the sender baked the tag in). Repeated sends of the same frame share
  // one allocation end to end — the discovery cache's steady-state path.
  void send_datagram(MacAddress from, MacAddress to, Technology tech,
                     sim::RadioMedium::FramePtr frame);

  // --- Connections ----------------------------------------------------------
  void listen(const NetAddress& address, AcceptHandler handler);
  void stop_listening(const NetAddress& address);

  // Asynchronously establishes a connection. The handler fires exactly once,
  // after the sampled per-technology establishment delay, with either an open
  // connection or an error (failure injection / out of range / no listener).
  void connect(MacAddress from_mac, const NetAddress& to,
               ConnectHandler handler);

  // How often open connections verify they are still in coverage.
  void set_keepalive_period(SimDuration period) { keepalive_period_ = period; }

  [[nodiscard]] sim::RadioMedium& medium() { return medium_; }
  [[nodiscard]] sim::Simulator& simulator() { return medium_.simulator(); }

  // Count of connection pairs not yet fully closed (for tests).
  [[nodiscard]] std::size_t live_connection_count() const;

  [[nodiscard]] const IntegrityStats& integrity_stats() const {
    return integrity_;
  }

 private:
  friend class SimConnection;

  struct Interface {
    DatagramHandler datagram_handler;
  };

  struct Pair;  // shared state of one connection (both ends)

  using IfaceKey = std::pair<std::uint64_t, std::uint8_t>;
  [[nodiscard]] static IfaceKey iface_key(MacAddress mac, Technology tech) {
    return {mac.as_u64(), static_cast<std::uint8_t>(tech)};
  }

  void handle_frame(MacAddress local, Technology tech, MacAddress from,
                    const Bytes& frame);
  void finish_connect(MacAddress from_mac, NetAddress to,
                      ConnectHandler handler);
  void on_peer_data(std::uint64_t conn_id, MacAddress receiver, Bytes payload);
  void on_peer_close(std::uint64_t conn_id, MacAddress receiver);
  void notify_local_close(Pair& pair, bool is_a);
  void check_keepalive(std::uint64_t conn_id);
  void teardown(Pair& pair, bool notify_peers);
  void send_conn_frame(std::uint64_t conn_id, MacAddress from, MacAddress to,
                       Technology tech, std::uint8_t kind, Bytes payload);

  sim::RadioMedium& medium_;
  std::map<IfaceKey, Interface> interfaces_;
  std::map<NetAddress, AcceptHandler> listeners_;
  std::map<std::uint64_t, std::shared_ptr<Pair>> pairs_;
  std::uint64_t next_conn_id_{1};
  SimDuration keepalive_period_{std::chrono::milliseconds{500}};
  IntegrityStats integrity_;
};

}  // namespace peerhood::net
