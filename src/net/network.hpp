// net::Network — the abstract transport the whole PeerHood stack runs on.
//
// Backend split (this PR): the protocol stack (Engine, Daemon, Plugin,
// dial_with_ack, Library, BridgeService, HandoverController) consumes only
// this interface. Two backends implement it:
//
//   - SimNetwork   (net/sim_network.hpp): the simulated transport on top of
//     sim::RadioMedium — stochastic connect delays/failures, coverage-driven
//     link death, the fault-injection plane. Deterministic under a seed.
//   - PosixNetwork (net/posix_network.hpp): real sockets — UDP datagrams plus
//     length-prefix-framed TCP channels over epoll, bridged into a wall-clock
//     driven sim::Simulator so timers and sockets share one event core.
//
// The interface covers everything the stack needs from a medium: datagrams,
// listen/connect with ConnectionPtr endpoints, the discovery inquiry plane,
// link-quality sampling/observation, per-technology parameters, integrity
// accounting, and the backend's Simulator (timers + deterministic RNG).
// Quality *observation* (the predictive-handover push plane) is optional:
// backends without a mobility model return kInvalidQualityObserver and the
// handover controller degrades gracefully to its reactive loop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "net/address.hpp"
#include "net/connection.hpp"
#include "sim/medium.hpp"

namespace peerhood::net {

// Backend-agnostic transport counters, reported identically by chaos/crash
// benches across backends (merged into ScenarioMetrics for sim runs, logged
// by the real daemon on shutdown).
struct NetStats {
  // Receive-side integrity: frames checked / dropped by the length+checksum
  // header (bit corruption on the air, or garbage on a real socket).
  std::uint64_t frames_checked{0};
  std::uint64_t corrupt_drops{0};
  // Oldest-drop evictions from bounded per-peer send queues.
  std::uint64_t send_queue_drops{0};
  // Connect attempts beyond the first (capped-backoff reconnects).
  std::uint64_t reconnect_attempts{0};

  NetStats& operator+=(const NetStats& other) {
    frames_checked += other.frames_checked;
    corrupt_drops += other.corrupt_drops;
    send_queue_drops += other.send_queue_drops;
    reconnect_attempts += other.reconnect_attempts;
    return *this;
  }
};

class Network {
 public:
  using AcceptHandler = std::function<void(ConnectionPtr)>;
  using ConnectHandler = std::function<void(Result<ConnectionPtr>)>;
  // The payload view is valid only for the duration of the call; handlers
  // decode in place (no per-datagram copy on the receive path).
  using DatagramHandler =
      std::function<void(MacAddress from, std::span<const std::uint8_t>)>;
  // Shared immutable frame buffer (one allocation, many sends).
  using FramePtr = sim::RadioMedium::FramePtr;

  // First *body* byte (after the integrity header, net/frame_check.hpp) of
  // every frame carrying a datagram. Public so the discovery snapshot cache
  // can bake the header + tag into its shared response buffers and send them
  // through send_datagram(FramePtr) without a copy.
  static constexpr std::uint8_t kDatagramFrameTag = 0;

  // Receive-side integrity accounting: frames whose length/checksum header
  // failed verification are counted and dropped before any decoder sees
  // them. Kept as its own struct (and not just NetStats fields) for the
  // fault-plane tests that assert on it directly.
  struct IntegrityStats {
    std::uint64_t frames_checked{0};
    std::uint64_t corrupt_drops{0};
  };

  Network() = default;
  virtual ~Network() = default;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Attaches a (device, technology) interface. All listeners, datagrams and
  // connections for that interface flow through this network. The mobility
  // model feeds the sim medium's geometry; socket backends ignore it.
  virtual void attach_interface(
      MacAddress mac, Technology tech,
      std::shared_ptr<const sim::MobilityModel> mobility) = 0;
  virtual void detach_interface(MacAddress mac, Technology tech) = 0;

  // --- Datagrams (used by the discovery plane) ------------------------------
  virtual void set_datagram_handler(MacAddress mac, Technology tech,
                                    DatagramHandler handler) = 0;
  virtual void send_datagram(MacAddress from, MacAddress to, Technology tech,
                             Bytes payload) = 0;
  // Copy-free variant: `frame` must already start with the sealed integrity
  // header + kDatagramFrameTag (the sender baked them in). Repeated sends of
  // the same frame share one allocation end to end — the discovery cache's
  // steady-state path.
  virtual void send_datagram(MacAddress from, MacAddress to, Technology tech,
                             FramePtr frame) = 0;

  // --- Connections ----------------------------------------------------------
  // Binds an accept handler to `address`. Double-bind is an error (real
  // sockets say EADDRINUSE): the first listener keeps the address.
  [[nodiscard]] virtual Status listen(const NetAddress& address,
                                      AcceptHandler handler) = 0;
  virtual void stop_listening(const NetAddress& address) = 0;

  // Asynchronously establishes a connection. The handler fires exactly once
  // with either an open connection or an error.
  virtual void connect(MacAddress from_mac, const NetAddress& to,
                       ConnectHandler handler) = 0;

  // How often open connections verify their peer is still alive/in coverage.
  virtual void set_keepalive_period(SimDuration period) = 0;

  // --- Discovery inquiry plane ---------------------------------------------
  // One §3.4.2 inquiry window: begin_inquiry opens it (the device stops
  // answering other inquiries while it scans — the Bluetooth asymmetry),
  // end_inquiry closes it and returns the responders heard, cancel_inquiry
  // closes it discarding them (plugin stopped mid-window).
  virtual void begin_inquiry(MacAddress mac, Technology tech) = 0;
  [[nodiscard]] virtual std::vector<MacAddress> end_inquiry(
      MacAddress mac, Technology tech) = 0;
  virtual void cancel_inquiry(MacAddress mac, Technology tech) = 0;
  // The "PeerHood tag" found via SDP query (§2.3): whether `mac` advertises
  // PeerHood capability on `tech`.
  [[nodiscard]] virtual bool peerhood_tag(MacAddress mac,
                                          Technology tech) const = 0;
  // Noisy RSSI-style sample of the (local, peer) link; 0 = gone.
  [[nodiscard]] virtual int sample_quality(MacAddress local, MacAddress peer,
                                           Technology tech) = 0;

  // Per-technology timing/behaviour parameters (inquiry cadence, fetch cost,
  // connect-delay envelope). Backends own the values: the sim medium models
  // the paper's measurements, the socket backend ships fast local defaults.
  [[nodiscard]] virtual const sim::TechnologyParams& params(
      Technology tech) const = 0;

  // --- Push-based quality observation (optional) ----------------------------
  // The predictive-handover plane. Backends without a mobility/geometry
  // model return kInvalidQualityObserver; the controller then never gets a
  // kFell edge and falls back to its reactive monitor loop.
  virtual sim::QualityObserverId observe_quality(
      MacAddress a, MacAddress b, Technology tech,
      sim::QualityObserverConfig config, sim::RadioMedium::QualityHandler
      handler) {
    (void)a; (void)b; (void)tech; (void)config; (void)handler;
    return sim::kInvalidQualityObserver;
  }
  virtual void unobserve_quality(sim::QualityObserverId id) { (void)id; }
  // One-shot link measurement in observer-event form. The default (socket
  // backends) has no geometry: quality from sample_quality, no distance or
  // radial speed — the time-to-loss predictor stays quiet and the reactive
  // path does the repairs.
  [[nodiscard]] virtual sim::LinkQualityEvent probe_link(MacAddress a,
                                                         MacAddress b,
                                                         Technology tech) {
    sim::LinkQualityEvent event;
    event.a = a;
    event.b = b;
    event.tech = tech;
    event.quality = sample_quality(a, b, tech);
    event.at = simulator().now();
    return event;
  }

  // The backend's event core: timers and the deterministic RNG stream every
  // protocol layer schedules against. For SimNetwork this is the medium's
  // simulator; for PosixNetwork a wall-clock-driven instance whose wheel
  // deadlines bound the epoll_wait timeout.
  [[nodiscard]] virtual sim::Simulator& simulator() = 0;

  // Count of connections not yet fully closed (for tests).
  [[nodiscard]] virtual std::size_t live_connection_count() const = 0;

  [[nodiscard]] const IntegrityStats& integrity_stats() const {
    return integrity_;
  }

  // Backend-agnostic counters; backends fold their queue/reconnect
  // accounting on top of the shared integrity numbers.
  [[nodiscard]] virtual NetStats net_stats() const {
    NetStats stats;
    stats.frames_checked = integrity_.frames_checked;
    stats.corrupt_drops = integrity_.corrupt_drops;
    return stats;
  }

 protected:
  IntegrityStats integrity_;
};

}  // namespace peerhood::net
