#include "net/posix_network.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/handler_slot.hpp"
#include "common/log.hpp"
#include "net/frame_check.hpp"

namespace peerhood::net {
namespace {

// UDP packet kinds (first byte of every datagram socket packet).
constexpr std::uint8_t kUdpData = 0xB6;    // discovery datagram (sealed frame)
constexpr std::uint8_t kUdpBeacon = 0xB7;  // inquiry probe / reply

// Beacon flag bits.
constexpr std::uint8_t kBeaconReply = 0x01;
constexpr std::uint8_t kBeaconCapable = 0x02;

// Stream frame kinds (first body byte after the framer).
constexpr std::uint8_t kStreamHello = 0x01;
constexpr std::uint8_t kStreamHelloAck = 0x02;
constexpr std::uint8_t kStreamData = 0x03;

constexpr std::size_t kUdpHeader = 1 + 8 + 1;  // kind + from mac + tech
constexpr std::size_t kReadChunk = 16 * 1024;


sockaddr_in make_addr(const std::string& ip, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr);
  return addr;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

// Fast, clean localhost parameters: discovery cycles in hundreds of
// milliseconds instead of the paper's 10 s Bluetooth cadence, no synthetic
// failure injection (real sockets supply their own faults).
sim::TechnologyParams fast_params(Technology tech) {
  sim::TechnologyParams params;
  params.tech = tech;
  params.inquiry_interval = std::chrono::milliseconds{300};
  params.inquiry_duration = std::chrono::milliseconds{80};
  params.asymmetric_discovery = false;
  params.fetch_time = std::chrono::milliseconds{10};
  params.fetch_failure_prob = 0.0;
  params.connect_delay_min_s = 0.0;
  params.connect_delay_max_s = 0.05;
  params.connect_failure_prob = 0.0;
  params.per_hop_latency = std::chrono::microseconds{200};
  params.bytes_per_second = 50.0 * 1024 * 1024;
  return params;
}

}  // namespace

// --- Connection endpoint -----------------------------------------------------

// Shared state of one TCP-backed connection (the network side). The
// application-facing endpoint (PosixConnection) holds a shared_ptr to this;
// the fd and outbox live here so the network can drain and close even after
// the application dropped its handle.
struct PosixNetwork::ConnState {
  std::uint64_t id{0};
  int fd{-1};
  NetAddress local;
  NetAddress remote;
  StreamFramer framer;
  // Encoded stream frames awaiting the socket, plus the send offset into the
  // front frame (partial writes).
  std::deque<Bytes> outbox;
  std::size_t front_sent{0};
  bool want_write{false};
  bool open{true};
  std::weak_ptr<PosixConnection> endpoint;
};

class PosixConnection final
    : public Connection,
      public std::enable_shared_from_this<PosixConnection> {
 public:
  PosixConnection(PosixNetwork& net, std::shared_ptr<PosixNetwork::ConnState>
                  state)
      : net_{net}, state_{std::move(state)} {}

  ~PosixConnection() override {
    if (open_) {
      open_ = false;
      close_slot_.sever();
      net_.close_conn(state_->id, /*notify_app=*/false);
    }
  }

  Status write(Bytes frame) override {
    if (!open_) {
      return Status{ErrorCode::kConnectionClosed, "write on closed connection"};
    }
    net_.conn_write(*state_, frame);
    return Status::ok_status();
  }

  void set_data_handler(DataHandler handler) override {
    data_slot_.set(std::move(handler));
    if (!data_slot_.armed() || rx_.empty()) return;
    // Same drain discipline as SimConnection: a drained frame's handler may
    // replace itself or drop the last strong reference to this connection.
    const std::weak_ptr<PosixConnection> self = weak_from_this();
    while (const auto strong = self.lock()) {
      if (!strong->data_slot_.armed() || strong->rx_.empty()) break;
      Bytes frame = std::move(strong->rx_.front());
      strong->rx_.pop_front();
      strong->data_slot_.invoke(frame);
    }
  }

  void set_close_handler(CloseHandler handler) override {
    close_slot_.set(std::move(handler));
  }

  std::optional<Bytes> poll_frame() override {
    if (rx_.empty()) return std::nullopt;
    Bytes frame = std::move(rx_.front());
    rx_.pop_front();
    return frame;
  }

  void close() override {
    if (!open_) return;
    open_ = false;
    net_.close_conn(state_->id, /*notify_app=*/false);
    release_handlers_deferred();
  }

  [[nodiscard]] bool open() const override { return open_; }

  int link_quality() override {
    if (quality_override_) {
      return quality_override_(net_.simulator().now());
    }
    if (!open_) return 0;
    return net_.sample_quality(local_address().mac, remote_address().mac,
                               state_->remote.tech);
  }

  void set_quality_override(QualityOverride override_fn) override {
    quality_override_ = std::move(override_fn);
  }

  [[nodiscard]] NetAddress local_address() const override {
    return state_->local;
  }
  [[nodiscard]] NetAddress remote_address() const override {
    return state_->remote;
  }
  [[nodiscard]] std::uint64_t id() const override { return state_->id; }

  // --- hooks used by PosixNetwork ------------------------------------------
  void deliver(Bytes payload) {
    if (!open_) return;
    if (data_slot_.armed()) {
      data_slot_.invoke(payload);
    } else {
      rx_.push_back(std::move(payload));
    }
  }

  // Peer death (FIN/RST/poisoned stream): fire the close handler at most
  // once, handlers released on the next event (they often capture our own
  // shared_ptr — see handler_slot.hpp).
  void force_close() {
    if (!open_) return;
    open_ = false;
    release_handlers_deferred();
    close_slot_.fire_once();
  }

  void release_handlers_deferred() {
    const std::weak_ptr<PosixConnection> self = weak_from_this();
    net_.simulator().schedule_after(SimDuration{0}, [self] {
      if (const auto strong = self.lock()) strong->clear_handlers();
    });
  }

  void mark_closed() { open_ = false; }
  void clear_handlers() {
    auto data = data_slot_.sever_take();
    auto close_h = close_slot_.sever_take();
    // Locals destroyed here; no member of *this touched afterwards.
  }

 private:
  PosixNetwork& net_;
  std::shared_ptr<PosixNetwork::ConnState> state_;
  bool open_{true};
  HandlerSlot<void(const Bytes&)> data_slot_;
  HandlerSlot<void()> close_slot_;
  QualityOverride quality_override_;
  std::deque<Bytes> rx_;
};

// An outbound connect in flight: TCP three-way handshake, then the logical
// hello/ack. Retries with capped backoff on refusal or timeout.
struct PosixNetwork::PendingConnect {
  std::uint64_t id{0};
  int fd{-1};
  MacAddress from;
  NetAddress to;
  ConnectHandler handler;
  StreamFramer framer;
  std::uint64_t conn_id{0};
  int attempt{0};
  bool awaiting_ack{false};
  sim::EventId timeout{sim::kInvalidEvent};
  // Hello bytes not yet flushed to the socket (short-write safety).
  Bytes hello_pending;
  std::size_t hello_sent{0};
};

// An accepted TCP stream before its logical hello arrived.
struct PosixNetwork::IncomingStream {
  int fd{-1};
  StreamFramer framer;
};

// --- Construction / teardown -------------------------------------------------

PosixNetwork::PosixNetwork(PosixConfig config)
    : config_{config}, sim_{config.seed} {
  wall_origin_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count();
  for (std::size_t i = 0; i < kTechnologyCount; ++i) {
    params_[i] = fast_params(static_cast<Technology>(i));
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  assert(epoll_fd_ >= 0);

  udp_fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  assert(udp_fd_ >= 0);
  int one = 1;
  ::setsockopt(udp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in udp_addr = make_addr(config_.bind_ip, config_.udp_port);
  if (::bind(udp_fd_, reinterpret_cast<sockaddr*>(&udp_addr),
             sizeof(udp_addr)) != 0) {
    log(LogLevel::kError, sim_.now(), "posixnet",
        "udp bind failed: ", std::strerror(errno));
  }
  udp_port_ = bound_port(udp_fd_);

  tcp_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  assert(tcp_fd_ >= 0);
  ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in tcp_addr = make_addr(config_.bind_ip, config_.tcp_port);
  if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&tcp_addr),
             sizeof(tcp_addr)) != 0 ||
      ::listen(tcp_fd_, 64) != 0) {
    log(LogLevel::kError, sim_.now(), "posixnet",
        "tcp bind/listen failed: ", std::strerror(errno));
  }
  tcp_port_ = bound_port(tcp_fd_);

  update_epoll(udp_fd_, EPOLLIN);
  update_epoll(tcp_fd_, EPOLLIN);
}

PosixNetwork::~PosixNetwork() {
  destroying_ = true;
  // Two-phase quiesce, mirroring ~SimNetwork: first mark every endpoint
  // closed (so destructors triggered below never call back into this dying
  // network), then break the handler->channel->connection reference cycles.
  std::vector<std::shared_ptr<ConnState>> conns;
  conns.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) conns.push_back(conn);
  for (const auto& conn : conns) {
    conn->open = false;
    if (const auto end = conn->endpoint.lock()) end->mark_closed();
  }
  for (const auto& conn : conns) {
    if (const auto end = conn->endpoint.lock()) end->clear_handlers();
  }
  for (const auto& conn : conns) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  conns_.clear();
  // Half-open connects: dropping the PendingConnect releases the handler's
  // captures (dial state) without invoking it — same as a SimNetwork dying
  // with a connect event still queued.
  for (const auto& [id, pending] : pending_) {
    if (pending->fd >= 0) ::close(pending->fd);
  }
  pending_.clear();
  for (const auto& [fd, incoming] : incoming_) ::close(fd);
  incoming_.clear();
  if (udp_fd_ >= 0) ::close(udp_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void PosixNetwork::add_peer(const PosixPeer& peer) {
  peers_[peer.mac.as_u64()] = peer;
}

const PosixPeer* PosixNetwork::find_peer(MacAddress mac) const {
  const auto it = peers_.find(mac.as_u64());
  return it == peers_.end() ? nullptr : &it->second;
}

// --- Event core --------------------------------------------------------------

SimTime PosixNetwork::wall_now() const {
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return SimTime{microseconds((now_ns - wall_origin_ns_) / 1000)};
}

void PosixNetwork::advance_clock() { sim_.run_until(wall_now()); }

void PosixNetwork::poll_once(SimDuration max_wait) {
  // Fire timers due by wall time, then sleep in epoll at most until the
  // timing wheel's next deadline — timers and sockets share one core.
  advance_clock();
  std::int64_t wait_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(max_wait).count();
  if (!sim_.idle()) {
    const SimDuration until_next = sim_.next_event_time() - sim_.now();
    const std::int64_t next_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(until_next)
            .count();
    wait_ms = std::clamp<std::int64_t>(next_ms, 0, wait_ms);
  }
  epoll_event events[64];
  const int n = ::epoll_wait(epoll_fd_, events, 64,
                             static_cast<int>(wait_ms));
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    const std::uint32_t mask = events[i].events;
    if (fd == udp_fd_) {
      handle_udp_readable();
    } else if (fd == tcp_fd_) {
      handle_listener_readable();
    } else if (fd_pending_.contains(fd)) {
      handle_pending_connect(fd, mask);
    } else if (incoming_.contains(fd)) {
      handle_incoming(fd, mask);
    } else if (fd_conn_.contains(fd)) {
      handle_conn_event(fd, mask);
    }
    if (destroying_) return;
  }
  advance_clock();
}

void PosixNetwork::update_epoll(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0 && errno == ENOENT) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

// --- Interfaces / datagrams --------------------------------------------------

void PosixNetwork::attach_interface(
    MacAddress mac, Technology tech,
    std::shared_ptr<const sim::MobilityModel> /*mobility*/) {
  // No geometry on a socket backend: attaching makes the interface answer
  // datagrams and inquiry beacons; the mobility model is meaningless here.
  attached_.insert(iface_key(mac, tech));
}

void PosixNetwork::detach_interface(MacAddress mac, Technology tech) {
  attached_.erase(iface_key(mac, tech));
  datagram_handlers_.erase(iface_key(mac, tech));
}

void PosixNetwork::set_datagram_handler(MacAddress mac, Technology tech,
                                        DatagramHandler handler) {
  datagram_handlers_[iface_key(mac, tech)] = std::move(handler);
}

void PosixNetwork::send_datagram(MacAddress from, MacAddress to,
                                 Technology tech, Bytes payload) {
  Bytes framed;
  framed.reserve(kFrameHeaderSize + payload.size() + 1);
  framed.resize(kFrameHeaderSize);
  framed.push_back(kDatagramFrameTag);
  framed.insert(framed.end(), payload.begin(), payload.end());
  seal_frame(framed);
  send_datagram(from, to, tech,
                std::make_shared<const Bytes>(std::move(framed)));
}

void PosixNetwork::send_datagram(MacAddress from, MacAddress to,
                                 Technology tech, FramePtr frame) {
  assert(frame != nullptr && frame->size() > kFrameHeaderSize &&
         (*frame)[kFrameHeaderSize] == kDatagramFrameTag);
  const PosixPeer* peer = find_peer(to);
  if (peer == nullptr) return;  // not in the topology: silent, like a radio
  std::uint8_t header[kUdpHeader];
  header[0] = kUdpData;
  const std::uint64_t mac64 = from.as_u64();
  for (int i = 0; i < 8; ++i) {
    header[1 + i] = static_cast<std::uint8_t>(mac64 >> (56 - 8 * i));
  }
  header[9] = static_cast<std::uint8_t>(tech);
  iovec iov[2];
  iov[0] = {header, sizeof(header)};
  iov[1] = {const_cast<std::uint8_t*>(frame->data()), frame->size()};
  sockaddr_in addr = make_addr(peer->ip, peer->udp_port);
  msghdr msg{};
  msg.msg_name = &addr;
  msg.msg_namelen = sizeof(addr);
  msg.msg_iov = iov;
  msg.msg_iovlen = 2;
  if (::sendmsg(udp_fd_, &msg, 0) < 0) {
    // Kernel buffer full (EAGAIN) or transient error: a dropped datagram —
    // exactly what the discovery plane's retransmits exist for.
    ++send_queue_drops_;
  }
}

void PosixNetwork::handle_udp_readable() {
  std::uint8_t buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(udp_fd_, buffer, sizeof(buffer), 0);
    if (n < 0) return;  // EAGAIN or transient: nothing more to read
    if (destroying_) return;
    on_udp_packet(std::span<const std::uint8_t>{buffer,
                                                static_cast<std::size_t>(n)});
  }
}

void PosixNetwork::on_udp_packet(std::span<const std::uint8_t> packet) {
  if (packet.size() < kUdpHeader) return;
  if (packet[0] == kUdpBeacon) {
    on_beacon(packet);
    return;
  }
  if (packet[0] != kUdpData) return;
  std::uint64_t mac64 = 0;
  for (int i = 0; i < 8; ++i) mac64 = (mac64 << 8) | packet[1 + i];
  const auto tech_raw = packet[9];
  if (tech_raw >= kTechnologyCount) return;
  const Technology tech = static_cast<Technology>(tech_raw);
  const MacAddress from = MacAddress::from_u64(mac64);

  const auto sealed = packet.subspan(kUdpHeader);
  ++integrity_.frames_checked;
  const auto body = check_frame(sealed);
  if (!body.has_value()) {
    ++integrity_.corrupt_drops;
    return;
  }
  if (body->empty() || (*body)[0] != kDatagramFrameTag) return;
  // Deliver to whichever attached interface on `tech` carries a handler
  // (one process = one device in practice).
  for (const auto& key : attached_) {
    if (key.second != static_cast<std::uint8_t>(tech)) continue;
    const auto it = datagram_handlers_.find(key);
    if (it == datagram_handlers_.end() || !it->second) continue;
    // Copy-before-call: the handler may detach this interface.
    const DatagramHandler handler = it->second;
    handler(from, body->subspan(1));
    return;
  }
}

// --- Inquiry beacons ---------------------------------------------------------

void PosixNetwork::send_beacon(const PosixPeer& peer, Technology tech,
                               bool reply) {
  std::uint8_t packet[kUdpHeader + 1];
  packet[0] = kUdpBeacon;
  const std::uint64_t mac64 = config_.mac.as_u64();
  for (int i = 0; i < 8; ++i) {
    packet[1 + i] = static_cast<std::uint8_t>(mac64 >> (56 - 8 * i));
  }
  packet[9] = static_cast<std::uint8_t>(tech);
  packet[10] = static_cast<std::uint8_t>(
      (reply ? kBeaconReply : 0) |
      (config_.peerhood_capable ? kBeaconCapable : 0));
  sockaddr_in addr = make_addr(peer.ip, peer.udp_port);
  (void)::sendto(udp_fd_, packet, sizeof(packet), 0,
                 reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
}

void PosixNetwork::on_beacon(std::span<const std::uint8_t> packet) {
  if (packet.size() < kUdpHeader + 1) return;
  std::uint64_t mac64 = 0;
  for (int i = 0; i < 8; ++i) mac64 = (mac64 << 8) | packet[1 + i];
  const auto tech_raw = packet[9];
  if (tech_raw >= kTechnologyCount) return;
  const Technology tech = static_cast<Technology>(tech_raw);
  const std::uint8_t flags = packet[10];
  const MacAddress from = MacAddress::from_u64(mac64);
  peer_tags_[iface_key(from, tech)] = (flags & kBeaconCapable) != 0;

  if ((flags & kBeaconReply) != 0) {
    // A reply to our probe: collect while the inquiry window is open.
    if (inquiring_.contains(tech_raw)) {
      inquiry_responders_[tech_raw].insert(mac64);
    }
    return;
  }
  // A probe: answer if we have a live interface on that technology (a
  // crashed daemon detached, or is simply a dead process — silent either
  // way).
  const PosixPeer* peer = find_peer(from);
  if (peer == nullptr) return;
  for (const auto& key : attached_) {
    if (key.second == tech_raw) {
      send_beacon(*peer, tech, /*reply=*/true);
      return;
    }
  }
}

void PosixNetwork::begin_inquiry(MacAddress /*mac*/, Technology tech) {
  const auto tech_raw = static_cast<std::uint8_t>(tech);
  inquiring_.insert(tech_raw);
  inquiry_responders_[tech_raw].clear();
  // Probe the whole static topology; replies accumulate until end_inquiry.
  for (const auto& [mac64, peer] : peers_) {
    if (mac64 == config_.mac.as_u64()) continue;
    send_beacon(peer, tech, /*reply=*/false);
  }
}

std::vector<MacAddress> PosixNetwork::end_inquiry(MacAddress /*mac*/,
                                                  Technology tech) {
  const auto tech_raw = static_cast<std::uint8_t>(tech);
  inquiring_.erase(tech_raw);
  std::vector<MacAddress> responders;
  for (const std::uint64_t mac64 : inquiry_responders_[tech_raw]) {
    responders.push_back(MacAddress::from_u64(mac64));
  }
  inquiry_responders_[tech_raw].clear();
  return responders;  // std::set iteration = ascending MAC, as the sim
}

void PosixNetwork::cancel_inquiry(MacAddress /*mac*/, Technology tech) {
  const auto tech_raw = static_cast<std::uint8_t>(tech);
  inquiring_.erase(tech_raw);
  inquiry_responders_[tech_raw].clear();
}

bool PosixNetwork::peerhood_tag(MacAddress mac, Technology tech) const {
  const auto it = peer_tags_.find(iface_key(mac, tech));
  return it != peer_tags_.end() && it->second;
}

int PosixNetwork::sample_quality(MacAddress /*local*/, MacAddress peer,
                                 Technology /*tech*/) {
  // No geometry: configured peers are healthy, everything else is gone.
  return find_peer(peer) != nullptr ? config_.link_quality : 0;
}

const sim::TechnologyParams& PosixNetwork::params(Technology tech) const {
  return params_[static_cast<std::size_t>(tech)];
}

void PosixNetwork::configure(const sim::TechnologyParams& params) {
  params_[static_cast<std::size_t>(params.tech)] = params;
}

// --- Connections -------------------------------------------------------------

Status PosixNetwork::listen(const NetAddress& address, AcceptHandler handler) {
  const auto [it, inserted] =
      listeners_.try_emplace(address, std::move(handler));
  if (!inserted) {
    return Status{ErrorCode::kAddressInUse,
                  "listener already bound at " + address.to_string()};
  }
  return Status::ok_status();
}

void PosixNetwork::stop_listening(const NetAddress& address) {
  listeners_.erase(address);
}

void PosixNetwork::connect(MacAddress from_mac, const NetAddress& to,
                           ConnectHandler handler) {
  if (from_mac == to.mac) {
    sim_.schedule_after(microseconds(1), [handler] {
      handler(Error{ErrorCode::kInvalidArgument, "connect to own interface"});
    });
    return;
  }
  if (find_peer(to.mac) == nullptr) {
    sim_.schedule_after(microseconds(1), [handler, to] {
      handler(Error{ErrorCode::kConnectionFailed,
                    "unknown peer " + to.mac.to_string()});
    });
    return;
  }
  auto pending = std::make_unique<PendingConnect>();
  pending->id = next_pending_id_++;
  pending->from = from_mac;
  pending->to = to;
  pending->handler = std::move(handler);
  pending->conn_id = (config_.mac.as_u64() << 16) ^ next_conn_seq_++;
  const std::uint64_t id = pending->id;
  pending_[id] = std::move(pending);
  start_connect_attempt(id);
}

void PosixNetwork::start_connect_attempt(std::uint64_t pending_id) {
  const auto it = pending_.find(pending_id);
  if (it == pending_.end()) return;
  PendingConnect& pending = *it->second;
  const PosixPeer* peer = find_peer(pending.to.mac);
  if (peer == nullptr) {
    fail_connect(pending_id, "peer removed from topology");
    return;
  }
  if (pending.attempt > 0) ++reconnect_attempts_;
  ++pending.attempt;
  pending.awaiting_ack = false;
  pending.framer = StreamFramer{};
  pending.hello_pending.clear();
  pending.hello_sent = 0;

  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    fail_connect(pending_id, "socket() failed");
    return;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  pending.fd = fd;
  fd_pending_[fd] = pending_id;
  sockaddr_in addr = make_addr(peer->ip, peer->tcp_port);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    // Immediate refusal (rare on loopback): retry through the backoff path.
    fd_pending_.erase(fd);
    ::close(fd);
    pending.fd = -1;
    const SimDuration backoff = std::min(
        config_.connect_backoff_cap,
        config_.connect_backoff_base * (std::int64_t{1} << (pending.attempt - 1)));
    if (pending.attempt >= config_.connect_attempts) {
      fail_connect(pending_id, "connection refused");
      return;
    }
    sim_.schedule_after(backoff, [this, pending_id] {
      start_connect_attempt(pending_id);
    });
    return;
  }
  update_epoll(fd, EPOLLIN | EPOLLOUT);
  // Per-attempt deadline covers both the TCP handshake and the logical
  // hello/ack round trip.
  pending.timeout = sim_.schedule_after(config_.connect_timeout,
                                        [this, pending_id] {
    const auto timed_out = pending_.find(pending_id);
    if (timed_out == pending_.end()) return;
    PendingConnect& p = *timed_out->second;
    p.timeout = sim::kInvalidEvent;
    if (p.fd >= 0) {
      fd_pending_.erase(p.fd);
      ::close(p.fd);
      p.fd = -1;
    }
    if (p.attempt >= config_.connect_attempts) {
      fail_connect(pending_id, "connect timed out");
      return;
    }
    const SimDuration backoff = std::min(
        config_.connect_backoff_cap,
        config_.connect_backoff_base * (std::int64_t{1} << (p.attempt - 1)));
    sim_.schedule_after(backoff, [this, pending_id] {
      start_connect_attempt(pending_id);
    });
  });
}

void PosixNetwork::fail_connect(std::uint64_t pending_id,
                                const std::string& reason) {
  const auto it = pending_.find(pending_id);
  if (it == pending_.end()) return;
  auto pending = std::move(it->second);
  pending_.erase(it);
  if (pending->timeout != sim::kInvalidEvent) sim_.cancel(pending->timeout);
  if (pending->fd >= 0) {
    fd_pending_.erase(pending->fd);
    ::close(pending->fd);
  }
  const ConnectHandler handler = std::move(pending->handler);
  if (handler) {
    handler(Error{ErrorCode::kConnectionFailed, reason});
  }
}

void PosixNetwork::handle_pending_connect(int fd, std::uint32_t events) {
  const auto fd_it = fd_pending_.find(fd);
  if (fd_it == fd_pending_.end()) return;
  const std::uint64_t pending_id = fd_it->second;
  const auto it = pending_.find(pending_id);
  if (it == pending_.end()) return;
  PendingConnect& pending = *it->second;

  if ((events & (EPOLLERR | EPOLLHUP)) != 0 && !pending.awaiting_ack) {
    // TCP connect failed (no listener / RST). Retry with backoff.
    fd_pending_.erase(fd);
    ::close(fd);
    pending.fd = -1;
    if (pending.timeout != sim::kInvalidEvent) {
      sim_.cancel(pending.timeout);
      pending.timeout = sim::kInvalidEvent;
    }
    if (pending.attempt >= config_.connect_attempts) {
      fail_connect(pending_id, "connection refused");
      return;
    }
    const SimDuration backoff = std::min(
        config_.connect_backoff_cap,
        config_.connect_backoff_base * (std::int64_t{1} << (pending.attempt - 1)));
    sim_.schedule_after(backoff, [this, pending_id] {
      start_connect_attempt(pending_id);
    });
    return;
  }

  if ((events & EPOLLOUT) != 0) {
    if (!pending.awaiting_ack && pending.hello_pending.empty()) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        fd_pending_.erase(fd);
        ::close(fd);
        pending.fd = -1;
        if (pending.timeout != sim::kInvalidEvent) {
          sim_.cancel(pending.timeout);
          pending.timeout = sim::kInvalidEvent;
        }
        if (pending.attempt >= config_.connect_attempts) {
          fail_connect(pending_id, "connection refused");
          return;
        }
        const SimDuration backoff =
            std::min(config_.connect_backoff_cap,
                     config_.connect_backoff_base *
                         (std::int64_t{1} << (pending.attempt - 1)));
        sim_.schedule_after(backoff, [this, pending_id] {
          start_connect_attempt(pending_id);
        });
        return;
      }
      // TCP established: send the logical hello
      // [kind][conn_id][from][to][tech][port].
      ByteWriter writer;
      writer.u8(kStreamHello);
      writer.u64(pending.conn_id);
      writer.u64(pending.from.as_u64());
      writer.u64(pending.to.mac.as_u64());
      writer.u8(static_cast<std::uint8_t>(pending.to.tech));
      writer.u16(pending.to.port);
      pending.hello_pending = encode_stream_frame(std::move(writer).take());
      pending.hello_sent = 0;
      pending.awaiting_ack = true;
    }
    while (pending.hello_sent < pending.hello_pending.size()) {
      const ssize_t n = ::send(
          fd, pending.hello_pending.data() + pending.hello_sent,
          pending.hello_pending.size() - pending.hello_sent, MSG_NOSIGNAL);
      if (n <= 0) break;  // EAGAIN: finish on the next EPOLLOUT
      pending.hello_sent += static_cast<std::size_t>(n);
    }
    if (pending.hello_sent == pending.hello_pending.size()) {
      update_epoll(fd, EPOLLIN);  // hello flushed; now wait for the ack
    }
  }

  if ((events & EPOLLIN) != 0 && pending.awaiting_ack) {
    std::uint8_t buffer[kReadChunk];
    for (;;) {
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n < 0) break;
      if (n == 0) {
        // Peer closed before answering: treat as refusal.
        fd_pending_.erase(fd);
        ::close(fd);
        pending.fd = -1;
        fail_connect(pending_id, "peer closed during handshake");
        return;
      }
      pending.framer.feed(
          std::span<const std::uint8_t>{buffer, static_cast<std::size_t>(n)});
    }
    if (auto ack = pending.framer.next()) {
      ++integrity_.frames_checked;
      finish_connect_handshake(pending_id, *ack);
      return;
    }
    // next() latches the poison bit — check it after the decode attempt.
    if (pending.framer.poisoned()) {
      ++integrity_.corrupt_drops;
      fd_pending_.erase(fd);
      ::close(fd);
      pending.fd = -1;
      fail_connect(pending_id, "corrupt handshake stream");
      return;
    }
  }
}

void PosixNetwork::finish_connect_handshake(
    std::uint64_t pending_id, std::span<const std::uint8_t> ack_body) {
  const auto it = pending_.find(pending_id);
  if (it == pending_.end()) return;
  auto pending = std::move(it->second);
  pending_.erase(it);
  if (pending->timeout != sim::kInvalidEvent) sim_.cancel(pending->timeout);
  fd_pending_.erase(pending->fd);

  ByteReader reader{ack_body};
  const std::uint8_t kind = reader.u8();
  const std::uint8_t ok = reader.u8();
  if (!reader.ok() || kind != kStreamHelloAck || ok == 0) {
    ::close(pending->fd);
    const ConnectHandler handler = std::move(pending->handler);
    handler(Error{ErrorCode::kConnectionFailed,
                  "no listener at " + pending->to.to_string()});
    return;
  }

  auto conn = std::make_shared<ConnState>();
  conn->id = pending->conn_id;
  conn->fd = pending->fd;
  conn->local = NetAddress{pending->from, pending->to.tech, 0};
  conn->remote = pending->to;
  // Bytes that followed the ack in the same read belong to the data stream.
  conn->framer = std::move(pending->framer);
  conns_[conn->id] = conn;
  fd_conn_[conn->fd] = conn->id;
  update_epoll(conn->fd, EPOLLIN);

  auto endpoint = std::make_shared<PosixConnection>(*this, conn);
  conn->endpoint = endpoint;
  const ConnectHandler handler = std::move(pending->handler);
  handler(ConnectionPtr{endpoint});
  // Any data frames that raced the ack are in the framer already.
  if (const auto state = conns_.find(conn->id); state != conns_.end()) {
    handle_conn_event(conn->fd, 0);
  }
}

void PosixNetwork::handle_listener_readable() {
  for (;;) {
    const int fd = ::accept4(tcp_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto incoming = std::make_unique<IncomingStream>();
    incoming->fd = fd;
    incoming_[fd] = std::move(incoming);
    update_epoll(fd, EPOLLIN);
  }
}

void PosixNetwork::handle_incoming(int fd, std::uint32_t events) {
  const auto it = incoming_.find(fd);
  if (it == incoming_.end()) return;
  IncomingStream& stream = *it->second;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    ::close(fd);
    incoming_.erase(it);
    return;
  }
  std::uint8_t buffer[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) break;
    if (n == 0) {
      ::close(fd);
      incoming_.erase(it);
      return;
    }
    stream.framer.feed(
        std::span<const std::uint8_t>{buffer, static_cast<std::size_t>(n)});
  }
  if (const auto hello = stream.framer.next()) {
    ++integrity_.frames_checked;
    accept_hello(fd, *hello);
    return;
  }
  // next() latches the poison bit — check it after the decode attempt.
  if (stream.framer.poisoned()) {
    ++integrity_.corrupt_drops;
    ::close(fd);
    incoming_.erase(it);
    return;
  }
}

void PosixNetwork::accept_hello(int fd,
                                std::span<const std::uint8_t> hello_body) {
  const auto it = incoming_.find(fd);
  if (it == incoming_.end()) return;

  ByteReader reader{hello_body};
  const std::uint8_t kind = reader.u8();
  const std::uint64_t conn_id = reader.u64();
  const MacAddress from = MacAddress::from_u64(reader.u64());
  const MacAddress to_mac = MacAddress::from_u64(reader.u64());
  const std::uint8_t tech_raw = reader.u8();
  const std::uint16_t port = reader.u16();
  if (!reader.ok() || kind != kStreamHello || tech_raw >= kTechnologyCount) {
    ::close(fd);
    incoming_.erase(it);
    return;
  }
  const Technology tech = static_cast<Technology>(tech_raw);
  const NetAddress local{to_mac, tech, port};
  const auto listener = listeners_.find(local);
  const bool accepted = listener != listeners_.end() &&
                        attached_.contains(iface_key(to_mac, tech));

  // Answer the hello first (blocking-ish: the ack is 10 bytes and the socket
  // buffer of a fresh connection is empty — a short write here closes).
  ByteWriter writer;
  writer.u8(kStreamHelloAck);
  writer.u8(accepted ? 1 : 0);
  const Bytes ack = encode_stream_frame(std::move(writer).take());
  const ssize_t sent = ::send(fd, ack.data(), ack.size(), MSG_NOSIGNAL);
  if (!accepted || sent != static_cast<ssize_t>(ack.size())) {
    ::close(fd);
    incoming_.erase(it);
    return;
  }

  auto conn = std::make_shared<ConnState>();
  conn->id = conn_id;
  conn->fd = fd;
  conn->local = local;
  conn->remote = NetAddress{from, tech, 0};
  conn->framer = std::move(it->second->framer);
  incoming_.erase(it);
  conns_[conn->id] = conn;
  fd_conn_[fd] = conn->id;

  auto endpoint = std::make_shared<PosixConnection>(*this, conn);
  conn->endpoint = endpoint;
  // Copy the accept handler out of the map: it may stop_listening on this
  // very address from inside the callback.
  const AcceptHandler accept = listener->second;
  accept(endpoint);
  // Data frames glued to the hello: deliver after accept installed handlers.
  if (conns_.contains(conn->id)) handle_conn_event(fd, 0);
}

// --- Established connections -------------------------------------------------

void PosixNetwork::conn_write(ConnState& conn,
                              std::span<const std::uint8_t> frame_body) {
  if (!conn.open || conn.fd < 0) return;
  ByteWriter writer;
  writer.reserve(1 + frame_body.size());
  writer.u8(kStreamData);
  writer.raw(frame_body);
  Bytes encoded = encode_stream_frame(std::move(writer).take());
  if (conn.outbox.size() >= config_.max_send_queue) {
    // Bounded queue, oldest-drop (PR 7's accounting): dropping the *newest*
    // would starve progress under sustained overload; reliable layers
    // retransmit whatever the drop ate.
    if (conn.outbox.size() == 1 && conn.front_sent > 0) {
      // Never drop a partially written frame — the stream would desync.
      conn.outbox.push_back(std::move(encoded));
      ++send_queue_drops_;
      drain_conn_outbox(conn);
      return;
    }
    const std::size_t victim = conn.front_sent > 0 ? 1 : 0;
    conn.outbox.erase(conn.outbox.begin() +
                      static_cast<std::ptrdiff_t>(victim));
    ++send_queue_drops_;
  }
  conn.outbox.push_back(std::move(encoded));
  drain_conn_outbox(conn);
}

void PosixNetwork::drain_conn_outbox(ConnState& conn) {
  while (!conn.outbox.empty()) {
    const Bytes& front = conn.outbox.front();
    const ssize_t n =
        ::send(conn.fd, front.data() + conn.front_sent,
               front.size() - conn.front_sent, MSG_NOSIGNAL);
    if (n <= 0) break;  // EAGAIN / error: EPOLLOUT (or close path) continues
    conn.front_sent += static_cast<std::size_t>(n);
    if (conn.front_sent == front.size()) {
      conn.outbox.pop_front();
      conn.front_sent = 0;
    }
  }
  const bool want_write = !conn.outbox.empty();
  if (want_write != conn.want_write) {
    conn.want_write = want_write;
    update_epoll(conn.fd, EPOLLIN | (want_write ? EPOLLOUT : 0u));
  }
}

void PosixNetwork::handle_conn_event(int fd, std::uint32_t events) {
  const auto fd_it = fd_conn_.find(fd);
  if (fd_it == fd_conn_.end()) return;
  const std::uint64_t conn_id = fd_it->second;
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  const std::shared_ptr<ConnState> conn = it->second;

  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    close_conn(conn_id, /*notify_app=*/true);
    return;
  }
  if ((events & EPOLLOUT) != 0) drain_conn_outbox(*conn);

  bool peer_closed = false;
  std::uint8_t buffer[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) break;
    if (n == 0) {
      peer_closed = true;
      break;
    }
    conn->framer.feed(
        std::span<const std::uint8_t>{buffer, static_cast<std::size_t>(n)});
  }
  // Drain every complete frame. The endpoint may close/die inside a data
  // handler — re-check liveness each round.
  while (conns_.contains(conn_id) && conn->open) {
    auto frame = conn->framer.next();
    if (!frame.has_value()) {
      if (conn->framer.poisoned()) {
        // Mid-stream corruption: unlike a datagram there is no next-frame
        // boundary to resync on — count it and kill the connection.
        ++integrity_.corrupt_drops;
        close_conn(conn_id, /*notify_app=*/true);
        return;
      }
      break;
    }
    ++integrity_.frames_checked;
    if (frame->empty() || (*frame)[0] != kStreamData) continue;
    const auto endpoint = conn->endpoint.lock();
    if (endpoint == nullptr) break;
    endpoint->deliver(Bytes{frame->begin() + 1, frame->end()});
  }
  if (peer_closed && conns_.contains(conn_id)) {
    close_conn(conn_id, /*notify_app=*/true);
  }
}

void PosixNetwork::close_conn(std::uint64_t conn_id, bool notify_app) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  const std::shared_ptr<ConnState> conn = it->second;
  conns_.erase(it);
  conn->open = false;
  if (conn->fd >= 0) {
    fd_conn_.erase(conn->fd);
    ::close(conn->fd);  // queued-but-unsent frames die with the socket
    conn->fd = -1;
  }
  if (notify_app) {
    if (const auto endpoint = conn->endpoint.lock()) {
      endpoint->force_close();
    }
  }
}

std::size_t PosixNetwork::live_connection_count() const {
  return conns_.size();
}

NetStats PosixNetwork::net_stats() const {
  NetStats stats;
  stats.frames_checked = integrity_.frames_checked;
  stats.corrupt_drops = integrity_.corrupt_drops;
  stats.send_queue_drops = send_queue_drops_;
  stats.reconnect_attempts = reconnect_attempts_;
  return stats;
}

}  // namespace peerhood::net
