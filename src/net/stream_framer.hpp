// Length-prefix framing for byte streams (the TCP leg of PosixNetwork).
//
// A TCP connection delivers an ordered byte stream with arbitrary read
// boundaries — a frame can arrive split across any number of reads, or
// glued to its neighbours. StreamFramer reassembles:
//
//   [u16 magic 'PH'][u16 body_len][u32 FNV-1a(body)][body ...]
//
// The length+checksum part is exactly the net/frame_check.hpp header, so a
// stream frame is magic + sealed frame and the two integrity planes share
// one checksum implementation.
//
// Corruption contract: a stream, unlike a datagram, has no frame boundary
// to fall back on — after any integrity failure (bad magic, bad checksum,
// length inconsistency) the decoder cannot know where the next frame
// starts. The framer therefore *latches* the error: no further frames are
// emitted, and the owner must close the connection (kill -9, RST and
// middlebox mangling all land here). It never crashes and never desyncs:
// every frame emitted before the error was verified whole.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "common/bytes.hpp"

namespace peerhood::net {

// 'P','H' — detects cross-talk and framing bugs before the checksum does.
inline constexpr std::uint16_t kStreamMagic = 0x5048;
inline constexpr std::size_t kStreamHeaderSize = 8;  // magic + len + checksum

// One allocation: magic + sealed integrity header + body.
[[nodiscard]] Bytes encode_stream_frame(std::span<const std::uint8_t> body);

class StreamFramer {
 public:
  // Appends raw stream bytes. Cheap to call with any split — single bytes,
  // half headers, many frames at once.
  void feed(std::span<const std::uint8_t> data);

  // Returns the next complete, verified frame body, or nullopt when more
  // bytes are needed (or the framer is poisoned). Call in a loop after each
  // feed.
  [[nodiscard]] std::optional<Bytes> next();

  // True after any integrity failure: the stream position is untrustworthy
  // and the connection must be closed.
  [[nodiscard]] bool poisoned() const { return poisoned_; }

  // Bytes buffered but not yet emitted (bounded by one max frame plus one
  // read's worth of input; the poll loop drains eagerly).
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - head_; }

 private:
  Bytes buffer_;
  std::size_t head_{0};
  bool poisoned_{false};
};

}  // namespace peerhood::net
