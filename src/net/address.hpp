// Network addressing: a PeerHood endpoint is (interface MAC, technology,
// port). Services advertise a port number (§2.3: ServiceName,
// ServiceAttribute and Port Number).
#pragma once

#include <cstdint>
#include <string>

#include "common/mac_address.hpp"
#include "sim/radio.hpp"

namespace peerhood::net {

struct NetAddress {
  MacAddress mac;
  Technology tech{Technology::kBluetooth};
  std::uint16_t port{0};

  friend auto operator<=>(const NetAddress&, const NetAddress&) = default;

  [[nodiscard]] std::string to_string() const {
    return mac.to_string() + "/" + std::string{peerhood::to_string(tech)} +
           ":" + std::to_string(port);
  }
};

// The well-known port every PeerHood daemon engine listens on.
inline constexpr std::uint16_t kPeerHoodEnginePort = 1;

}  // namespace peerhood::net
