// HalfOpenDial — the shared ownership state of one in-flight dial: a
// connection attempt plus the wait for its chain acknowledgement (PH_OK /
// PH_FAIL). Used by Library::dial and BridgeService::establish_downstream.
//
// The state owns the half-open connection; the connection's handlers
// capture only a shared_ptr to this state (never the connection itself), so
// the only cycle is state->conn->handlers->state, and every completion path
// breaks it with release_conn(). A dial still in flight at teardown is
// broken by ~SimNetwork's handler sever.
#pragma once

#include <memory>

#include "net/connection.hpp"
#include "sim/event_queue.hpp"

namespace peerhood::net {

struct HalfOpenDial {
  bool done{false};
  sim::EventId timer{sim::kInvalidEvent};
  ConnectionPtr conn;

  // Detaches the half-open connection and returns it (empty when the
  // connect itself has not resolved yet). Severing the handlers here is
  // what releases the state — and with it, this struct's captures.
  ConnectionPtr release_conn() {
    ConnectionPtr out = std::move(conn);
    conn = nullptr;
    if (out != nullptr) {
      out->set_data_handler(nullptr);
      out->set_close_handler(nullptr);
    }
    return out;
  }
};

}  // namespace peerhood::net
