// Decoder fuzz robustness (runs under ASan/UBSan in CI's sanitize job):
// every protocol.* decoder must survive arbitrary byte soup and single-bit
// mutations of valid frames without crashing, overflowing, or fabricating
// out-of-domain enum values. Decoders either return nullopt or a value whose
// enum fields are in range — never anything in between.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "net/stream_framer.hpp"
#include "peerhood/protocol.hpp"
#include "peerhood/reliable_channel.hpp"

namespace peerhood::wire {
namespace {

void check_decoded_domain(const std::optional<FetchResponse>& response) {
  if (!response.has_value()) return;
  for (const Technology tech : response->prototypes) {
    EXPECT_LT(static_cast<std::size_t>(tech), kTechnologyCount);
  }
  for (const NeighbourSnapshotEntry& entry : response->neighbours) {
    for (const Technology tech : entry.prototypes) {
      EXPECT_LT(static_cast<std::size_t>(tech), kTechnologyCount);
    }
    const auto mobility = static_cast<std::uint8_t>(entry.device.mobility);
    EXPECT_TRUE(mobility == 0 || mobility == 1 || mobility == 3);
  }
}

void decode_everything(std::span<const std::uint8_t> bytes) {
  (void)peek_command(bytes);
  (void)decode_handshake(bytes);
  (void)decode_fetch_request(bytes);
  check_decoded_domain(decode_fetch_response(bytes));
  (void)peerhood::decode_reliable_frame(bytes);
}

Bytes sample_fetch_response() {
  FetchResponse response;
  response.request_id = 7;
  response.sections = kSectionAll;
  response.load_percent = 40;
  response.epoch = 11;
  response.gens = SectionGens{1, 2, 3, 4};
  response.device = DeviceInfo{MacAddress::from_index(9), "device-nine",
                               0x1234, MobilityClass::kDynamic};
  response.prototypes = {Technology::kBluetooth, Technology::kWlan};
  response.services = {ServiceInfo{"print", "attr", 19},
                       ServiceInfo{"task", "", 23}};
  NeighbourSnapshotEntry entry;
  entry.device = DeviceInfo{MacAddress::from_index(12), "neighbour", 0x99,
                            MobilityClass::kStatic};
  entry.prototypes = {Technology::kGprs};
  entry.services = {ServiceInfo{"relay", "client", 5}};
  entry.jump = 1;
  entry.bridge = MacAddress::from_index(9);
  entry.quality_sum = 200;
  entry.min_link_quality = 180;
  response.neighbours = {entry};
  return encode(response);
}

Bytes sample_bridge_handshake() {
  ConnectRequest inner;
  inner.session_id = 42;
  inner.service = "print";
  ClientParams params;
  params.device = DeviceInfo{MacAddress::from_index(3), "client-three", 0x42,
                             MobilityClass::kHybrid};
  params.tech = Technology::kWlan;
  params.reconnect_service = "client.result";
  params.port = 88;
  inner.client_params = params;
  BridgeRequest bridge;
  bridge.destination = MacAddress::from_index(9);
  bridge.final_command = Command::kResume;
  bridge.inner = inner;
  return encode_bridge(bridge);
}

// The crash-recovery handshake: a client replaying a journalled session
// against a restarted daemon, directly...
Bytes sample_resume_restart() {
  ConnectRequest request;
  request.session_id = 77;
  request.service = "print";
  return encode_resume_restart(request);
}

// ...and relayed, as the final command of a bridge chain.
Bytes sample_bridge_resume_restart() {
  BridgeRequest bridge;
  bridge.destination = MacAddress::from_index(4);
  bridge.final_command = Command::kResumeRestart;
  bridge.inner = ConnectRequest{77, "print", std::nullopt};
  return encode_bridge(bridge);
}

// The reliability layer's wire frames (window-advertising ack included).
Bytes sample_reliable_data() {
  return peerhood::encode_reliable_data(0x1122334455667788ull,
                                        Bytes{0xDE, 0xAD, 0xBE, 0xEF});
}

Bytes sample_reliable_ack() {
  return peerhood::encode_reliable_ack(0x8877665544332211ull, 192);
}

Bytes sample_fetch_request() {
  FetchRequest request;
  request.request_id = 3;
  request.sections = kSectionNeighbours | kSectionDevice;
  request.baseline = FetchBaseline{5, SectionGens{1, 1, 2, 9}};
  return encode(request);
}

TEST(ProtocolFuzz, RandomBytesNeverCrashDecoders) {
  Rng rng{0xF0221E5};
  for (int round = 0; round < 4000; ++round) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 96));
    Bytes bytes(size, 0);
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    decode_everything(bytes);
  }
}

TEST(ProtocolFuzz, BitFlippedValidFramesNeverCrashDecoders) {
  const Bytes samples[] = {sample_fetch_response(), sample_fetch_request(),
                           sample_bridge_handshake(), encode_ok(),
                           encode_fail(ErrorCode::kProtocolError, "boom"),
                           encode_connect(ConnectRequest{1, "svc", {}}),
                           sample_resume_restart(),
                           sample_bridge_resume_restart(),
                           sample_reliable_data(), sample_reliable_ack()};
  for (const Bytes& sample : samples) {
    // The pristine frame must decode (sanity), then every single-bit
    // mutation must be survivable.
    decode_everything(sample);
    for (std::size_t bit = 0; bit < sample.size() * 8; ++bit) {
      Bytes mutated = sample;
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      decode_everything(mutated);
    }
  }
}

TEST(ProtocolFuzz, TruncationsNeverCrashDecoders) {
  const Bytes samples[] = {sample_fetch_response(), sample_fetch_request(),
                           sample_bridge_handshake(),
                           sample_resume_restart(),
                           sample_bridge_resume_restart(),
                           sample_reliable_data(), sample_reliable_ack()};
  for (const Bytes& sample : samples) {
    for (std::size_t len = 0; len < sample.size(); ++len) {
      decode_everything({sample.data(), len});
    }
  }
}

// --- TCP length-prefix framing (net/stream_framer.hpp) ----------------------
//
// The socket backend's stream leg has no datagram boundary to resynchronise
// on, so its contract is harsher: any number of frames fed at ANY read
// boundary must reassemble byte-identically, and any corruption (truncation,
// bit flip, byte soup) must either be absorbed before a frame boundary or
// latch the poison bit — never crash, never emit a wrong frame.

Bytes sample_stream_payloads_concat(const std::vector<Bytes>& bodies) {
  Bytes wire;
  for (const Bytes& body : bodies) {
    const Bytes frame = net::encode_stream_frame(body);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  return wire;
}

TEST(ProtocolFuzz, StreamFramerReassemblesAcrossArbitraryReadBoundaries) {
  Rng rng{0x57A3};
  const std::vector<Bytes> bodies = {
      Bytes{}, Bytes{0x01}, sample_reliable_data(), sample_fetch_response(),
      Bytes(300, 0xAB)};
  const Bytes wire = sample_stream_payloads_concat(bodies);
  for (int round = 0; round < 200; ++round) {
    net::StreamFramer framer;
    std::vector<Bytes> decoded;
    std::size_t cursor = 0;
    while (cursor < wire.size()) {
      const auto chunk = static_cast<std::size_t>(rng.uniform_int(
          1, static_cast<int>(std::min<std::size_t>(64, wire.size() - cursor))));
      framer.feed({wire.data() + cursor, chunk});
      cursor += chunk;
      while (auto body = framer.next()) decoded.push_back(std::move(*body));
    }
    ASSERT_FALSE(framer.poisoned());
    ASSERT_EQ(decoded, bodies) << "desync at round " << round;
  }
}

TEST(ProtocolFuzz, StreamTruncationsNeverCrashOrEmitPartialFrames) {
  const Bytes wire =
      sample_stream_payloads_concat({sample_reliable_data(), Bytes(40, 0x55)});
  for (std::size_t len = 0; len < wire.size(); ++len) {
    net::StreamFramer framer;
    framer.feed({wire.data(), len});
    std::size_t whole = 0;
    while (auto body = framer.next()) {
      ++whole;
      // Any frame that does come out must be one of the two originals.
      EXPECT_TRUE(*body == sample_reliable_data() || *body == Bytes(40, 0x55));
    }
    EXPECT_LE(whole, 2u);
    EXPECT_FALSE(framer.poisoned());  // a clean cut is "need more", not rot
  }
}

TEST(ProtocolFuzz, StreamBitFlipsPoisonOrDropNeverDesync) {
  const std::vector<Bytes> bodies = {sample_reliable_data(),
                                     sample_fetch_request()};
  const Bytes wire = sample_stream_payloads_concat(bodies);
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    Bytes mutated = wire;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    net::StreamFramer framer;
    framer.feed(mutated);
    std::vector<Bytes> decoded;
    while (auto body = framer.next()) decoded.push_back(std::move(*body));
    // Every emitted frame must be byte-identical to an original at its
    // position: the framer may stop early (poisoned) but must never hand a
    // corrupted body onward — that is the whole point of the checksum.
    ASSERT_LE(decoded.size(), bodies.size());
    for (std::size_t i = 0; i < decoded.size(); ++i) {
      ASSERT_EQ(decoded[i], bodies[i]) << "bit " << bit;
    }
    // A flip that killed a frame must have latched the poison bit (streams
    // cannot skip-and-resync), unless it only grew the length field so the
    // tail is still "waiting for more bytes".
    if (decoded.size() < bodies.size()) {
      EXPECT_TRUE(framer.poisoned() || framer.buffered() > 0) << "bit " << bit;
    }
  }
}

TEST(ProtocolFuzz, StreamRandomByteSoupNeverCrashes) {
  Rng rng{0xBADF00D};
  for (int round = 0; round < 2000; ++round) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 128));
    Bytes soup(size, 0);
    for (auto& b : soup) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    net::StreamFramer framer;
    // Feed in two random halves to exercise the compaction path too.
    const std::size_t split =
        size == 0 ? 0
                  : static_cast<std::size_t>(
                        rng.uniform_int(0, static_cast<int>(size)));
    framer.feed({soup.data(), split});
    while (framer.next().has_value()) {
    }
    framer.feed({soup.data() + split, size - split});
    while (framer.next().has_value()) {
    }
    // No assertion on poisoned(): most soup is rejected, a lucky prefix may
    // just be left waiting. The invariant is "no crash, no bogus frame".
  }
}

TEST(ProtocolFuzz, OutOfDomainEnumBytesRejectTheFrame) {
  // Corrupt the mobility byte of the device section to an undefined value:
  // the decoder must reject the whole frame, not materialise enum garbage.
  FetchResponse response;
  response.request_id = 1;
  response.sections = kSectionDevice;
  response.epoch = 1;
  response.gens = SectionGens{1, 1, 1, 1};
  response.device = DeviceInfo{MacAddress::from_index(2), "d", 0,
                               MobilityClass::kStatic};
  Bytes frame = encode(response);
  ASSERT_TRUE(decode_fetch_response(frame).has_value());
  // The mobility byte is the last byte of the device record (see
  // encode_device); for a kSectionDevice-only response it is the final byte.
  frame.back() = 0x7F;
  EXPECT_FALSE(decode_fetch_response(frame).has_value());
}

}  // namespace
}  // namespace peerhood::wire
