#include "common/mac_address.hpp"

#include <gtest/gtest.h>

#include <set>

namespace peerhood {
namespace {

TEST(MacAddress, DefaultIsNull) {
  MacAddress mac;
  EXPECT_TRUE(mac.is_null());
  EXPECT_EQ(mac.as_u64(), 0u);
}

TEST(MacAddress, FromIndexIsUniqueAndLocal) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const MacAddress mac = MacAddress::from_index(i);
    EXPECT_EQ(mac.octets()[0], 0x02) << "locally administered prefix";
    EXPECT_TRUE(seen.insert(mac.as_u64()).second) << "collision at " << i;
  }
}

TEST(MacAddress, U64RoundTrip) {
  const MacAddress mac = MacAddress::from_index(123456);
  EXPECT_EQ(MacAddress::from_u64(mac.as_u64()), mac);
}

TEST(MacAddress, ToStringFormat) {
  const MacAddress mac{
      std::array<std::uint8_t, 6>{0x02, 0x00, 0x00, 0x01, 0xE2, 0x40}};
  EXPECT_EQ(mac.to_string(), "02:00:00:01:e2:40");
}

TEST(MacAddress, ParseRoundTrip) {
  const MacAddress mac = MacAddress::from_index(987654);
  const auto parsed = MacAddress::parse(mac.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, mac);
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse("").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:00:01:e2").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:00:01:e2:4").has_value());
  EXPECT_FALSE(MacAddress::parse("02-00-00-01-e2-40").has_value());
  EXPECT_FALSE(MacAddress::parse("0g:00:00:01:e2:40").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:00:01:e2:40x").has_value());
}

TEST(MacAddress, ParseAcceptsUppercase) {
  const auto parsed = MacAddress::parse("02:AB:CD:EF:00:11");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->octets()[1], 0xAB);
}

TEST(MacAddress, Ordering) {
  const MacAddress a = MacAddress::from_index(1);
  const MacAddress b = MacAddress::from_index(2);
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
}

TEST(MacAddress, HashUsableInUnorderedContainers) {
  const MacAddress a = MacAddress::from_index(7);
  const MacAddress b = MacAddress::from_index(7);
  EXPECT_EQ(std::hash<MacAddress>{}(a), std::hash<MacAddress>{}(b));
}

}  // namespace
}  // namespace peerhood
