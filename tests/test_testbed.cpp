#include "node/testbed.hpp"

#include <gtest/gtest.h>

#include <set>

#include "scenario_util.hpp"

namespace peerhood::node {
namespace {

using testing::fast_node;
using testing::reliable_bluetooth;

TEST(Testbed, NodesGetUniqueMacs) {
  Testbed testbed{1};
  std::set<std::uint64_t> macs;
  for (int i = 0; i < 10; ++i) {
    Node& node = testbed.add_node("n" + std::to_string(i), {8.0 * i, 0.0});
    EXPECT_TRUE(macs.insert(node.mac().as_u64()).second);
  }
  EXPECT_EQ(testbed.macs().size(), 10u);
}

TEST(Testbed, NodeLookupByName) {
  Testbed testbed{2};
  testbed.add_node("alpha", {0.0, 0.0});
  testbed.add_node("beta", {5.0, 0.0});
  EXPECT_EQ(testbed.node("alpha").name(), "alpha");
  EXPECT_EQ(testbed.node("beta").name(), "beta");
  EXPECT_THROW(testbed.node("gamma"), std::out_of_range);
}

TEST(Testbed, DaemonStartsWithHiddenBridgeService) {
  Testbed testbed{3};
  Node& node = testbed.add_node("n", {0.0, 0.0});
  const auto& services = node.daemon().local_services();
  ASSERT_EQ(services.size(), 1u);
  EXPECT_EQ(services[0].name, bridge::kBridgeServiceName);
  EXPECT_EQ(services[0].attribute, kHiddenAttribute);
}

TEST(Testbed, BridgeDisabledOnRequest) {
  Testbed testbed{4};
  NodeOptions options;
  options.start_bridge = false;
  Node& node = testbed.add_node("n", {0.0, 0.0}, options);
  EXPECT_TRUE(node.daemon().local_services().empty());
}

TEST(Testbed, RunForAdvancesClock) {
  Testbed testbed{5};
  const double before = testbed.sim().now().seconds();
  testbed.run_for(12.5);
  EXPECT_DOUBLE_EQ(testbed.sim().now().seconds(), before + 12.5);
}

TEST(Testbed, ConnectBlockingTimesOutOnUnknownDevice) {
  Testbed testbed{6};
  testbed.medium().configure(reliable_bluetooth());
  Node& a = testbed.add_node("a", {0.0, 0.0}, fast_node(MobilityClass::kStatic));
  const auto result =
      a.connect_blocking(MacAddress::from_index(1234), "svc", {}, 10.0);
  EXPECT_FALSE(result.ok());
}

TEST(Testbed, MobilityClassAppliedToDaemon) {
  Testbed testbed{7};
  NodeOptions options;
  options.mobility = MobilityClass::kHybrid;
  Node& node = testbed.add_node("n", {0.0, 0.0}, options);
  EXPECT_EQ(node.daemon().self_info().mobility, MobilityClass::kHybrid);
}

TEST(Testbed, SessionIdsAreUniquePerDaemon) {
  Testbed testbed{8};
  Node& node = testbed.add_node("n", {0.0, 0.0});
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ids.insert(node.daemon().next_session_id()).second);
  }
}

TEST(Testbed, StoppedDaemonLeavesTheAir) {
  Testbed testbed{9};
  testbed.medium().configure(reliable_bluetooth());
  Node& a = testbed.add_node("a", {0.0, 0.0}, fast_node(MobilityClass::kStatic));
  Node& b = testbed.add_node("b", {5.0, 0.0}, fast_node(MobilityClass::kStatic));
  testbed.run_discovery_rounds(2);
  ASSERT_TRUE(a.daemon().storage().contains(b.mac()));
  b.daemon().stop();
  testbed.run_discovery_rounds(4);
  EXPECT_FALSE(a.daemon().storage().contains(b.mac()))
      << "aging must remove a stopped daemon";
}

}  // namespace
}  // namespace peerhood::node
