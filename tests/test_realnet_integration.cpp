// Three-process localhost integration: the crash contract on real sockets.
//
// Spawns three realnet_node processes (server, bridge relay, client) on
// kernel-granted loopback ports, then drives the full arc over actual UDP +
// TCP: discovery, dial, a reliable counter stream, kill -9 of the server
// MID-TRANSFER, restart from the on-disk SessionStore journal, recovery via
// the kResume -> kUnknownSession -> kResumeRestart ladder, a bridged
// session migration (resume_via_bridge through the relay), and stream
// completion. The oracle:
//
//   * the client reports every counter acked, with >= 1 successful resume;
//   * the restarted server incarnation verifies the delivered counter
//     stream is contiguous from its journalled frontier — dup=0 gaps=0 —
//     and that the session came back through the restart-resume path.
//
// Counter == reliable sequence by construction, and only the restarted
// incarnation's self-check is trusted: lines the first incarnation printed
// before dying prove nothing (a kill -9 can land between a delivery and its
// journal write — that at-least-once sliver is exactly what the resume
// protocol's dedup absorbs, and what this test pins down).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Asks the kernel for a currently free TCP or UDP port. The tiny window
// between close and reuse is acceptable for a localhost test.
std::uint16_t free_port(int type) {
  const int fd = ::socket(AF_INET, type, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

struct NodePorts {
  std::uint16_t udp;
  std::uint16_t tcp;
};

class RealnetHarness {
 public:
  RealnetHarness() {
    binary_ = std::getenv("REALNET_NODE") != nullptr
                  ? std::getenv("REALNET_NODE")
                  : "";
    // One directory per harness instance — logs and the journal must not
    // leak between test cases (a stale journal is a real scenario, but one
    // tested deliberately, not by accident).
    std::string tmpl = ::testing::TempDir() + "realnet_XXXXXX";
    if (::mkdtemp(tmpl.data()) == nullptr) {
      tmpl = ::testing::TempDir() + "realnet_fallback";
      (void)::mkdir(tmpl.c_str(), 0755);
    }
    dir_ = tmpl;
    for (auto& ports : ports_) {
      ports = NodePorts{free_port(SOCK_DGRAM), free_port(SOCK_STREAM)};
    }
  }

  ~RealnetHarness() {
    for (const pid_t pid : pids_) {
      if (pid > 0) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
      }
    }
  }

  [[nodiscard]] const std::string& binary() const { return binary_; }
  [[nodiscard]] std::string journal() const { return dir_ + "/server.journal"; }
  [[nodiscard]] std::string log_path(const std::string& name) const {
    return dir_ + "/" + name + ".log";
  }

  // Spawns a realnet_node role; stdout+stderr append to its log file
  // (append, so a restarted server writes below its first incarnation).
  pid_t spawn(const std::string& name, std::vector<std::string> args) {
    args.insert(args.begin(), binary_);
    const pid_t pid = ::fork();
    if (pid == 0) {
      const int fd = ::open(log_path(name).c_str(),
                            O_WRONLY | O_CREAT | O_APPEND, 0644);
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(binary_.c_str(), argv.data());
      std::perror("execv");
      ::_exit(127);
    }
    pids_.push_back(pid);
    return pid;
  }

  // Shared topology arguments for node `index` (1=client 2=server 3=bridge).
  std::vector<std::string> node_args(int index) {
    std::vector<std::string> args{
        "--index=" + std::to_string(index),
        "--udp=" + std::to_string(ports_[index - 1].udp),
        "--tcp=" + std::to_string(ports_[index - 1].tcp),
    };
    for (int peer = 1; peer <= 3; ++peer) {
      if (peer == index) continue;
      args.push_back("--peer=" + std::to_string(peer) + ":" +
                     std::to_string(ports_[peer - 1].udp) + ":" +
                     std::to_string(ports_[peer - 1].tcp));
    }
    return args;
  }

  // Polls `name`'s log until `needle` appears. Returns false on deadline.
  bool wait_for(const std::string& name, const std::string& needle,
                int deadline_ms = 30000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(deadline_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (read_file(log_path(name)).find(needle) != std::string::npos) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  // Waits until the PROGRESS counter crosses `threshold` — "mid-transfer".
  bool wait_for_progress(const std::string& name, std::uint64_t threshold,
                         int deadline_ms = 30000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(deadline_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      std::istringstream lines{read_file(log_path(name))};
      std::string line;
      while (std::getline(lines, line)) {
        unsigned long long counter = 0;
        if (std::sscanf(line.c_str(), "PROGRESS %llu", &counter) == 1 &&
            counter >= threshold) {
          return true;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  void forget(pid_t pid) {
    for (pid_t& tracked : pids_) {
      if (tracked == pid) tracked = -1;
    }
  }

  std::string dump_logs() {
    std::string out;
    for (const char* name : {"server", "bridge", "client"}) {
      out += "--- " + std::string(name) + " ---\n" + read_file(log_path(name));
    }
    return out;
  }

 private:
  std::string binary_;
  std::string dir_;
  NodePorts ports_[3]{};
  std::vector<pid_t> pids_;
};

TEST(RealnetIntegration, CrashMidTransferRecoversExactlyOnce) {
  RealnetHarness harness;
  ASSERT_FALSE(harness.binary().empty())
      << "REALNET_NODE env var not set (see CMakeLists test properties)";

  constexpr std::uint64_t kPhase1 = 400;  // counters before the migration
  constexpr std::uint64_t kTotal = 450;   // grand total across both phases

  // Phase A: server + bridge come up and bind their ports.
  auto server_args = harness.node_args(2);
  server_args.push_back("--role=server");
  server_args.push_back("--journal=" + harness.journal());
  const pid_t server1 = harness.spawn("server", server_args);
  auto bridge_args = harness.node_args(3);
  bridge_args.push_back("--role=bridge");
  harness.spawn("bridge", bridge_args);
  ASSERT_TRUE(harness.wait_for("server", "READY")) << harness.dump_logs();
  ASSERT_TRUE(harness.wait_for("bridge", "READY")) << harness.dump_logs();

  // Phase B: client discovers over real UDP beacons/fetches, dials over
  // real TCP, and starts the reliable counter stream.
  auto client_args = harness.node_args(1);
  client_args.push_back("--role=client");
  client_args.push_back("--target=2");
  client_args.push_back("--bridge=3");
  client_args.push_back("--phase1=" + std::to_string(kPhase1));
  client_args.push_back("--total=" + std::to_string(kTotal));
  const pid_t client = harness.spawn("client", client_args);
  ASSERT_TRUE(harness.wait_for("client", "DISCOVERED")) << harness.dump_logs();
  ASSERT_TRUE(harness.wait_for("client", "CONNECTED")) << harness.dump_logs();

  // Phase C: kill -9 the server mid-transfer — after it has delivered and
  // journalled a meaningful prefix, well before the stream ends.
  ASSERT_TRUE(harness.wait_for_progress("server", 100))
      << harness.dump_logs();
  ASSERT_EQ(::kill(server1, SIGKILL), 0);
  ASSERT_EQ(::waitpid(server1, nullptr, 0), server1);
  harness.forget(server1);

  // Phase D: restart the server on the same ports with the same journal.
  // The client has been knocking with resume_direct the whole time.
  const pid_t server2 = harness.spawn("server", server_args);
  ASSERT_TRUE(harness.wait_for("server", "RESUMED", 60000))
      << harness.dump_logs();

  // Phase E: recovery + bridged migration + completion.
  ASSERT_TRUE(harness.wait_for("client", "CLIENT_OK", 60000))
      << harness.dump_logs();
  ASSERT_TRUE(harness.wait_for("client", "MIGRATED", 60000))
      << harness.dump_logs();
  ASSERT_TRUE(harness.wait_for("client", "CLIENT_DONE", 60000))
      << harness.dump_logs();
  ASSERT_TRUE(harness.wait_for("server", "SRV_DONE", 60000))
      << harness.dump_logs();

  // The client exits 0 with every counter acked.
  int client_status = 0;
  ASSERT_EQ(::waitpid(client, &client_status, 0), client);
  harness.forget(client);
  EXPECT_TRUE(WIFEXITED(client_status) && WEXITSTATUS(client_status) == 0)
      << harness.dump_logs();

  const std::string client_log = read_file(harness.log_path("client"));
  EXPECT_NE(client_log.find("CLIENT_OK acked=400"), std::string::npos)
      << client_log;
  // At least one successful resume — the kill -9 really interrupted it.
  EXPECT_EQ(client_log.find("resumes=0\n"), std::string::npos) << client_log;

  // The restarted incarnation's self-check: the delivered stream continued
  // contiguously from the journalled frontier, exactly once, and arrived
  // through the kResumeRestart journal path.
  const std::string server_log = read_file(harness.log_path("server"));
  EXPECT_NE(server_log.find("RESUMED session="), std::string::npos)
      << server_log;
  EXPECT_NE(server_log.find("SRV_DONE total=450 dup=0 gaps=0"),
            std::string::npos)
      << server_log;
  EXPECT_NE(server_log.find("restart_resumes=1"), std::string::npos)
      << server_log;

  // Orderly shutdown of the survivors.
  ::kill(server2, SIGTERM);
  harness.wait_for("server", "SRV_EXIT", 5000);
}

// Crash soak: the server is kill -9'd twice during the same reliable
// stream; every incarnation recovers from the journal and the stream still
// arrives exactly-once. No bridge migration here — the second kill leaves
// phase 2 as the whole test.
TEST(RealnetIntegration, RepeatedKillsStillExactlyOnce) {
  RealnetHarness harness;
  ASSERT_FALSE(harness.binary().empty())
      << "REALNET_NODE env var not set (see CMakeLists test properties)";

  constexpr std::uint64_t kTotal = 500;

  auto server_args = harness.node_args(2);
  server_args.push_back("--role=server");
  server_args.push_back("--journal=" + harness.journal());
  pid_t server = harness.spawn("server", server_args);
  auto bridge_args = harness.node_args(3);
  bridge_args.push_back("--role=bridge");
  harness.spawn("bridge", bridge_args);
  ASSERT_TRUE(harness.wait_for("server", "READY")) << harness.dump_logs();

  auto client_args = harness.node_args(1);
  client_args.push_back("--role=client");
  client_args.push_back("--target=2");
  client_args.push_back("--bridge=3");
  // phase1 == total: the stream ends before the migration leg would start.
  client_args.push_back("--phase1=" + std::to_string(kTotal));
  client_args.push_back("--total=" + std::to_string(kTotal));
  client_args.push_back("--pace=4");  // wide kill windows
  const pid_t client = harness.spawn("client", client_args);
  ASSERT_TRUE(harness.wait_for("client", "CONNECTED")) << harness.dump_logs();

  for (const std::uint64_t threshold : {std::uint64_t{100},
                                        std::uint64_t{250}}) {
    ASSERT_TRUE(harness.wait_for_progress("server", threshold))
        << harness.dump_logs();
    ASSERT_EQ(::kill(server, SIGKILL), 0);
    ASSERT_EQ(::waitpid(server, nullptr, 0), server);
    harness.forget(server);
    server = harness.spawn("server", server_args);
  }

  ASSERT_TRUE(harness.wait_for("client", "CLIENT_OK", 60000))
      << harness.dump_logs();
  ASSERT_TRUE(harness.wait_for("server", "SRV_DONE", 60000))
      << harness.dump_logs();

  int client_status = 0;
  ASSERT_EQ(::waitpid(client, &client_status, 0), client);
  harness.forget(client);
  EXPECT_TRUE(WIFEXITED(client_status) && WEXITSTATUS(client_status) == 0)
      << harness.dump_logs();

  const std::string server_log = read_file(harness.log_path("server"));
  // Two restarts, each recovered through the journal; the final stream
  // check sees neither duplicates nor gaps.
  std::size_t resumed_lines = 0;
  for (std::size_t at = server_log.find("RESUMED session=");
       at != std::string::npos;
       at = server_log.find("RESUMED session=", at + 1)) {
    ++resumed_lines;
  }
  EXPECT_EQ(resumed_lines, 2u) << server_log;
  EXPECT_NE(server_log.find("SRV_DONE total=500 dup=0 gaps=0"),
            std::string::npos)
      << server_log;

  ::kill(server, SIGTERM);
  harness.wait_for("server", "SRV_EXIT", 5000);
}

}  // namespace
