// Push-based link-quality plane (PR 5): threshold/hysteresis crossing
// events, slope signs, observer lifecycle (idempotent unsubscribe,
// reentrant unsubscribe/subscribe from inside a callback), the per-SimTime
// link-quality cache, and the scaling contract — a scenario tick performs
// O(observers on moved endpoints) evaluations, not O(subscribers) polls.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/medium.hpp"
#include "sim/simulator.hpp"

namespace peerhood::sim {
namespace {

MacAddress mac(std::uint64_t n) { return MacAddress::from_index(n); }

class QualityObserverTest : public ::testing::Test {
 protected:
  QualityObserverTest() : sim_{42}, medium_{sim_} {}

  void add_static(std::uint64_t id, Vec2 at) {
    medium_.register_endpoint(mac(id), Technology::kBluetooth,
                              std::make_shared<StaticPosition>(at), nullptr);
  }

  void add_linear(std::uint64_t id, Vec2 start, Vec2 velocity) {
    medium_.register_endpoint(
        mac(id), Technology::kBluetooth,
        std::make_shared<LinearMotion>(start, velocity), nullptr);
  }

  // Advances the clock in steps so the observer plane re-evaluates.
  void advance(double seconds_total, double step_s = 0.1) {
    const SimTime deadline = sim_.now() + seconds(seconds_total);
    while (sim_.now() < deadline) {
      sim_.run_until(sim_.now() + seconds(step_s));
    }
  }

  Simulator sim_;
  RadioMedium medium_;
};

TEST_F(QualityObserverTest, SeparatingLinkEmitsFellWithNegativeSlope) {
  add_static(1, {0.0, 0.0});
  add_linear(2, {1.0, 0.0}, {0.5, 0.0});
  std::vector<LinkQualityEvent> events;
  const auto id = medium_.observe_quality(
      mac(1), mac(2), Technology::kBluetooth, {},
      [&](const LinkQualityEvent& e) { events.push_back(e); });
  ASSERT_NE(id, kInvalidQualityObserver);
  EXPECT_EQ(medium_.quality_observer_count(), 1u);

  // Walks from 1 m to ~9 m: crosses the 230 threshold (≈5.6 m) en route.
  advance(16.0);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().edge, LinkQualityEvent::Edge::kFell);
  EXPECT_LT(events.front().quality, 231);
  EXPECT_LT(events.front().slope_per_s, 0.0);
  EXPECT_GT(events.front().radial_speed_mps, 0.4);
  EXPECT_NEAR(events.front().radial_speed_mps, 0.5, 0.05);
  medium_.unobserve_quality(id);
}

TEST_F(QualityObserverTest, LostAndRestoredOnCoverageEdges) {
  add_static(1, {0.0, 0.0});
  // Out at t≈18s (10 m at 0.5 m/s from 1 m), back in range later.
  add_linear(2, {1.0, 0.0}, {0.5, 0.0});
  std::vector<LinkQualityEvent::Edge> edges;
  (void)medium_.observe_quality(
      mac(1), mac(2), Technology::kBluetooth, {},
      [&](const LinkQualityEvent& e) { edges.push_back(e.edge); });
  advance(20.0);
  ASSERT_GE(edges.size(), 2u);
  EXPECT_EQ(edges.front(), LinkQualityEvent::Edge::kFell);
  EXPECT_EQ(edges.back(), LinkQualityEvent::Edge::kLost);

  // Re-register walking back towards the static endpoint.
  const Vec2 here{11.0, 0.0};
  medium_.register_endpoint(mac(2), Technology::kBluetooth,
                            std::make_shared<LinearMotion>(
                                here, Vec2{-0.5, 0.0}, sim_.now()),
                            nullptr);
  edges.clear();
  advance(20.0);
  ASSERT_FALSE(edges.empty());
  EXPECT_EQ(edges.front(), LinkQualityEvent::Edge::kRestored);
  // Approaching: eventually back above threshold + hysteresis.
  EXPECT_NE(std::find(edges.begin(), edges.end(),
                      LinkQualityEvent::Edge::kRose),
            edges.end());
}

TEST_F(QualityObserverTest, HysteresisSuppressesChatter) {
  add_static(1, {0.0, 0.0});
  // Hovers exactly around the threshold distance: 5.59 m ± 0.05 m every
  // second would chatter without the hysteresis band.
  std::vector<WaypointPath::Waypoint> hover;
  for (int i = 0; i <= 40; ++i) {
    const double x = (i % 2 == 0) ? 5.55 : 5.64;
    hover.push_back({SimTime{} + seconds(static_cast<double>(i)), {x, 0.0}});
  }
  medium_.register_endpoint(mac(2), Technology::kBluetooth,
                            std::make_shared<WaypointPath>(hover), nullptr);
  int fell = 0;
  int rose = 0;
  (void)medium_.observe_quality(
      mac(1), mac(2), Technology::kBluetooth, {},
      [&](const LinkQualityEvent& e) {
        if (e.edge == LinkQualityEvent::Edge::kFell) ++fell;
        if (e.edge == LinkQualityEvent::Edge::kRose) ++rose;
      });
  advance(40.0);
  // One initial fall at most; the ±0.05 m wobble never clears
  // threshold + hysteresis, so kRose (and any second kFell) stays silent.
  EXPECT_LE(fell, 1);
  EXPECT_EQ(rose, 0);
}

TEST_F(QualityObserverTest, UnsubscribeIsIdempotentAndStaleSafe) {
  add_static(1, {0.0, 0.0});
  add_linear(2, {1.0, 0.0}, {0.5, 0.0});
  int calls = 0;
  const auto id = medium_.observe_quality(
      mac(1), mac(2), Technology::kBluetooth, {},
      [&](const LinkQualityEvent&) { ++calls; });
  medium_.unobserve_quality(id);
  medium_.unobserve_quality(id);  // repeat: no-op
  EXPECT_EQ(medium_.quality_observer_count(), 0u);

  // The slot is recycled; the stale id must not detach the new observer.
  int calls2 = 0;
  const auto id2 = medium_.observe_quality(
      mac(1), mac(2), Technology::kBluetooth, {},
      [&](const LinkQualityEvent&) { ++calls2; });
  medium_.unobserve_quality(id);  // stale
  EXPECT_EQ(medium_.quality_observer_count(), 1u);
  advance(16.0);
  EXPECT_EQ(calls, 0);
  EXPECT_GT(calls2, 0);
  medium_.unobserve_quality(id2);
}

TEST_F(QualityObserverTest, CallbackMayUnsubscribeItselfAndSubscribeAnew) {
  add_static(1, {0.0, 0.0});
  add_linear(2, {1.0, 0.0}, {0.5, 0.0});
  int first_calls = 0;
  int second_calls = 0;
  QualityObserverId first = kInvalidQualityObserver;
  first = medium_.observe_quality(
      mac(1), mac(2), Technology::kBluetooth, {},
      [&](const LinkQualityEvent&) {
        ++first_calls;
        // Reentrant: retire self, install a replacement — both legal from
        // inside the dispatch.
        medium_.unobserve_quality(first);
        (void)medium_.observe_quality(
            mac(1), mac(2), Technology::kBluetooth, {},
            [&](const LinkQualityEvent&) { ++second_calls; });
      });
  advance(25.0);
  EXPECT_EQ(first_calls, 1);
  EXPECT_GT(second_calls, 0);  // replacement saw the later kLost edge
}

TEST_F(QualityObserverTest, TickCostIsMovedEndpointsNotSubscribers) {
  // The acceptance counter test: 1000 nodes, one of them mobile. Observers
  // blanket the static pairs; only the handful watching the mobile endpoint
  // may be re-evaluated per tick.
  constexpr std::uint64_t kNodes = 1000;
  for (std::uint64_t i = 1; i < kNodes; ++i) {
    add_static(i, {static_cast<double>(i % 100) * 3.0,
                   static_cast<double>(i / 100) * 3.0});
  }
  add_linear(kNodes, {0.0, 0.0}, {0.4, 0.0});

  // 500 static-static observers...
  for (std::uint64_t i = 1; i <= 500; ++i) {
    (void)medium_.observe_quality(mac(i), mac(i + 250),
                                  Technology::kBluetooth, {},
                                  [](const LinkQualityEvent&) {});
  }
  // ...and 4 watching the mobile endpoint.
  constexpr std::uint64_t kMobileObservers = 4;
  for (std::uint64_t i = 1; i <= kMobileObservers; ++i) {
    (void)medium_.observe_quality(mac(i), mac(kNodes),
                                  Technology::kBluetooth, {},
                                  [](const LinkQualityEvent&) {});
  }
  EXPECT_EQ(medium_.quality_observer_count(), 504u);

  const std::uint64_t before = medium_.quality_stats().observer_evals;
  // One scenario tick: the clock advances once past every rate limit.
  sim_.run_until(sim_.now() + seconds(1.0));
  const std::uint64_t evals = medium_.quality_stats().observer_evals - before;
  // O(moved endpoints): only the mobile endpoint's observers re-evaluate.
  EXPECT_LE(evals, kMobileObservers);
  EXPECT_GE(evals, 1u);
}

TEST_F(QualityObserverTest, LinkCacheServesRepeatReadsWithinOneTick) {
  add_static(1, {0.0, 0.0});
  add_static(2, {4.0, 0.0});
  const auto& stats = medium_.quality_stats();
  const std::uint64_t evals0 = stats.evaluations;
  const int q = medium_.expected_quality(mac(1), mac(2),
                                         Technology::kBluetooth);
  EXPECT_GT(q, 0);
  const std::uint64_t evals1 = stats.evaluations;
  EXPECT_EQ(evals1, evals0 + 1);
  // Same tick: argument order, noisy samples, repeats — all one evaluation.
  (void)medium_.expected_quality(mac(2), mac(1), Technology::kBluetooth);
  (void)medium_.sample_quality(mac(1), mac(2), Technology::kBluetooth);
  (void)medium_.sample_quality(mac(1), mac(2), Technology::kBluetooth);
  EXPECT_EQ(stats.evaluations, evals1);
  EXPECT_GE(stats.cache_hits, 3u);

  // Clock advance invalidates: exactly one fresh evaluation.
  sim_.run_until(sim_.now() + seconds(1.0));
  (void)medium_.expected_quality(mac(1), mac(2), Technology::kBluetooth);
  EXPECT_EQ(stats.evaluations, evals1 + 1);
}

TEST(LinkQualityModelTest, LogDistanceLawDecaysSteeperNearTransmitter) {
  LinkQualityModel concave;
  LinkQualityModel logdist;
  logdist.law = PathLossLaw::kLogDistance;
  // Same endpoints of the curve...
  EXPECT_EQ(concave.quality(0.0, 10.0), logdist.quality(0.0, 10.0));
  EXPECT_EQ(concave.quality(10.0, 10.0), logdist.quality(10.0, 10.0));
  EXPECT_EQ(logdist.quality(10.01, 10.0), 0);
  // ...but log-distance loses more quality early.
  EXPECT_LT(logdist.quality(2.0, 10.0), concave.quality(2.0, 10.0));
  // Monotone non-increasing across the coverage.
  int prev = 256;
  for (double d = 0.0; d <= 10.0; d += 0.5) {
    const int q = logdist.quality(d, 10.0);
    EXPECT_LE(q, prev);
    prev = q;
  }
}

TEST(LinkQualityModelTest, ShadowingIsDeterministicPerLink) {
  LinkQualityModel model;
  model.shadow_sigma = 6.0;
  model.shadow_seed = 7;
  const int a = model.quality(5.0, 10.0, nullptr, 1234);
  const int b = model.quality(5.0, 10.0, nullptr, 1234);
  const int c = model.quality(5.0, 10.0, nullptr, 9999);
  EXPECT_EQ(a, b);   // same link, same shadow
  EXPECT_NE(a, c);   // different link, decorrelated shadow
  LinkQualityModel plain;
  // link_key without shadowing configured changes nothing.
  EXPECT_EQ(plain.quality(5.0, 10.0, nullptr, 1234),
            plain.quality(5.0, 10.0));
}

}  // namespace
}  // namespace peerhood::sim
