// Fault-injection plane tests (sim/fault.hpp): per-kind behaviour at the
// medium level, corrupt-frame rejection at the transport level, blackout /
// partition windows, and the determinism contract — identical (seed,
// schedule) pairs replay the exact same fault sequence.
#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include "net/sim_network.hpp"
#include "sim/medium.hpp"

namespace peerhood::sim {
namespace {

bool same_stats(const FaultStats& a, const FaultStats& b) {
  return a.frames_seen == b.frames_seen && a.loss_drops == b.loss_drops &&
         a.blackout_drops == b.blackout_drops && a.corrupted == b.corrupted &&
         a.duplicated == b.duplicated && a.reordered == b.reordered &&
         a.burst_entries == b.burst_entries;
}

class FaultPlaneTest : public ::testing::Test {
 protected:
  explicit FaultPlaneTest(std::uint64_t seed = 77)
      : sim_{seed}, medium_{sim_} {}

  MacAddress add(std::uint64_t index, Vec2 position) {
    const MacAddress mac = MacAddress::from_index(index);
    medium_.register_endpoint(
        mac, Technology::kBluetooth,
        std::make_shared<StaticPosition>(position),
        [this, mac](MacAddress from, const Bytes& frame) {
          received_.push_back({mac, from, frame});
        });
    return mac;
  }

  struct Received {
    MacAddress to;
    MacAddress from;
    Bytes frame;
  };

  Simulator sim_;
  RadioMedium medium_;
  std::vector<Received> received_;
};

TEST_F(FaultPlaneTest, IndependentLossMatchesConfiguredRate) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {2.0, 0.0});
  FaultProfile profile;
  profile.loss_good = 0.3;
  medium_.fault_plane().set_profile(Technology::kBluetooth, profile);

  constexpr int kFrames = 2000;
  for (int i = 0; i < kFrames; ++i) {
    medium_.send_frame(a, b, Technology::kBluetooth, Bytes{1});
    sim_.run_for(seconds(0.1));
  }
  sim_.run_all();

  const FaultStats& stats = medium_.fault_plane().stats();
  EXPECT_EQ(stats.frames_seen, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(received_.size() + stats.loss_drops,
            static_cast<std::uint64_t>(kFrames));
  const double rate =
      static_cast<double>(stats.loss_drops) / static_cast<double>(kFrames);
  EXPECT_NEAR(rate, 0.3, 0.05);
  EXPECT_EQ(medium_.stats().drops, stats.loss_drops);
}

TEST_F(FaultPlaneTest, GilbertElliottLossComesInBursts) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {2.0, 0.0});
  FaultProfile profile;
  profile.loss_good = 0.0;
  profile.loss_bad = 1.0;
  profile.p_good_to_bad = 0.05;
  profile.p_bad_to_good = 0.3;
  medium_.fault_plane().set_profile(Technology::kBluetooth, profile);

  constexpr int kFrames = 2000;
  for (int i = 0; i < kFrames; ++i) {
    medium_.send_frame(a, b, Technology::kBluetooth, Bytes{1});
    sim_.run_for(seconds(0.1));
  }
  sim_.run_all();

  const FaultStats& stats = medium_.fault_plane().stats();
  EXPECT_GT(stats.burst_entries, 10u);
  // Mean burst length 1/p_bad_to_good > 1: drops outnumber burst entries,
  // i.e. loss clusters instead of flipping back immediately every time.
  EXPECT_GT(stats.loss_drops, stats.burst_entries);
}

TEST_F(FaultPlaneTest, QualityCouplingScalesLossWithDegradation) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress near = add(2, {1.0, 0.0});
  const MacAddress far = add(3, {9.0, 0.0});
  FaultProfile profile;
  profile.loss_good = 0.15;
  profile.quality_coupling = 1.0;
  medium_.fault_plane().set_profile(Technology::kBluetooth, profile);

  constexpr int kFrames = 3000;
  for (int i = 0; i < kFrames; ++i) {
    medium_.send_frame(a, near, Technology::kBluetooth, Bytes{1});
    medium_.send_frame(a, far, Technology::kBluetooth, Bytes{1});
    sim_.run_for(seconds(0.1));
  }
  sim_.run_all();

  int near_got = 0;
  int far_got = 0;
  for (const Received& r : received_) {
    if (r.to == near) ++near_got;
    if (r.to == far) ++far_got;
  }
  // The far link sits close to the coverage edge; coupling must lose
  // measurably more of its frames than the near link's baseline rate.
  EXPECT_GT(near_got - far_got, kFrames / 20);
}

TEST_F(FaultPlaneTest, CorruptionManglesACopyAndCounts) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {2.0, 0.0});
  FaultProfile profile;
  profile.corrupt_prob = 1.0;
  medium_.fault_plane().set_profile(Technology::kBluetooth, profile);

  const Bytes payload(32, 0xAB);
  auto shared = std::make_shared<const Bytes>(payload);
  medium_.send_frame(a, b, Technology::kBluetooth, shared);
  sim_.run_all();

  ASSERT_EQ(received_.size(), 1u);
  EXPECT_NE(received_[0].frame, payload);
  // The shared buffer itself is never mutated (other deliveries and caches
  // may reference the same allocation).
  EXPECT_EQ(*shared, payload);
  EXPECT_EQ(medium_.fault_plane().stats().corrupted, 1u);
}

TEST_F(FaultPlaneTest, DuplicationDeliversTwice) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {2.0, 0.0});
  FaultProfile profile;
  profile.duplicate_prob = 1.0;
  medium_.fault_plane().set_profile(Technology::kBluetooth, profile);

  medium_.send_frame(a, b, Technology::kBluetooth, Bytes{7});
  sim_.run_all();

  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(received_[0].frame, received_[1].frame);
  EXPECT_EQ(medium_.fault_plane().stats().duplicated, 1u);
}

TEST_F(FaultPlaneTest, ReorderedFrameIsOvertaken) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {2.0, 0.0});
  // First frame carries a large reorder delay; then the profile is cleared
  // so the second frame travels at base latency and overtakes it.
  FaultProfile delayed;
  delayed.reorder_prob = 1.0;
  delayed.reorder_delay_max = seconds(5.0);
  medium_.fault_plane().set_profile(Technology::kBluetooth, delayed);
  medium_.send_frame(a, b, Technology::kBluetooth, Bytes{1});
  medium_.fault_plane().set_profile(Technology::kBluetooth, FaultProfile{});
  medium_.send_frame(a, b, Technology::kBluetooth, Bytes{2});
  sim_.run_all();

  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(received_[0].frame, (Bytes{2}));
  EXPECT_EQ(received_[1].frame, (Bytes{1}));
  EXPECT_EQ(medium_.fault_plane().stats().reordered, 1u);
}

TEST_F(FaultPlaneTest, BlackoutWindowSilencesThenHeals) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {2.0, 0.0});
  LinkFaultModel::Blackout window;
  window.start = SimTime{} + seconds(1.0);
  window.duration = seconds(2.0);
  medium_.fault_plane().schedule_blackout(window);

  auto send = [this, a, b] {
    medium_.send_frame(a, b, Technology::kBluetooth, Bytes{1});
  };
  sim_.schedule_at(SimTime{} + seconds(0.5), send);
  sim_.schedule_at(SimTime{} + seconds(2.0), send);
  sim_.schedule_at(SimTime{} + seconds(4.0), send);
  sim_.run_all();

  EXPECT_EQ(received_.size(), 2u);
  EXPECT_EQ(medium_.fault_plane().stats().blackout_drops, 1u);
}

TEST_F(FaultPlaneTest, PartitionCutsOnlyCrossLinks) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {2.0, 0.0});
  const MacAddress c = add(3, {4.0, 0.0});
  LinkFaultModel::Blackout cut;
  cut.start = SimTime{};
  cut.duration = seconds(10.0);
  cut.side_a = {a};
  cut.side_b = {c};
  medium_.fault_plane().schedule_blackout(cut);

  medium_.send_frame(a, c, Technology::kBluetooth, Bytes{1});  // crosses cut
  medium_.send_frame(a, b, Technology::kBluetooth, Bytes{2});  // same side
  medium_.send_frame(b, c, Technology::kBluetooth, Bytes{3});  // b unlisted
  sim_.run_all();

  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(medium_.fault_plane().stats().blackout_drops, 1u);
  // Discovery is silenced across the cut too.
  EXPECT_TRUE(medium_.link_blacked_out(a, c, Technology::kBluetooth));
  EXPECT_FALSE(medium_.link_blacked_out(a, b, Technology::kBluetooth));
}

TEST_F(FaultPlaneTest, BlackoutDoesNotAdvanceBurstState) {
  const MacAddress a = add(1, {0.0, 0.0});
  const MacAddress b = add(2, {2.0, 0.0});
  FaultProfile profile;
  profile.p_good_to_bad = 0.5;
  profile.loss_bad = 1.0;
  medium_.fault_plane().set_profile(Technology::kBluetooth, profile);
  LinkFaultModel::Blackout window;
  window.start = SimTime{};
  window.duration = seconds(1.0);
  medium_.fault_plane().schedule_blackout(window);

  for (int i = 0; i < 50; ++i) {
    medium_.send_frame(a, b, Technology::kBluetooth, Bytes{1});
  }
  sim_.run_all();
  const FaultStats& stats = medium_.fault_plane().stats();
  EXPECT_EQ(stats.blackout_drops, 50u);
  EXPECT_EQ(stats.burst_entries, 0u);  // GE state frozen during the window
}

TEST(FaultPlaneDeterminism, SameSeedAndScheduleReplayIdentically) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim{seed};
    RadioMedium medium{sim};
    std::vector<std::uint8_t> order;
    const MacAddress a = MacAddress::from_index(1);
    const MacAddress b = MacAddress::from_index(2);
    medium.register_endpoint(a, Technology::kBluetooth,
                             std::make_shared<StaticPosition>(Vec2{0.0, 0.0}),
                             [](MacAddress, const Bytes&) {});
    medium.register_endpoint(
        b, Technology::kBluetooth,
        std::make_shared<StaticPosition>(Vec2{6.0, 0.0}),
        [&order](MacAddress, const Bytes& frame) {
          order.push_back(frame.empty() ? 0 : frame[0]);
        });
    FaultProfile profile;
    profile.loss_good = 0.1;
    profile.loss_bad = 0.8;
    profile.p_good_to_bad = 0.05;
    profile.corrupt_prob = 0.05;
    profile.duplicate_prob = 0.05;
    profile.reorder_prob = 0.1;
    medium.fault_plane().set_profile(Technology::kBluetooth, profile);
    for (int i = 0; i < 500; ++i) {
      medium.send_frame(a, b, Technology::kBluetooth,
                        Bytes{static_cast<std::uint8_t>(i & 0xff)});
      sim.run_for(seconds(0.05));
    }
    sim.run_all();
    return std::pair{medium.fault_plane().stats(), order};
  };

  const auto [stats1, order1] = run_once(42);
  const auto [stats2, order2] = run_once(42);
  const auto [stats3, order3] = run_once(43);
  EXPECT_TRUE(same_stats(stats1, stats2));
  EXPECT_EQ(order1, order2);
  EXPECT_FALSE(same_stats(stats1, stats3) && order1 == order3);
}

TEST(FaultPlaneNetwork, CorruptFramesAreCountedAndDropped) {
  Simulator sim{5};
  RadioMedium medium{sim};
  net::SimNetwork network{medium};
  const MacAddress a = MacAddress::from_index(1);
  const MacAddress b = MacAddress::from_index(2);
  network.attach_interface(a, Technology::kBluetooth,
                           std::make_shared<StaticPosition>(Vec2{0.0, 0.0}));
  network.attach_interface(b, Technology::kBluetooth,
                           std::make_shared<StaticPosition>(Vec2{2.0, 0.0}));
  int delivered = 0;
  network.set_datagram_handler(
      b, Technology::kBluetooth,
      [&delivered](MacAddress, std::span<const std::uint8_t>) {
        ++delivered;
      });
  FaultProfile profile;
  profile.corrupt_prob = 1.0;
  medium.fault_plane().set_profile(Technology::kBluetooth, profile);

  for (int i = 0; i < 20; ++i) {
    network.send_datagram(a, b, Technology::kBluetooth, Bytes(16, 0x5A));
  }
  sim.run_all();

  // Every frame was bit-flipped in flight; the length+checksum header must
  // reject all of them before any decoder runs.
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(network.integrity_stats().frames_checked, 20u);
  EXPECT_EQ(network.integrity_stats().corrupt_drops, 20u);
  EXPECT_EQ(medium.fault_plane().stats().corrupted, 20u);
}

}  // namespace
}  // namespace peerhood::sim
