// Satellite of the sharded-core PR: scenario results are a function of
// (seed) alone, never of the shard count. The protocol stack runs on the
// control shard, whose RNG stream and event order equal a plain
// Simulator(seed), so every ScenarioMetrics field — including the
// exactly-once counters derived from each payload's embedded message
// counter (the per-session payload trace digest) — must be identical
// between shards=1 and any sharded run of the same spec.
#include <gtest/gtest.h>

#include <cstdlib>
#include <tuple>

#include "node/testbed.hpp"
#include "scenario/scenario.hpp"

namespace peerhood::scenario {
namespace {

// Every field of SessionMetrics, as a comparable tuple. received/
// dup_or_reorder/gaps come from the per-payload message counters, so
// equality here means the payload streams matched message-for-message.
auto session_tuple(const SessionMetrics& s) {
  return std::tie(s.connected, s.sent, s.received, s.handovers,
                  s.predictions, s.predictive_handovers, s.reconnections,
                  s.restarts, s.dup_or_reorder, s.gaps, s.outage_episodes,
                  s.outage_s, s.handover_latency_sum_s,
                  s.handover_latency_count);
}

ScenarioMetrics run_corridor(std::uint64_t seed, std::uint32_t shards) {
  ScenarioSpec spec = corridor_walk(seed, /*predictive=*/true);
  spec.shards = shards;
  ScenarioRunner runner{std::move(spec)};
  EXPECT_TRUE(runner.setup().ok());
  if (shards > 1) {
    EXPECT_EQ(runner.testbed().core().shard_count(), shards);
  }
  runner.run();
  if (shards > 1) {
    // The windowed path actually ran; parity is not a passthrough artifact.
    EXPECT_GT(runner.testbed().core().stats().windows, 0u);
  }
  return runner.metrics();
}

void expect_metrics_equal(const ScenarioMetrics& base,
                          const ScenarioMetrics& sharded,
                          std::uint32_t shards) {
  ASSERT_EQ(base.sessions.size(), sharded.sessions.size());
  for (std::size_t i = 0; i < base.sessions.size(); ++i) {
    EXPECT_EQ(session_tuple(base.sessions[i]),
              session_tuple(sharded.sessions[i]))
        << "session " << i << " shards=" << shards;
  }
  EXPECT_EQ(base.medium_frames, sharded.medium_frames) << "shards=" << shards;
  EXPECT_EQ(base.medium_frame_bytes, sharded.medium_frame_bytes);
  EXPECT_EQ(base.quality_observer_evals, sharded.quality_observer_evals);
  EXPECT_EQ(base.quality_events, sharded.quality_events);
  EXPECT_EQ(base.corrupt_frames_dropped, sharded.corrupt_frames_dropped);
  EXPECT_EQ(base.restart_resumes, sharded.restart_resumes);
}

TEST(ShardScenarioParity, CorridorMetricsMatchAcrossShardCounts) {
  for (const std::uint64_t seed : {3u, 17u, 40u}) {
    const ScenarioMetrics base = run_corridor(seed, 1);
    ASSERT_FALSE(base.sessions.empty());
    EXPECT_GT(base.total_sent(), 0u);
    for (const std::uint32_t shards : {2u, 4u, 8u}) {
      const ScenarioMetrics sharded = run_corridor(seed, shards);
      expect_metrics_equal(base, sharded, shards);
    }
  }
}

TEST(ShardScenarioParity, EnvKnobSelectsShardCount) {
  // shards=0 defers to PEERHOOD_SHARDS — the suite-wide switch that lets CI
  // run every testbed-based test on the windowed core.
  ::setenv("PEERHOOD_SHARDS", "4", 1);
  {
    node::Testbed testbed{1};
    EXPECT_EQ(testbed.core().shard_count(), 4u);
  }
  ::setenv("PEERHOOD_SHARDS", "not-a-number", 1);
  {
    node::Testbed testbed{1};
    EXPECT_EQ(testbed.core().shard_count(), 1u);
  }
  ::unsetenv("PEERHOOD_SHARDS");
  {
    node::Testbed testbed{1};
    EXPECT_EQ(testbed.core().shard_count(), 1u);
  }
}

}  // namespace
}  // namespace peerhood::scenario
