#include "sim/radio.hpp"

#include <gtest/gtest.h>

namespace peerhood::sim {
namespace {

TEST(TechnologyParams, BluetoothMatchesPaperCalibration) {
  const TechnologyParams bt = bluetooth_params();
  EXPECT_EQ(bt.tech, Technology::kBluetooth);
  EXPECT_DOUBLE_EQ(bt.range_m, 10.0);
  EXPECT_TRUE(bt.asymmetric_discovery);
  // §4.3: two-hop bridge connections took 3-18 s → per-hop 1.5-9 s.
  EXPECT_DOUBLE_EQ(bt.connect_delay_min_s, 1.5);
  EXPECT_DOUBLE_EQ(bt.connect_delay_max_s, 9.0);
  // ~3 of 10 two-hop attempts failed → per-hop ≈ 0.16.
  EXPECT_NEAR(bt.connect_failure_prob, 0.16, 1e-9);
}

TEST(TechnologyParams, WlanAndGprsDiffer) {
  const TechnologyParams wlan = wlan_params();
  const TechnologyParams gprs = gprs_params();
  EXPECT_GT(wlan.range_m, bluetooth_params().range_m);
  EXPECT_GT(gprs.range_m, wlan.range_m);
  EXPECT_FALSE(wlan.asymmetric_discovery);
  EXPECT_LT(wlan.connect_delay_max_s, bluetooth_params().connect_delay_max_s);
  EXPECT_LT(gprs.bytes_per_second, wlan.bytes_per_second);
}

TEST(TechnologyParams, DefaultParamsDispatch) {
  EXPECT_EQ(default_params(Technology::kBluetooth).tech,
            Technology::kBluetooth);
  EXPECT_EQ(default_params(Technology::kWlan).tech, Technology::kWlan);
  EXPECT_EQ(default_params(Technology::kGprs).tech, Technology::kGprs);
}

TEST(MobilityClass, PaperNumericValues) {
  // §3.4.3: {static, hybrid, dynamic} = {0, 1, 3}.
  EXPECT_EQ(mobility_cost(MobilityClass::kStatic), 0);
  EXPECT_EQ(mobility_cost(MobilityClass::kHybrid), 1);
  EXPECT_EQ(mobility_cost(MobilityClass::kDynamic), 3);
}

TEST(LinkQualityModel, MaxAtZeroDistance) {
  LinkQualityModel model;
  model.noise = 0.0;
  EXPECT_EQ(model.quality(0.0, 10.0), 255);
}

TEST(LinkQualityModel, EdgeValueAtRange) {
  LinkQualityModel model;
  model.noise = 0.0;
  EXPECT_EQ(model.quality(10.0, 10.0), model.q_edge);
}

TEST(LinkQualityModel, ZeroBeyondRange) {
  LinkQualityModel model;
  EXPECT_EQ(model.quality(10.01, 10.0), 0);
  EXPECT_EQ(model.quality(100.0, 10.0), 0);
}

TEST(LinkQualityModel, MonotonicallyDecreasing) {
  LinkQualityModel model;
  model.noise = 0.0;
  int prev = 256;
  for (double d = 0.0; d <= 10.0; d += 0.5) {
    const int q = model.quality(d, 10.0);
    EXPECT_LE(q, prev);
    prev = q;
  }
}

TEST(LinkQualityModel, ConcaveProfileStaysHighNearTransmitter) {
  // RSSI should remain near max until well into the range (exponent 2).
  LinkQualityModel model;
  model.noise = 0.0;
  const int at_quarter = model.quality(2.5, 10.0);
  EXPECT_GT(at_quarter, 245);
}

TEST(LinkQualityModel, ThresholdCrossingInsideRange) {
  // The paper's 230 threshold must be crossed strictly inside the coverage
  // area, otherwise handover could never precede connection loss.
  LinkQualityModel model;
  model.noise = 0.0;
  double crossing = -1.0;
  for (double d = 0.0; d <= 10.0; d += 0.01) {
    if (model.quality(d, 10.0) < LinkQualityModel::kDefaultThreshold) {
      crossing = d;
      break;
    }
  }
  ASSERT_GT(crossing, 1.0);
  ASSERT_LT(crossing, 9.5);
}

TEST(LinkQualityModel, NoiseIsBounded) {
  LinkQualityModel model;
  model.noise = 2.0;
  Rng rng{31};
  for (int i = 0; i < 1000; ++i) {
    const int q = model.quality(5.0, 10.0, &rng);
    const int clean = model.quality(5.0, 10.0, nullptr);
    EXPECT_NEAR(q, clean, 3);
  }
}

TEST(LinkQualityModel, ClampedToValidRange) {
  LinkQualityModel model;
  model.noise = 50.0;
  Rng rng{33};
  for (int i = 0; i < 1000; ++i) {
    const int q = model.quality(9.9, 10.0, &rng);
    EXPECT_GE(q, 1);
    EXPECT_LE(q, 255);
  }
}

TEST(ToString, Names) {
  EXPECT_EQ(to_string(Technology::kBluetooth), "bluetooth");
  EXPECT_EQ(to_string(Technology::kWlan), "wlan");
  EXPECT_EQ(to_string(Technology::kGprs), "gprs");
  EXPECT_EQ(to_string(MobilityClass::kStatic), "static");
  EXPECT_EQ(to_string(MobilityClass::kHybrid), "hybrid");
  EXPECT_EQ(to_string(MobilityClass::kDynamic), "dynamic");
}

}  // namespace
}  // namespace peerhood::sim
