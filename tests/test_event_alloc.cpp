// Proves the "zero-allocation event core" claim with a counting
// operator-new hook: once the slot arena, free list and heap have reached
// their high-water marks, scheduling and firing events whose closures fit
// InlineCallable's inline buffer performs no heap allocation at all.
// This TU overrides global operator new/delete; each test source builds
// into its own binary, so the hook is scoped to this suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  ++g_allocations;
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace peerhood::sim {
namespace {

// A 40-byte capture — the size class of the medium's frame-delivery closure
// ({this, from, to, tech, shared_ptr}), comfortably within the 48-byte
// inline buffer but far beyond std::function's.
struct FrameSizedCapture {
  std::uint64_t a, b, c, d;
  std::uint64_t* sink;
};

TEST(EventCoreAllocation, SteadyStateScheduleFireIsAllocationFree) {
  EventQueue q;
  std::uint64_t sink = 0;
  const FrameSizedCapture capture{1, 2, 3, 4, &sink};
  SimTime t{};

  // Warm-up: grow the arena, free list and heap to a 64-event high-water
  // mark, then drain.
  for (int i = 0; i < 64; ++i) {
    t += microseconds(1);
    q.schedule(t, [capture] { *capture.sink += capture.a; });
  }
  while (!q.empty()) (void)q.run_next();

  // Steady state: ping-style schedule→fire, then 32-deep bursts. Neither
  // pattern exceeds the warm high-water mark, so: zero allocations.
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 10'000; ++i) {
    t += microseconds(1);
    q.schedule(t, [capture] { *capture.sink += capture.b; });
    (void)q.run_next();
  }
  for (int burst = 0; burst < 300; ++burst) {
    for (int i = 0; i < 32; ++i) {
      t += microseconds(1);
      q.schedule(t, [capture] { *capture.sink += capture.c; });
    }
    while (!q.empty()) (void)q.run_next();
  }
  EXPECT_EQ(g_allocations.load() - before, 0u);
  EXPECT_GT(sink, 0u);
}

TEST(EventCoreAllocation, SteadyStateCancelIsAllocationFree) {
  EventQueue q;
  std::uint64_t sink = 0;
  const FrameSizedCapture capture{1, 2, 3, 4, &sink};
  SimTime t{};
  for (int i = 0; i < 64; ++i) {
    t += microseconds(1);
    q.schedule(t, [capture] { *capture.sink += capture.a; });
  }
  while (!q.empty()) (void)q.run_next();

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 5'000; ++i) {
    t += microseconds(1);
    const EventId keep = q.schedule(t, [capture] { *capture.sink += 1; });
    t += microseconds(1);
    const EventId drop = q.schedule(t, [capture] { *capture.sink += 1; });
    q.cancel(drop);
    (void)q.run_next();
    (void)keep;
  }
  EXPECT_EQ(g_allocations.load() - before, 0u);
}

TEST(EventCoreAllocation, SimulatorScheduleAfterIsAllocationFree) {
  Simulator sim{7};
  std::uint64_t sink = 0;
  const FrameSizedCapture capture{9, 8, 7, 6, &sink};
  for (int i = 0; i < 64; ++i) {
    sim.schedule_after(microseconds(i + 1),
                       [capture] { *capture.sink += capture.a; });
  }
  sim.run_all();

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 10'000; ++i) {
    sim.schedule_after(microseconds(1),
                       [capture] { *capture.sink += capture.b; });
    (void)sim.step();
  }
  EXPECT_EQ(g_allocations.load() - before, 0u);
}

// Sanity check for the hook itself: an oversized capture *must* allocate
// (InlineCallable's documented heap fallback), proving the counter works.
TEST(EventCoreAllocation, OversizedCaptureAllocates) {
  EventQueue q;
  std::uint64_t sink = 0;
  struct Oversized {
    std::uint64_t words[8];
    std::uint64_t* sink;
  };
  const Oversized big{{1, 2, 3, 4, 5, 6, 7, 8}, &sink};
  static_assert(sizeof(Oversized) > InlineCallable::kInlineSize);
  const std::uint64_t before = g_allocations.load();
  q.schedule(SimTime{} + microseconds(1),
             [big] { *big.sink += big.words[0]; });
  EXPECT_GE(g_allocations.load() - before, 1u);
  (void)q.run_next();
  EXPECT_EQ(sink, 1u);
}

}  // namespace
}  // namespace peerhood::sim
