// Scenario subsystem (PR 5): trace loading, MobilitySpec factories, and the
// declarative ScenarioRunner — setup, traffic, metrics, determinism.
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace peerhood::scenario {
namespace {

TEST(WaypointTrace, ParsesTimedPositions) {
  const auto result = parse_waypoint_trace(
      "# a short corridor walk\n"
      "0 2.0 0.0\n"
      "60 2.0 0.0   # hold\n"
      "\n"
      "74 16.0 0.0\n");
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const auto& waypoints = result.value();
  ASSERT_EQ(waypoints.size(), 3u);
  EXPECT_EQ(waypoints[0].position, (sim::Vec2{2.0, 0.0}));
  EXPECT_EQ(waypoints[2].at, SimTime{} + seconds(74.0));
  EXPECT_EQ(waypoints[2].position, (sim::Vec2{16.0, 0.0}));

  // Round-trips into a WaypointPath model.
  sim::WaypointPath path{waypoints};
  EXPECT_EQ(path.position_at(SimTime{} + seconds(67.0)),
            (sim::Vec2{9.0, 0.0}));
}

TEST(WaypointTrace, RejectsMalformedInput) {
  EXPECT_FALSE(parse_waypoint_trace("").ok());
  EXPECT_FALSE(parse_waypoint_trace("# only comments\n").ok());
  EXPECT_FALSE(parse_waypoint_trace("0 1.0\n").ok());           // missing y
  EXPECT_FALSE(parse_waypoint_trace("0 1 2 3\n").ok());         // extra field
  EXPECT_FALSE(parse_waypoint_trace("5 1 1\n3 2 2\n").ok());    // time order
  EXPECT_FALSE(parse_waypoint_trace("-1 0 0\n").ok());          // negative t
}

TEST(WaypointTrace, MissingFileReportsError) {
  const auto result = load_waypoint_trace("/nonexistent/trace.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
}

TEST(MobilitySpecBuild, EveryKindProducesAModel) {
  Rng rng{1};
  MobilitySpec spec;
  spec.kind = MobilitySpec::Kind::kStatic;
  spec.start = {1.0, 2.0};
  auto built = spec.build(rng.fork(), {1.0, 0.0});
  ASSERT_NE(built, nullptr);
  EXPECT_EQ(built->position_at(SimTime{}), (sim::Vec2{2.0, 2.0}));
  EXPECT_TRUE(built->is_static());

  spec.kind = MobilitySpec::Kind::kTrace;
  spec.trace = "0 0 0\n10 5 0\n";
  built = spec.build(rng.fork());
  ASSERT_NE(built, nullptr);
  EXPECT_EQ(built->position_at(SimTime{} + seconds(4.0)),
            (sim::Vec2{2.0, 0.0}));

  spec.kind = MobilitySpec::Kind::kGaussMarkov;
  EXPECT_NE(spec.build(rng.fork()), nullptr);
  spec.kind = MobilitySpec::Kind::kRandomWaypoint;
  EXPECT_NE(spec.build(rng.fork()), nullptr);

  // kGroup without a reference is a spec error.
  spec.kind = MobilitySpec::Kind::kGroup;
  EXPECT_EQ(spec.build(rng.fork()), nullptr);
  EXPECT_NE(spec.build(rng.fork(), {},
                       std::make_shared<sim::StaticPosition>(sim::Vec2{})),
            nullptr);
}

TEST(ScenarioRunner, CorridorRunsTrafficAndMeasures) {
  ScenarioRunner runner{corridor_walk(7, /*predictive=*/true)};
  ASSERT_TRUE(runner.setup().ok());
  runner.run();
  const ScenarioMetrics& m = runner.metrics();
  ASSERT_EQ(m.sessions.size(), 1u);
  EXPECT_TRUE(m.sessions[0].connected);
  // ~1 message/s over a 100+ s body, essentially all delivered.
  EXPECT_GT(m.total_sent(), 80u);
  EXPECT_LE(m.frames_lost(), 3u);
  EXPECT_GE(m.total_handovers(), 1u);
  EXPECT_GT(m.medium_frames, m.total_received());
  EXPECT_GT(m.quality_observer_evals, 0u);
}

TEST(ScenarioRunner, SameSeedIsDeterministic) {
  ScenarioRunner a{corridor_walk(3, true)};
  ScenarioRunner b{corridor_walk(3, true)};
  ASSERT_TRUE(a.setup().ok());
  ASSERT_TRUE(b.setup().ok());
  a.run();
  b.run();
  EXPECT_EQ(a.metrics().total_sent(), b.metrics().total_sent());
  EXPECT_EQ(a.metrics().total_received(), b.metrics().total_received());
  EXPECT_EQ(a.metrics().total_handovers(), b.metrics().total_handovers());
  EXPECT_EQ(a.metrics().medium_frames, b.metrics().medium_frames);
  EXPECT_DOUBLE_EQ(a.metrics().total_outage_s(),
                   b.metrics().total_outage_s());
}

TEST(ScenarioRunner, GroupScenarioBuildsAllMembersAndSessions) {
  ScenarioSpec spec = group_walk(5, /*predictive=*/true, 4);
  ScenarioRunner runner{std::move(spec)};
  ASSERT_TRUE(runner.setup().ok());
  // server0, bridge0, member0..3 all exist (node() throws on a miss).
  EXPECT_NO_THROW((void)runner.testbed().node("member3"));
  runner.run();
  EXPECT_EQ(runner.metrics().sessions.size(), 2u);
  EXPECT_GT(runner.metrics().total_sent(), 100u);
}

TEST(ScenarioRunner, UnknownServiceFailsSetup) {
  ScenarioSpec spec = corridor_walk(1, true);
  spec.sessions[0].service = "no-such-service";
  ScenarioRunner runner{std::move(spec)};
  EXPECT_FALSE(runner.setup().ok());
}

}  // namespace
}  // namespace peerhood::scenario
