#include "peerhood/protocol.hpp"

#include <gtest/gtest.h>

namespace peerhood::wire {
namespace {

DeviceInfo sample_device(std::uint64_t index) {
  DeviceInfo device;
  device.mac = MacAddress::from_index(index);
  device.name = "device-" + std::to_string(index);
  device.checksum = static_cast<std::uint32_t>(index * 17);
  device.mobility = MobilityClass::kHybrid;
  return device;
}

TEST(Protocol, DeviceRoundTrip) {
  const DeviceInfo device = sample_device(3);
  ByteWriter writer;
  encode_device(writer, device);
  ByteReader reader{writer.bytes()};
  EXPECT_EQ(decode_device(reader), device);
  EXPECT_TRUE(reader.ok());
}

TEST(Protocol, ServiceRoundTrip) {
  const ServiceInfo service{"picture.analyse", "compute", 42};
  ByteWriter writer;
  encode_service(writer, service);
  ByteReader reader{writer.bytes()};
  EXPECT_EQ(decode_service(reader), service);
}

TEST(Protocol, FetchRequestRoundTrip) {
  const FetchRequest request{77, kSectionDevice | kSectionNeighbours};
  const auto decoded = decode_fetch_request(encode(request));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->request_id, 77u);
  EXPECT_EQ(decoded->sections, kSectionDevice | kSectionNeighbours);
  EXPECT_FALSE(decoded->baseline.has_value());
}

TEST(Protocol, FetchRequestBaselineRoundTrip) {
  FetchRequest request{78, kSectionAll};
  SectionGens gens;
  gens.device = 1;
  gens.prototypes = 2;
  gens.services = 0xffffffffu;  // wraparound values are plain payload
  gens.neighbours = 940;
  request.baseline = FetchBaseline{0xabcdef0123456789ull, gens};
  const auto decoded = decode_fetch_request(encode(request));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->baseline.has_value());
  EXPECT_EQ(*decoded->baseline, *request.baseline);
}

TEST(Protocol, NotModifiedRoundTrip) {
  FetchResponse response;
  response.not_modified = true;
  response.request_id = 5;
  response.load_percent = 61;
  const Bytes frame = encode(response);
  EXPECT_EQ(peek_command(frame), Command::kNotModified);
  const auto decoded = decode_fetch_response(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->not_modified);
  EXPECT_EQ(decoded->request_id, 5u);
  EXPECT_EQ(decoded->load_percent, 61);
  EXPECT_EQ(decoded->sections, 0);
}

TEST(Protocol, ResponseCarriesEpochAndSectionGens) {
  FetchResponse response;
  response.request_id = 12;
  response.sections = kSectionServices | kSectionNeighbours;
  response.epoch = 0x1122334455667788ull;
  response.gens.services = 7;
  response.gens.neighbours = 0xffffffffu;
  response.services = {{"svc", "", 3}};
  const auto decoded = decode_fetch_response(encode(response));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->epoch, response.epoch);
  EXPECT_EQ(decoded->gens.services, 7u);
  EXPECT_EQ(decoded->gens.neighbours, 0xffffffffu);
  EXPECT_EQ(decoded->services, response.services);
  EXPECT_FALSE(decoded->not_modified);
}

TEST(Protocol, RequestRejectsUnknownSectionBits) {
  Bytes frame = encode(FetchRequest{3, kSectionAll});
  frame[5] = 0x90;  // sections byte: unknown high bits
  EXPECT_FALSE(decode_fetch_request(frame).has_value());
}

TEST(Protocol, ResponseRejectsUnknownSectionBits) {
  FetchResponse response;
  response.sections = kSectionDevice;
  response.device = sample_device(2);
  Bytes frame = encode(response);
  frame[5] = 0x90;  // sections byte: unknown high bits
  EXPECT_FALSE(decode_fetch_response(frame).has_value());
}

TEST(Protocol, FetchResponseFullRoundTrip) {
  FetchResponse response;
  response.request_id = 9;
  response.sections = kSectionAll;
  response.load_percent = 25;
  response.device = sample_device(1);
  response.prototypes = {Technology::kBluetooth, Technology::kWlan};
  response.services = {{"svc-a", "", 10}, {"svc-b", "hidden", 11}};

  NeighbourSnapshotEntry entry;
  entry.device = sample_device(2);
  entry.prototypes = {Technology::kGprs};
  entry.services = {{"remote", "attr", 5}};
  entry.jump = 2;
  entry.bridge = MacAddress::from_index(7);
  entry.quality_sum = 480;
  entry.min_link_quality = 231;
  response.neighbours.push_back(entry);

  const auto decoded = decode_fetch_response(encode(response));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->request_id, 9u);
  EXPECT_EQ(decoded->load_percent, 25);
  EXPECT_EQ(decoded->device, response.device);
  EXPECT_EQ(decoded->prototypes, response.prototypes);
  EXPECT_EQ(decoded->services, response.services);
  ASSERT_EQ(decoded->neighbours.size(), 1u);
  const NeighbourSnapshotEntry& back = decoded->neighbours[0];
  EXPECT_EQ(back.device, entry.device);
  EXPECT_EQ(back.jump, 2);
  EXPECT_EQ(back.bridge, entry.bridge);
  EXPECT_EQ(back.quality_sum, 480);
  EXPECT_EQ(back.min_link_quality, 231);
}

TEST(Protocol, FetchResponsePartialSections) {
  FetchResponse response;
  response.request_id = 4;
  response.sections = kSectionServices;
  response.services = {{"only-services", "", 1}};
  const auto decoded = decode_fetch_response(encode(response));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->neighbours.empty());
  EXPECT_TRUE(decoded->device.mac.is_null());
  ASSERT_EQ(decoded->services.size(), 1u);
}

TEST(Protocol, ConnectRoundTripWithoutParams) {
  ConnectRequest request;
  request.session_id = 0xABCD;
  request.service = "echo";
  const auto decoded = decode_handshake(encode_connect(request));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->command, Command::kConnect);
  EXPECT_EQ(decoded->connect.session_id, 0xABCDu);
  EXPECT_EQ(decoded->connect.service, "echo");
  EXPECT_FALSE(decoded->connect.client_params.has_value());
}

TEST(Protocol, ConnectRoundTripWithParams) {
  ConnectRequest request;
  request.session_id = 1;
  request.service = "picture.analyse";
  ClientParams params;
  params.device = sample_device(11);
  params.tech = Technology::kBluetooth;
  params.reconnect_service = "client.result";
  params.port = 8;
  request.client_params = params;
  const auto decoded = decode_handshake(encode_connect(request));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->connect.client_params.has_value());
  EXPECT_EQ(*decoded->connect.client_params, params);
}

TEST(Protocol, ResumeCommand) {
  ConnectRequest request;
  request.session_id = 5;
  request.service = "echo";
  const auto decoded = decode_handshake(encode_resume(request));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->command, Command::kResume);
}

TEST(Protocol, BridgeRoundTrip) {
  BridgeRequest request;
  request.destination = MacAddress::from_index(66);
  request.final_command = Command::kResume;
  request.inner.session_id = 99;
  request.inner.service = "echo";
  const auto decoded = decode_handshake(encode_bridge(request));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->command, Command::kBridge);
  EXPECT_EQ(decoded->bridge.destination, request.destination);
  EXPECT_EQ(decoded->bridge.final_command, Command::kResume);
  EXPECT_EQ(decoded->bridge.inner.session_id, 99u);
}

TEST(Protocol, BridgeRejectsBadFinalCommand) {
  BridgeRequest request;
  request.destination = MacAddress::from_index(66);
  request.inner.service = "x";
  Bytes frame = encode_bridge(request);
  // Corrupt the final-command byte (offset: cmd(1) + mac(8)).
  frame[9] = 0x63;
  EXPECT_FALSE(decode_handshake(frame).has_value());
}

TEST(Protocol, OkAndFail) {
  const auto ok = decode_handshake(encode_ok());
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->command, Command::kOk);

  const auto fail =
      decode_handshake(encode_fail(ErrorCode::kNoRoute, "nothing"));
  ASSERT_TRUE(fail.has_value());
  EXPECT_EQ(fail->command, Command::kFail);
  EXPECT_EQ(fail->fail.code, ErrorCode::kNoRoute);
  EXPECT_EQ(fail->fail.message, "nothing");
}

TEST(Protocol, MalformedInputRejected) {
  EXPECT_FALSE(decode_handshake(Bytes{}).has_value());
  EXPECT_FALSE(decode_handshake(Bytes{0x63}).has_value());
  // Truncated connect.
  ConnectRequest request;
  request.service = "abcdef";
  Bytes frame = encode_connect(request);
  frame.resize(frame.size() / 2);
  EXPECT_FALSE(decode_handshake(frame).has_value());
  EXPECT_FALSE(decode_fetch_request(Bytes{1, 2}).has_value());
  EXPECT_FALSE(decode_fetch_response(Bytes{2, 0}).has_value());
}

TEST(Protocol, PeekCommand) {
  EXPECT_EQ(peek_command(encode_ok()), Command::kOk);
  EXPECT_EQ(peek_command(Bytes{}), std::nullopt);
}

TEST(Protocol, FuzzDecodersDoNotCrash) {
  Rng rng{2024};
  for (int i = 0; i < 2000; ++i) {
    Bytes junk(static_cast<std::size_t>(rng.uniform_int(0, 64)), 0);
    for (auto& byte : junk) {
      byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    (void)decode_handshake(junk);
    (void)decode_fetch_request(junk);
    (void)decode_fetch_response(junk);
    (void)peek_command(junk);
  }
  SUCCEED();
}

}  // namespace
}  // namespace peerhood::wire
