// Proves the bounded-resource claim of the reliability layer with a counting
// operator-new hook (same technique as test_snapshot_alloc): once the send
// window — the channel's own or the peer-advertised one — is full,
// ReliableChannel::send refuses with kCapacityExceeded and the refusing path
// allocates *nothing*, so a never-draining peer bounds sender memory at the
// window size instead of growing it. This TU overrides global operator
// new/delete; each test source builds into its own binary, so the hook is
// scoped to this suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "peerhood/reliable_channel.hpp"
#include "scenario_util.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  ++g_allocations;
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace peerhood {
namespace {

using node::Testbed;
using testing::fast_node;
using testing::reliable_bluetooth;

// Two nodes, one session; the server side stays a *raw* Channel (no
// reliability layer, so it never acks — the never-draining peer).
class ReliableBackpressureTest : public ::testing::Test {
 protected:
  void build(std::uint64_t seed, ReliableConfig config) {
    testbed_ = std::make_unique<Testbed>(seed);
    testbed_->medium().configure(reliable_bluetooth());
    client_ = &testbed_->add_node("client", {0.0, 0.0},
                                  fast_node(MobilityClass::kStatic));
    server_ = &testbed_->add_node("server", {4.0, 0.0},
                                  fast_node(MobilityClass::kStatic));
    (void)server_->library().register_service(
        ServiceInfo{"sink", "", 0},
        [this](ChannelPtr channel, const wire::ConnectRequest&) {
          server_channel_ = std::move(channel);
        });
    testbed_->run_discovery_rounds(3);
    auto result = client_->connect_blocking(server_->mac(), "sink");
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    channel_ = result.value();
    reliable_ = std::make_unique<ReliableChannel>(testbed_->sim(), channel_,
                                                  config);
  }

  std::unique_ptr<Testbed> testbed_;
  node::Node* client_{nullptr};
  node::Node* server_{nullptr};
  ChannelPtr channel_;
  ChannelPtr server_channel_;
  std::unique_ptr<ReliableChannel> reliable_;
};

TEST_F(ReliableBackpressureTest, RefusedSendsAllocateNothingOnceWindowFull) {
  ReliableConfig config;
  config.window = 3;
  build(1, config);

  // Fill the window (these sends buffer + transmit and may allocate).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(reliable_->send(Bytes(64, 0xAB)).ok());
  }
  ASSERT_EQ(reliable_->unacked(), 3u);

  // Pre-build the payloads the refused sends will consume; moving them into
  // send() transfers the existing buffer, so the measured region performs no
  // allocation of its own.
  std::vector<Bytes> payloads;
  payloads.reserve(200);
  for (int i = 0; i < 200; ++i) payloads.emplace_back(64, 0xCD);

  const std::uint64_t before = g_allocations.load();
  bool all_refused = true;
  for (int i = 0; i < 200; ++i) {
    // (No gtest assertions inside the measured region — they allocate.)
    const Status status = reliable_->send(std::move(payloads[i]));
    all_refused = all_refused && !status.ok() &&
                  status.error().code == ErrorCode::kCapacityExceeded;
  }
  EXPECT_TRUE(all_refused);
  EXPECT_EQ(g_allocations.load(), before)
      << "the refusing send path must not allocate — backpressure, not "
         "unbounded buffering";
  EXPECT_EQ(reliable_->unacked(), 3u);
}

TEST_F(ReliableBackpressureTest, PeerAdvertisedWindowBoundsSenderWithoutAllocating) {
  build(2, ReliableConfig{});  // own window 256 — the peer's is the binding one

  // Deliver one frame, then have the (raw) server hand-craft a cumulative
  // ack that advertises only 2 free reorder slots.
  ASSERT_TRUE(reliable_->send(Bytes{0x01}).ok());
  testbed_->run_for(2.0);
  ASSERT_NE(server_channel_, nullptr);
  ASSERT_TRUE(server_channel_->write(encode_reliable_ack(2, 2)).ok());
  testbed_->run_for(2.0);
  ASSERT_EQ(reliable_->unacked(), 0u);
  ASSERT_EQ(reliable_->peer_window(), 2u);

  // The advertised window admits exactly two more frames...
  ASSERT_TRUE(reliable_->send(Bytes{0x02}).ok());
  ASSERT_TRUE(reliable_->send(Bytes{0x03}).ok());

  std::vector<Bytes> payloads;
  payloads.reserve(100);
  for (int i = 0; i < 100; ++i) payloads.emplace_back(64, 0xEF);

  // ...and every send beyond it is refused without allocating.
  const std::uint64_t before = g_allocations.load();
  bool all_refused = true;
  for (int i = 0; i < 100; ++i) {
    const Status status = reliable_->send(std::move(payloads[i]));
    all_refused = all_refused && !status.ok() &&
                  status.error().code == ErrorCode::kCapacityExceeded;
  }
  EXPECT_TRUE(all_refused);
  EXPECT_EQ(g_allocations.load(), before);
  EXPECT_EQ(reliable_->unacked(), 2u);
}

}  // namespace
}  // namespace peerhood
