#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace peerhood::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim{1};
  SimTime seen{};
  sim.schedule_after(seconds(5.0), [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, SimTime{} + seconds(5.0));
  EXPECT_EQ(sim.now(), SimTime{} + seconds(5.0));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim{1};
  int fired = 0;
  sim.schedule_after(seconds(1.0), [&] { ++fired; });
  sim.schedule_after(seconds(10.0), [&] { ++fired; });
  sim.run_until(SimTime{} + seconds(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime{} + seconds(5.0));
  sim.run_until(SimTime{} + seconds(20.0));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunForComposes) {
  Simulator sim{1};
  std::vector<double> fire_times;
  for (int i = 1; i <= 4; ++i) {
    sim.schedule_after(seconds(i), [&, i] {
      fire_times.push_back(sim.now().seconds());
    });
  }
  sim.run_for(seconds(2.0));
  EXPECT_EQ(fire_times.size(), 2u);
  sim.run_for(seconds(2.0));
  EXPECT_EQ(fire_times.size(), 4u);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim{1};
  sim.run_until(SimTime{} + seconds(10.0));
  bool ran = false;
  sim.schedule_at(SimTime{} + seconds(1.0), [&] { ran = true; });
  sim.run_all();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), SimTime{} + seconds(10.0));
}

TEST(Simulator, CancelWorksThroughSimulator) {
  Simulator sim{1};
  bool ran = false;
  const EventId id = sim.schedule_after(seconds(1.0), [&] { ran = true; });
  sim.cancel(id);
  sim.run_all();
  EXPECT_FALSE(ran);
}

TEST(Simulator, ForkRngProducesDistinctStreams) {
  Simulator sim{99};
  Rng a = sim.fork_rng();
  Rng b = sim.fork_rng();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(PeriodicTask, FiresAtPeriod) {
  Simulator sim{1};
  int ticks = 0;
  PeriodicTask task;
  task.start(sim, seconds(1.0), [&] { ++ticks; }, seconds(1.0));
  sim.run_until(SimTime{} + seconds(5.5));
  EXPECT_EQ(ticks, 5);
}

TEST(PeriodicTask, InitialDelayZeroFiresImmediately) {
  Simulator sim{1};
  int ticks = 0;
  PeriodicTask task;
  task.start(sim, seconds(10.0), [&] { ++ticks; });
  sim.run_until(SimTime{} + seconds(0.5));
  EXPECT_EQ(ticks, 1);
}

TEST(PeriodicTask, StopPreventsFurtherTicks) {
  Simulator sim{1};
  int ticks = 0;
  PeriodicTask task;
  task.start(sim, seconds(1.0), [&] { ++ticks; }, seconds(1.0));
  sim.run_until(SimTime{} + seconds(2.5));
  task.stop();
  sim.run_until(SimTime{} + seconds(10.0));
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTask, StopFromInsideTick) {
  Simulator sim{1};
  int ticks = 0;
  PeriodicTask task;
  task.start(sim, seconds(1.0), [&] {
    if (++ticks == 3) task.stop();
  }, seconds(1.0));
  sim.run_until(SimTime{} + seconds(10.0));
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTask, RestartAfterStop) {
  Simulator sim{1};
  int ticks = 0;
  PeriodicTask task;
  task.start(sim, seconds(1.0), [&] { ++ticks; }, seconds(1.0));
  sim.run_until(SimTime{} + seconds(1.5));
  task.stop();
  task.start(sim, seconds(1.0), [&] { ticks += 10; }, seconds(1.0));
  sim.run_until(SimTime{} + seconds(3.6));
  EXPECT_EQ(ticks, 21);  // 1 tick of the first run + 2 of the second
}

TEST(PeriodicTask, DestructionCancelsCleanly) {
  Simulator sim{1};
  int ticks = 0;
  {
    PeriodicTask task;
    task.start(sim, seconds(1.0), [&] { ++ticks; }, seconds(1.0));
    sim.run_until(SimTime{} + seconds(1.5));
  }
  sim.run_until(SimTime{} + seconds(10.0));
  EXPECT_EQ(ticks, 1);
}

}  // namespace
}  // namespace peerhood::sim
