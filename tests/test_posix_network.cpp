// PosixNetwork unit tests: two real-socket backends in one process, each on
// kernel-assigned loopback ports, pumped alternately. Everything here runs
// against real file descriptors — timings use generous wall deadlines and
// assert on completion, not latency.
#include "net/posix_network.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "net/stream_framer.hpp"

namespace peerhood::net {
namespace {

constexpr auto kBluetooth = Technology::kBluetooth;

PosixConfig fast_config(std::uint64_t index) {
  PosixConfig config;
  config.mac = MacAddress::from_index(index);
  config.seed = index;
  // Keep retries snappy so failure-path tests finish in milliseconds.
  config.connect_timeout = milliseconds(200);
  config.connect_attempts = 2;
  config.connect_backoff_base = milliseconds(5);
  config.connect_backoff_cap = milliseconds(20);
  return config;
}

// Introduces two networks to each other after their ports are known.
void introduce(PosixNetwork& a, PosixNetwork& b) {
  a.add_peer({b.mac(), "127.0.0.1", b.udp_port(), b.tcp_port()});
  b.add_peer({a.mac(), "127.0.0.1", a.udp_port(), a.tcp_port()});
}

// Pumps both event cores until `done` or a wall-clock deadline.
[[nodiscard]] bool pump_until(PosixNetwork& a, PosixNetwork& b,
                              const std::function<bool()>& done,
                              int deadline_ms = 3000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    a.poll_once(milliseconds(2));
    b.poll_once(milliseconds(2));
  }
  return done();
}

class PosixNetworkTest : public ::testing::Test {
 protected:
  PosixNetworkTest()
      : a_{std::make_unique<PosixNetwork>(fast_config(1))},
        b_{std::make_unique<PosixNetwork>(fast_config(2))} {
    introduce(*a_, *b_);
    a_->attach_interface(a_->mac(), kBluetooth, nullptr);
    b_->attach_interface(b_->mac(), kBluetooth, nullptr);
  }

  std::unique_ptr<PosixNetwork> a_;
  std::unique_ptr<PosixNetwork> b_;
};

TEST_F(PosixNetworkTest, DatagramRoundtrip) {
  std::optional<Bytes> received;
  MacAddress from;
  b_->set_datagram_handler(
      b_->mac(), kBluetooth,
      [&](MacAddress sender, std::span<const std::uint8_t> payload) {
        from = sender;
        received = Bytes{payload.begin(), payload.end()};
      });
  const Bytes payload{1, 2, 3, 250};
  a_->send_datagram(a_->mac(), b_->mac(), kBluetooth, payload);
  ASSERT_TRUE(pump_until(*a_, *b_, [&] { return received.has_value(); }));
  EXPECT_EQ(*received, payload);
  EXPECT_EQ(from, a_->mac());
  EXPECT_GE(b_->integrity_stats().frames_checked, 1u);
  EXPECT_EQ(b_->integrity_stats().corrupt_drops, 0u);
}

TEST_F(PosixNetworkTest, ConnectAcceptDataBothWaysAndClose) {
  const NetAddress addr{b_->mac(), kBluetooth, 42};
  ConnectionPtr server;
  ASSERT_TRUE(
      b_->listen(addr, [&](ConnectionPtr c) { server = std::move(c); }).ok());

  ConnectionPtr client;
  bool failed = false;
  a_->connect(a_->mac(), addr, [&](Result<ConnectionPtr> result) {
    if (result.ok()) {
      client = std::move(result).value();
    } else {
      failed = true;
    }
  });
  ASSERT_TRUE(pump_until(*a_, *b_,
                         [&] { return (client && server) || failed; }));
  ASSERT_FALSE(failed);
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(client->id(), server->id());
  EXPECT_EQ(client->remote_address(), addr);
  EXPECT_EQ(server->remote_address().mac, a_->mac());
  EXPECT_EQ(a_->live_connection_count(), 1u);
  EXPECT_EQ(b_->live_connection_count(), 1u);

  // Data both directions, via handler on one end and poll_frame on the other.
  std::vector<Bytes> at_server;
  server->set_data_handler([&](const Bytes& f) { at_server.push_back(f); });
  ASSERT_TRUE(client->write(Bytes{10, 20}).ok());
  ASSERT_TRUE(client->write(Bytes{30}).ok());
  ASSERT_TRUE(server->write(Bytes{99}).ok());
  ASSERT_TRUE(pump_until(*a_, *b_, [&] {
    return at_server.size() == 2 && client->poll_frame().has_value();
  }));
  EXPECT_EQ(at_server[0], (Bytes{10, 20}));
  EXPECT_EQ(at_server[1], (Bytes{30}));

  // Local close surfaces at the peer as a close event.
  bool server_closed = false;
  server->set_close_handler([&] { server_closed = true; });
  client->close();
  EXPECT_FALSE(client->open());
  ASSERT_TRUE(pump_until(*a_, *b_, [&] { return server_closed; }));
  EXPECT_TRUE(pump_until(*a_, *b_, [&] {
    return a_->live_connection_count() == 0 &&
           b_->live_connection_count() == 0;
  }));
}

TEST_F(PosixNetworkTest, ConnectToUnboundLogicalPortFails) {
  // TCP reaches b_, but nothing listens on the logical address: the hello is
  // rejected and the connect handler sees kConnectionFailed — the same
  // contract SimNetwork honours for missing listeners.
  std::optional<Error> error;
  a_->connect(a_->mac(), NetAddress{b_->mac(), kBluetooth, 777},
              [&](Result<ConnectionPtr> result) {
                ASSERT_FALSE(result.ok());
                error = result.error();
              });
  ASSERT_TRUE(pump_until(*a_, *b_, [&] { return error.has_value(); }));
  EXPECT_EQ(error->code, ErrorCode::kConnectionFailed);
  EXPECT_EQ(a_->live_connection_count(), 0u);
  EXPECT_EQ(b_->live_connection_count(), 0u);
}

TEST_F(PosixNetworkTest, ConnectToDeadProcessRetriesThenFails) {
  // A peer whose ports point at nothing (its process "crashed"): every TCP
  // connect is refused, retries pay backoff and are counted, the handler
  // fires exactly once with an error.
  const MacAddress ghost = MacAddress::from_index(9);
  // Grab a port that is certainly closed: bind, read it back, close.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t dead_port = ntohs(addr.sin_port);
  ::close(probe);
  a_->add_peer({ghost, "127.0.0.1", dead_port, dead_port});

  int failures = 0;
  a_->connect(a_->mac(), NetAddress{ghost, kBluetooth, 1},
              [&](Result<ConnectionPtr> result) {
                EXPECT_FALSE(result.ok());
                ++failures;
              });
  ASSERT_TRUE(pump_until(*a_, *b_, [&] { return failures > 0; }));
  EXPECT_EQ(failures, 1);
  EXPECT_GE(a_->net_stats().reconnect_attempts, 1u);
}

TEST_F(PosixNetworkTest, DoubleBindIsAddressInUse) {
  const NetAddress addr{b_->mac(), kBluetooth, 5};
  ASSERT_TRUE(b_->listen(addr, [](ConnectionPtr) {}).ok());
  const Status again = b_->listen(addr, [](ConnectionPtr) {});
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, ErrorCode::kAddressInUse);
  // The first listener keeps the address and keeps accepting.
  b_->stop_listening(addr);
  ASSERT_TRUE(b_->listen(addr, [](ConnectionPtr) {}).ok());
}

TEST_F(PosixNetworkTest, InquiryDiscoversAttachedPeer) {
  a_->begin_inquiry(a_->mac(), kBluetooth);
  // Probe + reply need a few pump rounds; close the window once the reply
  // has had time to land.
  std::vector<MacAddress> responders;
  const bool found = pump_until(*a_, *b_, [&] {
    a_->begin_inquiry(a_->mac(), kBluetooth);  // re-open, re-probe
    a_->poll_once(milliseconds(5));
    b_->poll_once(milliseconds(5));
    a_->poll_once(milliseconds(5));
    responders = a_->end_inquiry(a_->mac(), kBluetooth);
    return !responders.empty();
  });
  ASSERT_TRUE(found);
  ASSERT_EQ(responders.size(), 1u);
  EXPECT_EQ(responders[0], b_->mac());
  // The beacon reply carried the PeerHood SDP tag.
  EXPECT_TRUE(a_->peerhood_tag(b_->mac(), kBluetooth));
}

TEST_F(PosixNetworkTest, DetachedPeerStopsAnswering) {
  b_->detach_interface(b_->mac(), kBluetooth);
  a_->begin_inquiry(a_->mac(), kBluetooth);
  const bool answered = pump_until(
      *a_, *b_,
      [&] {
        std::vector<MacAddress> r = a_->end_inquiry(a_->mac(), kBluetooth);
        a_->begin_inquiry(a_->mac(), kBluetooth);
        return !r.empty();
      },
      200);
  EXPECT_FALSE(answered);
  a_->cancel_inquiry(a_->mac(), kBluetooth);
}

TEST_F(PosixNetworkTest, BoundedSendQueueDropsOldest) {
  PosixConfig tiny = fast_config(1);
  tiny.max_send_queue = 4;
  auto a = std::make_unique<PosixNetwork>(tiny);
  a->add_peer({b_->mac(), "127.0.0.1", b_->udp_port(), b_->tcp_port()});
  b_->add_peer({a->mac(), "127.0.0.1", a->udp_port(), a->tcp_port()});
  a->attach_interface(a->mac(), kBluetooth, nullptr);

  const NetAddress addr{b_->mac(), kBluetooth, 7};
  ConnectionPtr server;
  ASSERT_TRUE(
      b_->listen(addr, [&](ConnectionPtr c) { server = std::move(c); }).ok());
  ConnectionPtr client;
  a->connect(a->mac(), addr, [&](Result<ConnectionPtr> result) {
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    client = std::move(result).value();
  });
  ASSERT_TRUE(pump_until(*a, *b_, [&] { return client && server; }));

  // Flood without pumping either side: the kernel socket buffer fills, the
  // userspace queue caps at 4, and the overflow is dropped oldest-first.
  const Bytes big(60000, 0xAB);
  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(client->write(big).ok());
  }
  EXPECT_GT(a->net_stats().send_queue_drops, 0u);
  EXPECT_EQ(b_->net_stats().send_queue_drops, 0u);

  // The stream stays framed: the receiver sees only whole 60000-byte frames.
  std::size_t delivered = 0;
  bool bad_frame = false;
  server->set_data_handler([&](const Bytes& f) {
    ++delivered;
    if (f != big) bad_frame = true;
  });
  ASSERT_TRUE(pump_until(*a, *b_, [&] { return delivered >= 4; }));
  EXPECT_FALSE(bad_frame);
  EXPECT_EQ(a->integrity_stats().corrupt_drops, 0u);
  EXPECT_EQ(b_->integrity_stats().corrupt_drops, 0u);
}

TEST_F(PosixNetworkTest, GarbageOnTcpSocketPoisonsNotCrashes) {
  // A rogue client speaks raw bytes at the TCP listener. The stream framer
  // latches poisoned, the connection is dropped and counted — the daemon
  // never sees a frame.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(b_->tcp_port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage), 0), 0);
  ASSERT_TRUE(pump_until(*a_, *b_, [&] {
    return b_->net_stats().corrupt_drops >= 1;
  }));
  EXPECT_EQ(b_->live_connection_count(), 0u);
  ::close(fd);
}

TEST_F(PosixNetworkTest, QualityPlaneDefaults) {
  // Configured peer: flat healthy quality. Unknown peer: gone.
  EXPECT_GT(a_->sample_quality(a_->mac(), b_->mac(), kBluetooth), 0);
  EXPECT_EQ(
      a_->sample_quality(a_->mac(), MacAddress::from_index(77), kBluetooth),
      0);
  // No geometry: observation is declined, probe carries the flat sample.
  const auto id = a_->observe_quality(a_->mac(), b_->mac(), kBluetooth, {},
                                      [](const sim::LinkQualityEvent&) {});
  EXPECT_EQ(id, sim::kInvalidQualityObserver);
  const sim::LinkQualityEvent probe =
      a_->probe_link(a_->mac(), b_->mac(), kBluetooth);
  EXPECT_GT(probe.quality, 0);
}

// --- StreamFramer unit coverage ---------------------------------------------

TEST(StreamFramerTest, ReassemblesAcrossArbitrarySplits) {
  const Bytes body{0, 1, 2, 3, 200, 201};
  const Bytes wire = encode_stream_frame(body);
  // Feed the same two frames byte by byte.
  StreamFramer framer;
  int frames = 0;
  for (int copy = 0; copy < 2; ++copy) {
    for (const std::uint8_t byte : wire) {
      framer.feed(std::span<const std::uint8_t>{&byte, 1});
      while (const auto out = framer.next()) {
        EXPECT_EQ(*out, body);
        ++frames;
      }
    }
  }
  EXPECT_EQ(frames, 2);
  EXPECT_FALSE(framer.poisoned());
  EXPECT_EQ(framer.buffered(), 0u);
}

TEST(StreamFramerTest, BadMagicLatches) {
  StreamFramer framer;
  const Bytes junk{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0};
  framer.feed(junk);
  EXPECT_FALSE(framer.next().has_value());
  EXPECT_TRUE(framer.poisoned());
  // Even a pristine frame afterwards yields nothing: position is lost.
  framer.feed(encode_stream_frame(Bytes{1}));
  EXPECT_FALSE(framer.next().has_value());
}

TEST(StreamFramerTest, BitFlipInBodyLatches) {
  Bytes wire = encode_stream_frame(Bytes{5, 6, 7});
  wire.back() ^= 0x01;
  StreamFramer framer;
  framer.feed(wire);
  EXPECT_FALSE(framer.next().has_value());
  EXPECT_TRUE(framer.poisoned());
}

}  // namespace
}  // namespace peerhood::net
